// Sparse grid regression (data mining, one of the application fields the
// paper's introduction cites): learn a surrogate of an expensive black-box
// response from scattered, noisy observations — no grid-aligned samples
// required — then query it interactively.
//
// Scenario: a "lab" measures a 4-parameter process response at randomly
// chosen operating points, with sensor noise. The sparse grid surrogate is
// fit by regularized least squares (matrix-free conjugate gradients on the
// compact structure) and then used to locate the operating optimum.
#include <cmath>
#include <cstdio>
#include <random>

#include "csg/core.hpp"
#include "csg/regression/regression.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;

/// The hidden process response (the example pretends not to know it).
real_t process_response(const CoordVector& x) {
  const real_t a = x[0] - 0.62, b = x[1] - 0.44;
  real_t window = 1;
  for (dim_t t = 0; t < x.size(); ++t) window *= 4 * x[t] * (1 - x[t]);
  return window * (1.2 * std::exp(-6 * (a * a + b * b)) +
                   0.3 * std::sin(4 * x[2]) * x[3]);
}

}  // namespace

int main() {
  const dim_t d = 4;
  const level_t n = 5;
  const std::size_t samples = 4000;
  const real_t noise_sigma = 0.01;

  // --- 1. collect noisy scattered observations ---
  std::mt19937_64 rng(2026);
  std::normal_distribution<real_t> noise(0, noise_sigma);
  const auto xs = workloads::uniform_points(d, samples, 13);
  std::vector<real_t> ys(samples);
  for (std::size_t m = 0; m < samples; ++m)
    ys[m] = process_response(xs[m]) + noise(rng);
  std::printf("collected %zu noisy observations (sigma = %.3f)\n", samples,
              noise_sigma);

  // --- 2. fit the sparse grid surrogate ---
  regression::FitOptions opt;
  opt.lambda = 2e-6;
  opt.max_iterations = 300;
  regression::FitReport report;
  const CompactStorage surrogate =
      regression::fit(d, n, xs, ys, opt, &report);
  std::printf("fit %llu coefficients in %d CG iterations "
              "(rel. residual %.2e, training MSE %.2e ~ noise^2 %.2e)\n",
              static_cast<unsigned long long>(surrogate.size()),
              report.iterations, report.relative_residual,
              report.training_mse, noise_sigma * noise_sigma);

  // --- 3. validate on held-out points ---
  const auto test = workloads::halton_points(d, 2000);
  real_t max_err = 0, mse = 0;
  for (const CoordVector& x : test) {
    const real_t e = evaluate(surrogate, x) - process_response(x);
    max_err = std::max(max_err, std::abs(e));
    mse += e * e;
  }
  mse /= static_cast<real_t>(test.size());
  std::printf("held-out: RMSE %.4f, max error %.4f (response range ~[0, "
              "1.2])\n",
              std::sqrt(mse), max_err);

  // --- 4. use the surrogate: gradient-guided search for the optimum ---
  CoordVector x(d, 0.5);
  for (int step = 0; step < 200; ++step) {
    const ValueAndGradient vg = evaluate_with_gradient(surrogate, x);
    real_t norm = 0;
    for (dim_t t = 0; t < d; ++t) norm += vg.gradient[t] * vg.gradient[t];
    if (norm < 1e-10) break;
    for (dim_t t = 0; t < d; ++t) {
      x[t] += real_t{0.02} * vg.gradient[t] / std::sqrt(norm);
      x[t] = std::min(real_t{0.999}, std::max(real_t{0.001}, x[t]));
    }
  }
  std::printf("surrogate ascent ends at (");
  for (dim_t t = 0; t < d; ++t) std::printf("%s%.3f", t ? ", " : "", x[t]);
  std::printf(") with predicted %.4f, true %.4f\n",
              evaluate(surrogate, x), process_response(x));
  std::printf("(true optimum lies near (0.62, 0.44, ...): the surrogate "
              "found the basin from noisy scattered data)\n");
  return 0;
}
