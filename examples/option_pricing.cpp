// Sparse grids in finance (one of the application domains Sec. 1 and the
// related work cite, e.g. Gaikwad & Toke's option pricing on GPUs):
// pre-compute a basket option price over a 5-dimensional parameter space,
// then answer pricing queries by interpolation instead of re-running the
// pricer.
//
// The "expensive pricer" here is a closed-form approximation of an
// arithmetic basket call (moment-matched Black-Scholes), deliberately
// costly enough per call that the pre-compute/interpolate trade-off is
// realistic. Since option prices do not vanish at the parameter-domain
// boundary, this example uses the non-zero-boundary extension of the
// compact data structure (paper Sec. 4.4).
#include <chrono>
#include <cmath>
#include <cstdio>

#include "csg/core.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;

/// Map [0,1]^5 to pricing inputs: spot ratio, volatility, rate, maturity,
/// basket correlation.
struct PricingInputs {
  double moneyness;    // S/K in [0.6, 1.4]
  double sigma;        // vol in [0.1, 0.5]
  double rate;         // r in [0.0, 0.08]
  double maturity;     // T in [0.1, 2.0]
  double correlation;  // rho in [0.0, 0.9]
};

PricingInputs decode(const CoordVector& x) {
  return {0.6 + 0.8 * x[0], 0.1 + 0.4 * x[1], 0.08 * x[2], 0.1 + 1.9 * x[3],
          0.9 * x[4]};
}

double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Moment-matched basket call on 4 equally weighted assets: the basket is
/// approximated as lognormal with variance reduced by correlation.
double basket_call_price(const PricingInputs& in) {
  const int assets = 4;
  const double w = 1.0 / assets;
  // Effective basket variance: w^2 * (n + n(n-1) rho) * sigma^2.
  const double var_scale =
      w * w * (assets + assets * (assets - 1) * in.correlation);
  const double sigma_b = in.sigma * std::sqrt(var_scale);
  const double st = sigma_b * std::sqrt(in.maturity);
  if (st < 1e-12) return std::max(in.moneyness - 1.0, 0.0);
  const double fwd = in.moneyness * std::exp(in.rate * in.maturity);
  const double d1 = (std::log(fwd) + 0.5 * st * st) / st;
  const double d2 = d1 - st;
  return std::exp(-in.rate * in.maturity) *
         (fwd * norm_cdf(d1) - norm_cdf(d2));
}

real_t pricer(const CoordVector& x) { return basket_call_price(decode(x)); }

}  // namespace

int main() {
  const dim_t d = 5;
  const level_t n = 6;

  // --- offline: sample the pricer on a boundary sparse grid ---
  BoundaryStorage surface(d, n);
  const auto t0 = std::chrono::steady_clock::now();
  surface.sample(pricer);
  hierarchize(surface);
  const double precompute_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("pre-computed basket option surface: %llu grid points "
              "(boundary grid, d=%u level %u) in %.2f s\n",
              static_cast<unsigned long long>(surface.size()), d, n,
              precompute_s);

  // --- online: interpolated pricing vs direct pricing ---
  const auto queries = workloads::halton_points(d, 5000);
  double max_abs_err = 0, mean_abs_err = 0;
  const auto t1 = std::chrono::steady_clock::now();
  std::vector<real_t> interpolated(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q)
    interpolated[q] = evaluate(surface, queries[q]);
  const double interp_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double exact = pricer(queries[q]);
    const double err = std::abs(interpolated[q] - exact);
    max_abs_err = std::max(max_abs_err, err);
    mean_abs_err += err;
  }
  const double direct_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count();
  mean_abs_err /= static_cast<double>(queries.size());

  std::printf("priced %zu parameter queries:\n", queries.size());
  std::printf("  interpolated: %8.2f us/query\n",
              interp_s / static_cast<double>(queries.size()) * 1e6);
  std::printf("  direct pricer:%8.2f us/query\n",
              direct_s / static_cast<double>(queries.size()) * 1e6);
  std::printf("  mean |error| = %.2e, max |error| = %.2e (option premium "
              "units)\n",
              mean_abs_err, max_abs_err);

  // A pricing sheet: moneyness x maturity at fixed vol/rate/correlation.
  std::printf("\nprice sheet (sigma=0.30, r=0.04, rho=0.45):\n          ");
  for (double m = 0.7; m <= 1.31; m += 0.1) std::printf("  S/K=%.1f", m);
  std::printf("\n");
  for (double T = 0.25; T <= 2.01; T += 0.25) {
    std::printf("  T=%4.2fy ", T);
    for (double m = 0.7; m <= 1.31; m += 0.1) {
      const CoordVector x{(m - 0.6) / 0.8, (0.30 - 0.1) / 0.4, 0.04 / 0.08,
                          (T - 0.1) / 1.9, 0.45 / 0.9};
      std::printf("  %7.4f", evaluate(surface, x));
    }
    std::printf("\n");
  }
  return 0;
}
