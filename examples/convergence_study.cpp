// Convergence study: the approximation-theoretic claim behind the whole
// technique (Sec. 2) — sparse grids keep near-full-grid accuracy with
// O(N log^{d-1} N) instead of O(N^d) points for sufficiently smooth f.
//
// The study sweeps refinement levels for several functions and dimensions,
// printing points vs max interpolation error, plus a direct sparse-vs-full
// comparison in 2d where the full grid is still affordable.
#include <cmath>
#include <cstdio>

#include "csg/core.hpp"
#include "csg/workloads/full_grid.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;

real_t max_error(const CompactStorage& s,
                 const workloads::TestFunction& f,
                 const std::vector<CoordVector>& probes) {
  real_t err = 0;
  for (const CoordVector& x : probes)
    err = std::max(err, std::abs(evaluate(s, x) - f(x)));
  return err;
}

}  // namespace

int main() {
  std::printf("sparse grid interpolation error vs refinement level\n");
  std::printf("(max |f - fs| over 2000 low-discrepancy probe points)\n\n");

  for (const dim_t d : {2u, 3u, 5u}) {
    const auto probes = workloads::halton_points(d, 2000);
    std::printf("d = %u\n", d);
    std::printf("  %-7s %12s", "level", "points");
    std::vector<workloads::TestFunction> fns = {
        workloads::parabola_product(d), workloads::gaussian_bump(d),
        workloads::oscillatory(d)};
    for (const auto& f : fns) std::printf(" %18s", f.name.c_str());
    std::printf("\n");
    for (level_t n = 2; n <= 9 - d / 3; ++n) {
      std::printf("  %-7u %12llu", n,
                  static_cast<unsigned long long>(
                      regular_grid_num_points(d, n)));
      for (const auto& f : fns) {
        CompactStorage s(d, n);
        s.sample(f.f);
        hierarchize(s);
        std::printf(" %18.3e", max_error(s, f, probes));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Sparse vs full grid in 2d: similar accuracy, far fewer points.
  std::printf("sparse vs full grid (d=2, parabola_product):\n");
  std::printf("  %-7s %15s %15s %18s\n", "level", "sparse points",
              "full points", "sparse max err");
  const auto f2 = workloads::parabola_product(2);
  const auto probes2 = workloads::halton_points(2, 2000);
  for (level_t n = 3; n <= 9; ++n) {
    CompactStorage s(2, n);
    s.sample(f2.f);
    hierarchize(s);
    const double full_pts =
        std::pow(static_cast<double>((std::int64_t{1} << n) - 1), 2);
    std::printf("  %-7u %15llu %15.0f %18.3e\n", n,
                static_cast<unsigned long long>(s.size()), full_pts,
                max_error(s, f2, probes2));
  }
  std::printf("\n(full grid error at level n is O(4^-n); the sparse grid "
              "tracks it with O(n 2^n) instead of O(4^n) points — the "
              "curse-of-dimensionality mitigation of Sec. 2.)\n");
  return 0;
}
