// The paper's motivating application (Fig. 1): interactive visual
// exploration of multi-dimensional simulation output.
//
// A synthetic 4-d "simulation" result is compressed onto a sparse grid;
// the explorer then decompresses axis-aligned 2-d slices on demand — the
// operation a visualization front-end issues once per frame — and renders
// them as ASCII heat maps. Per-frame decompression time is reported, since
// a "smoothly-running visual data exploration application" (Sec. 1) is the
// whole point.
#include <chrono>
#include <cstdio>

#include "csg/core.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;

void render_ascii(const std::vector<real_t>& values, std::size_t w,
                  std::size_t h) {
  static const char* shades = " .:-=+*#%@";
  real_t lo = values[0], hi = values[0];
  for (real_t v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const real_t span = hi > lo ? hi - lo : real_t{1};
  for (std::size_t r = h; r-- > 0;) {  // origin bottom-left
    std::printf("    ");
    for (std::size_t c = 0; c < w; ++c) {
      const real_t t = (values[r * w + c] - lo) / span;
      std::putchar(shades[static_cast<int>(t * 9.999)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  const dim_t d = 4;
  const level_t n = 8;

  // --- Simulation + compression (offline pre-processing) ---
  const workloads::TestFunction field = workloads::simulation_field(d);
  CompactStorage compressed(d, n);
  const double compress_s = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    compressed.sample(field.f);
    hierarchize(compressed);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }();
  std::printf("compressed %llu-point sparse grid (d=%u, level %u) in %.3f s "
              "-> %.2f MB\n\n",
              static_cast<unsigned long long>(compressed.size()), d, n,
              compress_s,
              static_cast<double>(compressed.memory_bytes()) / 1e6);

  // --- Interactive exploration (online decompression) ---
  // Per frame: restrict the compressed field to the 2d slice plane once
  // (an exact operation, see csg/core/restriction.hpp), then sample the
  // resulting 2d sparse grid per pixel — far cheaper than evaluating the
  // full d-dimensional interpolant per pixel.
  const std::size_t W = 64, H = 32;
  for (const real_t anchor : {0.3, 0.5, 0.7}) {
    const auto t0 = std::chrono::steady_clock::now();
    const CompactStorage slice_grid = restrict_to_plane(
        compressed, DimVector<dim_t>{0, 1}, CoordVector(d - 2, anchor));
    const auto pixels =
        workloads::slice_points(CoordVector(2, 0.0), 0, 1, W, H);
    const auto values = evaluate_many_blocked(slice_grid, pixels, 64);
    const double frame_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("slice through (x2, x3) = (%.1f, %.1f): %zu samples "
                "decompressed in %.2f ms (%.0f samples/ms, restriction + "
                "2d evaluation)\n",
                anchor, anchor, values.size(), frame_ms,
                static_cast<double>(values.size()) / frame_ms);
    render_ascii(values, W, H);
    std::printf("\n");
  }

  // A zoomed probe along a line — the "browse through the data" motion.
  std::printf("line probe along x0 at x1=x2=x3=0.5:\n    ");
  for (int k = 0; k <= 60; ++k) {
    CoordVector x(d, 0.5);
    x[0] = static_cast<real_t>(k) / 60;
    const real_t v = evaluate(compressed, x);
    std::putchar(v > 0.55 ? '^' : (v > 0.25 ? '-' : '_'));
  }
  std::printf("\n");
  return 0;
}
