// Running the sparse grid operations "on the GPU": the simulated Tesla
// C1060 executes the paper's kernels functionally and reports the event
// counts and modeled timing of Sec. 5/6 — a tour of the gpusim substrate
// and of what the compact data structure buys on SIMD hardware.
#include <cstdio>

#include "csg/core.hpp"
#include "csg/gpusim/kernels.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::gpusim;

void report(const char* what, const GpuRunReport& r, std::uint32_t warp) {
  std::printf("%s:\n", what);
  std::printf("  kernel launches        %10llu\n",
              static_cast<unsigned long long>(r.launches));
  std::printf("  modeled time           %10.3f ms\n", r.modeled_ms);
  std::printf("  mean occupancy         %10.2f\n", r.mean_occupancy);
  std::printf("  SIMD efficiency        %10.2f\n",
              r.counters.simd_efficiency(warp));
  std::printf("  global transactions    %10llu\n",
              static_cast<unsigned long long>(r.counters.global_transactions));
  std::printf("  accesses/transaction   %10.2f (32 = perfectly coalesced)\n",
              r.counters.accesses_per_transaction());
}

}  // namespace

int main() {
  const dim_t d = 6;
  const level_t n = 7;
  const auto f = workloads::simulation_field(d);

  CompactStorage storage(d, n);
  storage.sample(f.f);
  std::printf("grid: d=%u level=%u, %llu points\n\n", d, n,
              static_cast<unsigned long long>(storage.size()));

  for (const DeviceSpec& spec : {tesla_c1060(), fermi_c2050()}) {
    std::printf("=== %s ===\n", spec.name);
    Launcher launcher(spec);

    CompactStorage dev = storage;
    const GpuRunReport h = gpu_hierarchize(launcher, dev);
    report("hierarchization (compression)", h, spec.warp_size);

    // Verify against the CPU result — the kernels are bit-identical.
    CompactStorage cpu = storage;
    hierarchize(cpu);
    std::printf("  matches CPU result     %10s\n\n",
                cpu.values() == dev.values() ? "bit-exact" : "MISMATCH");

    const auto pts = workloads::uniform_points(d, 2048, 42);
    GpuRunReport e;
    const auto gpu_vals = gpu_evaluate(launcher, dev, pts, &e);
    report("evaluation (decompression, 2048 points)", e, spec.warp_size);
    const auto cpu_vals = evaluate_many(dev, pts);
    std::printf("  matches CPU result     %10s\n\n",
                gpu_vals == cpu_vals ? "bit-exact" : "MISMATCH");
  }

  std::printf("note: times come from the calibrated device model "
              "(DESIGN.md §5) — this host has no GPU; results are exact.\n");
  return 0;
}
