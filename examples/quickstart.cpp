// Quickstart: compress a 5-dimensional function onto a sparse grid,
// store it, reload it, and interpolate — the minimal end-to-end tour of
// the public API.
//
//   $ ./quickstart
//
// Steps:
//   1. describe the grid (dimension 5, refinement level 7),
//   2. sample the function at the grid points (nodal values),
//   3. hierarchize in place -> hierarchical coefficients ("compress"),
//   4. serialize / deserialize the compact representation,
//   5. evaluate anywhere in [0,1]^5 ("decompress").
#include <cmath>
#include <cstdio>

#include "csg/core.hpp"
#include "csg/io/serialize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

int main() {
  using namespace csg;

  const dim_t d = 5;
  const level_t n = 7;

  // The function to compress: a smooth zero-boundary test field. Any
  // real_t(const CoordVector&) works here — e.g. a lookup into your
  // simulation output.
  const workloads::TestFunction f = workloads::gaussian_bump(d);

  // 1-2. Grid + nodal samples.
  CompactStorage grid_function(d, n);
  grid_function.sample(f.f);
  std::printf("sparse grid: d=%u, level=%u, %llu points (%.2f MB)\n", d, n,
              static_cast<unsigned long long>(grid_function.size()),
              static_cast<double>(grid_function.memory_bytes()) / 1e6);
  const double full_grid_points =
      std::pow(static_cast<double>((std::int64_t{1} << n) - 1), d);
  std::printf("full grid at the same resolution: %.3g points -> compression "
              "ratio %.0fx\n",
              full_grid_points,
              full_grid_points / static_cast<double>(grid_function.size()));

  // 3. Compress: nodal values -> hierarchical coefficients, in place.
  hierarchize(grid_function);

  // 4. Store and reload (the compact format is just header + coefficients).
  io::save_file(grid_function, "/tmp/quickstart.csg");
  const CompactStorage restored = io::load_file("/tmp/quickstart.csg");
  std::printf("serialized to /tmp/quickstart.csg (%zu bytes)\n",
              io::serialized_bytes(restored));

  // 5. Decompress: evaluate at arbitrary points.
  double max_err = 0;
  for (const CoordVector& x : workloads::halton_points(d, 1000)) {
    const real_t approx = evaluate(restored, x);
    max_err = std::max(max_err, std::abs(approx - f(x)));
  }
  std::printf("max interpolation error over 1000 probe points: %.2e\n",
              max_err);

  const CoordVector center(d, 0.5);
  std::printf("f(0.5,...,0.5) = %.6f, sparse grid says %.6f\n", f(center),
              evaluate(restored, center));
  return 0;
}
