// Sparse grid regression — the data mining application of the paper's
// introduction ("sparse grids ... have meanwhile been employed to a whole
// range of different applications from fields such as ... data mining",
// refs [2][3]).
//
// Given M scattered samples (x_m, y_m), find hierarchical coefficients
// alpha minimizing
//
//   (1/M) sum_m ( fs(x_m) - y_m )^2  +  lambda * |alpha|^2
//
// i.e. the normal equations (B^T B / M + lambda I) alpha = B^T y / M with
// B_{m,j} = phi_j(x_m). Everything is MATRIX-FREE on the compact
// structure: B alpha is a batch evaluation (Alg. 7's subspace walk) and
// B^T r scatters residual-weighted basis values back into the coefficient
// array through the same walk — both O(M * #subspaces * d). The system is
// symmetric positive definite, solved by conjugate gradients.
//
// This is the use case where the compact structure shines beyond
// compression: the fit touches the coefficient array millions of times
// and pays no key overhead at all.
#pragma once

#include <span>
#include <vector>

#include "csg/core/compact_storage.hpp"

namespace csg::regression {

struct FitOptions {
  double lambda = 1e-6;     // Tikhonov regularization weight
  int max_iterations = 200;
  double tolerance = 1e-10; // on the relative residual norm
};

struct FitReport {
  int iterations = 0;
  double relative_residual = 0;  // ||r|| / ||b|| at exit
  double training_mse = 0;       // (1/M) sum (fs(x_m) - y_m)^2
  bool converged = false;
};

/// Apply the design operator: out_m = fs(x_m) for every sample, using the
/// coefficients currently in `storage`.
std::vector<real_t> apply_design(const CompactStorage& storage,
                                 std::span<const CoordVector> points);

/// Apply the transposed design operator: for every sample add
/// r_m * phi_j(x_m) into coefficient j of `out`.
void apply_design_transposed(const RegularSparseGrid& grid,
                             std::span<const CoordVector> points,
                             std::span<const real_t> residuals,
                             CompactStorage& out);

/// Least-squares fit of a sparse grid of shape (d, n) to the samples.
/// Returns the fitted surrogate; `report` (optional) receives solver
/// diagnostics.
CompactStorage fit(dim_t d, level_t n, std::span<const CoordVector> points,
                   std::span<const real_t> values,
                   const FitOptions& options = {},
                   FitReport* report = nullptr);

/// Mean squared error of a fitted surrogate on a (test) set.
double mean_squared_error(const CompactStorage& storage,
                          std::span<const CoordVector> points,
                          std::span<const real_t> values);

}  // namespace csg::regression
