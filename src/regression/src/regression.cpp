#include "csg/regression/regression.hpp"

#include <cmath>

#include "csg/core/evaluate.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg::regression {

namespace {

/// Walk the one basis function per subspace whose support contains x
/// (the Alg. 7 pattern) and invoke visit(flat_index, basis_value).
template <typename Visitor>
void for_each_active_basis(const RegularSparseGrid& grid,
                           const CoordVector& x, Visitor&& visit) {
  const dim_t d = grid.dim();
  flat_index_t index2 = 0;
  for (level_t j = 0; j < grid.level(); ++j) {
    LevelVector l = first_level(d, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      real_t prod = 1;
      flat_index_t index1 = 0;
      for (dim_t t = 0; t < d; ++t) {
        const index1d_t i = support_index_1d(l[t], x[t]);
        index1 = (index1 << l[t]) + ((i - 1) >> 1);
        prod *= hat_basis_1d(l[t], i, x[t]);
        if (prod == 0) break;
      }
      if (prod != 0) visit(index2 + index1, prod);
      index2 += grid.points_per_subspace(j);
      if (k + 1 < subspaces) advance_level(l);
    }
  }
}

double dot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  double acc = 0;
  for (std::size_t k = 0; k < a.size(); ++k) acc += a[k] * b[k];
  return acc;
}

}  // namespace

std::vector<real_t> apply_design(const CompactStorage& storage,
                                 std::span<const CoordVector> points) {
  return evaluate_many(storage, points);
}

void apply_design_transposed(const RegularSparseGrid& grid,
                             std::span<const CoordVector> points,
                             std::span<const real_t> residuals,
                             CompactStorage& out) {
  CSG_EXPECTS(points.size() == residuals.size());
  CSG_EXPECTS(out.grid() == grid);
  for (std::size_t m = 0; m < points.size(); ++m) {
    const real_t r = residuals[m];
    if (r == 0) continue;
    for_each_active_basis(grid, points[m],
                          [&](flat_index_t j, real_t basis) {
                            out[j] += r * basis;
                          });
  }
}

CompactStorage fit(dim_t d, level_t n, std::span<const CoordVector> points,
                   std::span<const real_t> values, const FitOptions& options,
                   FitReport* report) {
  CSG_EXPECTS(points.size() == values.size());
  CSG_EXPECTS(!points.empty());
  CSG_EXPECTS(options.lambda >= 0);
  CompactStorage alpha(d, n);
  const RegularSparseGrid& grid = alpha.grid();
  const auto num_coeffs = static_cast<std::size_t>(grid.num_points());
  const double inv_m = 1.0 / static_cast<double>(points.size());

  // A v = (B^T B / M + lambda I) v, matrix-free.
  auto apply_normal = [&](const CompactStorage& v) {
    const std::vector<real_t> bv = apply_design(v, points);
    CompactStorage out(d, n);
    apply_design_transposed(grid, points, bv, out);
    for (std::size_t k = 0; k < num_coeffs; ++k)
      out[k] = out[k] * inv_m + options.lambda * v[static_cast<flat_index_t>(k)];
    return out;
  };

  // b = B^T y / M.
  CompactStorage b(d, n);
  apply_design_transposed(grid, points, values, b);
  for (std::size_t k = 0; k < num_coeffs; ++k) b[k] *= inv_m;

  // Conjugate gradients from alpha = 0.
  std::vector<real_t> r(b.values());
  std::vector<real_t> p(r);
  double rr = dot(r, r);
  const double b_norm = std::sqrt(rr);
  int iter = 0;
  if (b_norm > 0) {
    for (; iter < options.max_iterations; ++iter) {
      if (std::sqrt(rr) / b_norm < options.tolerance) break;
      CompactStorage pvec(d, n);
      std::copy(p.begin(), p.end(), pvec.values().begin());
      const CompactStorage ap = apply_normal(pvec);
      const double p_ap = dot(p, ap.values());
      CSG_ASSERT(p_ap > 0 && "normal operator lost positive definiteness");
      const double step = rr / p_ap;
      for (std::size_t k = 0; k < num_coeffs; ++k) {
        alpha[static_cast<flat_index_t>(k)] += static_cast<real_t>(step * p[k]);
        r[k] -= static_cast<real_t>(step) * ap[static_cast<flat_index_t>(k)];
      }
      const double rr_next = dot(r, r);
      const double beta = rr_next / rr;
      rr = rr_next;
      for (std::size_t k = 0; k < num_coeffs; ++k)
        p[k] = r[k] + static_cast<real_t>(beta) * p[k];
    }
  }

  if (report != nullptr) {
    report->iterations = iter;
    report->relative_residual = b_norm > 0 ? std::sqrt(rr) / b_norm : 0;
    report->converged = b_norm == 0 || report->relative_residual <
                                           options.tolerance;
    report->training_mse = mean_squared_error(alpha, points, values);
  }
  return alpha;
}

double mean_squared_error(const CompactStorage& storage,
                          std::span<const CoordVector> points,
                          std::span<const real_t> values) {
  CSG_EXPECTS(points.size() == values.size());
  const std::vector<real_t> predicted = apply_design(storage, points);
  double acc = 0;
  for (std::size_t m = 0; m < points.size(); ++m) {
    const double e = predicted[m] - values[m];
    acc += e * e;
  }
  return acc / static_cast<double>(points.size());
}

}  // namespace csg::regression
