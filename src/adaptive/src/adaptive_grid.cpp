#include "csg/adaptive/adaptive_grid.hpp"

#include <algorithm>
#include <cmath>

#include "csg/core/level_enumeration.hpp"

namespace csg::adaptive {

PointKey make_key(const LevelVector& l, const IndexVector& i) {
  PointKey key;
  key.size = l.size();
  for (dim_t t = 0; t < l.size(); ++t) {
    CSG_ASSERT(i[t] < (index1d_t{1} << 58));
    key.words[t] = (static_cast<std::uint64_t>(l[t]) << 58) | i[t];
  }
  return key;
}

AdaptiveSparseGrid::AdaptiveSparseGrid(dim_t d) : d_(d) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  GridPoint root{LevelVector(d, 0), IndexVector(d, 1)};
  nodes_.emplace(make_key(root.level, root.index), Node{root, 0, 0});
}

AdaptiveSparseGrid::AdaptiveSparseGrid(dim_t d, level_t n)
    : AdaptiveSparseGrid(d) {
  CSG_EXPECTS(n >= 1 && n <= kMaxLevel);
  for (level_t j = 0; j < n; ++j) {
    for (const LevelVector& l : LevelRange(d, j)) {
      IndexVector i(d, 1);
      for (;;) {
        nodes_.emplace(make_key(l, i), Node{{l, i}, 0, 0});
        dim_t t = d;
        bool carry = true;
        while (t-- > 0) {
          i[t] += 2;
          if (i[t] < (index1d_t{1} << (l[t] + 1))) {
            carry = false;
            break;
          }
          i[t] = 1;
        }
        if (carry) break;
      }
    }
  }
}

bool AdaptiveSparseGrid::contains(const LevelVector& l,
                                  const IndexVector& i) const {
  return nodes_.contains(make_key(l, i));
}

const AdaptiveSparseGrid::Node* AdaptiveSparseGrid::find(
    const LevelVector& l, const IndexVector& i) const {
  const auto it = nodes_.find(make_key(l, i));
  return it == nodes_.end() ? nullptr : &it->second;
}

std::size_t AdaptiveSparseGrid::insert(const GridPoint& gp) {
  CSG_EXPECTS(gp.level.size() == d_ && valid_point(gp));
  const PointKey key = make_key(gp.level, gp.index);
  if (nodes_.contains(key)) return 0;
  std::size_t added = 1;
  nodes_.emplace(key, Node{gp, 0, 0});
  // Closure: both 1d hierarchical parents in every dimension.
  for (dim_t t = 0; t < d_; ++t) {
    for (const bool right : {false, true}) {
      const Parent1d p = right ? right_parent_1d(gp.level[t], gp.index[t])
                               : left_parent_1d(gp.level[t], gp.index[t]);
      if (p.is_boundary) continue;
      GridPoint parent = gp;
      parent.level[t] = p.level;
      parent.index[t] = p.index;
      added += insert(parent);
    }
  }
  return added;
}

std::size_t AdaptiveSparseGrid::refine_point(const GridPoint& gp) {
  CSG_EXPECTS(contains(gp.level, gp.index));
  std::size_t added = 0;
  for (dim_t t = 0; t < d_; ++t) {
    for (const index1d_t child_index : {left_child_index_1d(gp.index[t]),
                                        right_child_index_1d(gp.index[t])}) {
      GridPoint child = gp;
      child.level[t] = gp.level[t] + 1;
      child.index[t] = child_index;
      added += insert(child);
    }
  }
  return added;
}

void AdaptiveSparseGrid::sample(
    const std::function<real_t(const CoordVector&)>& f) {
  for (auto& [key, node] : nodes_) node.nodal = f(coordinates(node.point));
}

void AdaptiveSparseGrid::hierarchize() {
  std::vector<Node*> order;
  order.reserve(nodes_.size());
  for (auto& [key, node] : nodes_) {
    node.surplus = 0;
    order.push_back(&node);
  }
  std::sort(order.begin(), order.end(), [](const Node* a, const Node* b) {
    return a->point.level.l1_norm() < b->point.level.l1_norm();
  });
  for (Node* node : order) {
    const CoordVector x = coordinates(node->point);
    node->surplus = node->nodal - evaluate(x);
  }
}

real_t AdaptiveSparseGrid::evaluate(const CoordVector& x) const {
  CSG_EXPECTS(x.size() == d_);
  // Iterative DFS from the root over in-grid points whose tensor support
  // contains x. A point is pushed at most once per dimension-step; a small
  // visited set removes the duplicates arising from different step orders.
  real_t result = 0;
  std::vector<GridPoint> stack;
  std::unordered_map<PointKey, bool, PointKeyHash> visited;
  GridPoint root{LevelVector(d_, 0), IndexVector(d_, 1)};
  stack.push_back(root);
  visited.emplace(make_key(root.level, root.index), true);
  while (!stack.empty()) {
    const GridPoint p = stack.back();
    stack.pop_back();
    const Node* node = find(p.level, p.index);
    CSG_ASSERT(node != nullptr);  // closure invariant
    real_t basis = 1;
    for (dim_t t = 0; t < d_ && basis != 0; ++t)
      basis *= hat_basis_1d(p.level[t], p.index[t], x[t]);
    result += node->surplus * basis;
    for (dim_t t = 0; t < d_; ++t) {
      // The child whose dimension-t support contains x_t. If x_t falls on
      // this point's grid line the hats of all descendants vanish there,
      // but descendants through OTHER dimensions may still contribute, so
      // descend unless the child index leaves the valid range.
      const index1d_t ci = support_index_1d(p.level[t] + 1, x[t]);
      if (ci != left_child_index_1d(p.index[t]) &&
          ci != right_child_index_1d(p.index[t]))
        continue;  // x_t outside this point's subtree in dimension t
      GridPoint child = p;
      child.level[t] = p.level[t] + 1;
      child.index[t] = ci;
      if (!contains(child.level, child.index)) continue;
      const PointKey key = make_key(child.level, child.index);
      if (visited.emplace(key, true).second) stack.push_back(child);
    }
  }
  return result;
}

std::vector<real_t> AdaptiveSparseGrid::evaluate_many(
    std::span<const CoordVector> pts) const {
  std::vector<real_t> out(pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p) out[p] = evaluate(pts[p]);
  return out;
}

std::size_t AdaptiveSparseGrid::refine_by_surplus(
    const std::function<real_t(const CoordVector&)>& f, real_t epsilon,
    std::size_t max_refine) {
  CSG_EXPECTS(epsilon >= 0);
  sample(f);
  hierarchize();
  std::vector<const Node*> candidates;
  for (const auto& [key, node] : nodes_)
    if (std::abs(node.surplus) > epsilon) candidates.push_back(&node);
  std::sort(candidates.begin(), candidates.end(),
            [](const Node* a, const Node* b) {
              return std::abs(a->surplus) > std::abs(b->surplus);
            });
  if (candidates.size() > max_refine) candidates.resize(max_refine);
  // Copy the points first: refinement mutates the node table.
  std::vector<GridPoint> to_refine;
  to_refine.reserve(candidates.size());
  for (const Node* node : candidates) to_refine.push_back(node->point);
  std::size_t added = 0;
  for (const GridPoint& gp : to_refine) added += refine_point(gp);
  if (added > 0) {
    sample(f);
    hierarchize();
  }
  return added;
}

std::size_t AdaptiveSparseGrid::adapt(
    const std::function<real_t(const CoordVector&)>& f, real_t epsilon,
    std::size_t max_points) {
  std::size_t rounds = 0;
  while (num_points() < max_points) {
    ++rounds;
    if (refine_by_surplus(f, epsilon) == 0) break;
  }
  return rounds;
}

void AdaptiveSparseGrid::set_node(const GridPoint& gp, real_t nodal,
                                  real_t surplus) {
  const auto it = nodes_.find(make_key(gp.level, gp.index));
  CSG_EXPECTS(it != nodes_.end());
  it->second.nodal = nodal;
  it->second.surplus = surplus;
}

std::size_t AdaptiveSparseGrid::memory_bytes() const {
  // Node payload + one pointer-sized hash link per node + bucket array.
  return nodes_.size() * (sizeof(Node) + sizeof(PointKey) + sizeof(void*)) +
         nodes_.bucket_count() * sizeof(void*);
}

level_t AdaptiveSparseGrid::max_level_sum() const {
  std::uint64_t best = 0;
  for (const auto& [key, node] : nodes_)
    best = std::max(best, node.point.level.l1_norm());
  return static_cast<level_t>(best);
}

}  // namespace csg::adaptive
