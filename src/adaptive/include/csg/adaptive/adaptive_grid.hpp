// Spatially adaptive sparse grids — the flexibility the paper's compact
// structure deliberately trades away (Sec. 7: hash-based structures "keep
// the access structures as flexible as possible and suitable for adaptive
// refinement"; the compact bijection requires REGULAR grids). This module
// supplies that missing half of the design space so the trade-off can be
// quantified: a hash-backed grid whose point set grows where the function
// is rough, driven by the hierarchical surpluses (the standard refinement
// criterion of Pflüger's cited thesis [3]).
//
// Invariant: the point set is closed under 1d hierarchical parents in
// every dimension. That guarantees (a) surpluses are computable by one
// ascending-level sweep, and (b) the contributing ancestors of any
// evaluation point are reachable from the root by single-dimension child
// steps along the evaluation point's support path.
#pragma once

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/core/grid_point.hpp"

namespace csg::adaptive {

/// Hashable packed key of a grid point: one word per dimension.
struct PointKey {
  std::array<std::uint64_t, kMaxDim> words{};
  dim_t size = 0;

  friend bool operator==(const PointKey& a, const PointKey& b) {
    if (a.size != b.size) return false;
    for (dim_t t = 0; t < a.size; ++t)
      if (a.words[t] != b.words[t]) return false;
    return true;
  }
};

PointKey make_key(const LevelVector& l, const IndexVector& i);

struct PointKeyHash {
  std::size_t operator()(const PointKey& k) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ k.size;
    for (dim_t t = 0; t < k.size; ++t) {
      h ^= k.words[t] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

class AdaptiveSparseGrid {
 public:
  struct Node {
    GridPoint point;
    real_t nodal = 0;    // f at the point
    real_t surplus = 0;  // hierarchical coefficient
  };

  /// Start from the single root point (level (0,..,0), index (1,..,1)).
  explicit AdaptiveSparseGrid(dim_t d);

  /// Start from the full regular sparse grid of level n.
  AdaptiveSparseGrid(dim_t d, level_t n);

  dim_t dim() const { return d_; }
  std::size_t num_points() const { return nodes_.size(); }
  bool contains(const LevelVector& l, const IndexVector& i) const;

  /// Insert a point together with every missing hierarchical ancestor.
  /// Returns the number of points actually added.
  std::size_t insert(const GridPoint& gp);

  /// Insert the 2d children of gp (plus closure). Returns points added.
  std::size_t refine_point(const GridPoint& gp);

  /// Set nodal values from f at every current point (new points included).
  void sample(const std::function<real_t(const CoordVector&)>& f);

  /// Recompute all surpluses from the nodal values: one sweep in ascending
  /// |l|_1 order; alpha_p = nodal_p - interpolant-so-far(x_p). Exact
  /// because every basis function that is non-zero at x_p belongs to a
  /// point with strictly smaller level sum.
  void hierarchize();

  /// Interpolate at x: depth-first walk over the in-grid ancestors of x.
  real_t evaluate(const CoordVector& x) const;

  std::vector<real_t> evaluate_many(std::span<const CoordVector> pts) const;

  /// One adaptivity step: sample f, hierarchize, then refine every point
  /// whose |surplus| exceeds epsilon (up to max_refine points, largest
  /// surpluses first). Returns the number of new points; 0 means
  /// converged under the criterion.
  std::size_t refine_by_surplus(
      const std::function<real_t(const CoordVector&)>& f, real_t epsilon,
      std::size_t max_refine = 64);

  /// Iterate refine_by_surplus until convergence or the point budget is
  /// exhausted. Returns the number of adaptivity rounds.
  std::size_t adapt(const std::function<real_t(const CoordVector&)>& f,
                    real_t epsilon, std::size_t max_points);

  /// Directly set the stored values of an existing point (used by
  /// deserialization; refinement workflows should sample/hierarchize).
  void set_node(const GridPoint& gp, real_t nodal, real_t surplus);

  /// Approximate container footprint (hash nodes + bucket array), for the
  /// flexibility-vs-memory comparison against CompactStorage.
  std::size_t memory_bytes() const;

  /// Access every node (unspecified order).
  template <typename Visitor>
  void for_each_node(Visitor&& visit) const {
    for (const auto& [key, node] : nodes_) visit(node);
  }

  /// Maximum |l|_1 present in the grid.
  level_t max_level_sum() const;

 private:
  const Node* find(const LevelVector& l, const IndexVector& i) const;

  dim_t d_;
  std::unordered_map<PointKey, Node, PointKeyHash> nodes_;
};

}  // namespace csg::adaptive
