// ThreadSanitizer <-> libgomp bridge.
//
// GCC's libgomp synchronizes its thread pool with futexes that TSan cannot
// observe, so even race-free OpenMP code reports false positives: the
// happens-before edges of fork (worker reads the outlined-function argument
// block the spawning thread just wrote), join (the spawning thread reads
// results after the region's closing barrier) and explicit barriers are all
// invisible. Blanket suppressions (`race:libgomp`) would silence REAL races
// too, since every report involving a pool thread carries a libgomp frame.
//
// Instead, this TU interposes the three GOMP entry points our code compiles
// to — GOMP_parallel, GOMP_task, GOMP_barrier (schedule(static) loops lower
// to plain GOMP_parallel; no GOMP_loop_* calls) — and re-creates exactly
// those edges with __tsan_release/__tsan_acquire:
//
//   fork:    release(fork_tag) inside our GOMP_parallel (after the caller
//            stored the argument block) -> acquire(fork_tag) first thing in
//            the per-thread trampoline.
//   join:    release(join_tag) last thing in the trampoline -> acquire
//            (join_tag) after the real GOMP_parallel returns.
//   barrier: every thread releases before and acquires after the real
//            GOMP_barrier, yielding the all-to-all edge.
//   task:    release(task_tag) at GOMP_task -> acquire in the task
//            trampoline; on completion the trampoline releases the barrier
//            and join tags, because tasks run while their thread is already
//            inside a barrier (past that thread's own release) and the
//            OpenMP memory model orders task bodies before whoever leaves
//            that barrier or the region.
//
// Data conflicts NOT ordered by these constructs — two threads writing one
// coefficient inside a region, a missing barrier between dependent groups —
// have no edge and are still reported, which is the point: the lane stays
// sensitive to real races while the runtime's own machinery is trusted.
//
// Interposition works at static link time: this object defines the GOMP_*
// symbols, so the linker binds our versions and we forward to libgomp via
// dlsym(RTLD_NEXT). The object is pulled out of the archive by the anchor
// reference in omp_algorithms.cpp (enabled by the CSG_TSAN_GOMP_BRIDGE
// compile definition, which CMake sets when CSG_SANITIZE=thread).

namespace csg::parallel::detail {
// Referenced from omp_algorithms.cpp so this TU is linked into every
// binary that uses the OpenMP algorithms.
void tsan_gomp_bridge_anchor() {}
}  // namespace csg::parallel::detail

#if defined(__SANITIZE_THREAD__)

#include <dlfcn.h>
#include <sanitizer/tsan_interface.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace {

char fork_tag, join_tag, barrier_tag, task_tag;

template <typename F>
F resolve(const char* name) {
  void* sym = dlsym(RTLD_NEXT, name);
  if (sym == nullptr) {
    std::fprintf(stderr, "csg tsan bridge: cannot resolve %s\n", name);
    std::abort();
  }
  return reinterpret_cast<F>(sym);
}

struct RegionWrap {
  void (*fn)(void*);
  void* data;
};

void region_trampoline(void* p) {
  auto* w = static_cast<RegionWrap*>(p);
  __tsan_acquire(&fork_tag);
  w->fn(w->data);
  __tsan_release(&join_tag);
}

/// Prepended to the task payload so the executing thread can find the real
/// body. payload_offset keeps the original argument alignment intact;
/// align is remembered for the aligned operator delete (the executing
/// thread owns the block).
struct TaskHeader {
  void (*fn)(void*);
  long payload_offset;
  long align;
};

void run_task(TaskHeader* h) {
  __tsan_acquire(&task_tag);
  h->fn(reinterpret_cast<char*>(h) + h->payload_offset);
  const std::align_val_t align{static_cast<std::size_t>(h->align)};
  ::operator delete(h, align);
  // Tasks execute when a thread reaches a barrier — explicit GOMP_barrier
  // or the implicit one at region end, both of which happen AFTER that
  // thread's own release in region_trampoline / GOMP_barrier. So the
  // completion edge must be published here, from the task itself, to both
  // rendezvous points: whoever leaves the barrier (acquire(barrier_tag)) or
  // the region (acquire(join_tag)) afterwards is ordered after this body —
  // including the delete above, so the allocator can reuse the block.
  __tsan_release(&barrier_tag);
  __tsan_release(&join_tag);
}

/// Uninstrumented on purpose: `p` points into libgomp's INTERNAL copy of
/// the 8-byte argument block, which the creating thread filled with a
/// TSan-intercepted memcpy after our release(task_tag). An instrumented
/// read here would pair with that memcpy and report a false race on
/// libgomp's own task bookkeeping. Everything we actually care about lives
/// in our TaskHeader block, whose accesses are instrumented in run_task
/// and ordered by the task_tag edge.
__attribute__((no_sanitize("thread"))) void task_trampoline(void* p) {
  run_task(*static_cast<TaskHeader**>(p));
}

}  // namespace

extern "C" {

/// libgomp's own task bookkeeping (gomp_malloc of a task struct in the
/// creating thread, free in whichever thread retires it) is guarded by the
/// runtime's futex-based queue locks, which TSan cannot see — but malloc
/// and free ARE TSan interceptors, so those accesses get recorded and
/// reported as races between pool threads. `called_from_lib` ignores
/// interceptor accesses whose direct caller is libgomp's module and nothing
/// else: user-code accesses are instrumented in our own modules and are
/// unaffected, so real races stay visible. (This is deliberately NOT a
/// `race:` suppression — those match whole report stacks, and every pool
/// thread's stack bottoms out in libgomp, so they would hide everything.)
const char* __tsan_default_suppressions() {
  return "called_from_lib:libgomp\n";
}

void GOMP_parallel(void (*fn)(void*), void* data, unsigned num_threads,
                   unsigned flags) {
  using Fn = void (*)(void (*)(void*), void*, unsigned, unsigned);
  static const Fn real = resolve<Fn>("GOMP_parallel");
  RegionWrap wrap{fn, data};
  __tsan_release(&fork_tag);
  real(region_trampoline, &wrap, num_threads, flags);
  __tsan_acquire(&join_tag);
}

void GOMP_barrier() {
  using Fn = void (*)();
  static const Fn real = resolve<Fn>("GOMP_barrier");
  __tsan_release(&barrier_tag);
  real();
  __tsan_acquire(&barrier_tag);
}

void GOMP_task(void (*fn)(void*), void* data, void (*cpyfn)(void*, void*),
               long arg_size, long arg_align, bool if_clause, unsigned flags,
               void** depend, int priority, void* detach) {
  using Fn = void (*)(void (*)(void*), void*, void (*)(void*, void*), long,
                      long, bool, unsigned, void**, int, void*);
  static const Fn real = resolve<Fn>("GOMP_task");
  // Build the wrapped payload up front (header + a copy of the task
  // arguments at their original alignment): the original cpyfn, if any,
  // runs here in the creating thread, which matches its firstprivate
  // semantics. libgomp is handed only a pointer to this block, so its own
  // internal copy — made AFTER our release and therefore impossible to
  // order — carries nothing the instrumented code ever reads; the
  // uninstrumented task_trampoline recovers the pointer (see above).
  const long align =
      arg_align > static_cast<long>(alignof(TaskHeader))
          ? arg_align
          : static_cast<long>(alignof(TaskHeader));
  const long offset =
      (static_cast<long>(sizeof(TaskHeader)) + align - 1) / align * align;
  const long total = offset + arg_size;
  char* buf = static_cast<char*>(::operator new(
      static_cast<std::size_t>(total),
      std::align_val_t{static_cast<std::size_t>(align)}));
  auto* header = new (buf) TaskHeader{fn, offset, align};
  if (cpyfn != nullptr)
    cpyfn(buf + offset, data);
  else
    std::memcpy(buf + offset, data, static_cast<std::size_t>(arg_size));
  __tsan_release(&task_tag);
  void* arg = header;
  real(task_trampoline, &arg, nullptr, static_cast<long>(sizeof(void*)),
       static_cast<long>(alignof(void*)), if_clause, flags, depend, priority,
       detach);
  // The block is freed by run_task in whichever thread executes the task
  // (possibly this one, synchronously, for undeferred tasks).
}

}  // extern "C"

#endif  // __SANITIZE_THREAD__
