// ThreadSanitizer <-> libgomp bridge.
//
// GCC's libgomp synchronizes its thread pool with futexes that TSan cannot
// observe, so even race-free OpenMP code reports false positives: the
// happens-before edges of fork (worker reads the outlined-function argument
// block the spawning thread just wrote), join (the spawning thread reads
// results after the region's closing barrier) and explicit barriers are all
// invisible. Blanket suppressions (`race:libgomp`) would silence REAL races
// too, since every report involving a pool thread carries a libgomp frame.
//
// Instead, this TU interposes the GOMP entry points our code compiles to —
// GOMP_parallel, GOMP_task, GOMP_barrier, and the dynamic-schedule loop
// family GOMP_loop_nonmonotonic_dynamic_start/_next + GOMP_loop_end[_nowait]
// (schedule(static) loops lower to plain GOMP_parallel with no GOMP_loop_*
// calls; schedule(dynamic), used by the combination-grid recombine loop,
// dispatches chunks through the nonmonotonic entry points) — and re-creates
// exactly those edges with __tsan_release/__tsan_acquire:
//
//   fork:    release(fork_tag) inside our GOMP_parallel (after the caller
//            stored the argument block) -> acquire(fork_tag) first thing in
//            the per-thread trampoline.
//   join:    release(join_tag) last thing in the trampoline -> acquire
//            (join_tag) after the real GOMP_parallel returns.
//   barrier: every thread releases before and acquires after the real
//            GOMP_barrier, yielding the all-to-all edge.
//   task:    release(task_tag) at GOMP_task -> acquire in the task
//            trampoline; on completion the trampoline releases the barrier
//            and join tags, because tasks run while their thread is already
//            inside a barrier (past that thread's own release) and the
//            OpenMP memory model orders task bodies before whoever leaves
//            that barrier or the region.
//   dynamic loop: libgomp hands out chunks by atomic RMW on a shared
//            iteration counter; an instrumented runtime would publish a
//            release/acquire chain through that counter. The bridge mirrors
//            it on loop_tag: release before + acquire after every _start /
//            _next call, ordering each chunk grab after all earlier ones.
//            GOMP_loop_end carries the worksharing barrier (same edges as
//            GOMP_barrier, on barrier_tag); GOMP_loop_end_nowait is pure
//            bookkeeping and is forwarded without edges — the region's
//            closing barrier (join_tag) provides the ordering, which is
//            exactly the OpenMP nowait contract.
//
// Data conflicts NOT ordered by these constructs — two threads writing one
// coefficient inside a region, a missing barrier between dependent groups —
// have no edge and are still reported, which is the point: the lane stays
// sensitive to real races while the runtime's own machinery is trusted.
//
// Interposition works at static link time: this object defines the GOMP_*
// symbols, so the linker binds our versions and we forward to libgomp via
// dlsym(RTLD_NEXT). The object is pulled out of the archive by the anchor
// reference in omp_algorithms.cpp (enabled by the CSG_TSAN_GOMP_BRIDGE
// compile definition, which CMake sets when CSG_SANITIZE=thread).

namespace csg::parallel::detail {
// Referenced from omp_algorithms.cpp so this TU is linked into every
// binary that uses the OpenMP algorithms.
void tsan_gomp_bridge_anchor() {}
}  // namespace csg::parallel::detail

#if defined(__SANITIZE_THREAD__)

#include <dlfcn.h>
#include <sanitizer/tsan_interface.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace {

char fork_tag, join_tag, barrier_tag, task_tag, loop_tag;

template <typename F>
F resolve(const char* name) {
  void* sym = dlsym(RTLD_NEXT, name);
  if (sym == nullptr) {
    std::fprintf(stderr, "csg tsan bridge: cannot resolve %s\n", name);
    std::abort();
  }
  return reinterpret_cast<F>(sym);
}

struct RegionWrap {
  void (*fn)(void*);
  void* data;
};

void region_trampoline(void* p) {
  auto* w = static_cast<RegionWrap*>(p);
  __tsan_acquire(&fork_tag);
  w->fn(w->data);
  __tsan_release(&join_tag);
}

/// Prepended to the task payload so the executing thread can find the real
/// body. payload_offset keeps the original argument alignment intact;
/// align is remembered for the aligned operator delete (the executing
/// thread owns the block).
struct TaskHeader {
  void (*fn)(void*);
  long payload_offset;
  long align;
};

void run_task(TaskHeader* h) {
  __tsan_acquire(&task_tag);
  h->fn(reinterpret_cast<char*>(h) + h->payload_offset);
  const std::align_val_t align{static_cast<std::size_t>(h->align)};
  // csg-lint: allow-next(raw-alloc) -- block ownership crosses threads; aligned operator delete has no smart-pointer form
  ::operator delete(h, align);
  // Tasks execute when a thread reaches a barrier — explicit GOMP_barrier
  // or the implicit one at region end, both of which happen AFTER that
  // thread's own release in region_trampoline / GOMP_barrier. So the
  // completion edge must be published here, from the task itself, to both
  // rendezvous points: whoever leaves the barrier (acquire(barrier_tag)) or
  // the region (acquire(join_tag)) afterwards is ordered after this body —
  // including the delete above, so the allocator can reuse the block.
  __tsan_release(&barrier_tag);
  __tsan_release(&join_tag);
}

/// Uninstrumented on purpose: `p` points into libgomp's INTERNAL copy of
/// the 8-byte argument block, which the creating thread filled with a
/// TSan-intercepted memcpy after our release(task_tag). An instrumented
/// read here would pair with that memcpy and report a false race on
/// libgomp's own task bookkeeping. Everything we actually care about lives
/// in our TaskHeader block, whose accesses are instrumented in run_task
/// and ordered by the task_tag edge.
__attribute__((no_sanitize("thread"))) void task_trampoline(void* p) {
  run_task(*static_cast<TaskHeader**>(p));
}

}  // namespace

extern "C" {

/// libgomp's own task bookkeeping (gomp_malloc of a task struct in the
/// creating thread, free in whichever thread retires it) is guarded by the
/// runtime's futex-based queue locks, which TSan cannot see — but malloc
/// and free ARE TSan interceptors, so those accesses get recorded and
/// reported as races between pool threads. `called_from_lib` ignores
/// interceptor accesses whose direct caller is libgomp's module and nothing
/// else: user-code accesses are instrumented in our own modules and are
/// unaffected, so real races stay visible. (This is deliberately NOT a
/// `race:` suppression — those match whole report stacks, and every pool
/// thread's stack bottoms out in libgomp, so they would hide everything.)
const char* __tsan_default_suppressions() {
  return "called_from_lib:libgomp\n";
}

void GOMP_parallel(void (*fn)(void*), void* data, unsigned num_threads,
                   unsigned flags) {
  using Fn = void (*)(void (*)(void*), void*, unsigned, unsigned);
  static const Fn real = resolve<Fn>("GOMP_parallel");
  RegionWrap wrap{fn, data};
  __tsan_release(&fork_tag);
  real(region_trampoline, &wrap, num_threads, flags);
  __tsan_acquire(&join_tag);
}

void GOMP_barrier() {
  using Fn = void (*)();
  static const Fn real = resolve<Fn>("GOMP_barrier");
  __tsan_release(&barrier_tag);
  real();
  __tsan_acquire(&barrier_tag);
}

/// schedule(dynamic) chunk dispatch. The release-before/acquire-after pair
/// on loop_tag recreates the release/acquire chain an instrumented runtime
/// would exhibit on its shared iteration counter: every successful chunk
/// grab is ordered after all earlier grabs (and after the loop-local setup
/// done by whichever thread initialised the work share in _start). Writes
/// inside two different chunks remain unordered unless a real OpenMP
/// construct separates them — cross-iteration races stay visible.
bool GOMP_loop_nonmonotonic_dynamic_start(long start, long end, long incr,
                                          long chunk_size, long* istart,
                                          long* iend) {
  using Fn = bool (*)(long, long, long, long, long*, long*);
  static const Fn real = resolve<Fn>("GOMP_loop_nonmonotonic_dynamic_start");
  __tsan_release(&loop_tag);
  const bool got = real(start, end, incr, chunk_size, istart, iend);
  __tsan_acquire(&loop_tag);
  return got;
}

bool GOMP_loop_nonmonotonic_dynamic_next(long* istart, long* iend) {
  using Fn = bool (*)(long*, long*);
  static const Fn real = resolve<Fn>("GOMP_loop_nonmonotonic_dynamic_next");
  __tsan_release(&loop_tag);
  const bool got = real(istart, iend);
  __tsan_acquire(&loop_tag);
  return got;
}

/// End of a worksharing loop WITH the implied barrier (no nowait clause):
/// all-to-all edges exactly as in GOMP_barrier.
void GOMP_loop_end() {
  using Fn = void (*)();
  static const Fn real = resolve<Fn>("GOMP_loop_end");
  __tsan_release(&barrier_tag);
  real();
  __tsan_acquire(&barrier_tag);
}

/// nowait variant: bookkeeping only. No edges on purpose — OpenMP gives no
/// ordering here either; the region's closing barrier (join_tag) is where
/// the loop's writes become visible.
void GOMP_loop_end_nowait() {
  using Fn = void (*)();
  static const Fn real = resolve<Fn>("GOMP_loop_end_nowait");
  real();
}

void GOMP_task(void (*fn)(void*), void* data, void (*cpyfn)(void*, void*),
               long arg_size, long arg_align, bool if_clause, unsigned flags,
               void** depend, int priority, void* detach) {
  using Fn = void (*)(void (*)(void*), void*, void (*)(void*, void*), long,
                      long, bool, unsigned, void**, int, void*);
  static const Fn real = resolve<Fn>("GOMP_task");
  // Build the wrapped payload up front (header + a copy of the task
  // arguments at their original alignment): the original cpyfn, if any,
  // runs here in the creating thread, which matches its firstprivate
  // semantics. libgomp is handed only a pointer to this block, so its own
  // internal copy — made AFTER our release and therefore impossible to
  // order — carries nothing the instrumented code ever reads; the
  // uninstrumented task_trampoline recovers the pointer (see above).
  const long align =
      arg_align > static_cast<long>(alignof(TaskHeader))
          ? arg_align
          : static_cast<long>(alignof(TaskHeader));
  const long offset =
      (static_cast<long>(sizeof(TaskHeader)) + align - 1) / align * align;
  const long total = offset + arg_size;
  // csg-lint: allow-next(raw-alloc) -- task payload block is freed by whichever thread runs the task
  char* buf = static_cast<char*>(::operator new(
      static_cast<std::size_t>(total),
      std::align_val_t{static_cast<std::size_t>(align)}));
  auto* header = new (buf) TaskHeader{fn, offset, align};
  if (cpyfn != nullptr)
    cpyfn(buf + offset, data);
  else
    std::memcpy(buf + offset, data, static_cast<std::size_t>(arg_size));
  __tsan_release(&task_tag);
  void* arg = header;
  real(task_trampoline, &arg, nullptr, static_cast<long>(sizeof(void*)),
       static_cast<long>(alignof(void*)), if_clause, flags, depend, priority,
       detach);
  // The block is freed by run_task in whichever thread executes the task
  // (possibly this one, synchronously, for undeferred tasks).
}

}  // extern "C"

#endif  // __SANITIZE_THREAD__
