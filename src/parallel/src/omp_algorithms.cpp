#include "csg/parallel/omp_algorithms.hpp"

#include <algorithm>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg::parallel {

#if defined(CSG_TSAN_GOMP_BRIDGE)
namespace detail {
void tsan_gomp_bridge_anchor();
}
// Forces tsan_gomp_bridge.o out of the archive so its GOMP_* interposers
// are bound instead of libgomp's uninstrumented ones (see that TU).
[[maybe_unused]] static void (*const force_tsan_bridge)() =
    &detail::tsan_gomp_bridge_anchor;
#endif

namespace detail {

/// Scalar Alg. 1 forward recursion over one pole (see
/// core/src/hierarchize.cpp's PoleTransform; duplicated here in the
/// parallel TU with identical arithmetic so results stay bit-identical).
struct PoleForward {
  real_t* data;
  const flat_index_t* offs;
  flat_index_t prefix;
  flat_index_t stride;
  flat_index_t suffix;
  level_t budget;

  void run(level_t lev, flat_index_t c, real_t left, real_t right) const {
    const flat_index_t pos =
        offs[lev] + ((prefix << lev) + c) * stride + suffix;
    const real_t cur = data[pos];
    if (lev < budget) {
      run(lev + 1, 2 * c, left, cur);
      run(lev + 1, 2 * c + 1, cur, right);
    }
    data[pos] = cur - (left + right) / 2;
  }
};

}  // namespace detail

namespace {

bool advance_index(const LevelVector& l, IndexVector& i) {
  for (dim_t t = l.size(); t-- > 0;) {
    i[t] += 2;
    if (i[t] < (index1d_t{1} << (l[t] + 1))) return true;
    i[t] = 1;
  }
  return false;
}

real_t parent_value(const CompactStorage& storage, const LevelVector& l,
                    const IndexVector& i, dim_t t, bool right) {
  const flat_index_t p = parent_flat_index(storage.grid(), l, i, t, right);
  return p == kBoundaryParent ? real_t{0} : storage[p];
}

/// Process one subspace of level group j for the hierarchization (sign -1)
/// or the inverse transform (sign +1) along dimension t.
void transform_subspace(CompactStorage& storage, const LevelVector& l,
                        flat_index_t base, dim_t t, real_t sign) {
  if (l[t] == 0) return;  // both parents on the boundary
  IndexVector i(l.size(), 1);
  flat_index_t pos = base;
  do {
    const real_t v1 = parent_value(storage, l, i, t, false);
    const real_t v2 = parent_value(storage, l, i, t, true);
    storage[pos] += sign * (v1 + v2) / 2;
    ++pos;
  } while (advance_index(l, i));
}

}  // namespace

void omp_hierarchize(CompactStorage& storage, int num_threads) {
  CSG_EXPECTS(num_threads >= 1);
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = 0; t < d; ++t) {
    for (level_t j = n; j-- > 1;) {
      const auto subspaces =
          static_cast<std::int64_t>(grid.subspaces_in_group(j));
      const flat_index_t base = grid.group_offset(j);
      const flat_index_t span = grid.points_per_subspace(j);
      // Static decomposition over subspaces; the implicit barrier at the end
      // of the parallel region is the per-group barrier of Sec. 5.3.
#pragma omp parallel for schedule(static) num_threads(num_threads)
      for (std::int64_t k = 0; k < subspaces; ++k) {
        const LevelVector l = unrank_subspace(
            d, j, static_cast<std::uint64_t>(k), grid.binmat());
        transform_subspace(storage, l, base + span * k, t, real_t{-1});
      }
    }
  }
}

void omp_dehierarchize(CompactStorage& storage, int num_threads) {
  CSG_EXPECTS(num_threads >= 1);
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = d; t-- > 0;) {
    for (level_t j = 1; j < n; ++j) {
      const auto subspaces =
          static_cast<std::int64_t>(grid.subspaces_in_group(j));
      const flat_index_t base = grid.group_offset(j);
      const flat_index_t span = grid.points_per_subspace(j);
#pragma omp parallel for schedule(static) num_threads(num_threads)
      for (std::int64_t k = 0; k < subspaces; ++k) {
        const LevelVector l = unrank_subspace(
            d, j, static_cast<std::uint64_t>(k), grid.binmat());
        transform_subspace(storage, l, base + span * k, t, real_t{1});
      }
    }
  }
}

void omp_hierarchize_poles(CompactStorage& storage, int num_threads) {
  CSG_EXPECTS(num_threads >= 1);
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = 0; t < d; ++t) {
    // Collect this dimension's pole-root subspaces (l[t] == 0), then let
    // threads take them statically. Implicit barrier between dimensions.
    std::vector<LevelVector> roots;
    for (level_t j = 0; j < n; ++j)
      for (const LevelVector& l : LevelRange(d, j))
        if (l[t] == 0) roots.push_back(l);
    const auto count = static_cast<std::int64_t>(roots.size());
#pragma omp parallel num_threads(num_threads)
    {
      std::vector<flat_index_t> offs(n);
#pragma omp for schedule(static)
      for (std::int64_t r = 0; r < count; ++r) {
        const LevelVector& l = roots[static_cast<std::size_t>(r)];
        const auto budget = static_cast<level_t>(n - 1 - l.l1_norm());
        LevelVector lt = l;
        for (level_t lev = 0; lev <= budget; ++lev) {
          lt[t] = lev;
          offs[lev] = grid.subspace_offset(lt);
        }
        flat_index_t prefix_count = 1, stride = 1;
        for (dim_t s = 0; s < t; ++s) prefix_count <<= l[s];
        for (dim_t s = t + 1; s < d; ++s) stride <<= l[s];
        detail::PoleForward pole{storage.data(), offs.data(), 0, stride, 0,
                                 budget};
        for (flat_index_t a = 0; a < prefix_count; ++a) {
          pole.prefix = a;
          for (flat_index_t b = 0; b < stride; ++b) {
            pole.suffix = b;
            pole.run(0, 0, 0, 0);
          }
        }
      }
    }
  }
}

std::vector<real_t> omp_evaluate_many(const CompactStorage& storage,
                                      std::span<const CoordVector> points,
                                      int num_threads) {
  CSG_EXPECTS(num_threads >= 1);
  // Fetch the plan once outside the region; per-point evaluate() would
  // take the plan-cache lock from every thread on every call.
  const auto plan = EvaluationPlan::shared(storage.grid());
  const std::span<const real_t> coeffs(storage.data(),
                                       storage.values().size());
  std::vector<real_t> out(points.size());
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::size_t p = 0; p < points.size(); ++p)
    out[p] = evaluate_span(*plan, coeffs, points[p]);
  return out;
}

std::vector<real_t> omp_evaluate_many_blocked(
    const CompactStorage& storage, std::span<const CoordVector> points,
    std::size_t block_size, int num_threads) {
  const auto plan = EvaluationPlan::shared(storage.grid());
  const std::span<const real_t> coeffs(storage.data(),
                                       storage.values().size());
  return omp_evaluate_many_blocked(*plan, coeffs, points, block_size,
                                   num_threads);
}

std::vector<real_t> omp_evaluate_many_blocked(
    const EvaluationPlan& plan, std::span<const real_t> coeffs,
    std::span<const CoordVector> points, std::size_t block_size,
    int num_threads) {
  CSG_EXPECTS(num_threads >= 1);
  CSG_EXPECTS(block_size >= 1);
  std::vector<real_t> out(points.size(), 0);
  const auto num_blocks = static_cast<std::int64_t>(
      (points.size() + block_size - 1) / block_size);
  // One iteration per point block; blocks write disjoint out ranges, so
  // the reduction is barrier-free and results are bit-identical for any
  // thread count (each point always sums subspaces in enumeration order).
  // evaluate_blocked_into transposes each block into the calling thread's
  // persistent PointBlock arena and runs the SoA kernel on it; OpenMP keeps
  // pool threads (and their thread-locals) alive across regions, so a
  // steady batch stream performs no per-batch point-layout allocation.
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const std::size_t b0 = static_cast<std::size_t>(b) * block_size;
    const std::size_t b1 = std::min(b0 + block_size, points.size());
    evaluate_blocked_into(plan, coeffs, points.subspan(b0, b1 - b0),
                          block_size, std::span<real_t>(out).subspan(b0, b1 - b0));
  }
  return out;
}

}  // namespace csg::parallel
