// OpenMP parallelization of the sparse grid operations (paper Sec. 6.2).
//
// The compact structure uses the same static decomposition as the GPU
// implementation (Sec. 5.3): within one level group the subspaces are
// distributed statically over threads, and groups are processed in
// descending |l|_1 order with a barrier in between — here the implicit
// barrier at the end of each `omp parallel for`, on the GPU one kernel
// launch per group. Evaluation is embarrassingly parallel over the set of
// evaluation points.
//
// The baseline storages are parallelized the way the paper parallelized the
// original recursive algorithms: OpenMP tasks over the 1d hierarchization
// poles (Sec. 6.2 "the tasking concept was applied"). Poles are disjoint
// point sets, and the storages' structure is frozen after sampling (all
// keys pre-inserted), so concurrent value writes touch distinct nodes.
//
// This layer deliberately carries no thread-safety capability annotations
// (csg/core/thread_annotations.hpp): it holds no mutexes. Its correctness
// argument is structural — disjoint index ranges plus OpenMP's implicit
// barriers — which Clang's capability analysis cannot model. The runtime
// TSan lane (CSG_SANITIZE=thread, with the GOMP bridge) is the checker for
// this layer; the annotation lane covers the lock-based serving stack.
#pragma once

#include <omp.h>

#include <span>
#include <vector>

#include "csg/baselines/generic_algorithms.hpp"
#include "csg/core/compact_storage.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"

namespace csg::parallel {

/// Parallel iterative hierarchization on the compact structure. Barrier per
/// level group; subspaces within a group are independent because a point's
/// dimension-t parents always live in a strictly lower group.
void omp_hierarchize(CompactStorage& storage, int num_threads);

/// Parallel inverse transform (ascending groups, same decomposition).
void omp_dehierarchize(CompactStorage& storage, int num_threads);

/// Parallel pole-based hierarchization: within one dimension the 1d poles
/// are fully independent (each carries its own Alg. 1 recursion), so the
/// only barrier is between dimensions — even less synchronization than the
/// per-level-group scheme, on top of the pole transform's gp2idx-free
/// inner loop (see hierarchize_poles).
void omp_hierarchize_poles(CompactStorage& storage, int num_threads);

/// Parallel evaluation at many points on the compact structure.
std::vector<real_t> omp_evaluate_many(const CompactStorage& storage,
                                      std::span<const CoordVector> points,
                                      int num_threads);

/// Parallel cache-blocked evaluation (Sec. 4.3 blocking + Fig. 11b style
/// threading): the point set is cut into blocks, threads take whole blocks
/// with a static schedule, and every thread accumulates into the disjoint
/// `out` range of its own blocks — no reduction, no barrier until the
/// implicit one at region end. The EvaluationPlan for (d, n) is fetched
/// once and shared read-only by all threads. Each block runs through the
/// SoA kernel (evaluate_block_soa): every OpenMP pool thread transposes
/// into its own thread-local PointBlock arena, which persists across
/// parallel regions, so steady-state batches allocate nothing.
std::vector<real_t> omp_evaluate_many_blocked(
    const CompactStorage& storage, std::span<const CoordVector> points,
    std::size_t block_size, int num_threads);

/// Plan-held variant of the parallel blocked evaluation: callers that pin
/// their plan (the serve::GridRegistry, anything holding a shared plan
/// across batches) bypass the shared plan cache entirely, so a bounded
/// cache evicting their shape cannot force a rebuild per batch.
std::vector<real_t> omp_evaluate_many_blocked(
    const EvaluationPlan& plan, std::span<const real_t> coeffs,
    std::span<const CoordVector> points, std::size_t block_size,
    int num_threads);

/// Parallel recursive hierarchization over any storage: one task per pole,
/// barrier between dimensions. Requires the storage to be fully populated
/// (sampled) so that no set() changes container structure.
template <baselines::GridStorage S>
void omp_hierarchize_recursive(S& storage, int num_threads) {
  const RegularSparseGrid& grid = storage.grid();
  for (dim_t t = 0; t < grid.dim(); ++t) {
    // Collect the poles of dimension t first, then process them as tasks —
    // the dynamic decomposition the paper attributes part of the baselines'
    // scalability loss to.
    struct Pole {
      LevelVector l;
      IndexVector i;
      level_t budget;
    };
    std::vector<Pole> poles;
    baselines::detail::for_each_pole(
        grid, t, [&](LevelVector& l, IndexVector& i, level_t budget) {
          poles.push_back({l, i, budget});
        });
#pragma omp parallel num_threads(num_threads)
#pragma omp single
    {
      for (std::size_t p = 0; p < poles.size(); ++p) {
#pragma omp task firstprivate(p)
        {
          Pole pole = poles[p];
          baselines::detail::hierarchize1d_rec(storage, pole.l, pole.i, t, 0,
                                               1, pole.budget, real_t{0},
                                               real_t{0});
        }
      }
    }
  }
}

/// Parallel evaluation over any storage (get-only, embarrassingly parallel).
template <baselines::GridStorage S>
std::vector<real_t> omp_evaluate_many_recursive(
    const S& storage, std::span<const CoordVector> points, int num_threads) {
  std::vector<real_t> out(points.size());
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::size_t p = 0; p < points.size(); ++p)
    out[p] = baselines::evaluate_recursive(storage, points[p]);
  return out;
}

}  // namespace csg::parallel
