#include "csg/combination/combination_grid.hpp"

#include <omp.h>

#include <cmath>

#include "csg/core/binomial_table.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/hierarchize.hpp"

#if defined(CSG_TSAN_GOMP_BRIDGE)
namespace csg::parallel::detail {
void tsan_gomp_bridge_anchor();
}
#endif

namespace csg::combination {

#if defined(CSG_TSAN_GOMP_BRIDGE)
// Same anchor trick as omp_algorithms.cpp: this TU's schedule(dynamic)
// loops call the GOMP_loop_nonmonotonic_dynamic_* entry points, so the
// bridge object must be in the link even when the binary never touches
// csg_parallel symbols (e.g. test_combination).
[[maybe_unused]] static void (*const force_tsan_bridge)() =
    &parallel::detail::tsan_gomp_bridge_anchor;
#endif

ComponentGrid::ComponentGrid(LevelVector level) : level_(level) {
  CSG_EXPECTS(!level.empty());
  std::size_t total = 1;
  for (dim_t t = 0; t < level.size(); ++t) {
    total *= points_in_dim(t);
    CSG_EXPECTS(total < (std::size_t{1} << 40) && "component grid too large");
  }
  values_.assign(total, real_t{0});
}

std::size_t ComponentGrid::flat(const DimVector<std::size_t>& k) const {
  CSG_ASSERT(k.size() == dim());
  std::size_t idx = 0;
  for (dim_t t = 0; t < dim(); ++t) {
    CSG_ASSERT(k[t] >= 1 && k[t] <= points_in_dim(t));
    idx = idx * points_in_dim(t) + (k[t] - 1);
  }
  return idx;
}

CoordVector ComponentGrid::coordinates(const DimVector<std::size_t>& k) const {
  CoordVector x(dim());
  for (dim_t t = 0; t < dim(); ++t)
    x[t] = std::ldexp(static_cast<real_t>(k[t]),
                      -static_cast<int>(level_[t] + 1));
  return x;
}

void ComponentGrid::sample(
    const std::function<real_t(const CoordVector&)>& f) {
  DimVector<std::size_t> k(dim(), 1);
  for (std::size_t idx = 0;; ++idx) {
    values_[idx] = f(coordinates(k));
    dim_t t = dim();
    bool done = true;
    while (t-- > 0) {
      if (++k[t] <= points_in_dim(t)) {
        done = false;
        break;
      }
      k[t] = 1;
    }
    if (done) return;
  }
}

real_t ComponentGrid::interpolate(const CoordVector& x) const {
  CSG_EXPECTS(x.size() == dim());
  // Multilinear interpolation with zero boundary: per dimension find the
  // cell and the two weights; accumulate over the 2^d corners, skipping
  // boundary corners (value 0).
  DimVector<std::size_t> base(dim());   // left grid index (0 = boundary)
  CoordVector weight_right(dim());
  for (dim_t t = 0; t < dim(); ++t) {
    const real_t scaled = std::ldexp(x[t], static_cast<int>(level_[t] + 1));
    CSG_EXPECTS(x[t] >= 0 && x[t] <= 1);
    const auto cells = static_cast<real_t>(std::size_t{2} << level_[t]);
    const real_t clamped = std::min(scaled, cells);  // x == 1 edge
    auto cell = static_cast<std::size_t>(clamped);
    if (cell == static_cast<std::size_t>(cells)) --cell;
    base[t] = cell;  // grid point index of the left corner; 0 is boundary
    weight_right[t] = clamped - static_cast<real_t>(cell);
  }
  real_t result = 0;
  // Corner enumeration: bit c of mask selects right corner in dimension c.
  for (std::uint32_t mask = 0; mask < (std::uint32_t{1} << dim()); ++mask) {
    real_t w = 1;
    DimVector<std::size_t> k(dim());
    bool on_boundary = false;
    for (dim_t t = 0; t < dim(); ++t) {
      const bool right = (mask >> t) & 1;
      w *= right ? weight_right[t] : (1 - weight_right[t]);
      const std::size_t idx = base[t] + (right ? 1 : 0);
      if (idx == 0 || idx > points_in_dim(t)) {
        on_boundary = true;  // zero-boundary corner contributes nothing
        break;
      }
      k[t] = idx;
    }
    if (!on_boundary && w != 0) result += w * at(k);
  }
  return result;
}

CombinationGrid::CombinationGrid(dim_t d, level_t n) : d_(d), n_(n) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  CSG_EXPECTS(n >= 1 && n <= kMaxLevel);
  const BinomialTable binmat(d - 1 + n);
  // Diagonals q = 0 .. min(d-1, n-1): level sum n-1-q, coefficient
  // (-1)^q C(d-1, q).
  for (level_t q = 0; q < d_ && q < n_; ++q) {
    const double coeff = (q % 2 == 0 ? 1.0 : -1.0) *
                         static_cast<double>(binmat(d - 1, q));
    for (const LevelVector& l : LevelRange(d, n - 1 - q))
      components_.push_back({ComponentGrid(l), coeff});
  }
}

std::size_t CombinationGrid::total_points() const {
  std::size_t total = 0;
  for (const WeightedComponent& c : components_) total += c.grid.num_points();
  return total;
}

std::size_t CombinationGrid::memory_bytes() const {
  std::size_t total = 0;
  for (const WeightedComponent& c : components_)
    total += c.grid.memory_bytes();
  return total;
}

void CombinationGrid::sample(
    const std::function<real_t(const CoordVector&)>& f, int num_threads) {
  CSG_EXPECTS(num_threads >= 1);
  const auto count = static_cast<std::int64_t>(components_.size());
#pragma omp parallel for schedule(dynamic) num_threads(num_threads)
  for (std::int64_t c = 0; c < count; ++c)
    components_[static_cast<std::size_t>(c)].grid.sample(f);
}

real_t CombinationGrid::evaluate(const CoordVector& x) const {
  real_t result = 0;
  for (const WeightedComponent& c : components_)
    result += static_cast<real_t>(c.coefficient) * c.grid.interpolate(x);
  return result;
}

std::vector<real_t> CombinationGrid::evaluate_many(
    std::span<const CoordVector> points, int num_threads) const {
  CSG_EXPECTS(num_threads >= 1);
  std::vector<real_t> out(points.size());
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (std::size_t p = 0; p < points.size(); ++p)
    out[p] = evaluate(points[p]);
  return out;
}

CompactStorage to_compact(const CombinationGrid& combi) {
  CompactStorage storage(combi.dim(), combi.level());
  // Every sparse grid point lies on the q=0 diagonal's component that
  // dominates its level vector; rather than search, evaluate the
  // combination at the point (exact: the combination interpolates nodal
  // values at every sparse grid point).
  storage.sample(
      [&](const CoordVector& x) { return combi.evaluate(x); });
  hierarchize(storage);
  return storage;
}

}  // namespace csg::combination
