// The combination technique (paper Sec. 7, ref. [16] Griebel 1992): the
// classical way sparse grid methods were parallelized before direct GPU
// implementations. The sparse grid interpolant is written as a signed
// superposition of interpolants on small anisotropic FULL grids,
//
//   f_s = sum_{q=0}^{d-1} (-1)^q C(d-1, q) sum_{|l|_1 = n-1-q} f_l
//
// (0-based level vectors l; f_l the multilinear interpolant on the full
// tensor grid of level l). Every component grid is regular, so each f_l
// vectorizes trivially and the component grids are embarrassingly
// parallel — at the cost the paper points out: "grid points and
// corresponding function values have to be replicated across multiple
// full grids. Thus, higher memory requirements have to be met."
//
// For pure interpolation the technique is EXACT: the combination equals
// the direct sparse grid interpolant. The test suite exploits that as a
// cross-validation of both implementations, and the benchmark quantifies
// the replication overhead against the compact structure.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/core/dim_vector.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg::combination {

/// One anisotropic full (tensor-product) grid of the combination: level
/// vector l gives 2^{l_t+1} - 1 interior points per dimension t, zero
/// boundary, nodal values in row-major order.
class ComponentGrid {
 public:
  explicit ComponentGrid(LevelVector level);

  const LevelVector& level() const { return level_; }
  dim_t dim() const { return level_.size(); }
  std::size_t num_points() const { return values_.size(); }
  std::size_t points_in_dim(dim_t t) const {
    return (std::size_t{2} << level_[t]) - 1;
  }

  /// Row-major flat index of the multi-index k (1-based, k_t in
  /// [1, 2^{l_t+1} - 1]).
  std::size_t flat(const DimVector<std::size_t>& k) const;

  real_t& at(const DimVector<std::size_t>& k) { return values_[flat(k)]; }
  real_t at(const DimVector<std::size_t>& k) const { return values_[flat(k)]; }

  CoordVector coordinates(const DimVector<std::size_t>& k) const;

  /// Fill with f at every grid point.
  void sample(const std::function<real_t(const CoordVector&)>& f);

  /// Multilinear interpolation at x in [0,1]^d (zero boundary).
  real_t interpolate(const CoordVector& x) const;

  std::size_t memory_bytes() const {
    return values_.capacity() * sizeof(real_t) + sizeof(*this);
  }

  const std::vector<real_t>& values() const { return values_; }
  std::vector<real_t>& values() { return values_; }

 private:
  LevelVector level_;
  std::vector<real_t> values_;
};

/// A component grid together with its combination coefficient
/// (-1)^q C(d-1, q).
struct WeightedComponent {
  ComponentGrid grid;
  double coefficient;
};

/// The full combination-technique representation of a regular sparse grid
/// of dimension d and level n.
class CombinationGrid {
 public:
  CombinationGrid(dim_t d, level_t n);

  dim_t dim() const { return d_; }
  level_t level() const { return n_; }

  const std::vector<WeightedComponent>& components() const {
    return components_;
  }
  std::vector<WeightedComponent>& components() { return components_; }

  /// Total nodal values stored across all component grids — the
  /// replication overhead vs the sparse grid's N.
  std::size_t total_points() const;
  std::size_t memory_bytes() const;

  /// Sample f on every component grid. `num_threads` > 1 parallelizes
  /// trivially over components (the technique's selling point).
  void sample(const std::function<real_t(const CoordVector&)>& f,
              int num_threads = 1);

  /// The combined interpolant at x: sum of coefficient * component
  /// interpolation.
  real_t evaluate(const CoordVector& x) const;

  /// Evaluate at many points, optionally parallel over the points.
  std::vector<real_t> evaluate_many(std::span<const CoordVector> points,
                                    int num_threads = 1) const;

 private:
  dim_t d_;
  level_t n_;
  std::vector<WeightedComponent> components_;
};

/// Convert a combination representation into the compact sparse grid
/// representation: gather nodal values at the sparse grid points (every
/// sparse grid point lies on at least one component grid) and hierarchize.
CompactStorage to_compact(const CombinationGrid& combi);

}  // namespace csg::combination
