// NATIVE recursive algorithms on the prefix tree — Alg. 1/2 as the paper's
// original implementation ran them: descending child pointers instead of
// re-walking from the root per access.
//
// Key structural fact: within one node, the heap-ordered slot array places
// all slots of levels 0..b in its first 2^{b+1}-1 entries, and a node
// reached by spending levels along the way has exactly the budget-b prefix
// of its (larger-budget) ancestors' shape. The 1d hierarchization along a
// trie dimension therefore updates whole SUBTREES pairwise: subtree(l,i)
// -= (subtree(left parent) + subtree(right parent)) / 2 over the common
// (smaller) budget prefix — a handful of contiguous array sweeps at the
// leaf dimension, which is exactly the locality Sec. 6.1 credits the trie
// with.
#pragma once

#include <functional>

#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/grid_point.hpp"

namespace csg::baselines {

namespace detail_trie {

using Node = PrefixTreeStorage::Node;

inline level_t level_of_slot(std::size_t slot) {
  level_t l = 0;
  while ((std::size_t{2} << l) - 1 <= slot) ++l;
  return l;
}

/// cur -= (a + b)/2 (sign=-1) or cur += (a + b)/2 (sign=+1), pairwise over
/// the suffix points of cur's budget. a / b may be null (domain boundary:
/// zero subtree).
inline void combine(Node* cur, const Node* a, const Node* b, dim_t depth,
                    dim_t dims, level_t budget, real_t sign) {
  const std::size_t span = (std::size_t{2} << budget) - 1;
  if (depth + 1 == dims) {
    for (std::size_t k = 0; k < span; ++k) {
      const real_t va = a != nullptr ? a->values[k] : real_t{0};
      const real_t vb = b != nullptr ? b->values[k] : real_t{0};
      cur->values[k] += sign * (va + vb) / 2;
    }
    return;
  }
  for (std::size_t k = 0; k < span; ++k) {
    combine(cur->children[k], a != nullptr ? a->children[k] : nullptr,
            b != nullptr ? b->children[k] : nullptr, depth + 1, dims,
            budget - level_of_slot(k), sign);
  }
}

/// Alg. 1 along a NON-LEAF trie dimension: recurse to the children first
/// (they consume the still-nodal parent subtrees passed down as left /
/// right), then update the whole subtree pairwise.
inline void hierarchize1d(Node* node, dim_t depth, dim_t dims, level_t budget,
                          level_t lev, index1d_t idx, const Node* left,
                          const Node* right) {
  CSG_ASSERT(depth + 1 < dims);
  const std::size_t k = PrefixTreeStorage::slot(lev, idx);
  Node* cur_child = node->children[k];
  if (lev < budget) {
    hierarchize1d(node, depth, dims, budget, lev + 1, 2 * idx - 1, left,
                  cur_child);
    hierarchize1d(node, depth, dims, budget, lev + 1, 2 * idx + 1, cur_child,
                  right);
  }
  combine(cur_child, left, right, depth + 1, dims, budget - lev, real_t{-1});
}

/// Alg. 1 along the LAST dimension: pure in-array recursion (the
/// cache-friendly pole the paper highlights).
inline void transform1d_leaf(Node* node, level_t budget, level_t lev,
                             index1d_t idx, real_t left, real_t right,
                             bool inverse) {
  const std::size_t k = PrefixTreeStorage::slot(lev, idx);
  if (inverse) {
    // Top-down: restore this point first, then its children read it.
    node->values[k] += (left + right) / 2;
    const real_t cur = node->values[k];
    if (lev < budget) {
      transform1d_leaf(node, budget, lev + 1, 2 * idx - 1, left, cur, true);
      transform1d_leaf(node, budget, lev + 1, 2 * idx + 1, cur, right, true);
    }
  } else {
    const real_t cur = node->values[k];
    if (lev < budget) {
      transform1d_leaf(node, budget, lev + 1, 2 * idx - 1, left, cur, false);
      transform1d_leaf(node, budget, lev + 1, 2 * idx + 1, cur, right, false);
    }
    node->values[k] -= (left + right) / 2;
  }
}

/// Inverse along a non-leaf dimension: update top-down.
inline void dehierarchize1d(Node* node, dim_t depth, dim_t dims,
                            level_t budget, level_t lev, index1d_t idx,
                            const Node* left, const Node* right) {
  const std::size_t k = PrefixTreeStorage::slot(lev, idx);
  Node* cur_child = node->children[k];
  combine(cur_child, left, right, depth + 1, dims, budget - lev, real_t{1});
  if (lev < budget) {
    dehierarchize1d(node, depth, dims, budget, lev + 1, 2 * idx - 1, left,
                    cur_child);
    dehierarchize1d(node, depth, dims, budget, lev + 1, 2 * idx + 1,
                    cur_child, right);
  }
}

/// Apply the dimension-t transform below every depth-t prefix node.
inline void for_each_prefix(Node* node, dim_t depth, dim_t target,
                            dim_t dims, level_t budget,
                            const std::function<void(Node*, level_t)>& op) {
  if (depth == target) {
    op(node, budget);
    return;
  }
  const std::size_t span = (std::size_t{2} << budget) - 1;
  for (std::size_t k = 0; k < span; ++k)
    for_each_prefix(node->children[k], depth + 1, target, dims,
                    budget - level_of_slot(k), op);
}

}  // namespace detail_trie

/// Alg. 2 on the trie: descend only the slots whose supports contain x.
inline real_t evaluate_native(const PrefixTreeStorage& storage,
                              const CoordVector& x) {
  const RegularSparseGrid& grid = storage.grid();
  CSG_EXPECTS(x.size() == grid.dim());
  const dim_t dims = grid.dim();
  auto rec = [&](auto&& self, const detail_trie::Node* node, dim_t depth,
                 level_t budget, real_t prod) -> real_t {
    real_t res = 0;
    for (level_t lev = 0; lev <= budget; ++lev) {
      const index1d_t idx = support_index_1d(lev, x[depth]);
      const real_t b = hat_basis_1d(lev, idx, x[depth]);
      if (b == 0) break;  // finer levels vanish at this coordinate too
      const std::size_t k = PrefixTreeStorage::slot(lev, idx);
      if (depth + 1 == dims)
        res += node->values[k] * prod * b;
      else
        res += self(self, node->children[k], depth + 1, budget - lev,
                    prod * b);
    }
    return res;
  };
  return rec(rec, storage.root(), 0, grid.level() - 1, real_t{1});
}

/// Alg. 1 on the trie, all dimensions.
inline void hierarchize_native(PrefixTreeStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t dims = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = 0; t < dims; ++t) {
    detail_trie::for_each_prefix(
        storage.root(), 0, t, dims, n - 1,
        [&](detail_trie::Node* node, level_t budget) {
          if (t + 1 == dims) {
            detail_trie::transform1d_leaf(node, budget, 0, 1, 0, 0,
                                          /*inverse=*/false);
          } else {
            detail_trie::hierarchize1d(node, t, dims, budget, 0, 1, nullptr,
                                       nullptr);
          }
        });
  }
}

/// Inverse transform on the trie.
inline void dehierarchize_native(PrefixTreeStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t dims = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = dims; t-- > 0;) {
    detail_trie::for_each_prefix(
        storage.root(), 0, t, dims, n - 1,
        [&](detail_trie::Node* node, level_t budget) {
          if (t + 1 == dims) {
            detail_trie::transform1d_leaf(node, budget, 0, 1, 0, 0,
                                          /*inverse=*/true);
          } else {
            detail_trie::dehierarchize1d(node, t, dims, budget, 0, 1, nullptr,
                                         nullptr);
          }
        });
  }
}

}  // namespace csg::baselines
