// PrefixTreeStorage: the pointer-based trie of Fig. 4.
//
// Dimensions are consumed in fixed order; a node at depth t stores the
// one-dimensional binary tree over (l_t, i_t) as a heap-ordered array — slot
// 2^l - 1 + (i-1)/2 for the point (l, i) — whose entries point to the
// subtree for dimension t+1. The array for a node with remaining level
// budget r covers levels 0..r (2^{r+1}-1 slots), because a regular sparse
// grid admits l_t <= r = (n-1) - sum of levels already spent. At the last
// dimension the array holds the coefficients themselves, which is what
// gives the trie its good evaluation locality (paper Sec. 6.1): all
// coefficients of a 1d pole along the last dimension are contiguous.
//
// Access is O(d) time with O(d) non-sequential references (one pointer hop
// per dimension) — the Table 1 row for "Prefix tree".
#pragma once

#include <vector>

#include "csg/baselines/memory_meter.hpp"
#include "csg/core/regular_grid.hpp"

namespace csg::baselines {

class PrefixTreeStorage {
 public:
  explicit PrefixTreeStorage(RegularSparseGrid grid)
      : grid_(std::move(grid)) {
    root_ = build_node(0, grid_.level() - 1);
  }
  PrefixTreeStorage(dim_t d, level_t n)
      : PrefixTreeStorage(RegularSparseGrid(d, n)) {}

  PrefixTreeStorage(const PrefixTreeStorage&) = delete;
  PrefixTreeStorage& operator=(const PrefixTreeStorage&) = delete;
  PrefixTreeStorage(PrefixTreeStorage&& other) noexcept
      : grid_(std::move(other.grid_)), meter_(other.meter_),
        root_(other.root_) {
    other.root_ = nullptr;
  }
  PrefixTreeStorage& operator=(PrefixTreeStorage&&) = delete;

  ~PrefixTreeStorage() {
    if (root_ != nullptr) destroy_node(root_, 0);
  }

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const Node* node = root_;
    const dim_t last = grid_.dim() - 1;
    for (dim_t t = 0; t < last; ++t) node = node->children[slot(l[t], i[t])];
    return node->values[slot(l[last], i[last])];
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    Node* node = root_;
    const dim_t last = grid_.dim() - 1;
    for (dim_t t = 0; t < last; ++t) node = node->children[slot(l[t], i[t])];
    node->values[slot(l[last], i[last])] = v;
  }

  /// Access with an observation hook: `touch(address, bytes)` fires for
  /// every node the walk visits plus the final slot — this is how the cache
  /// simulator (src/memsim) sees the trie's exact address stream.
  template <typename Touch>
  real_t get_traced(const LevelVector& l, const IndexVector& i,
                    Touch&& touch) const {
    const Node* node = root_;
    const dim_t last = grid_.dim() - 1;
    for (dim_t t = 0; t < last; ++t) {
      touch(reinterpret_cast<std::uint64_t>(node), sizeof(Node));
      const Node* const* slot_ptr = node->children.data() + slot(l[t], i[t]);
      touch(reinterpret_cast<std::uint64_t>(slot_ptr), sizeof(Node*));
      node = *slot_ptr;
    }
    touch(reinterpret_cast<std::uint64_t>(node), sizeof(Node));
    const real_t* value_ptr = node->values.data() + slot(l[last], i[last]);
    touch(reinterpret_cast<std::uint64_t>(value_ptr), sizeof(real_t));
    return *value_ptr;
  }

  template <typename Touch>
  void set_traced(const LevelVector& l, const IndexVector& i, real_t v,
                  Touch&& touch) {
    Node* node = root_;
    const dim_t last = grid_.dim() - 1;
    for (dim_t t = 0; t < last; ++t) {
      touch(reinterpret_cast<std::uint64_t>(node), sizeof(Node));
      Node** slot_ptr = node->children.data() + slot(l[t], i[t]);
      touch(reinterpret_cast<std::uint64_t>(slot_ptr), sizeof(Node*));
      node = *slot_ptr;
    }
    touch(reinterpret_cast<std::uint64_t>(node), sizeof(Node));
    real_t* value_ptr = node->values.data() + slot(l[last], i[last]);
    touch(reinterpret_cast<std::uint64_t>(value_ptr), sizeof(real_t));
    *value_ptr = v;
  }

  std::size_t memory_bytes() const { return meter_.current_bytes(); }
  std::size_t node_count() const { return node_count_; }
  static const char* name() { return "prefix_tree"; }

  /// Heap-ordered slot of the 1d point (l, i) within a node's array.
  static std::size_t slot(level_t l, index1d_t i) {
    return (std::size_t{1} << l) - 1 + static_cast<std::size_t>((i - 1) >> 1);
  }

 public:
  /// Trie node: inner nodes hold child pointers in heap-slot order, the
  /// last dimension holds the coefficients. Public so the NATIVE recursive
  /// algorithms (prefix_tree_native.hpp) can walk the structure the way
  /// the paper's original implementation did.
  struct Node {
    std::vector<Node*, MeteredAllocator<Node*>> children;
    std::vector<real_t, MeteredAllocator<real_t>> values;

    explicit Node(MemoryMeter* meter)
        : children(MeteredAllocator<Node*>(meter)),
          values(MeteredAllocator<real_t>(meter)) {}
  };

  Node* root() { return root_; }
  const Node* root() const { return root_; }

 private:

  Node* build_node(dim_t t, level_t budget) {
    meter_.charge(sizeof(Node));
    ++node_count_;
    // csg-lint: allow-next(raw-alloc) -- baseline deliberately models per-node heap allocation (paper Table 1)
    Node* node = new Node(&meter_);
    const std::size_t slots = (std::size_t{2} << budget) - 1;
    if (t + 1 == grid_.dim()) {
      node->values.assign(slots, real_t{0});
    } else {
      node->children.assign(slots, nullptr);
      for (level_t l = 0; l <= budget; ++l)
        for (index1d_t i = 1; i < (index1d_t{2} << l); i += 2)
          node->children[slot(l, i)] = build_node(t + 1, budget - l);
    }
    return node;
  }

  void destroy_node(Node* node, dim_t t) {
    if (t + 1 < grid_.dim())
      for (Node* child : node->children) destroy_node(child, t + 1);
    meter_.refund(sizeof(Node));
    // csg-lint: allow-next(raw-alloc) -- matches the deliberate per-node new above
    delete node;
  }

  RegularSparseGrid grid_;
  MemoryMeter meter_;
  std::size_t node_count_ = 0;
  Node* root_ = nullptr;
};

}  // namespace csg::baselines
