// The GridStorage concept: the uniform key-value surface shared by the
// compact data structure and all four baseline storages of Table 1, so the
// generic (storage-agnostic) hierarchization and evaluation algorithms can
// run unchanged over each of them — which is exactly the Fig. 9 experiment.
#pragma once

#include <concepts>

#include "csg/core/regular_grid.hpp"
#include "csg/core/types.hpp"

namespace csg::baselines {

template <typename S>
concept GridStorage = requires(S s, const S cs, const LevelVector& l,
                               const IndexVector& i, real_t v) {
  { cs.grid() } -> std::convertible_to<const RegularSparseGrid&>;
  { cs.get(l, i) } -> std::convertible_to<real_t>;
  s.set(l, i, v);
  { cs.memory_bytes() } -> std::convertible_to<std::size_t>;
  { S::name() } -> std::convertible_to<const char*>;
};

}  // namespace csg::baselines
