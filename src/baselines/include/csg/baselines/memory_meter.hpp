// Byte-exact memory accounting for the Fig. 8 comparison.
//
// Every baseline container runs on MeteredAllocator, which charges each
// allocation to a MemoryMeter: the requested bytes plus a fixed per-chunk
// heap overhead (glibc malloc stores an 8-byte header and rounds the chunk
// to 16 bytes; 16 is a fair flat approximation). Because the allocator is
// rebound to the container's real node type, the count includes the node
// bookkeeping (rb-tree colour/parent/child pointers, hash-bucket next
// pointers) that dominates the footprint of map/hash storages — exactly the
// "internal management" overhead the paper's Sec. 1 calls out.
#pragma once

#include <cstddef>
#include <new>

#include "csg/core/types.hpp"

namespace csg::baselines {

/// Flat per-allocation overhead charged on top of requested bytes.
inline constexpr std::size_t kHeapChunkOverhead = 16;

class MemoryMeter {
 public:
  void charge(std::size_t bytes) {
    current_ += bytes + kHeapChunkOverhead;
    if (current_ > peak_) peak_ = current_;
    ++allocations_;
  }
  void refund(std::size_t bytes) { current_ -= bytes + kHeapChunkOverhead; }

  /// Live bytes (payload + node overhead + chunk overhead).
  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }
  std::size_t allocation_count() const { return allocations_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::size_t allocations_ = 0;
};

template <typename T>
class MeteredAllocator {
 public:
  using value_type = T;

  explicit MeteredAllocator(MemoryMeter* meter) : meter_(meter) {
    CSG_EXPECTS(meter != nullptr);
  }

  template <typename U>
  MeteredAllocator(const MeteredAllocator<U>& other) : meter_(other.meter()) {}

  T* allocate(std::size_t n) {
    meter_->charge(n * sizeof(T));
    // csg-lint: allow-next(raw-alloc) -- the metering allocator IS the funnel all heap traffic is routed through
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    meter_->refund(n * sizeof(T));
    // csg-lint: allow-next(raw-alloc) -- release side of the metering funnel
    ::operator delete(p);
  }

  MemoryMeter* meter() const { return meter_; }

  friend bool operator==(const MeteredAllocator& a, const MeteredAllocator& b) {
    return a.meter_ == b.meter_;
  }

 private:
  MemoryMeter* meter_;
};

}  // namespace csg::baselines
