// Storage-agnostic sparse grid algorithms.
//
// Two families, templated over the GridStorage concept:
//
//  * the paper's ORIGINAL recursive algorithms (Sec. 3, Alg. 1/2): depth-
//    first 1d hierarchization along poles with parent values passed down the
//    recursion, and evaluation recursing over both levels and dimensions.
//    These are the "usual" algorithms the paper starts from and the ones it
//    parallelized with OpenMP tasking on the CPU baselines.
//
//  * key-value transcriptions of the ITERATIVE algorithms (Sec. 4.3,
//    Alg. 6/7) that address points through get/set instead of raw flat
//    positions, so they run over map/hash/tree storages too.
//
// Running both families over all five storages and checking they agree is
// one of the main integration tests; timing them per storage is Fig. 9.
#pragma once

#include <span>
#include <vector>

#include "csg/baselines/storage_concept.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg::baselines {

/// Visit every grid point (level group ascending, subspaces in enumeration
/// order, points row-major) — the storage-agnostic way to initialize nodal
/// values.
template <typename Visitor>
void for_each_point(const RegularSparseGrid& grid, Visitor&& visit) {
  const dim_t d = grid.dim();
  for (level_t j = 0; j < grid.level(); ++j) {
    for (const LevelVector& l : LevelRange(d, j)) {
      IndexVector i(d, 1);
      for (;;) {
        visit(l, i);
        dim_t t = d;
        bool carry = true;
        while (t-- > 0) {
          i[t] += 2;
          if (i[t] < (index1d_t{1} << (l[t] + 1))) {
            carry = false;
            break;
          }
          i[t] = 1;
        }
        if (carry) break;
      }
    }
  }
}

/// Fill a storage with nodal values of f at every grid point.
template <GridStorage S, typename F>
void sample(S& storage, F&& f) {
  for_each_point(storage.grid(), [&](const LevelVector& l,
                                     const IndexVector& i) {
    storage.set(l, i, f(coordinates(GridPoint{l, i})));
  });
}

// ---------------------------------------------------------------------------
// Iterative algorithms through the key-value interface (Alg. 6/7).
// ---------------------------------------------------------------------------

namespace detail {

template <GridStorage S>
real_t parent_value_kv(const S& storage, LevelVector l, IndexVector i, dim_t t,
                       bool right) {
  const Parent1d p =
      right ? right_parent_1d(l[t], i[t]) : left_parent_1d(l[t], i[t]);
  if (p.is_boundary) return 0;
  l[t] = p.level;
  i[t] = p.index;
  return storage.get(l, i);
}

}  // namespace detail

/// Alg. 6 through get/set: per dimension, level groups descending.
template <GridStorage S>
void hierarchize_iterative(S& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  for (dim_t t = 0; t < d; ++t) {
    for (level_t j = grid.level(); j-- > 1;) {
      for (const LevelVector& l : LevelRange(d, j)) {
        if (l[t] == 0) continue;
        IndexVector i(d, 1);
        for (;;) {
          const real_t v1 = detail::parent_value_kv(storage, l, i, t, false);
          const real_t v2 = detail::parent_value_kv(storage, l, i, t, true);
          storage.set(l, i, storage.get(l, i) - (v1 + v2) / 2);
          dim_t s = d;
          bool carry = true;
          while (s-- > 0) {
            i[s] += 2;
            if (i[s] < (index1d_t{1} << (l[s] + 1))) {
              carry = false;
              break;
            }
            i[s] = 1;
          }
          if (carry) break;
        }
      }
    }
  }
}

/// Inverse of hierarchize_iterative: level groups ascending, adding.
template <GridStorage S>
void dehierarchize_iterative(S& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  for (dim_t t = d; t-- > 0;) {
    for (level_t j = 1; j < grid.level(); ++j) {
      for (const LevelVector& l : LevelRange(d, j)) {
        if (l[t] == 0) continue;
        IndexVector i(d, 1);
        for (;;) {
          const real_t v1 = detail::parent_value_kv(storage, l, i, t, false);
          const real_t v2 = detail::parent_value_kv(storage, l, i, t, true);
          storage.set(l, i, storage.get(l, i) + (v1 + v2) / 2);
          dim_t s = d;
          bool carry = true;
          while (s-- > 0) {
            i[s] += 2;
            if (i[s] < (index1d_t{1} << (l[s] + 1))) {
              carry = false;
              break;
            }
            i[s] = 1;
          }
          if (carry) break;
        }
      }
    }
  }
}

/// Alg. 7 through get: walk all subspaces with the next iterator, one basis
/// per subspace.
template <GridStorage S>
real_t evaluate_iterative(const S& storage, const CoordVector& x) {
  const RegularSparseGrid& grid = storage.grid();
  CSG_EXPECTS(x.size() == grid.dim());
  const dim_t d = grid.dim();
  real_t res = 0;
  for (level_t j = 0; j < grid.level(); ++j) {
    for (const LevelVector& l : LevelRange(d, j)) {
      real_t prod = 1;
      IndexVector i(d);
      for (dim_t t = 0; t < d; ++t) {
        i[t] = support_index_1d(l[t], x[t]);
        prod *= hat_basis_1d(l[t], i[t], x[t]);
        if (prod == 0) break;
      }
      if (prod != 0) res += prod * storage.get(l, i);
    }
  }
  return res;
}

/// Cache-blocked Alg. 7 over any storage (the Sec. 4.3 optimization): the
/// subspace loop is hoisted outside a block of evaluation points so one
/// subspace's coefficients are reused across the whole block while hot.
/// This is what keeps evaluation off the memory wall in Fig. 11b.
template <GridStorage S>
std::vector<real_t> evaluate_many_blocked_iterative(
    const S& storage, std::span<const CoordVector> points,
    std::size_t block_size = 64) {
  CSG_EXPECTS(block_size >= 1);
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  std::vector<real_t> out(points.size(), 0);
  IndexVector i(d);
  for (std::size_t b0 = 0; b0 < points.size(); b0 += block_size) {
    const std::size_t b1 = std::min(b0 + block_size, points.size());
    for (level_t j = 0; j < grid.level(); ++j) {
      for (const LevelVector& l : LevelRange(d, j)) {
        for (std::size_t p = b0; p < b1; ++p) {
          real_t prod = 1;
          for (dim_t t = 0; t < d; ++t) {
            i[t] = support_index_1d(l[t], points[p][t]);
            prod *= hat_basis_1d(l[t], i[t], points[p][t]);
            if (prod == 0) break;
          }
          if (prod != 0) out[p] += prod * storage.get(l, i);
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// The original recursive algorithms (Sec. 3, Alg. 1/2).
// ---------------------------------------------------------------------------

namespace detail {

/// Alg. 1: 1d hierarchization along dimension t of the pole fixed by
/// (l, i) outside t. Parent values ride down the recursion as leftVal /
/// rightVal, so no parent lookups happen at all. `budget` is the maximum
/// 0-based level dimension t may take on this pole.
template <GridStorage S>
void hierarchize1d_rec(S& storage, LevelVector& l, IndexVector& i, dim_t t,
                       level_t lev, index1d_t idx, level_t budget,
                       real_t left_val, real_t right_val) {
  l[t] = lev;
  i[t] = idx;
  const real_t val = storage.get(l, i);
  if (lev < budget) {
    hierarchize1d_rec(storage, l, i, t, lev + 1, 2 * idx - 1, budget, left_val,
                      val);
    hierarchize1d_rec(storage, l, i, t, lev + 1, 2 * idx + 1, budget, val,
                      right_val);
    l[t] = lev;  // restore after the recursion mutated the scratch vectors
    i[t] = idx;
  }
  storage.set(l, i, val - (left_val + right_val) / 2);
}

/// Inverse of hierarchize1d_rec: top-down, nodal parent values are already
/// restored when the children consume them.
template <GridStorage S>
void dehierarchize1d_rec(S& storage, LevelVector& l, IndexVector& i, dim_t t,
                         level_t lev, index1d_t idx, level_t budget,
                         real_t left_val, real_t right_val) {
  l[t] = lev;
  i[t] = idx;
  const real_t val =
      storage.get(l, i) + (left_val + right_val) / 2;
  storage.set(l, i, val);
  if (lev < budget) {
    dehierarchize1d_rec(storage, l, i, t, lev + 1, 2 * idx - 1, budget,
                        left_val, val);
    dehierarchize1d_rec(storage, l, i, t, lev + 1, 2 * idx + 1, budget, val,
                        right_val);
  }
}

/// Invoke op(l, i, budget_for_dim_t) for every pole along dimension t: all
/// points with l_t = 0, i_t = 1 (the paper's "starting from all grid points
/// with l_d = 1 and i_d = 1", Sec. 3.1, in its 1-based notation).
template <typename Op>
void for_each_pole(const RegularSparseGrid& grid, dim_t t, Op&& op) {
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  for (level_t j = 0; j < n; ++j) {
    for (const LevelVector& l : LevelRange(d, j)) {
      if (l[t] != 0) continue;
      const auto budget = static_cast<level_t>(n - 1 - l.l1_norm());
      LevelVector lc = l;
      IndexVector i(d, 1);
      for (;;) {
        op(lc, i, budget);
        dim_t s = d;
        bool carry = true;
        while (s-- > 0) {
          if (s == t) continue;  // dimension t stays at the pole root
          i[s] += 2;
          if (i[s] < (index1d_t{1} << (l[s] + 1))) {
            carry = false;
            break;
          }
          i[s] = 1;
        }
        if (carry) break;
      }
    }
  }
}

}  // namespace detail

/// The original recursive hierarchization: for each dimension, run Alg. 1
/// along every pole, with zero boundary values seeding the recursion.
template <GridStorage S>
void hierarchize_recursive(S& storage) {
  const RegularSparseGrid& grid = storage.grid();
  for (dim_t t = 0; t < grid.dim(); ++t) {
    detail::for_each_pole(grid, t, [&](LevelVector& l, IndexVector& i,
                                       level_t budget) {
      detail::hierarchize1d_rec(storage, l, i, t, 0, 1, budget, real_t{0},
                                real_t{0});
    });
  }
}

/// Recursive inverse transform (decompression counterpart of Alg. 1).
template <GridStorage S>
void dehierarchize_recursive(S& storage) {
  const RegularSparseGrid& grid = storage.grid();
  for (dim_t t = grid.dim(); t-- > 0;) {
    detail::for_each_pole(grid, t, [&](LevelVector& l, IndexVector& i,
                                       level_t budget) {
      detail::dehierarchize1d_rec(storage, l, i, t, 0, 1, budget, real_t{0},
                                  real_t{0});
    });
  }
}

namespace detail {

/// Alg. 2 extended to d dimensions: recurse over dimensions, and within a
/// dimension descend only the 1d tree path whose supports contain x (the
/// line-4 optimization of Alg. 2). Each surviving leaf contributes one
/// basis-product times its coefficient.
template <GridStorage S>
real_t evaluate_rec(const S& storage, LevelVector& l, IndexVector& i,
                    const CoordVector& x, dim_t t, level_t budget,
                    real_t prod) {
  if (t == x.size()) return prod * storage.get(l, i);
  real_t res = 0;
  for (level_t lev = 0; lev <= budget; ++lev) {
    const index1d_t idx = support_index_1d(lev, x[t]);
    const real_t b = hat_basis_1d(lev, idx, x[t]);
    if (b == 0) break;  // x sits on this level's grid line: deeper levels
                        // of this branch contribute nothing either
    l[t] = lev;
    i[t] = idx;
    res += evaluate_rec(storage, l, i, x, t + 1, budget - lev, prod * b);
  }
  l[t] = 0;
  i[t] = 1;
  return res;
}

}  // namespace detail

/// The original recursive evaluation (Alg. 2 with recursion over dimensions).
template <GridStorage S>
real_t evaluate_recursive(const S& storage, const CoordVector& x) {
  const RegularSparseGrid& grid = storage.grid();
  CSG_EXPECTS(x.size() == grid.dim());
  LevelVector l(grid.dim(), 0);
  IndexVector i(grid.dim(), 1);
  return detail::evaluate_rec(storage, l, i, x, 0, grid.level() - 1,
                              real_t{1});
}

/// Convenience sweep used by benchmarks.
template <GridStorage S>
std::vector<real_t> evaluate_many_recursive(const S& storage,
                                            std::span<const CoordVector> pts) {
  std::vector<real_t> out(pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    out[p] = evaluate_recursive(storage, pts[p]);
  return out;
}

}  // namespace csg::baselines
