// The three STL-based baselines of Table 1 / Fig. 8 / Fig. 9:
//
//  * StdMapStorage      — "Standard STL map": an std::map keyed by the full
//    (l, i) multi-index, stored on the heap so that the key really costs
//    O(d) memory per point, as the paper describes.
//  * EnhancedMapStorage — "Enhanced STL map": an std::map keyed by the
//    gp2idx integer, i.e. the bijection is used for key compression but the
//    container still pays rb-tree nodes and O(log N) traversals.
//  * EnhancedHashStorage — "Enhanced STL hashtable": an std::unordered_map
//    keyed by gp2idx; O(d + ...) expected access but bucket + node overhead
//    and no locality.
//
// All three share the byte-metered allocator, so memory_bytes() reports the
// true container footprint including node bookkeeping.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "csg/baselines/memory_meter.hpp"
#include "csg/core/regular_grid.hpp"

namespace csg::baselines {

/// Heap-allocated packed multi-index key: one uint64 per dimension holding
/// (level << 58) | index. Lexicographic comparison of the packed words
/// orders points by (l, i) pairs dimension-wise.
using PackedPointKey = std::vector<std::uint64_t>;

inline PackedPointKey pack_point_key(const LevelVector& l,
                                     const IndexVector& i) {
  PackedPointKey key(l.size());
  for (dim_t t = 0; t < l.size(); ++t) {
    CSG_ASSERT(i[t] < (index1d_t{1} << 58));
    key[t] = (static_cast<std::uint64_t>(l[t]) << 58) | i[t];
  }
  return key;
}

class StdMapStorage {
 public:
  explicit StdMapStorage(RegularSparseGrid grid)
      : grid_(std::move(grid)), map_(Compare{}, Alloc{&meter_}) {}
  StdMapStorage(dim_t d, level_t n) : StdMapStorage(RegularSparseGrid(d, n)) {}

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const auto it = map_.find(pack_point_key(l, i));
    return it == map_.end() ? real_t{0} : it->second;
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    map_.insert_or_assign(pack_point_key(l, i), v);
  }

  std::size_t size() const { return map_.size(); }

  /// Container bytes: rb-tree nodes plus the per-point heap key (d words),
  /// which is what makes this structure's footprint linear in d.
  std::size_t memory_bytes() const {
    return meter_.current_bytes() +
           map_.size() * (grid_.dim() * sizeof(std::uint64_t) +
                          kHeapChunkOverhead);
  }

  static const char* name() { return "std_map"; }

 private:
  using Compare = std::less<PackedPointKey>;
  using Alloc =
      MeteredAllocator<std::pair<const PackedPointKey, real_t>>;

  RegularSparseGrid grid_;
  MemoryMeter meter_;
  std::map<PackedPointKey, real_t, Compare, Alloc> map_;
};

class EnhancedMapStorage {
 public:
  explicit EnhancedMapStorage(RegularSparseGrid grid)
      : grid_(std::move(grid)), map_(Compare{}, Alloc{&meter_}) {}
  EnhancedMapStorage(dim_t d, level_t n)
      : EnhancedMapStorage(RegularSparseGrid(d, n)) {}

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const auto it = map_.find(grid_.gp2idx(l, i));
    return it == map_.end() ? real_t{0} : it->second;
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    map_.insert_or_assign(grid_.gp2idx(l, i), v);
  }

  std::size_t size() const { return map_.size(); }
  std::size_t memory_bytes() const { return meter_.current_bytes(); }
  static const char* name() { return "enhanced_map"; }

 private:
  using Compare = std::less<flat_index_t>;
  using Alloc = MeteredAllocator<std::pair<const flat_index_t, real_t>>;

  RegularSparseGrid grid_;
  MemoryMeter meter_;
  std::map<flat_index_t, real_t, Compare, Alloc> map_;
};

class EnhancedHashStorage {
 public:
  explicit EnhancedHashStorage(RegularSparseGrid grid)
      : grid_(std::move(grid)),
        map_(/*bucket_count=*/16, Hash{}, Eq{}, Alloc{&meter_}) {}
  EnhancedHashStorage(dim_t d, level_t n)
      : EnhancedHashStorage(RegularSparseGrid(d, n)) {}

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const auto it = map_.find(grid_.gp2idx(l, i));
    return it == map_.end() ? real_t{0} : it->second;
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    map_.insert_or_assign(grid_.gp2idx(l, i), v);
  }

  std::size_t size() const { return map_.size(); }
  std::size_t memory_bytes() const { return meter_.current_bytes(); }
  static const char* name() { return "enhanced_hash"; }

 private:
  using Hash = std::hash<flat_index_t>;
  using Eq = std::equal_to<flat_index_t>;
  using Alloc = MeteredAllocator<std::pair<const flat_index_t, real_t>>;

  RegularSparseGrid grid_;
  MemoryMeter meter_;
  std::unordered_map<flat_index_t, real_t, Hash, Eq, Alloc> map_;
};

}  // namespace csg::baselines
