#include "csg/serve/service.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "csg/parallel/omp_algorithms.hpp"

namespace csg::serve {

namespace {

/// Atomic max for the max_batch counter.
void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t candidate) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !slot.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

bool valid_point(const GridEntry& entry, const CoordVector& point) {
  if (point.size() != entry.storage.dim()) return false;
  for (dim_t t = 0; t < point.size(); ++t)
    if (!(point[t] >= 0 && point[t] <= 1)) return false;  // also rejects NaN
  return true;
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kInvalid:
      return "invalid";
    case Status::kNotFound:
      return "not_found";
    case Status::kRejected:
      return "rejected";
    case Status::kTimeout:
      return "timeout";
    case Status::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

EvalService::EvalService(const GridRegistry& registry, ServiceOptions opts)
    : registry_(registry), opts_(opts) {
  CSG_EXPECTS(opts_.queue_capacity >= 1);
  CSG_EXPECTS(opts_.max_batch_points >= 1);
  CSG_EXPECTS(opts_.workers >= 1);
  CSG_EXPECTS(opts_.eval_threads >= 1);
  CSG_EXPECTS(opts_.block_size >= 1);
  if (!opts_.start_paused) start();
}

EvalService::~EvalService() { stop(true); }

std::future<EvalResult> EvalService::immediate(Status status) {
  std::promise<EvalResult> p;
  p.set_value({status, 0});
  return p.get_future();
}

std::future<EvalResult> EvalService::submit(const std::string& name,
                                            CoordVector point) {
  const auto deadline =
      opts_.default_deadline.count() > 0
          ? Clock::now() + opts_.default_deadline
          : kNoDeadline;
  return submit(name, std::move(point), deadline);
}

std::future<EvalResult> EvalService::submit(const std::string& name,
                                            CoordVector point,
                                            Clock::time_point deadline) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const GridEntry> entry = registry_.find(name);
  if (entry == nullptr) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    return immediate(Status::kNotFound);
  }
  if (!valid_point(*entry, point)) {
    counters_.invalid.fetch_add(1, std::memory_order_relaxed);
    return immediate(Status::kInvalid);
  }
  // Admission control: a request that is already past its deadline can only
  // ever complete as kTimeout, so shed it here instead of letting it occupy
  // queue capacity until a batch forms. shed_at_admission is a subset of
  // timed_out — the total deadline-failure count is unchanged.
  if (deadline != kNoDeadline && deadline <= Clock::now()) {
    counters_.shed_at_admission.fetch_add(1, std::memory_order_relaxed);
    counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
    return immediate(Status::kTimeout);
  }

  Request req;
  req.entry = std::move(entry);
  req.point = std::move(point);
  req.deadline = deadline;
  std::future<EvalResult> future = req.promise.get_future();

  UniqueMutexLock lock(mutex_);
  if (stopped_ || stopping_) {
    lock.unlock();
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    req.promise.set_value({Status::kRejected, 0});
    return future;
  }
  if (queue_.size() >= opts_.queue_capacity) {
    if (opts_.overflow == OverflowPolicy::kReject) {
      lock.unlock();
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kRejected, 0});
      return future;
    }
    // Backpressure: hold the producer until space frees, the service
    // stops, or the request's own deadline expires while waiting. The wait
    // loops are spelled out so the guarded reads in the conditions are
    // checked against the held lock (see CondVar in thread_annotations.hpp).
    if (req.deadline == kNoDeadline) {
      while (!submit_unblocked()) not_full_.wait(lock);
    } else {
      bool unblocked = true;
      while (!(unblocked = submit_unblocked())) {
        if (not_full_.wait_until(lock, req.deadline) ==
            std::cv_status::timeout) {
          unblocked = submit_unblocked();
          break;
        }
      }
      if (!unblocked) {
        lock.unlock();
        counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
        req.promise.set_value({Status::kTimeout, 0});
        return future;
      }
    }
    if (stopping_ || stopped_) {
      lock.unlock();
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kRejected, 0});
      return future;
    }
  }
  queue_.push_back(std::move(req));
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

void EvalService::start() {
  MutexLock lock(mutex_);
  if (stopped_ || !workers_.empty()) return;
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

void EvalService::stop(bool drain) {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    if (!drain) {
      // Fail everything still queued; nothing new can arrive once
      // stopping_ is visible.
      for (Request& req : queue_) {
        counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
        req.promise.set_value({Status::kCancelled, 0});
      }
      queue_.clear();
    }
    stopping_ = true;
    workers.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : workers) t.join();
  MutexLock lock(mutex_);
  // A paused service that was never started drains here: without workers
  // the queued requests would otherwise leak as broken promises.
  for (Request& req : queue_) {
    if (drain) {
      counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kCancelled, 0});
    }
  }
  queue_.clear();
  stopping_ = false;
  stopped_ = true;
}

bool EvalService::running() const {
  MutexLock lock(mutex_);
  return !workers_.empty() && !stopped_;
}

std::size_t EvalService::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

ServiceStats EvalService::stats() const {
  ServiceStats s;
  s.submitted = counters_.submitted.load(std::memory_order_relaxed);
  s.completed = counters_.completed.load(std::memory_order_relaxed);
  s.rejected = counters_.rejected.load(std::memory_order_relaxed);
  s.timed_out = counters_.timed_out.load(std::memory_order_relaxed);
  s.shed_at_admission =
      counters_.shed_at_admission.load(std::memory_order_relaxed);
  s.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  s.not_found = counters_.not_found.load(std::memory_order_relaxed);
  s.invalid = counters_.invalid.load(std::memory_order_relaxed);
  s.batches_formed = counters_.batches_formed.load(std::memory_order_relaxed);
  s.batched_points = counters_.batched_points.load(std::memory_order_relaxed);
  s.max_batch = counters_.max_batch.load(std::memory_order_relaxed);
  return s;
}

void EvalService::collect_locked(const GridEntry* entry,
                                 std::vector<Request>& batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < opts_.max_batch_points;) {
    if (it->entry.get() == entry) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void EvalService::worker_loop() {
  for (;;) {
    UniqueMutexLock lock(mutex_);
    while (!stopping_ && queue_.empty()) not_empty_.wait(lock);
    if (queue_.empty()) return;  // stopping and fully drained

    // Seed the batch with the oldest request's grid, then sweep the queue
    // for that grid's other requests.
    const GridEntry* entry = queue_.front().entry.get();
    std::vector<Request> batch;
    batch.reserve(std::min(opts_.max_batch_points, queue_.size()));
    collect_locked(entry, batch);

    if (batch.size() < opts_.max_batch_points &&
        opts_.batch_window.count() > 0 && !stopping_) {
      // Partial batch: wait (bounded) for stragglers of the same grid.
      const auto until = Clock::now() + opts_.batch_window;
      while (batch.size() < opts_.max_batch_points && !stopping_) {
        if (not_empty_.wait_until(lock, until) == std::cv_status::timeout) {
          collect_locked(entry, batch);
          break;
        }
        collect_locked(entry, batch);
      }
    }
    lock.unlock();
    // Space freed for blocked producers regardless of batch outcome.
    not_full_.notify_all();
    run_batch(std::move(batch));
  }
}

void EvalService::run_batch(std::vector<Request> batch) {
  const auto now = Clock::now();
  // Deadlines are checked once, at batch formation: an expired request is
  // completed as kTimeout and never pays for evaluation.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (req.deadline < now) {
      counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kTimeout, 0});
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;

  const GridEntry& entry = *live.front().entry;
  std::vector<CoordVector> points;
  points.reserve(live.size());
  for (const Request& req : live) points.push_back(req.point);

  const std::span<const real_t> coeffs(entry.storage.data(),
                                       entry.storage.values().size());
  const std::vector<real_t> values = parallel::omp_evaluate_many_blocked(
      *entry.plan, coeffs, points, opts_.block_size, opts_.eval_threads);

  for (std::size_t k = 0; k < live.size(); ++k) {
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    live[k].promise.set_value({Status::kOk, values[k]});
  }
  counters_.batches_formed.fetch_add(1, std::memory_order_relaxed);
  counters_.batched_points.fetch_add(live.size(), std::memory_order_relaxed);
  update_max(counters_.max_batch, live.size());
}

}  // namespace csg::serve
