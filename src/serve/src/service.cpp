#include "csg/serve/service.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "csg/parallel/omp_algorithms.hpp"

namespace csg::serve {

namespace {

/// Atomic max for the max_batch / max_queue_depth counters.
void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t candidate) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !slot.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

bool valid_point(const GridEntry& entry, const CoordVector& point) {
  if (point.size() != entry.storage.dim()) return false;
  for (dim_t t = 0; t < point.size(); ++t)
    if (!(point[t] >= 0 && point[t] <= 1)) return false;  // also rejects NaN
  return true;
}

std::size_t default_shard_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 8);
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kInvalid:
      return "invalid";
    case Status::kNotFound:
      return "not_found";
    case Status::kRejected:
      return "rejected";
    case Status::kTimeout:
      return "timeout";
    case Status::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::uint64_t shard_hash(std::string_view name) {
  // FNV-1a, 64-bit end to end: the offset basis and prime are the
  // standard constants, and the accumulator never narrows, so the same
  // name picks the same shard on every platform.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

EvalService::EvalService(const GridRegistry& registry, ServiceOptions opts)
    : registry_(registry), opts_(opts) {
  CSG_EXPECTS(opts_.queue_capacity >= 1);
  CSG_EXPECTS(opts_.max_batch_points >= 1);
  CSG_EXPECTS(opts_.workers >= 1);
  CSG_EXPECTS(opts_.eval_threads >= 1);
  CSG_EXPECTS(opts_.block_size >= 1);
  const std::size_t count =
      opts_.shard_count > 0 ? opts_.shard_count : default_shard_count();
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s)
    shards_.push_back(std::make_unique<Shard>());
  if (!opts_.start_paused) start();
}

EvalService::~EvalService() { stop(true); }

std::future<EvalResult> EvalService::immediate(Status status) {
  std::promise<EvalResult> p;
  p.set_value({status, 0});
  return p.get_future();
}

std::future<EvalResult> EvalService::submit(const std::string& name,
                                            CoordVector point) {
  const auto deadline =
      opts_.default_deadline.count() > 0
          ? Clock::now() + opts_.default_deadline
          : kNoDeadline;
  return submit(name, std::move(point), deadline);
}

std::future<EvalResult> EvalService::submit(const std::string& name,
                                            CoordVector point,
                                            Clock::time_point deadline) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const GridEntry> entry = registry_.find(name);
  if (entry == nullptr) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    return immediate(Status::kNotFound);
  }
  if (!valid_point(*entry, point)) {
    counters_.invalid.fetch_add(1, std::memory_order_relaxed);
    return immediate(Status::kInvalid);
  }
  // Admission control: a request that is already past its deadline can only
  // ever complete as kTimeout, so shed it here instead of letting it occupy
  // queue capacity until a batch forms. shed_at_admission is a subset of
  // timed_out — the total deadline-failure count is unchanged.
  if (deadline != kNoDeadline && deadline <= Clock::now()) {
    counters_.shed_at_admission.fetch_add(1, std::memory_order_relaxed);
    counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
    return immediate(Status::kTimeout);
  }

  Request req;
  req.entry = std::move(entry);
  req.point = std::move(point);
  req.deadline = deadline;
  std::future<EvalResult> future = req.promise.get_future();

  Shard& shard = *shards_[shard_of(name)];
  shard.submits.fetch_add(1, std::memory_order_relaxed);
  UniqueMutexLock lock(shard.mutex);
  if (shard.stopped || shard.stopping) {
    lock.unlock();
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    shard.rejections.fetch_add(1, std::memory_order_relaxed);
    req.promise.set_value({Status::kRejected, 0});
    return future;
  }
  if (shard.queue.size() >= opts_.queue_capacity) {
    if (opts_.overflow == OverflowPolicy::kReject) {
      lock.unlock();
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      shard.rejections.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kRejected, 0});
      return future;
    }
    // Backpressure: hold the producer until space frees, the service
    // stops, or the request's own deadline expires while waiting. The wait
    // loops are spelled out so the guarded reads in the conditions are
    // checked against the held lock (see CondVar in thread_annotations.hpp).
    if (req.deadline == kNoDeadline) {
      while (!submit_unblocked(shard)) shard.not_full.wait(lock);
    } else {
      bool unblocked = true;
      while (!(unblocked = submit_unblocked(shard))) {
        if (shard.not_full.wait_until(lock, req.deadline) ==
            std::cv_status::timeout) {
          unblocked = submit_unblocked(shard);
          break;
        }
      }
      if (!unblocked) {
        lock.unlock();
        counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
        req.promise.set_value({Status::kTimeout, 0});
        return future;
      }
    }
    if (shard.stopping || shard.stopped) {
      lock.unlock();
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      shard.rejections.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kRejected, 0});
      return future;
    }
  }
  shard.queue.push_back(std::move(req));
  const auto depth = shard.queue.size();
  lock.unlock();
  update_max(shard.max_queue_depth, depth);
  shard.not_empty.notify_one();
  return future;
}

void EvalService::start() {
  for (const auto& sp : shards_) {
    Shard& shard = *sp;
    MutexLock lock(shard.mutex);
    if (shard.stopped || !shard.workers.empty()) continue;
    shard.workers.reserve(static_cast<std::size_t>(opts_.workers));
    for (int w = 0; w < opts_.workers; ++w)
      shard.workers.emplace_back([this, &shard] { worker_loop(shard); });
  }
}

void EvalService::stop(bool drain) {
  // Pass 1: flip every shard to stopping (cancelling queued work when not
  // draining) and collect the worker threads; then join them all outside
  // any lock so shards wind down in parallel.
  std::vector<std::thread> workers;
  for (const auto& sp : shards_) {
    Shard& shard = *sp;
    MutexLock lock(shard.mutex);
    if (shard.stopped) continue;
    if (!drain) {
      // Fail everything still queued; nothing new can arrive once
      // stopping is visible.
      for (Request& req : shard.queue) {
        counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
        req.promise.set_value({Status::kCancelled, 0});
      }
      shard.queue.clear();
    }
    shard.stopping = true;
    for (std::thread& t : shard.workers) workers.push_back(std::move(t));
    shard.workers.clear();
  }
  for (const auto& sp : shards_) {
    sp->not_empty.notify_all();
    sp->not_full.notify_all();
  }
  for (std::thread& t : workers) t.join();
  // Pass 2: a paused service that was never started drains here — without
  // workers the queued requests would otherwise leak as broken promises.
  for (const auto& sp : shards_) {
    Shard& shard = *sp;
    MutexLock lock(shard.mutex);
    if (shard.stopped) continue;
    for (Request& req : shard.queue) {
      if (drain) {
        counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
        req.promise.set_value({Status::kCancelled, 0});
      }
    }
    shard.queue.clear();
    shard.stopping = false;
    shard.stopped = true;
  }
}

bool EvalService::running() const {
  for (const auto& sp : shards_) {
    const Shard& shard = *sp;
    MutexLock lock(shard.mutex);
    if (!shard.workers.empty() && !shard.stopped) return true;
  }
  return false;
}

std::size_t EvalService::pending() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    const Shard& shard = *sp;
    MutexLock lock(shard.mutex);
    total += shard.queue.size();
  }
  return total;
}

ServiceStats EvalService::stats() const {
  ServiceStats s;
  s.submitted = counters_.submitted.load(std::memory_order_relaxed);
  s.completed = counters_.completed.load(std::memory_order_relaxed);
  s.rejected = counters_.rejected.load(std::memory_order_relaxed);
  s.timed_out = counters_.timed_out.load(std::memory_order_relaxed);
  s.shed_at_admission =
      counters_.shed_at_admission.load(std::memory_order_relaxed);
  s.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  s.not_found = counters_.not_found.load(std::memory_order_relaxed);
  s.invalid = counters_.invalid.load(std::memory_order_relaxed);
  s.batches_formed = counters_.batches_formed.load(std::memory_order_relaxed);
  s.batched_points = counters_.batched_points.load(std::memory_order_relaxed);
  s.max_batch = counters_.max_batch.load(std::memory_order_relaxed);
  s.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    ServiceStats::ShardStats sh;
    sh.submits = sp->submits.load(std::memory_order_relaxed);
    sh.rejections = sp->rejections.load(std::memory_order_relaxed);
    sh.max_queue_depth = sp->max_queue_depth.load(std::memory_order_relaxed);
    s.shards.push_back(sh);
  }
  return s;
}

void EvalService::collect_locked(Shard& shard, const GridEntry* entry,
                                 std::vector<Request>& batch) {
  for (auto it = shard.queue.begin();
       it != shard.queue.end() && batch.size() < opts_.max_batch_points;) {
    if (it->entry.get() == entry) {
      batch.push_back(std::move(*it));
      it = shard.queue.erase(it);
    } else {
      ++it;
    }
  }
}

void EvalService::worker_loop(Shard& shard) {
  for (;;) {
    UniqueMutexLock lock(shard.mutex);
    while (!shard.stopping && shard.queue.empty()) shard.not_empty.wait(lock);
    if (shard.queue.empty()) return;  // stopping and fully drained

    // Seed the batch with the oldest request's grid, then sweep the queue
    // for that grid's other requests.
    const GridEntry* entry = shard.queue.front().entry.get();
    std::vector<Request> batch;
    batch.reserve(std::min(opts_.max_batch_points, shard.queue.size()));
    collect_locked(shard, entry, batch);

    if (batch.size() < opts_.max_batch_points &&
        opts_.batch_window.count() > 0 && !shard.stopping) {
      // Partial batch: wait (bounded) for stragglers of the same grid.
      const auto until = Clock::now() + opts_.batch_window;
      while (batch.size() < opts_.max_batch_points && !shard.stopping) {
        if (shard.not_empty.wait_until(lock, until) ==
            std::cv_status::timeout) {
          collect_locked(shard, entry, batch);
          break;
        }
        collect_locked(shard, entry, batch);
      }
    }
    lock.unlock();
    // Space freed for blocked producers regardless of batch outcome.
    shard.not_full.notify_all();
    run_batch(std::move(batch));
  }
}

void EvalService::run_batch(std::vector<Request> batch) {
  const auto now = Clock::now();
  // Deadlines are checked once, at batch formation: an expired request is
  // completed as kTimeout and never pays for evaluation.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (req.deadline < now) {
      counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value({Status::kTimeout, 0});
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;

  const GridEntry& entry = *live.front().entry;
  std::vector<CoordVector> points;
  points.reserve(live.size());
  for (const Request& req : live) points.push_back(req.point);

  const std::span<const real_t> coeffs(entry.storage.data(),
                                       entry.storage.values().size());
  // The coalesced batch runs through the SoA batch kernel (DESIGN.md §14):
  // each evaluating thread transposes its blocks into a thread-local
  // PointBlock arena that outlives the batch, so steady-state serving does
  // zero per-batch point-layout allocation (bench_serve pins this with
  // PointBlock::allocation_count()).
  const std::vector<real_t> values = parallel::omp_evaluate_many_blocked(
      *entry.plan, coeffs, points, opts_.block_size, opts_.eval_threads);

  // Account the batch before fulfilling any promise: a caller that joins
  // the futures and then reads stats() must see this batch counted.
  counters_.batches_formed.fetch_add(1, std::memory_order_relaxed);
  counters_.batched_points.fetch_add(live.size(), std::memory_order_relaxed);
  update_max(counters_.max_batch, live.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    live[k].promise.set_value({Status::kOk, values[k]});
  }
}

}  // namespace csg::serve
