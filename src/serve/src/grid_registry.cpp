#include "csg/serve/grid_registry.hpp"

#include <algorithm>
#include <utility>

namespace csg::serve {

std::shared_ptr<const GridEntry> GridRegistry::add(const std::string& name,
                                                   CompactStorage storage) {
  // Build (and plan) outside the lock: registration of a large grid must
  // not stall concurrent lookups.
  auto entry = std::make_shared<const GridEntry>(name, std::move(storage));
  ExclusiveLock lock(mutex_);
  grids_[name] = entry;
  return entry;
}

std::shared_ptr<const GridEntry> GridRegistry::find(
    const std::string& name) const {
  SharedLock lock(mutex_);
  const auto it = grids_.find(name);
  return it == grids_.end() ? nullptr : it->second;
}

bool GridRegistry::remove(const std::string& name) {
  ExclusiveLock lock(mutex_);
  return grids_.erase(name) > 0;
}

std::size_t GridRegistry::size() const {
  SharedLock lock(mutex_);
  return grids_.size();
}

std::vector<std::string> GridRegistry::names() const {
  std::vector<std::string> out;
  {
    SharedLock lock(mutex_);
    out.reserve(grids_.size());
    for (const auto& [name, entry] : grids_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t GridRegistry::memory_bytes() const {
  SharedLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, entry] : grids_) total += entry->memory_bytes();
  return total;
}

}  // namespace csg::serve
