// EvalService: asynchronous batched evaluation over a GridRegistry — the
// serving layer's core loop.
//
// Point queries arrive one at a time (submit() returns a future); workers
// coalesce queued queries *per grid* into batches and run each batch
// through the plan-based blocked evaluation (Sec. 4.3 blocking,
// parallel::omp_evaluate_many_blocked on the entry's pinned plan).
//
// The service is sharded by grid: shard_hash(name) % shard_count picks a
// shard, and every shard owns its own bounded queue, worker set, batch
// coalescer, overflow policy, and deadline shedding. Independent grids
// therefore make progress independently — a hot grid saturates only its
// shard's queue while the other shards keep serving (the same argument the
// paper's compact layout makes for component grids at the data-structure
// level). All requests for one grid land in one shard, so batching still
// coalesces per grid and single-grid accounting stays exact. The
// lifecycle discipline a production server needs is explicit:
//
//  * bounded submission queues — at most queue_capacity requests wait
//    *per shard*; overflow either rejects immediately (kReject, load
//    shedding) or blocks the producer (kBlock, backpressure),
//  * batching window — a worker that finds fewer than max_batch_points
//    queued for its grid waits up to batch_window for stragglers before
//    evaluating, trading a bounded latency bump for larger batches,
//  * per-request deadlines — a request whose deadline has already expired
//    when submit() runs is shed at admission (kTimeout, never queued,
//    counted in ServiceStats::shed_at_admission); one whose deadline passes
//    while queued completes with Status::kTimeout when its batch forms and
//    is never evaluated; a blocked producer gives up with kTimeout when its
//    deadline expires before queue space frees,
//  * graceful shutdown — stop(drain=true) (and the destructor) lets
//    workers drain every queued request through normal batches;
//    stop(drain=false) fails pending requests with Status::kCancelled.
//
// Results are bit-identical to sequential evaluate(): batching only groups
// points, and the blocked kernel sums subspaces in enumeration order per
// point regardless of batch shape.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "csg/core/thread_annotations.hpp"
#include "csg/serve/grid_registry.hpp"

namespace csg::serve {

enum class Status : std::uint8_t {
  kOk = 0,
  kInvalid,    ///< malformed request (wrong dimension, coordinate not in [0,1])
  kNotFound,   ///< no grid registered under the requested name
  kRejected,   ///< bounded queue full under kReject, or service stopped
  kTimeout,    ///< deadline expired before the request could be evaluated
  kCancelled,  ///< dropped by stop(drain=false)
};

const char* to_string(Status s);

struct EvalResult {
  Status status = Status::kOk;
  real_t value = 0;
};

/// What submit() does when the bounded queue is full.
enum class OverflowPolicy : std::uint8_t {
  kReject,  ///< fail fast with Status::kRejected (load shedding)
  kBlock,   ///< block the producer until space frees (backpressure)
};

/// Stable grid-name → shard mapping: FNV-1a over the name bytes, 64-bit
/// throughout so the mapping is identical across builds and platforms.
/// Public so tests and benchmarks can predict (or construct) placements.
std::uint64_t shard_hash(std::string_view name);

struct ServiceOptions {
  /// Number of independent shards (queue + worker set each). Zero derives
  /// the count from std::thread::hardware_concurrency (clamped to [1, 8]).
  std::size_t shard_count = 0;
  /// Upper bound on queued (not yet batched) requests, per shard.
  std::size_t queue_capacity = 1024;
  /// A batch never holds more points than this.
  std::size_t max_batch_points = 256;
  /// How long a worker waits for a partial batch to fill. Zero: batches
  /// are formed from whatever is queued at pop time.
  std::chrono::microseconds batch_window{200};
  /// Worker threads forming and running batches, per shard.
  int workers = 2;
  /// OpenMP threads inside one batch evaluation (omp_evaluate_many_blocked).
  int eval_threads = 1;
  /// Point block size of the Sec. 4.3 blocked kernel.
  std::size_t block_size = 64;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Applied when submit() is called without an explicit deadline;
  /// zero means "no deadline".
  std::chrono::milliseconds default_deadline{0};
  /// When true the constructor does not launch workers; requests queue up
  /// (or reject once the queue fills) until start(). Deterministic batch
  /// accounting for tests and benchmarks.
  bool start_paused = false;
};

/// Cumulative service counters. Reads are individually atomic; a snapshot
/// taken while requests are in flight may be mid-update across fields.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< evaluated and delivered kOk
  std::uint64_t rejected = 0;    ///< queue-full rejections + post-stop submits
  std::uint64_t timed_out = 0;
  /// Subset of timed_out: requests whose deadline had already expired when
  /// submit() ran, rejected before ever entering the queue (admission
  /// control: dead work is shed at the door, not carried to a batch).
  std::uint64_t shed_at_admission = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t not_found = 0;
  std::uint64_t invalid = 0;
  std::uint64_t batches_formed = 0;  ///< batches with >= 1 evaluated point
  std::uint64_t batched_points = 0;  ///< points evaluated through batches
  std::uint64_t max_batch = 0;       ///< largest batch evaluated

  /// Per-shard counters; `shards.size()` is the configured shard count.
  struct ShardStats {
    std::uint64_t submits = 0;     ///< requests routed to this shard
    std::uint64_t rejections = 0;  ///< queue-full + post-stop rejections here
    std::uint64_t max_queue_depth = 0;  ///< high-water queue occupancy
  };
  std::vector<ShardStats> shards;

  double mean_batch() const {
    return batches_formed == 0
               ? 0.0
               : static_cast<double>(batched_points) /
                     static_cast<double>(batches_formed);
  }
};

class EvalService {
 public:
  using Clock = std::chrono::steady_clock;
  /// No deadline: the request waits as long as the queue does.
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// The registry must outlive the service. Workers launch immediately
  /// unless opts.start_paused.
  explicit EvalService(const GridRegistry& registry, ServiceOptions opts = {});

  /// Drains gracefully (stop(true)).
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Queue one point query against grid `name`. Always returns a future
  /// that will hold a result; failures (unknown grid, malformed point,
  /// rejection, timeout) are delivered through Status, never exceptions.
  std::future<EvalResult> submit(const std::string& name, CoordVector point);
  std::future<EvalResult> submit(const std::string& name, CoordVector point,
                                 Clock::time_point deadline);

  /// Launch the workers (no-op when already running or after stop()).
  void start();

  /// Terminal: drain or cancel queued requests, join the workers. After
  /// stop() every submit() is rejected. Idempotent.
  void stop(bool drain = true);

  bool running() const;

  /// Requests queued and not yet claimed by a batch, summed over shards.
  std::size_t pending() const;

  ServiceStats stats() const;

  const ServiceOptions& options() const { return opts_; }

  /// Number of shards this instance runs (>= 1, fixed at construction).
  std::size_t shard_count() const { return shards_.size(); }

  /// The shard index grid `name` maps to: shard_hash(name) % shard_count().
  std::size_t shard_of(std::string_view name) const {
    return static_cast<std::size_t>(shard_hash(name) %
                                    static_cast<std::uint64_t>(shards_.size()));
  }

 private:
  struct Request {
    std::shared_ptr<const GridEntry> entry;
    CoordVector point;
    Clock::time_point deadline = kNoDeadline;
    std::promise<EvalResult> promise;
  };

  /// One independent slice of the service: its own bounded queue, worker
  /// set, lifecycle flags, and counters. Fixed in number at construction,
  /// so the shards_ vector itself needs no lock.
  struct Shard {
    mutable Mutex mutex;
    CondVar not_empty;
    CondVar not_full;
    std::deque<Request> queue CSG_GUARDED_BY(mutex);
    /// Workers exit once the queue drains.
    bool stopping CSG_GUARDED_BY(mutex) = false;
    /// Terminal: submits reject, start() is a no-op.
    bool stopped CSG_GUARDED_BY(mutex) = false;
    std::vector<std::thread> workers CSG_GUARDED_BY(mutex);

    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> rejections{0};
    std::atomic<std::uint64_t> max_queue_depth{0};
  };

  void worker_loop(Shard& shard);
  /// Move queued requests for `entry` into `batch`, up to max_batch_points
  /// total.
  void collect_locked(Shard& shard, const GridEntry* entry,
                      std::vector<Request>& batch) CSG_REQUIRES(shard.mutex);
  /// True once a blocked producer may stop waiting: space freed, or the
  /// service is shutting down.
  bool submit_unblocked(const Shard& shard) const CSG_REQUIRES(shard.mutex) {
    return shard.stopping || shard.stopped ||
           shard.queue.size() < opts_.queue_capacity;
  }
  void run_batch(std::vector<Request> batch);

  static std::future<EvalResult> immediate(Status status);

  const GridRegistry& registry_;
  const ServiceOptions opts_;

  /// Immutable after construction (the Shard objects inside are not).
  std::vector<std::unique_ptr<Shard>> shards_;

  struct Counters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::atomic<std::uint64_t> shed_at_admission{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> not_found{0};
    std::atomic<std::uint64_t> invalid{0};
    std::atomic<std::uint64_t> batches_formed{0};
    std::atomic<std::uint64_t> batched_points{0};
    std::atomic<std::uint64_t> max_batch{0};
  };
  Counters counters_;
};

}  // namespace csg::serve
