// GridRegistry: the multi-grid front of the serving layer — named
// RegularSparseGrid coefficient sets (CompactStorage) together with their
// pinned EvaluationPlans.
//
// A long-lived server fronts many grids at once (one per field / dataset /
// tenant). The registry owns each grid's coefficients and *pins* the shared
// evaluation plan for its shape: the process-wide plan cache is a bounded
// LRU, so under a workload that touches many (d, n) shapes a served grid's
// plan could otherwise be evicted and rebuilt on every batch. Pinning is
// simply holding the shared_ptr — eviction only releases the cache's
// reference, never the registry's.
//
// Lookups hand out shared_ptr<const GridEntry>: a grid removed (or
// replaced) while requests are in flight stays alive until the last batch
// referencing it completes. Publication of the immutable entry happens
// under the registry lock, so readers never observe a half-built grid.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/core/evaluation_plan.hpp"
#include "csg/core/thread_annotations.hpp"

namespace csg::serve {

/// One served grid: immutable after registration.
struct GridEntry {
  std::string name;
  CompactStorage storage;
  /// The shared plan for storage.grid(), held for the entry's lifetime.
  std::shared_ptr<const EvaluationPlan> plan;

  GridEntry(std::string entry_name, CompactStorage entry_storage)
      : name(std::move(entry_name)),
        storage(std::move(entry_storage)),
        plan(EvaluationPlan::shared(storage.grid())) {}

  /// Live bytes of this entry: coefficient payload + descriptor + the
  /// pinned plan arrays.
  std::size_t memory_bytes() const {
    return storage.memory_bytes() + plan->memory_bytes();
  }
};

class GridRegistry {
 public:
  /// Register `storage` under `name`, replacing any previous grid of that
  /// name (in-flight requests against the old entry finish on it). Returns
  /// the published entry.
  std::shared_ptr<const GridEntry> add(const std::string& name,
                                       CompactStorage storage);

  /// The entry for `name`, or nullptr when unknown.
  std::shared_ptr<const GridEntry> find(const std::string& name) const;

  /// Unregister `name`. Returns false when it was not registered. The
  /// entry's memory is released once the last in-flight reference drops.
  bool remove(const std::string& name);

  std::size_t size() const;

  /// Registered names, sorted (stable output for tools and tests).
  std::vector<std::string> names() const;

  /// Bytes held by the registered grids (coefficients + descriptors +
  /// pinned plans). Counts live entries only: removed or replaced grids
  /// leave this figure immediately, even while in-flight batches still
  /// hold them.
  std::size_t memory_bytes() const;

 private:
  mutable SharedMutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const GridEntry>> grids_
      CSG_GUARDED_BY(mutex_);
};

}  // namespace csg::serve
