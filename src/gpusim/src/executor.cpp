#include "csg/gpusim/executor.hpp"

#include <algorithm>

namespace csg::gpusim {

std::uint32_t ThreadCtx::lane() const { return tid_ % block_->warp_size_; }
std::uint32_t ThreadCtx::block_id() const { return block_->block_id_; }
std::uint32_t ThreadCtx::block_size() const { return block_->block_size_; }

void Block::run_phase(const std::function<void(ThreadCtx&)>& fn,
                      bool master_only) {
  const std::uint32_t active = master_only ? 1 : block_size_;
  std::vector<std::vector<detail::Event>> lanes(block_size_);
  for (std::uint32_t tid = 0; tid < active; ++tid) {
    ThreadCtx ctx(tid, this);
    fn(ctx);
    counters_->shared_accesses += ctx.shared_accesses_;
    counters_->constant_accesses += ctx.constant_accesses_;
    lanes[tid] = std::move(ctx.events_);
  }
  analyze_phase(lanes);
}

void Block::analyze_phase(std::vector<std::vector<detail::Event>>& lanes) {
  const std::uint32_t num_warps =
      (block_size_ + warp_size_ - 1) / warp_size_;
  std::vector<std::uint64_t> segments;
  for (std::uint32_t w = 0; w < num_warps; ++w) {
    const std::uint32_t lo = w * warp_size_;
    const std::uint32_t hi = std::min(lo + warp_size_, block_size_);
    std::size_t max_len = 0;
    for (std::uint32_t t = lo; t < hi; ++t)
      max_len = std::max(max_len, lanes[t].size());
    if (max_len == 0) continue;
    ++counters_->warp_phases;
    // Lockstep replay: the k-th event of every lane shares one issue slot.
    for (std::size_t o = 0; o < max_len; ++o) {
      segments.clear();
      std::uint64_t compute_weight = 0;  // max over lanes in this slot
      std::uint64_t lane_work = 0;       // sum over lanes (SIMD efficiency)
      for (std::uint32_t t = lo; t < hi; ++t) {
        if (o >= lanes[t].size()) continue;
        const detail::Event& e = lanes[t][o];
        if (e.kind == detail::Event::kGlobal) {
          segments.push_back(e.value / transaction_bytes_);
          ++counters_->global_accesses;
          lane_work += 1;
        } else {
          compute_weight = std::max(compute_weight, e.value);
          lane_work += e.value;
        }
      }
      if (!segments.empty()) {
        std::sort(segments.begin(), segments.end());
        const auto unique_end = std::unique(segments.begin(), segments.end());
        for (auto it = segments.begin(); it != unique_end; ++it) {
          const std::uint64_t addr = *it * transaction_bytes_;
          if (caches_ != nullptr && !caches_->l1.empty() &&
              caches_->l1[sm_id_].access(addr)) {
            ++counters_->l1_hit_transactions;
          } else if (caches_ != nullptr && caches_->l2 &&
                     caches_->l2->access(addr)) {
            ++counters_->l2_hit_transactions;
          } else {
            ++counters_->global_transactions;
          }
        }
      }
      // The slot costs the widest compute burst among (possibly diverged)
      // lanes, or one issue if it is a pure memory slot.
      std::uint64_t slot_cost = compute_weight;
      if (!segments.empty() || slot_cost == 0)
        slot_cost = std::max<std::uint64_t>(slot_cost, 1);
      counters_->warp_instructions += slot_cost;
      counters_->thread_instructions += lane_work;
    }
  }
}

KernelTiming Launcher::launch(std::uint32_t num_blocks,
                              std::uint32_t block_size,
                              std::uint64_t shared_bytes_per_block,
                              const std::function<void(Block&)>& body) {
  CSG_EXPECTS(num_blocks >= 1);
  CSG_EXPECTS(block_size >= 1 && block_size <= spec_.max_threads_per_block);
  PerfCounters lc;
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    // Blocks land on SMs round-robin, so each per-SM L1 sees its share.
    Block block(b, block_size, shared_bytes_per_block, spec_.warp_size,
                spec_.mem_transaction_bytes, &lc, &caches_,
                b % spec_.num_sms);
    body(block);
  }
  lc.launched_blocks = num_blocks;
  lc.launched_threads =
      static_cast<std::uint64_t>(num_blocks) * block_size;
  const double occ = spec_.occupancy(block_size, shared_bytes_per_block);
  KernelTiming timing = model_kernel_time(spec_, lc, occ);
  timing.total_ms += spec_.launch_overhead_ms;
  totals_.merge(lc);
  total_ms_ += timing.total_ms;
  occupancy_sum_ += occ;
  ++launch_count_;
  return timing;
}

}  // namespace csg::gpusim
