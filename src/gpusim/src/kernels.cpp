#include "csg/gpusim/kernels.hpp"

#include <algorithm>
#include <bit>

#include "csg/core/binomial_table.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg::gpusim {

namespace {

/// Counted access to binmat under the three placement options of Sec. 5.3.
/// The functional value always comes from the host-side table; the mode
/// decides which events the access generates.
class DeviceBinmat {
 public:
  DeviceBinmat(BinmatMode mode, const ConstantBuffer<std::uint64_t>* cbuf,
               const SharedArray<std::uint64_t>* sbuf,
               const GlobalBuffer<std::uint64_t>* gbuf)
      : mode_(mode), cbuf_(cbuf), sbuf_(sbuf), gbuf_(gbuf) {}

  std::uint64_t operator()(ThreadCtx& th, std::uint32_t a,
                           std::uint32_t b) const {
    switch (mode_) {
      case BinmatMode::kConstantCache:
        return th.ld_const(*cbuf_, BinomialTable::flat_index(a, b));
      case BinmatMode::kSharedMemory:
        return const_cast<SharedArray<std::uint64_t>*>(sbuf_)->read(
            th, BinomialTable::flat_index(a, b));
      case BinmatMode::kGlobalCached:
        // A plain global load: on cache-less Tesla every lookup is a DRAM
        // transaction; on Fermi the table lives in L1 after first touch.
        return th.ld(*const_cast<GlobalBuffer<std::uint64_t>*>(gbuf_),
                     BinomialTable::flat_index(a, b));
      case BinmatMode::kOnTheFly: {
        // Multiplicative evaluation: each factor costs a 64-bit multiply
        // plus a 64-bit integer division, and compute-capability-1.x
        // hardware emulates the latter in dozens of instructions — the
        // source of the ~4x slower hierarchization the paper reports in
        // Sec. 5.3.
        const std::uint32_t k = std::min(b, a - b);
        th.flop(20 * k + 2);
        return binomial_on_the_fly(a, b);
      }
    }
    return 0;  // unreachable
  }

 private:
  BinmatMode mode_;
  const ConstantBuffer<std::uint64_t>* cbuf_;
  const SharedArray<std::uint64_t>* sbuf_;
  const GlobalBuffer<std::uint64_t>* gbuf_;
};

/// Counted device transcription of unrank_subspace (block master work).
LevelVector device_unrank(ThreadCtx& th, const DeviceBinmat& binom, dim_t d,
                          level_t n, std::uint64_t rank) {
  LevelVector l(d, 0);
  level_t remaining = n;
  for (dim_t t = d - 1; t >= 1; --t) {
    level_t k = 0;
    for (;; ++k) {
      const std::uint64_t block = binom(th, t - 1 + remaining - k, t - 1);
      th.flop(1);  // compare + branch
      if (rank < block) break;
      rank -= block;
    }
    l[t] = k;
    remaining -= k;
  }
  l[0] = remaining;
  return l;
}

/// Counted device transcription of gp2idx (Alg. 5): index1 in d flops,
/// index2 with two binmat lookups per dimension, index3 as one constant
/// lookup into the group offset table.
flat_index_t device_gp2idx(ThreadCtx& th, const DeviceBinmat& binom,
                           const ConstantBuffer<flat_index_t>& goff,
                           const LevelVector& l, const IndexVector& i) {
  const dim_t d = l.size();
  flat_index_t index1 = 0;
  // Device transcription keeps the host's accumulator widths: index1 and
  // index2 both take shifts of up to |l|_1 < kMaxLevel < 64 bits (anchor
  // for the csg-lint shift-width rule; see types.hpp).
  static_assert(sizeof(index1) == 8 && kMaxLevel < 64);
  for (dim_t t = 0; t < d; ++t) {
    index1 = (index1 << l[t]) + ((i[t] - 1) >> 1);
    th.flop(3);
  }
  std::uint64_t sum = l[0];
  std::uint64_t index2 = 0;
  static_assert(sizeof(index2) == 8, "index2 takes a << sum with sum < 64");
  for (dim_t t = 1; t < d; ++t) {
    index2 -= binom(th, static_cast<std::uint32_t>(t + sum), t);
    sum += l[t];
    index2 += binom(th, static_cast<std::uint32_t>(t + sum), t);
    th.flop(3);
  }
  index2 <<= sum;
  const flat_index_t index3 =
      th.ld_const(goff, static_cast<std::size_t>(sum));
  return index1 + index2 + index3;
}

/// Shared bytes for the per-thread scratch arrays the paper keeps in
/// shared memory ("private to each thread, have length d", Sec. 5.3).
std::uint64_t scratch_bytes(dim_t d, std::uint32_t block_size,
                            LevelVectorMode mode) {
  const std::uint64_t index_scratch =
      static_cast<std::uint64_t>(block_size) * d * sizeof(std::uint32_t);
  const std::uint64_t level_bytes =
      mode == LevelVectorMode::kBlockShared
          ? static_cast<std::uint64_t>(d) * sizeof(std::uint32_t)
          : static_cast<std::uint64_t>(block_size) * d * sizeof(std::uint32_t);
  return index_scratch + level_bytes;
}

std::uint64_t binmat_shared_bytes(dim_t d, level_t n, BinmatMode mode) {
  if (mode != BinmatMode::kSharedMemory) return 0;
  const std::uint32_t rows = d - 1 + n + 1;
  return static_cast<std::uint64_t>(rows) * (rows + 1) / 2 *
         sizeof(std::uint64_t);
}

}  // namespace

std::uint64_t hierarchize_shared_bytes(dim_t d, level_t n,
                                       const GpuConfig& config) {
  return scratch_bytes(d, config.block_size, config.level_vector) +
         binmat_shared_bytes(d, n, config.binmat);
}

std::uint64_t evaluate_shared_bytes(dim_t d, level_t n,
                                    const GpuConfig& config) {
  const std::uint64_t coords =
      static_cast<std::uint64_t>(config.block_size) * d * sizeof(real_t);
  return coords + scratch_bytes(d, config.block_size, config.level_vector) +
         binmat_shared_bytes(d, n, config.binmat);
}

namespace {

/// Shared body of the transform kernels: hierarchization (descending level
/// groups, subtracting the parent mean) and its inverse (ascending groups,
/// adding it). One kernel launch per (dimension, level group) pair acts as
/// the global barrier of Sec. 5.3.
GpuRunReport run_transform(Launcher& launcher, CompactStorage& storage,
                           const GpuConfig& config, bool inverse) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  launcher.reset();

  GlobalBuffer<real_t> raw(launcher, storage.values());
  GlobalBuffer<std::uint64_t> gbin(launcher, grid.binmat().flat());
  ConstantBuffer<std::uint64_t> cbin(grid.binmat().flat());
  std::vector<flat_index_t> goff_host(n + 1);
  for (level_t j = 0; j <= n; ++j) goff_host[j] = grid.group_offset(j);
  ConstantBuffer<flat_index_t> goff(goff_host);

  const std::uint64_t shared = hierarchize_shared_bytes(d, n, config);
  const std::uint32_t bs = config.block_size;

  for (dim_t td = 0; td < d; ++td) {
    // Hierarchization sweeps dimensions forward over descending groups;
    // the inverse sweeps dimensions backward over ascending groups.
    const dim_t t = inverse ? d - 1 - td : td;
    for (level_t jd = 1; jd < n; ++jd) {
      const level_t j = inverse ? jd : n - jd;
      const auto subspaces =
          static_cast<std::uint32_t>(grid.subspaces_in_group(j));
      const flat_index_t points = grid.points_per_subspace(j);
      launcher.launch(subspaces, bs, shared, [&](Block& blk) {
        SharedArray<std::uint64_t> sbin = blk.alloc_shared<std::uint64_t>(
            config.binmat == BinmatMode::kSharedMemory
                ? grid.binmat().flat().size()
                : 0);
        if (config.binmat == BinmatMode::kSharedMemory) {
          // Cooperative coalesced copy of binmat into shared memory.
          blk.all([&](ThreadCtx& th) {
            for (std::size_t idx = th.tid(); idx < gbin.size();
                 idx += blk.size())
              sbin.write(th, idx, th.ld(gbin, idx));
          });
        }
        const DeviceBinmat binom(config.binmat, &cbin, &sbin, &gbin);
        SharedArray<std::uint32_t> ls = blk.alloc_shared<std::uint32_t>(d);

        LevelVector l_shared;  // functional value of the shared l
        if (config.level_vector == LevelVectorMode::kBlockShared) {
          blk.master([&](ThreadCtx& th) {
            const LevelVector l =
                device_unrank(th, binom, d, j, blk.block_id());
            for (dim_t s = 0; s < d; ++s)
              ls.write(th, s, static_cast<std::uint32_t>(l[s]));
          });
          for (dim_t s = 0; s < d; ++s)
            l_shared.push_back(ls.raw(s));
        }

        const flat_index_t base =
            goff_host[j] + points * blk.block_id();
        blk.all([&](ThreadCtx& th) {
          LevelVector l;
          if (config.level_vector == LevelVectorMode::kBlockShared) {
            l = l_shared;
            for (dim_t s = 0; s < d; ++s) ls.read(th, s);
          } else {
            l = device_unrank(th, binom, d, j, blk.block_id());
          }
          if (l[t] == 0) return;  // whole subspace is a no-op in dim t
          for (flat_index_t k = th.tid(); k < points; k += blk.size()) {
            // Decode i from the in-subspace position (index odometer of the
            // compact layout).
            IndexVector i(d);
            flat_index_t rem = k;
            for (dim_t s = d; s-- > 0;) {
              const flat_index_t mask = (flat_index_t{1} << l[s]) - 1;
              i[s] = 2 * (rem & mask) + 1;
              rem >>= l[s];
              th.flop(3);
            }
            const flat_index_t own = base + k;
            const real_t val = th.ld(raw, own);  // coalesced across warp
            real_t parents = 0;
            for (const bool right : {false, true}) {
              const Parent1d p = right ? right_parent_1d(l[t], i[t])
                                       : left_parent_1d(l[t], i[t]);
              th.flop(3);  // endpoint arithmetic + ctz
              if (p.is_boundary) continue;  // divergent lane: fewer events
              LevelVector lp = l;
              IndexVector ip = i;
              lp[t] = p.level;
              ip[t] = p.index;
              const flat_index_t pidx =
                  device_gp2idx(th, binom, goff, lp, ip);
              parents += th.ld(raw, pidx);  // scattered: cannot coalesce
              th.flop(2);
            }
            // Same rounding as the CPU algorithms: bit-identical results.
            th.st(raw, own,
                  inverse ? val + parents / 2 : val - parents / 2);
          }
        });
      });
    }
  }
  storage.values() = raw.host();  // download

  GpuRunReport report;
  report.modeled_ms = launcher.total_modeled_ms();
  report.mean_occupancy = launcher.mean_occupancy();
  report.launches = launcher.launch_count();
  report.counters = launcher.total_counters();
  return report;
}

}  // namespace

GpuRunReport gpu_hierarchize(Launcher& launcher, CompactStorage& storage,
                             const GpuConfig& config) {
  return run_transform(launcher, storage, config, /*inverse=*/false);
}

GpuRunReport gpu_dehierarchize(Launcher& launcher, CompactStorage& storage,
                               const GpuConfig& config) {
  return run_transform(launcher, storage, config, /*inverse=*/true);
}

std::vector<real_t> gpu_evaluate(Launcher& launcher,
                                 const CompactStorage& storage,
                                 std::span<const CoordVector> points,
                                 GpuRunReport* report,
                                 const GpuConfig& config) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  launcher.reset();

  GlobalBuffer<real_t> raw(launcher, storage.values());
  GlobalBuffer<std::uint64_t> gbin(launcher, grid.binmat().flat());
  ConstantBuffer<std::uint64_t> cbin(grid.binmat().flat());
  std::vector<flat_index_t> goff_host(n + 1);
  for (level_t j = 0; j <= n; ++j) goff_host[j] = grid.group_offset(j);
  ConstantBuffer<flat_index_t> goff(goff_host);

  // coords flattened [point][dim]; the per-block region is contiguous, so
  // the cooperative copy below is fully coalesced.
  std::vector<real_t> coords_host;
  coords_host.reserve(points.size() * d);
  for (const CoordVector& p : points)
    coords_host.insert(coords_host.end(), p.begin(), p.end());
  GlobalBuffer<real_t> gcoords(launcher, coords_host);
  GlobalBuffer<real_t> gout(launcher, points.size());

  const std::uint32_t bs = config.block_size;
  const auto num_blocks =
      static_cast<std::uint32_t>((points.size() + bs - 1) / bs);
  const std::uint64_t shared = evaluate_shared_bytes(d, n, config);

  launcher.launch(num_blocks, bs, shared, [&](Block& blk) {
    const std::size_t base_p = static_cast<std::size_t>(blk.block_id()) * bs;
    const std::size_t block_points =
        std::min<std::size_t>(bs, points.size() - base_p);

    SharedArray<std::uint64_t> sbin = blk.alloc_shared<std::uint64_t>(
        config.binmat == BinmatMode::kSharedMemory ? grid.binmat().flat().size()
                                                   : 0);
    if (config.binmat == BinmatMode::kSharedMemory) {
      blk.all([&](ThreadCtx& th) {
        for (std::size_t idx = th.tid(); idx < gbin.size(); idx += blk.size())
          sbin.write(th, idx, th.ld(gbin, idx));
      });
    }
    const DeviceBinmat binom(config.binmat, &cbin, &sbin, &gbin);

    SharedArray<real_t> scoords = blk.alloc_shared<real_t>(
        static_cast<std::size_t>(bs) * d);
    blk.all([&](ThreadCtx& th) {  // coalesced staging of coordinates
      for (std::size_t idx = th.tid(); idx < block_points * d;
           idx += blk.size())
        scoords.write(th, idx, th.ld(gcoords, base_p * d + idx));
    });

    std::vector<real_t> acc(bs, 0);  // per-thread register accumulator
    SharedArray<std::uint32_t> ls = blk.alloc_shared<std::uint32_t>(d);
    // One barrier-delimited phase per level group; within it each thread
    // walks the group's subspaces with the next iterator. The level vector
    // is functionally per-thread here, but its accesses are billed as the
    // shared (or per-thread shared-scratch) reads of the configured mode.
    for (level_t j = 0; j < n; ++j) {
      const std::uint64_t subspaces = grid.subspaces_in_group(j);
      blk.all([&](ThreadCtx& th) {
        if (th.tid() >= block_points) return;  // tail block divergence
        LevelVector l = first_level(d, j);
        flat_index_t index2 = goff_host[j];
        for (std::uint64_t k = 0; k < subspaces; ++k) {
          real_t prod = 1;
          flat_index_t index1 = 0;
          static_assert(sizeof(index1) == 8 && kMaxLevel < 64);
          for (dim_t t = 0; t < d; ++t) {
            (void)ls.read(th, t);  // billed l access; value tracked locally
            const real_t x = scoords.read(
                th, static_cast<std::size_t>(th.tid()) * d + t);
            const index1d_t i = support_index_1d(l[t], x);
            index1 = (index1 << l[t]) + ((i - 1) >> 1);
            prod *= hat_basis_1d(l[t], i, x);
            th.flop(6);  // locate cell + hat evaluation
          }
          if (prod != 0) {
            const real_t coeff = th.ld(raw, index2 + index1);
            acc[th.tid()] += prod * coeff;
            th.flop(2);
          }
          th.flop(3);  // next(l) increment amortized cost
          if (k + 1 < subspaces) advance_level(l);
          index2 += grid.points_per_subspace(j);
        }
      });
    }
    blk.all([&](ThreadCtx& th) {  // coalesced result write-back
      if (th.tid() < block_points)
        th.st(gout, base_p + th.tid(), acc[th.tid()]);
    });
  });

  if (report != nullptr) {
    report->modeled_ms = launcher.total_modeled_ms();
    report->mean_occupancy = launcher.mean_occupancy();
    report->launches = launcher.launch_count();
    report->counters = launcher.total_counters();
  }
  return gout.host();
}

}  // namespace csg::gpusim
