// The paper's GPU kernels (Sec. 5.3) written against the simulator.
//
// Hierarchization: one thread block per subspace, one kernel launch per
// level group and dimension (the repeated launches are the paper's global
// barrier between groups). Own-coefficient accesses are coalesced; parent
// reads are the scattered accesses Fig. 5 (right) shows cannot be packed.
//
// Evaluation: one thread per evaluation point, blocks walk all subspaces
// with the next iterator. Coordinates are staged into shared memory with a
// cooperative coalesced copy.
//
// Both kernels are parameterized by the paper's two ablations:
//  * where binmat lives: constant cache, shared memory, or recomputed on
//    the fly (Sec. 5.3 reports on-the-fly being ~4x slower);
//  * whether the level vector l is per-thread or block-shared (Sec. 5.3
//    reports 1.62x / 1.59x from sharing, via occupancy).
#pragma once

#include <span>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/gpusim/executor.hpp"

namespace csg::gpusim {

// Where binmat lives on the device (Sec. 5.3's three options, plus the
// Fermi-era fourth: plain global memory behind the L1/L2 hierarchy —
// pointless on Tesla, near-constant-cache on Fermi, which is part of the
// "tune for Fermi" plan of the paper's conclusion).
enum class BinmatMode { kConstantCache, kSharedMemory, kOnTheFly, kGlobalCached };
enum class LevelVectorMode { kBlockShared, kPerThread };

/// Outcome of running one sparse grid operation on the simulated device.
struct GpuRunReport {
  double modeled_ms = 0;       // sum of modeled kernel times
  double mean_occupancy = 1;   // launch-weighted
  std::uint64_t launches = 0;
  PerfCounters counters;       // accumulated over all launches
};

/// Kernel launch configuration.
struct GpuConfig {
  BinmatMode binmat = BinmatMode::kConstantCache;
  LevelVectorMode level_vector = LevelVectorMode::kBlockShared;
  std::uint32_t block_size = 64;
};

/// Run the full multi-dimensional hierarchization of `storage` on the
/// simulated device. The coefficients in `storage` are updated in place
/// (upload, n*d kernel launches, download) and are bit-identical to the
/// CPU algorithm's result.
GpuRunReport gpu_hierarchize(Launcher& launcher, CompactStorage& storage,
                             const GpuConfig& config = {});

/// Run the inverse transform (decompression back to nodal values) on the
/// simulated device: the mirror image of gpu_hierarchize with ascending
/// level groups. Bit-identical to the CPU dehierarchize().
GpuRunReport gpu_dehierarchize(Launcher& launcher, CompactStorage& storage,
                               const GpuConfig& config = {});

/// Evaluate the sparse grid function at `points` on the simulated device.
/// Results are bit-identical to evaluate() up to floating point summation
/// order (the kernel uses the same subspace order, so in fact identical).
std::vector<real_t> gpu_evaluate(Launcher& launcher,
                                 const CompactStorage& storage,
                                 std::span<const CoordVector> points,
                                 GpuRunReport* report = nullptr,
                                 const GpuConfig& config = {});

/// Shared memory bytes per block a hierarchization launch consumes under
/// `config` for dimension d (drives occupancy; exposed for tests).
std::uint64_t hierarchize_shared_bytes(dim_t d, level_t n,
                                       const GpuConfig& config);

/// Shared memory bytes per block of the evaluation kernel.
std::uint64_t evaluate_shared_bytes(dim_t d, level_t n,
                                    const GpuConfig& config);

}  // namespace csg::gpusim
