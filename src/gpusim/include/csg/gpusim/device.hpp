// A functional + analytic model of a CUDA-era Nvidia GPU (paper Sec. 5.1).
//
// This environment has no GPU, so the paper's GPU experiments are
// reproduced on a simulator (see DESIGN.md §5): kernels execute
// functionally on the CPU under CUDA-like semantics (blocks, warps of 32,
// barrier-delimited phases, per-block shared memory), while the executor
// counts the events that dominated real Tesla-class performance —
// global-memory transactions after coalescing, warp-divergence-induced
// serialization, and occupancy as limited by shared memory consumption.
// A deterministic timing model turns those counters into an estimated
// kernel time. Absolute times are a model, not a measurement; the paper's
// qualitative effects (evaluation ≫ hierarchization, occupancy decline
// with growing d) all flow through these counters.
#pragma once

#include <algorithm>
#include <cstdint>

#include "csg/core/types.hpp"

namespace csg::gpusim {

/// Hardware parameters of the simulated device.
struct DeviceSpec {
  const char* name;
  std::uint32_t num_sms;              // streaming multiprocessors
  std::uint32_t sps_per_sm;           // scalar processors per SM
  std::uint32_t warp_size;            // threads per warp
  std::uint32_t max_threads_per_sm;   // resident thread contexts per SM
  std::uint32_t max_threads_per_block;
  std::uint64_t shared_mem_per_sm;    // bytes
  std::uint64_t constant_cache_bytes; // per SM
  double core_clock_ghz;              // SP issue clock
  double mem_bandwidth_gbs;           // global memory bandwidth
  double mem_latency_cycles;          // uncontended global load latency
  std::uint32_t mem_transaction_bytes;  // coalescing segment size
  double launch_overhead_ms;          // host-side cost per kernel launch
  // Fermi-generation cache hierarchy (paper Sec. 8 future work): 0 bytes
  // disables a level. Tesla-class parts have neither.
  std::uint64_t l1_cache_per_sm;      // per-SM L1 for global accesses
  std::uint64_t l2_cache_bytes;       // device-wide shared L2

  /// Occupancy given a launch configuration: the fraction of the SM's
  /// thread contexts kept resident, limited by block size granularity and
  /// per-block shared memory (the limiter the paper hits as d grows,
  /// Sec. 6.2).
  double occupancy(std::uint32_t block_size,
                   std::uint64_t shared_bytes_per_block) const {
    CSG_EXPECTS(block_size >= 1 && block_size <= max_threads_per_block);
    std::uint32_t blocks_by_threads = max_threads_per_sm / block_size;
    std::uint32_t blocks_by_shared =
        shared_bytes_per_block == 0
            ? blocks_by_threads
            : static_cast<std::uint32_t>(shared_mem_per_sm /
                                         shared_bytes_per_block);
    const std::uint32_t resident_blocks =
        std::max(0u, std::min(blocks_by_threads, blocks_by_shared));
    const double resident_threads =
        static_cast<double>(resident_blocks) * block_size;
    return std::min(1.0, resident_threads / max_threads_per_sm);
  }
};

/// The Tesla C1060 of the paper's testbed (Sec. 6.2, [6][7]).
inline constexpr DeviceSpec tesla_c1060() {
  return {
      .name = "Tesla C1060 (simulated)",
      .num_sms = 30,
      .sps_per_sm = 8,
      .warp_size = 32,
      .max_threads_per_sm = 1024,
      .max_threads_per_block = 512,
      .shared_mem_per_sm = 16 * 1024,
      .constant_cache_bytes = 8 * 1024,
      .core_clock_ghz = 1.296,
      .mem_bandwidth_gbs = 102.0,
      .mem_latency_cycles = 500.0,
      .mem_transaction_bytes = 128,
      .launch_overhead_ms = 0.007,
      .l1_cache_per_sm = 0,
      .l2_cache_bytes = 0,
  };
}

/// The Fermi-generation follow-up the paper's conclusion mentions as future
/// work: more SMs' worth of SPs, caches, larger shared memory.
inline constexpr DeviceSpec fermi_c2050() {
  return {
      .name = "Fermi C2050 (simulated)",
      .num_sms = 14,
      .sps_per_sm = 32,
      .warp_size = 32,
      .max_threads_per_sm = 1536,
      .max_threads_per_block = 1024,
      .shared_mem_per_sm = 48 * 1024,
      .constant_cache_bytes = 8 * 1024,
      .core_clock_ghz = 1.15,
      .mem_bandwidth_gbs = 144.0,
      .mem_latency_cycles = 400.0,
      .mem_transaction_bytes = 128,
      .launch_overhead_ms = 0.005,
      .l1_cache_per_sm = 16 * 1024,   // 16 KB L1 / 48 KB shared split
      .l2_cache_bytes = 768 * 1024,   // "768 KB shared level-2" (Sec. 8)
  };
}

/// Event counters accumulated by the executor over one kernel launch.
struct PerfCounters {
  std::uint64_t launched_blocks = 0;
  std::uint64_t launched_threads = 0;
  std::uint64_t warp_phases = 0;        // (warp, barrier-phase) pairs run
  std::uint64_t warp_instructions = 0;  // per-warp max-lane issue slots
  std::uint64_t thread_instructions = 0;  // sum over lanes (for divergence)
  std::uint64_t global_transactions = 0;  // after coalescing AND caches:
                                           // these reach DRAM
  std::uint64_t l1_hit_transactions = 0;   // absorbed by the per-SM L1
  std::uint64_t l2_hit_transactions = 0;   // absorbed by the device L2
  std::uint64_t global_accesses = 0;      // individual lane accesses
  std::uint64_t shared_accesses = 0;
  std::uint64_t constant_accesses = 0;

  void merge(const PerfCounters& o) {
    launched_blocks += o.launched_blocks;
    launched_threads += o.launched_threads;
    warp_phases += o.warp_phases;
    warp_instructions += o.warp_instructions;
    thread_instructions += o.thread_instructions;
    global_transactions += o.global_transactions;
    l1_hit_transactions += o.l1_hit_transactions;
    l2_hit_transactions += o.l2_hit_transactions;
    global_accesses += o.global_accesses;
    shared_accesses += o.shared_accesses;
    constant_accesses += o.constant_accesses;
  }

  /// SIMD efficiency: 1.0 when every issue slot is filled by all lanes.
  double simd_efficiency(std::uint32_t warp_size) const {
    if (warp_instructions == 0) return 1.0;
    return static_cast<double>(thread_instructions) /
           (static_cast<double>(warp_instructions) * warp_size);
  }

  /// Coalescing quality: lane accesses served per memory transaction
  /// (warp_size is perfect, 1.0 is fully scattered). Counts transactions
  /// before the caches so it measures coalescing, not cacheability.
  double accesses_per_transaction() const {
    const std::uint64_t issued =
        global_transactions + l1_hit_transactions + l2_hit_transactions;
    if (issued == 0) return 0.0;
    return static_cast<double>(global_accesses) /
           static_cast<double>(issued);
  }

  /// Fraction of coalesced transactions served by a cache level.
  double cache_hit_rate() const {
    const std::uint64_t issued =
        global_transactions + l1_hit_transactions + l2_hit_transactions;
    if (issued == 0) return 0.0;
    return static_cast<double>(l1_hit_transactions + l2_hit_transactions) /
           static_cast<double>(issued);
  }
};

/// Modeled execution time of one kernel launch.
struct KernelTiming {
  double compute_ms;
  double memory_ms;
  double total_ms;
  double occupancy;
};

/// Deterministic timing model (documented in DESIGN.md §5):
///   T_compute = warp_instructions / (issue rate of all SMs)
///   T_memory  = transactions * segment / bandwidth
///   T = max(T_compute, T_memory) + hidden-latency shortfall
/// The shortfall term charges a fraction of the raw load latency when
/// occupancy is too low to hide it — the effect that caps the paper's
/// speedups once per-thread shared memory grows linearly in d.
inline KernelTiming model_kernel_time(const DeviceSpec& dev,
                                      const PerfCounters& c,
                                      double occupancy) {
  // One warp instruction occupies SM issue for warp_size / sps_per_sm cycles.
  const double issue_cycles =
      static_cast<double>(c.warp_instructions) *
      (static_cast<double>(dev.warp_size) / dev.sps_per_sm);
  const double cycles_per_ms = dev.core_clock_ghz * 1e6;
  const double compute_ms = issue_cycles / (dev.num_sms * cycles_per_ms);

  const double bytes = static_cast<double>(c.global_transactions) *
                       dev.mem_transaction_bytes;
  // Cache-served transactions still occupy the on-chip interconnect; bill
  // them at 4x DRAM bandwidth (L2) / free (L1), a coarse Fermi-era ratio.
  const double l2_bytes = static_cast<double>(c.l2_hit_transactions) *
                          dev.mem_transaction_bytes;
  const double memory_ms =
      (bytes + l2_bytes / 4.0) / (dev.mem_bandwidth_gbs * 1e6);

  // Latency the resident warps cannot hide: each transaction costs
  // mem_latency_cycles; with occupancy o, a (1 - o) fraction surfaces.
  const double exposed_latency_ms =
      (1.0 - occupancy) * static_cast<double>(c.global_transactions) *
      dev.mem_latency_cycles / (dev.num_sms * cycles_per_ms);

  const double total_ms =
      std::max(compute_ms, memory_ms) + exposed_latency_ms;
  return {compute_ms, memory_ms, total_ms, occupancy};
}

}  // namespace csg::gpusim
