// The CUDA-like executor: functional kernel execution with event counting.
//
// Programming model (mirrors Sec. 5.2 of the paper):
//  * a launch runs `num_blocks` blocks of `block_size` threads;
//  * the block body is ordinary C++ driving barrier-delimited PHASES —
//    `block.all(fn)` runs fn for every thread of the block and then acts as
//    __syncthreads(); `block.master(fn)` is a phase executed by thread 0
//    only (the paper's "only the master thread modifies l" idiom);
//  * inside a phase, threads access device memory through the ThreadCtx:
//    ld/st on GlobalBuffer (counted + coalesced into transactions),
//    ConstantBuffer reads (counted, cached), SharedArray reads/writes
//    (counted), and flop() for arithmetic work.
//
// Coalescing is computed from real addresses: within each warp the k-th
// global access of every lane forms one SIMD access whose distinct
// 128-byte segments become memory transactions — the same rule the CUDA 2.x
// hardware applied. Divergence shows up as lanes with shorter event lists:
// the warp still issues max-lane instructions (serialized execution),
// which the SIMD-efficiency counter exposes.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "csg/gpusim/device.hpp"
#include "csg/memsim/cache.hpp"

namespace csg::gpusim {

class Launcher;
class Block;
class ThreadCtx;

namespace detail {
struct Event {
  enum Kind : std::uint8_t { kGlobal, kCompute } kind;
  std::uint64_t value;  // byte address for kGlobal, weight for kCompute
};

/// The device's (optional) cache hierarchy for global memory accesses —
/// present on Fermi-generation specs (paper Sec. 8 future work), absent on
/// Tesla. One L1 per SM plus a device-wide L2, persistent across kernel
/// launches like real hardware.
struct DeviceCaches {
  std::vector<memsim::Cache> l1;  // one per SM; empty if no L1
  std::unique_ptr<memsim::Cache> l2;

  void flush() {
    for (memsim::Cache& c : l1) c.flush();
    if (l2) l2->flush();
  }
};
}  // namespace detail

/// An array in simulated device global memory. Host code reads/writes it
/// freely (upload/download); kernel code must go through ThreadCtx::ld/st
/// so the accesses are counted.
template <typename T>
class GlobalBuffer {
 public:
  GlobalBuffer(Launcher& launcher, std::size_t count);
  GlobalBuffer(Launcher& launcher, const std::vector<T>& host);

  std::size_t size() const { return data_.size(); }
  std::uint64_t base_address() const { return base_; }

  /// Host-side access (cudaMemcpy stand-ins).
  std::vector<T>& host() { return data_; }
  const std::vector<T>& host() const { return data_; }

 private:
  friend class ThreadCtx;
  std::vector<T> data_;
  std::uint64_t base_;
};

/// Read-only data in the simulated constant cache (binmat's home per
/// Sec. 5.3). Reads are counted but generate no global transactions.
template <typename T>
class ConstantBuffer {
 public:
  explicit ConstantBuffer(std::vector<T> host) : data_(std::move(host)) {}
  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }

 private:
  friend class ThreadCtx;
  std::vector<T> data_;
};

/// Per-block shared memory array, allocated through Block::alloc_shared so
/// usage is checked against the launch's declared shared memory budget.
template <typename T>
class SharedArray {
 public:
  T read(ThreadCtx& ctx, std::size_t idx) const;
  void write(ThreadCtx& ctx, std::size_t idx, T v);

  /// Un-counted access for host-style initialization inside master phases
  /// where the cost is already modeled by the surrounding loads.
  T& raw(std::size_t idx) { return data_[idx]; }

 private:
  friend class Block;
  explicit SharedArray(std::size_t count) : data_(count) {}
  std::vector<T> data_;
};

/// Handle a kernel phase body receives for one thread.
class ThreadCtx {
 public:
  std::uint32_t tid() const { return tid_; }
  std::uint32_t lane() const;
  std::uint32_t block_id() const;
  std::uint32_t block_size() const;

  template <typename T>
  T ld(const GlobalBuffer<T>& buf, std::size_t idx) {
    CSG_ASSERT(idx < buf.data_.size());
    events_.push_back({detail::Event::kGlobal,
                       buf.base_ + idx * static_cast<std::uint64_t>(sizeof(T))});
    return buf.data_[idx];
  }

  template <typename T>
  void st(GlobalBuffer<T>& buf, std::size_t idx, T v) {
    CSG_ASSERT(idx < buf.data_.size());
    events_.push_back({detail::Event::kGlobal,
                       buf.base_ + idx * static_cast<std::uint64_t>(sizeof(T))});
    buf.data_[idx] = v;
  }

  template <typename T>
  T ld_const(const ConstantBuffer<T>& buf, std::size_t idx) {
    CSG_ASSERT(idx < buf.data_.size());
    ++constant_accesses_;
    events_.push_back({detail::Event::kCompute, 1});  // issue slot, no DRAM
    return buf.data_[idx];
  }

  /// Account `n` arithmetic instructions.
  void flop(std::uint32_t n = 1) {
    if (n > 0) events_.push_back({detail::Event::kCompute, n});
  }

 private:
  friend class Block;
  template <typename T>
  friend class SharedArray;

  ThreadCtx(std::uint32_t tid, Block* block) : tid_(tid), block_(block) {}

  std::uint32_t tid_;
  Block* block_;
  std::vector<detail::Event> events_;
  std::uint64_t shared_accesses_ = 0;
  std::uint64_t constant_accesses_ = 0;
};

/// One thread block in flight. The launch body drives phases on it.
class Block {
 public:
  std::uint32_t block_id() const { return block_id_; }
  std::uint32_t size() const { return block_size_; }

  /// Run one barrier-delimited phase over all threads of the block.
  void all(const std::function<void(ThreadCtx&)>& fn) { run_phase(fn, false); }

  /// Run a phase executed by thread 0 only (other lanes idle — their warp
  /// still occupies issue slots, which the counters reflect).
  void master(const std::function<void(ThreadCtx&)>& fn) {
    run_phase(fn, true);
  }

  /// Allocate a shared memory array; total allocation must stay within the
  /// shared bytes declared at launch (that is what occupancy was charged
  /// for).
  template <typename T>
  SharedArray<T> alloc_shared(std::size_t count) {
    shared_allocated_ += count * sizeof(T);
    CSG_EXPECTS(shared_allocated_ <= shared_budget_ &&
                "kernel allocated more shared memory than declared");
    return SharedArray<T>(count);
  }

 private:
  friend class Launcher;
  friend class ThreadCtx;
  template <typename T>
  friend class SharedArray;

  Block(std::uint32_t block_id, std::uint32_t block_size,
        std::uint64_t shared_budget, std::uint32_t warp_size,
        std::uint32_t transaction_bytes, PerfCounters* counters,
        detail::DeviceCaches* caches, std::uint32_t sm_id)
      : block_id_(block_id), block_size_(block_size),
        shared_budget_(shared_budget), warp_size_(warp_size),
        transaction_bytes_(transaction_bytes), counters_(counters),
        caches_(caches), sm_id_(sm_id) {}

  void run_phase(const std::function<void(ThreadCtx&)>& fn, bool master_only);
  void analyze_phase(std::vector<std::vector<detail::Event>>& lanes);

  std::uint32_t block_id_;
  std::uint32_t block_size_;
  std::uint64_t shared_budget_;
  std::uint32_t warp_size_;
  std::uint32_t transaction_bytes_;
  std::uint64_t shared_allocated_ = 0;
  PerfCounters* counters_;
  detail::DeviceCaches* caches_;
  std::uint32_t sm_id_;
};

template <typename T>
T SharedArray<T>::read(ThreadCtx& ctx, std::size_t idx) const {
  CSG_ASSERT(idx < data_.size());
  ++ctx.shared_accesses_;
  ctx.events_.push_back({detail::Event::kCompute, 1});
  return data_[idx];
}

template <typename T>
void SharedArray<T>::write(ThreadCtx& ctx, std::size_t idx, T v) {
  CSG_ASSERT(idx < data_.size());
  ++ctx.shared_accesses_;
  ctx.events_.push_back({detail::Event::kCompute, 1});
  data_[idx] = v;
}

/// Owns the simulated device: allocates global buffers, launches kernels,
/// accumulates counters and modeled time across launches.
class Launcher {
 public:
  explicit Launcher(DeviceSpec spec) : spec_(spec) {
    if (spec_.l1_cache_per_sm > 0)
      for (std::uint32_t sm = 0; sm < spec_.num_sms; ++sm)
        caches_.l1.emplace_back(memsim::CacheConfig{
            spec_.l1_cache_per_sm, spec_.mem_transaction_bytes, 8});
    if (spec_.l2_cache_bytes > 0)
      caches_.l2 = std::make_unique<memsim::Cache>(memsim::CacheConfig{
          spec_.l2_cache_bytes, spec_.mem_transaction_bytes, 12});
  }

  const DeviceSpec& spec() const { return spec_; }

  /// Execute a kernel: `body(block)` runs once per block and drives the
  /// phases. Returns the modeled timing of this launch; totals accumulate.
  KernelTiming launch(std::uint32_t num_blocks, std::uint32_t block_size,
                      std::uint64_t shared_bytes_per_block,
                      const std::function<void(Block&)>& body);

  /// Counters and modeled time accumulated since construction/reset.
  const PerfCounters& total_counters() const { return totals_; }
  double total_modeled_ms() const { return total_ms_; }
  std::uint64_t launch_count() const { return launch_count_; }
  /// Launch-weighted mean occupancy across all launches so far.
  double mean_occupancy() const {
    return launch_count_ == 0
               ? 1.0
               : occupancy_sum_ / static_cast<double>(launch_count_);
  }

  void reset() {
    totals_ = {};
    total_ms_ = 0;
    occupancy_sum_ = 0;
    launch_count_ = 0;
    caches_.flush();
  }

 private:
  template <typename T>
  friend class GlobalBuffer;

  std::uint64_t allocate(std::uint64_t bytes) {
    const std::uint64_t base = next_base_;
    // Segment-align every buffer so cross-buffer accesses never share a
    // transaction, as with real cudaMalloc alignment.
    next_base_ += (bytes + 255) / 256 * 256 + 256;
    return base;
  }

  DeviceSpec spec_;
  detail::DeviceCaches caches_;
  std::uint64_t next_base_ = 1024;
  PerfCounters totals_{};
  double total_ms_ = 0;
  double occupancy_sum_ = 0;
  std::uint64_t launch_count_ = 0;
};

template <typename T>
GlobalBuffer<T>::GlobalBuffer(Launcher& launcher, std::size_t count)
    : data_(count), base_(launcher.allocate(count * sizeof(T))) {}

template <typename T>
GlobalBuffer<T>::GlobalBuffer(Launcher& launcher, const std::vector<T>& host)
    : data_(host), base_(launcher.allocate(host.size() * sizeof(T))) {}

}  // namespace csg::gpusim
