// Test function suite: the d-dimensional functions that drive every
// experiment. Each function knows whether it vanishes on the domain
// boundary (required by the zero-boundary grids of the paper) and whether a
// sparse grid interpolant can represent it exactly.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "csg/core/dim_vector.hpp"
#include "csg/core/types.hpp"

namespace csg::workloads {

struct TestFunction {
  std::string name;
  std::string description;
  bool zero_boundary;        // f == 0 on the boundary of [0,1]^d
  bool piecewise_dlinear;    // exactly representable on a fine enough grid
  std::function<real_t(const CoordVector&)> f;

  real_t operator()(const CoordVector& x) const { return f(x); }
};

/// Product of 1d parabolas 4 x (1 - x): smooth, separable, zero-boundary —
/// the classic sparse grid convergence test.
inline TestFunction parabola_product(dim_t d) {
  return {"parabola_product",
          "prod_t 4 x_t (1 - x_t), smooth separable zero-boundary",
          /*zero_boundary=*/true, /*piecewise_dlinear=*/false,
          [d](const CoordVector& x) {
            CSG_EXPECTS(x.size() == d);
            real_t p = 1;
            for (dim_t t = 0; t < d; ++t) p *= 4 * x[t] * (1 - x[t]);
            return p;
          }};
}

/// Anisotropic Gaussian bump centred in the domain, windowed by the
/// parabola product so that it is exactly zero on the boundary.
inline TestFunction gaussian_bump(dim_t d) {
  return {"gaussian_bump",
          "windowed exp(-sum_t (t+1) (x_t - 0.5)^2), zero-boundary",
          true, false, [d](const CoordVector& x) {
            CSG_EXPECTS(x.size() == d);
            real_t e = 0, w = 1;
            for (dim_t t = 0; t < d; ++t) {
              const real_t c = x[t] - real_t{0.5};
              e += static_cast<real_t>(t + 1) * c * c;
              w *= 4 * x[t] * (1 - x[t]);
            }
            return w * std::exp(-4 * e);
          }};
}

/// Oscillatory function sin(pi x_t) product with a frequency ramp; smooth,
/// zero-boundary, non-separable via the phase coupling term.
inline TestFunction oscillatory(dim_t d) {
  return {"oscillatory",
          "prod_t sin(pi (t+1)/d x_t) * sin(pi x_t), zero-boundary",
          true, false, [d](const CoordVector& x) {
            CSG_EXPECTS(x.size() == d);
            real_t p = 1, phase = 0;
            for (dim_t t = 0; t < d; ++t) {
              p *= std::sin(M_PI * x[t]);
              phase += x[t];
            }
            return p * std::cos(M_PI * phase / d);
          }};
}

/// A function that is itself a d-linear hat interpolant on a coarse grid:
/// exactly representable by any sparse grid of level >= 3, so interpolation
/// must be exact (used as a correctness oracle).
inline TestFunction coarse_dlinear(dim_t d) {
  return {"coarse_dlinear",
          "prod_t hat_{1,1}(x_t) + 0.5 prod_t hat_{0,1}(x_t), exactly "
          "representable at level >= 2",
          true, true, [d](const CoordVector& x) {
            CSG_EXPECTS(x.size() == d);
            auto hat = [](real_t h_inv, real_t center, real_t x_) {
              const real_t v = 1 - std::abs((x_ - center) * h_inv);
              return v > 0 ? v : real_t{0};
            };
            real_t a = 1, b = 1;
            for (dim_t t = 0; t < d; ++t) {
              a *= hat(4, real_t{0.25}, x[t]);  // level 1 (0-based), i = 1
              b *= hat(2, real_t{0.5}, x[t]);   // level 0, i = 1
            }
            return a + real_t{0.5} * b;
          }};
}

/// Non-zero-boundary polynomial, for the Sec. 4.4 boundary extension:
/// 1 + sum_t (t+1) x_t^2.
inline TestFunction boundary_polynomial(dim_t d) {
  return {"boundary_polynomial", "1 + sum_t (t+1) x_t^2, non-zero boundary",
          false, false, [d](const CoordVector& x) {
            CSG_EXPECTS(x.size() == d);
            real_t s = 1;
            for (dim_t t = 0; t < d; ++t)
              s += static_cast<real_t>(t + 1) * x[t] * x[t];
            return s;
          }};
}

/// A synthetic stand-in for the paper's multi-physics simulation output
/// (Fig. 1): a superposition of localized features — two off-center bumps
/// and a ridge — windowed to zero-boundary. Not separable, moderately rough.
inline TestFunction simulation_field(dim_t d) {
  return {"simulation_field",
          "synthetic multi-feature field (two bumps + ridge), zero-boundary",
          true, false, [d](const CoordVector& x) {
            CSG_EXPECTS(x.size() == d);
            real_t w = 1, r2a = 0, r2b = 0, ridge = 0;
            for (dim_t t = 0; t < d; ++t) {
              w *= 4 * x[t] * (1 - x[t]);
              const real_t ca = x[t] - real_t{0.3};
              const real_t cb = x[t] - real_t{0.7};
              r2a += ca * ca;
              r2b += cb * cb;
              ridge += (t % 2 ? x[t] : -x[t]);
            }
            return w * (std::exp(-8 * r2a) + real_t{0.6} * std::exp(-12 * r2b) +
                        real_t{0.2} * std::sin(3 * ridge));
          }};
}

/// All zero-boundary functions, for parameterized sweeps.
inline std::vector<TestFunction> zero_boundary_suite(dim_t d) {
  return {parabola_product(d), gaussian_bump(d), oscillatory(d),
          coarse_dlinear(d), simulation_field(d)};
}

}  // namespace csg::workloads
