// Evaluation point generators. The paper's decompression workload is ~1e5
// arbitrary interpolation points (Sec. 5.3); visualization additionally
// needs axis-aligned slices (Fig. 1). All generators are deterministic
// given their seed, so benchmark runs are reproducible.
#pragma once

#include <random>
#include <vector>

#include "csg/core/dim_vector.hpp"
#include "csg/core/types.hpp"

namespace csg::workloads {

/// `count` i.i.d. uniform points in [0,1]^d.
inline std::vector<CoordVector> uniform_points(dim_t d, std::size_t count,
                                               std::uint64_t seed) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<real_t> dist(0, 1);
  std::vector<CoordVector> pts(count, CoordVector(d));
  for (auto& p : pts)
    for (dim_t t = 0; t < d; ++t) p[t] = dist(rng);
  return pts;
}

/// `count` points of the d-dimensional Halton sequence (prime bases): a
/// low-discrepancy set that exercises every region of the domain, as a
/// browsing user of the visualization pipeline would.
inline std::vector<CoordVector> halton_points(dim_t d, std::size_t count,
                                              std::size_t skip = 20) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  static constexpr unsigned kPrimes[kMaxDim] = {2,  3,  5,  7,  11, 13, 17, 19,
                                                23, 29, 31, 37, 41, 43, 47, 53};
  auto radical_inverse = [](unsigned base, std::size_t n) {
    real_t inv = 1 / static_cast<real_t>(base), f = inv, v = 0;
    while (n) {
      v += f * static_cast<real_t>(n % base);
      n /= base;
      f *= inv;
    }
    return v;
  };
  std::vector<CoordVector> pts(count, CoordVector(d));
  for (std::size_t k = 0; k < count; ++k)
    for (dim_t t = 0; t < d; ++t)
      pts[k][t] = radical_inverse(kPrimes[t], k + skip + 1);
  return pts;
}

/// A raster of `width x height` points spanning dimensions (dim_x, dim_y) of
/// the domain while all other coordinates are pinned to `anchor` — the
/// axis-aligned 2d slice a visualization front-end requests per frame.
inline std::vector<CoordVector> slice_points(const CoordVector& anchor,
                                             dim_t dim_x, dim_t dim_y,
                                             std::size_t width,
                                             std::size_t height) {
  CSG_EXPECTS(dim_x < anchor.size() && dim_y < anchor.size());
  CSG_EXPECTS(dim_x != dim_y);
  CSG_EXPECTS(width >= 2 && height >= 2);
  std::vector<CoordVector> pts;
  pts.reserve(width * height);
  for (std::size_t r = 0; r < height; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      CoordVector p = anchor;
      p[dim_x] = static_cast<real_t>(c) / static_cast<real_t>(width - 1);
      p[dim_y] = static_cast<real_t>(r) / static_cast<real_t>(height - 1);
      pts.push_back(p);
    }
  }
  return pts;
}

}  // namespace csg::workloads
