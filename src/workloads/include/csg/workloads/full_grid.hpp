// A plain full (tensor-product) grid: the uncompressed representation the
// sparse grid technique compresses away. Used by the examples to stand in
// for simulation output and by tests/benchmarks to quantify the compression
// ratio N_full / N_sparse. Only feasible for small d, which is the curse of
// dimensionality the paper's introduction motivates.
#pragma once

#include <functional>
#include <vector>

#include "csg/core/grid_point.hpp"
#include "csg/core/types.hpp"

namespace csg::workloads {

class FullGrid {
 public:
  /// Interior full grid of level n (0-based levels like the sparse grid):
  /// 2^n - 1 points per dimension at coordinates k / 2^n, zero boundary.
  FullGrid(dim_t d, level_t n) : d_(d), n_(n) {
    CSG_EXPECTS(d >= 1 && d <= kMaxDim);
    CSG_EXPECTS(n >= 1 && n <= 26 && "full grid would not fit in memory");
    points_per_dim_ = (std::size_t{1} << n) - 1;
    unsigned __int128 total = 1;
    for (dim_t t = 0; t < d; ++t) {
      total *= points_per_dim_;
      CSG_EXPECTS(total < (unsigned __int128){1} << 40 &&
                  "full grid too large; use fewer dimensions or levels");
    }
    values_.assign(static_cast<std::size_t>(total), real_t{0});
  }

  dim_t dim() const { return d_; }
  level_t level() const { return n_; }
  std::size_t points_per_dim() const { return points_per_dim_; }
  std::size_t num_points() const { return values_.size(); }

  /// Row-major flat index of the multi-index k (1-based per dimension,
  /// k_t in [1, 2^n - 1]).
  std::size_t flat(const DimVector<std::size_t>& k) const {
    std::size_t idx = 0;
    for (dim_t t = 0; t < d_; ++t) {
      CSG_ASSERT(k[t] >= 1 && k[t] <= points_per_dim_);
      idx = idx * points_per_dim_ + (k[t] - 1);
    }
    return idx;
  }

  real_t& at(const DimVector<std::size_t>& k) { return values_[flat(k)]; }
  real_t at(const DimVector<std::size_t>& k) const { return values_[flat(k)]; }

  CoordVector coordinates(const DimVector<std::size_t>& k) const {
    CoordVector x(d_);
    for (dim_t t = 0; t < d_; ++t)
      x[t] = static_cast<real_t>(k[t]) / static_cast<real_t>(std::size_t{1} << n_);
    return x;
  }

  /// Fill with f at every grid point.
  void sample(const std::function<real_t(const CoordVector&)>& f) {
    DimVector<std::size_t> k(d_, 1);
    for (std::size_t flat_idx = 0;; ++flat_idx) {
      values_[flat_idx] = f(coordinates(k));
      dim_t t = d_;
      while (t-- > 0) {
        if (++k[t] <= points_per_dim_) break;
        k[t] = 1;
        if (t == 0) return;
      }
    }
  }

  /// Value at the full-grid point coinciding with the sparse grid point gp
  /// (every sparse grid point of level <= n lies on the full grid). This is
  /// the "select only the function values at grid points also contained in a
  /// sparse grid" step of Sec. 3.
  real_t value_at_sparse_point(const GridPoint& gp) const {
    DimVector<std::size_t> k(d_);
    for (dim_t t = 0; t < d_; ++t) {
      const level_t l = gp.level[t];
      CSG_EXPECTS(l + 1 <= n_);
      k[t] = static_cast<std::size_t>(gp.index[t]) << (n_ - (l + 1));
    }
    return at(k);
  }

  std::size_t memory_bytes() const { return values_.capacity() * sizeof(real_t); }

  const std::vector<real_t>& values() const { return values_; }

 private:
  dim_t d_;
  level_t n_;
  std::size_t points_per_dim_;
  std::vector<real_t> values_;
};

}  // namespace csg::workloads
