// Umbrella header for the csg::bench harness library: timed-region
// execution with warmup/repetition and robust statistics (stats.hpp),
// environment capture (env.hpp), and the JSON report (report.hpp).
// See docs/BENCHMARKS.md for the schema and the measurement methodology.
#pragma once

#include "csg/bench/env.hpp"
#include "csg/bench/json_writer.hpp"
#include "csg/bench/report.hpp"
#include "csg/bench/stats.hpp"
