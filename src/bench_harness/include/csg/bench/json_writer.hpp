// Minimal streaming JSON writer — just enough for the BENCH_*.json schema
// (docs/BENCHMARKS.md). No parsing, no dependencies; the consumer side
// (tools/bench_compare.py) uses Python's json module.
//
// Correctness notes: strings are escaped per RFC 8259 (control characters,
// quotes, backslashes); doubles print with %.17g so values round-trip
// bit-exactly; non-finite doubles become null, which the schema allows and
// the compare tool skips.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace csg::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() {
    comma();
    os_ << '{';
    stack_.push_back(State::kFirstInObject);
  }
  void end_object() {
    stack_.pop_back();
    os_ << '}';
    mark_value_written();
  }
  void begin_array() {
    comma();
    os_ << '[';
    stack_.push_back(State::kFirstInArray);
  }
  void end_array() {
    stack_.pop_back();
    os_ << ']';
    mark_value_written();
  }

  void key(const std::string& name) {
    comma();
    write_string(name);
    os_ << ':';
    stack_.push_back(State::kAfterKey);
  }

  void value(const std::string& s) {
    comma();
    write_string(s);
    mark_value_written();
  }
  void value(const char* s) { value(std::string(s)); }
  void value(double v) {
    comma();
    if (!std::isfinite(v)) {
      os_ << "null";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      os_ << buf;
    }
    mark_value_written();
  }
  void value(std::int64_t v) {
    comma();
    os_ << v;
    mark_value_written();
  }
  void value(bool b) {
    comma();
    os_ << (b ? "true" : "false");
    mark_value_written();
  }

  /// key + scalar value in one call.
  template <typename T>
  void kv(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// Emit a pre-rendered JSON scalar verbatim (caller guarantees validity).
  void raw_value(const std::string& json) {
    comma();
    os_ << json;
    mark_value_written();
  }

 private:
  enum class State : std::uint8_t {
    kFirstInObject,
    kInObject,
    kFirstInArray,
    kInArray,
    kAfterKey,
  };

  void comma() {
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::kInObject || s == State::kInArray) os_ << ',';
  }

  void mark_value_written() {
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::kAfterKey) {
      stack_.pop_back();
      if (!stack_.empty() && stack_.back() == State::kFirstInObject)
        stack_.back() = State::kInObject;
    } else if (s == State::kFirstInObject) {
      s = State::kInObject;
    } else if (s == State::kFirstInArray) {
      s = State::kInArray;
    }
  }

  void write_string(const std::string& s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<State> stack_;
};

}  // namespace csg::bench
