// Environment capture for benchmark records: every BENCH_*.json carries
// enough provenance to interpret the numbers later — which compiler and
// flags produced the binary, which commit it measured, how many OpenMP
// threads were available, and what silicon it ran on. Two results are only
// comparable when these fields (CPU model aside, which bench_compare treats
// as advisory context) match.
#pragma once

#include <string>

namespace csg::bench {

struct Environment {
  std::string compiler;       // e.g. "GNU 12.2.0"
  std::string build_type;     // CMAKE_BUILD_TYPE baked in at configure time
  std::string build_flags;    // effective CXX flags baked in at configure time
  std::string git_sha;        // CSG_GIT_SHA env override, else configure-time
  std::string cpu_model;      // /proc/cpuinfo "model name", "unknown" elsewhere
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-08-06T12:34:56Z"
  int openmp_max_threads = 1;
  int hardware_threads = 1;
};

/// Capture the current process environment. Cheap; called once per report.
Environment capture_environment();

}  // namespace csg::bench
