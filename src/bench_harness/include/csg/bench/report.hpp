// The benchmark report: named metrics (timed regions with robust statistics,
// plus counters from the memory meter / cache simulator / analytic models)
// collected into one JSON record per binary, schema documented in
// docs/BENCHMARKS.md and gated in CI by tools/bench_compare.py.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "csg/bench/env.hpp"
#include "csg/bench/stats.hpp"

namespace csg::bench {

/// Which direction of change is a regression for a metric. kLess: larger is
/// worse (times, memory, misses). kMore: smaller is worse (speedups).
/// kNeutral: informational only — bench_compare reports drift but never
/// fails on it (model ratios, interpolation errors).
enum class Better { kLess, kMore, kNeutral };

struct Metric {
  std::string name;
  std::string unit;
  Better better = Better::kLess;
  bool is_time = false;  // JSON kind: "time" (min/median/mad) vs "counter"
  double value = 0;      // counters: the value; times: the median
  double min = 0;
  double mad = 0;
  std::vector<double> samples;
  /// Optional per-metric relative noise tolerance (fraction, e.g. 0.5 =
  /// +-50%) for known-noisy metrics; < 0 means "use the tool default".
  double tolerance = -1;
};

/// How a timed region is repeated. With min_seconds > 0 each repetition
/// loops the body until the window is filled and records seconds per call
/// (for sub-millisecond regions); otherwise each repetition is one call.
struct MeasureOptions {
  int warmup = 1;
  int repetitions = 3;
  double min_seconds = 0;
};

/// Run body under warmup + repetitions and summarize (seconds per call).
TimingStats measure(const std::function<void()>& body,
                    const MeasureOptions& opts = {});

class Report {
 public:
  /// `name` is the record id and default file stem ("BENCH_<name>.json");
  /// by convention it is the binary name, e.g. "bench_table1_access".
  Report(std::string name, std::string title, std::string paper_ref);

  void set_param(const std::string& key, const std::string& value);
  void set_param(const std::string& key, std::int64_t value);
  void set_param(const std::string& key, double value);
  void set_param(const std::string& key, bool value);

  /// Record a counter-kind metric (memory bytes, cache misses per op,
  /// modeled speedups, ...).
  Metric& add_counter(const std::string& name, double value,
                      const std::string& unit, Better better = Better::kLess);

  /// Record a time-kind metric from summarized samples. `scale` converts
  /// the seconds-based stats into `unit` (e.g. 1e9 for "ns", or
  /// 1e9 / n_items for "ns" per item when the region batches n_items).
  Metric& add_time(const std::string& name, const TimingStats& stats,
                   const std::string& unit = "s", double scale = 1,
                   Better better = Better::kLess);

  /// measure() + add_time() in one call; returns the stats (seconds) so the
  /// caller can also print its human-readable table.
  TimingStats time(const std::string& name, const std::function<void()>& body,
                   const MeasureOptions& opts = {},
                   const std::string& unit = "s", double scale = 1);

  const std::vector<Metric>& metrics() const { return metrics_; }

  /// Serialize the record (schema_version 1, docs/BENCHMARKS.md).
  void write(std::ostream& os) const;

  /// Write to `path`; when empty, resolve $CSG_BENCH_JSON_DIR (else the
  /// working directory) + "/BENCH_<name>.json". Returns the path written,
  /// or an empty string when the file could not be opened (a diagnostic is
  /// printed; benchmarks still complete their console output).
  std::string write_file(const std::string& path = "") const;

 private:
  struct Param {
    std::string key;
    std::string json_value;  // pre-rendered JSON scalar
  };

  std::string name_;
  std::string title_;
  std::string paper_ref_;
  std::vector<Param> params_;
  std::vector<Metric> metrics_;
};

}  // namespace csg::bench
