// Robust summary statistics for repeated timing observations.
//
// Benchmarks report min / median / MAD instead of mean / stddev: the
// distribution of wall-clock samples is one-sided (a run can only be slowed
// down by interference, never sped up below the true cost), so the minimum
// estimates the noise-free cost, the median is a robust central value, and
// the median absolute deviation bounds the run-to-run noise without being
// dragged by outliers the way a standard deviation is. bench_compare uses
// the MAD to widen its per-metric tolerance on noisy metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace csg::bench {

/// Summary of a repeated measurement. All fields are in the unit of the
/// input samples (the harness works in seconds; Report::add_time rescales).
struct TimingStats {
  std::vector<double> samples;
  double min = 0;
  double median = 0;
  double mad = 0;  // median absolute deviation around the median

  int repetitions() const { return static_cast<int>(samples.size()); }
};

inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2;
}

/// min / median / MAD of the given samples (samples are kept verbatim so
/// the JSON record preserves the raw observations).
inline TimingStats summarize(std::vector<double> samples) {
  TimingStats t;
  if (samples.empty()) return t;
  t.min = *std::min_element(samples.begin(), samples.end());
  t.median = median_of(samples);
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (const double s : samples) dev.push_back(std::fabs(s - t.median));
  t.mad = median_of(std::move(dev));
  t.samples = std::move(samples);
  return t;
}

}  // namespace csg::bench
