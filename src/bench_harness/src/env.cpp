#include "csg/bench/env.hpp"

#include <omp.h>

#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

namespace csg::bench {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("Clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("GNU ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

Environment capture_environment() {
  Environment env;
  env.compiler = compiler_id();
#ifdef CSG_BENCH_BUILD_TYPE
  env.build_type = CSG_BENCH_BUILD_TYPE;
#else
  env.build_type = "unknown";
#endif
#ifdef CSG_BENCH_BUILD_FLAGS
  env.build_flags = CSG_BENCH_BUILD_FLAGS;
#endif
  // Runtime override first (CI exports the exact SHA under test), then the
  // configure-time stamp, which can go stale between reconfigures.
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only, pre-thread startup
  if (const char* sha = std::getenv("CSG_GIT_SHA"); sha != nullptr) {
    env.git_sha = sha;
  } else {
#ifdef CSG_BENCH_GIT_SHA
    env.git_sha = CSG_BENCH_GIT_SHA;
#else
    env.git_sha = "unknown";
#endif
  }
  env.cpu_model = cpu_model();
  env.timestamp_utc = utc_now();
  env.openmp_max_threads = omp_get_max_threads();
  env.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return env;
}

}  // namespace csg::bench
