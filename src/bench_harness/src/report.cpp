#include "csg/bench/report.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "csg/bench/json_writer.hpp"

namespace csg::bench {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string render_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* better_name(Better b) {
  switch (b) {
    case Better::kLess: return "less";
    case Better::kMore: return "more";
    case Better::kNeutral: return "neutral";
  }
  return "neutral";
}

}  // namespace

TimingStats measure(const std::function<void()>& body,
                    const MeasureOptions& opts) {
  for (int w = 0; w < opts.warmup; ++w) body();
  std::vector<double> samples;
  const int reps = opts.repetitions < 1 ? 1 : opts.repetitions;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    if (opts.min_seconds > 0) {
      // Fill the window, report seconds per call: the repetition sees the
      // steady-state cost, not one cold observation.
      int calls = 0;
      const auto start = std::chrono::steady_clock::now();
      double elapsed = 0;
      do {
        body();
        ++calls;
        elapsed = seconds_since(start);
      } while (elapsed < opts.min_seconds);
      samples.push_back(elapsed / calls);
    } else {
      const auto start = std::chrono::steady_clock::now();
      body();
      samples.push_back(seconds_since(start));
    }
  }
  return summarize(std::move(samples));
}

Report::Report(std::string name, std::string title, std::string paper_ref)
    : name_(std::move(name)),
      title_(std::move(title)),
      paper_ref_(std::move(paper_ref)) {}

void Report::set_param(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  params_.push_back({key, quoted});
}

void Report::set_param(const std::string& key, std::int64_t value) {
  params_.push_back({key, std::to_string(value)});
}

void Report::set_param(const std::string& key, double value) {
  params_.push_back({key, render_number(value)});
}

void Report::set_param(const std::string& key, bool value) {
  params_.push_back({key, value ? "true" : "false"});
}

Metric& Report::add_counter(const std::string& name, double value,
                            const std::string& unit, Better better) {
  Metric m;
  m.name = name;
  m.unit = unit;
  m.better = better;
  m.is_time = false;
  m.value = value;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

Metric& Report::add_time(const std::string& name, const TimingStats& stats,
                         const std::string& unit, double scale,
                         Better better) {
  Metric m;
  m.name = name;
  m.unit = unit;
  m.better = better;
  m.is_time = true;
  m.value = stats.median * scale;
  m.min = stats.min * scale;
  m.mad = stats.mad * scale;
  m.samples.reserve(stats.samples.size());
  for (const double s : stats.samples) m.samples.push_back(s * scale);
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

TimingStats Report::time(const std::string& name,
                         const std::function<void()>& body,
                         const MeasureOptions& opts, const std::string& unit,
                         double scale) {
  TimingStats stats = measure(body, opts);
  add_time(name, stats, unit, scale);
  return stats;
}

void Report::write(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", std::int64_t{1});
  w.kv("benchmark", name_);
  w.kv("title", title_);
  w.kv("paper_ref", paper_ref_);

  const Environment env = capture_environment();
  w.key("environment");
  w.begin_object();
  w.kv("compiler", env.compiler);
  w.kv("build_type", env.build_type);
  w.kv("build_flags", env.build_flags);
  w.kv("git_sha", env.git_sha);
  w.kv("cpu_model", env.cpu_model);
  w.kv("timestamp_utc", env.timestamp_utc);
  w.kv("openmp_max_threads", std::int64_t{env.openmp_max_threads});
  w.kv("hardware_threads", std::int64_t{env.hardware_threads});
  w.end_object();

  w.key("parameters");
  w.begin_object();
  for (const Param& p : params_) {
    w.key(p.key);
    w.raw_value(p.json_value);
  }
  w.end_object();

  w.key("metrics");
  w.begin_array();
  for (const Metric& m : metrics_) {
    w.begin_object();
    w.kv("name", m.name);
    w.kv("unit", m.unit);
    w.kv("better", std::string(better_name(m.better)));
    w.kv("kind", std::string(m.is_time ? "time" : "counter"));
    w.kv("value", m.value);
    if (m.is_time) {
      w.kv("min", m.min);
      w.kv("median", m.value);
      w.kv("mad", m.mad);
      w.kv("repetitions", static_cast<std::int64_t>(m.samples.size()));
      w.key("samples");
      w.begin_array();
      for (const double s : m.samples) w.value(s);
      w.end_array();
    }
    if (m.tolerance >= 0) w.kv("tolerance", m.tolerance);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string Report::write_file(const std::string& path) const {
  std::string out = path;
  if (out.empty()) {
    std::string dir;
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only, pre-thread startup
    if (const char* d = std::getenv("CSG_BENCH_JSON_DIR"); d != nullptr)
      dir = d;
    out = dir.empty() ? "BENCH_" + name_ + ".json"
                      : dir + "/BENCH_" + name_ + ".json";
  }
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "csg::bench: cannot open %s for writing\n",
                 out.c_str());
    return "";
  }
  write(os);
  return out;
}

}  // namespace csg::bench
