// A set-associative LRU cache hierarchy simulator.
//
// This container has one job in the reproduction: measure the *locality* of
// each data structure's access stream — the "Non-seq. Refs." column of
// Table 1 and the per-structure miss rates that explain why tree/hash
// storages saturate the memory connection in Fig. 11a while the compact
// 1d array does not. The environment has a single core, so the multicore
// scalability figures are driven by these measured miss rates through the
// bandwidth model in scaling.hpp (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "csg/core/types.hpp"

namespace csg::memsim {

struct CacheConfig {
  std::size_t size_bytes;
  std::size_t line_bytes;
  std::size_t associativity;
};

/// One set-associative cache level with true-LRU replacement.
class Cache {
 public:
  explicit Cache(const CacheConfig& config)
      : line_bytes_(config.line_bytes),
        num_sets_(config.size_bytes / (config.line_bytes *
                                       config.associativity)),
        ways_(config.associativity),
        tags_(num_sets_ * ways_, kInvalid),
        ages_(num_sets_ * ways_, 0) {
    CSG_EXPECTS(config.line_bytes >= 8 &&
                (config.line_bytes & (config.line_bytes - 1)) == 0);
    CSG_EXPECTS(num_sets_ >= 1);
  }

  /// Access one byte address; returns true on hit. Misses install the line.
  bool access(std::uint64_t addr) {
    ++accesses_;
    const std::uint64_t line = addr / line_bytes_;
    const std::size_t set = static_cast<std::size_t>(line) % num_sets_;
    std::uint64_t* tag = &tags_[set * ways_];
    std::uint64_t* age = &ages_[set * ways_];
    ++clock_;
    for (std::size_t w = 0; w < ways_; ++w) {
      if (tag[w] == line) {
        age[w] = clock_;
        return true;
      }
    }
    ++misses_;
    std::size_t victim = 0;
    for (std::size_t w = 1; w < ways_; ++w)
      if (age[w] < age[victim]) victim = w;
    tag[victim] = line;
    age[victim] = clock_;
    return false;
  }

  void flush() {
    std::fill(tags_.begin(), tags_.end(), kInvalid);
    std::fill(ages_.begin(), ages_.end(), std::uint64_t{0});
  }

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t line_bytes() const { return line_bytes_; }

  void reset_counters() { accesses_ = misses_ = 0; }

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  std::size_t line_bytes_;
  std::size_t num_sets_;
  std::size_t ways_;
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> ages_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t clock_ = 0;
};

/// Two-level inclusive-enough hierarchy: L2 is only consulted on L1 misses.
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2)
      : l1_(l1), l2_(l2) {}

  /// A Nehalem-class core's private L1d + shared-slice L2/L3 stand-in.
  static CacheHierarchy nehalem_core() {
    return CacheHierarchy({32 * 1024, 64, 8}, {2 * 1024 * 1024, 64, 16});
  }

  /// The Opteron 8356 (Barcelona) per-core view: 64 KB L1d, 512 KB L2.
  static CacheHierarchy barcelona_core() {
    return CacheHierarchy({64 * 1024, 64, 2}, {512 * 1024, 64, 16});
  }

  void touch(std::uint64_t addr, std::size_t bytes = 8) {
    // Access every line the object overlaps (objects are small; this is
    // almost always a single line).
    const std::uint64_t first = addr / l1_.line_bytes();
    const std::uint64_t last = (addr + bytes - 1) / l1_.line_bytes();
    for (std::uint64_t line = first; line <= last; ++line) {
      const std::uint64_t a = line * l1_.line_bytes();
      if (!l1_.access(a)) l2_.access(a);
    }
  }

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }

  /// References that left the cache hierarchy (DRAM transfers).
  std::uint64_t memory_accesses() const { return l2_.misses(); }

  void reset_counters() {
    l1_.reset_counters();
    l2_.reset_counters();
  }
  void flush() {
    l1_.flush();
    l2_.flush();
  }

 private:
  Cache l1_;
  Cache l2_;
};

}  // namespace csg::memsim
