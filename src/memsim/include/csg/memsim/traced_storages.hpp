// GridStorage adapters that route every memory reference through a
// CacheHierarchy. Each adapter mirrors one of the five structures of
// Table 1 and satisfies the same GridStorage concept, so the generic
// algorithms replay the *identical* access pattern the timing benchmarks
// execute — only here every address is also fed to the simulator.
//
//  * TracedCompactStorage — the 1d array (+ binmat lookups): Table 1 row
//    "Our data structure", expected ~1 non-sequential reference.
//  * TracedPrefixTreeStorage — the trie: O(d) references.
//  * TracedStdMapStorage — AVL over heap multi-word keys: O(log N)
//    references, key bytes linear in d (the std::map baseline's shape).
//  * TracedEnhancedMapStorage — AVL keyed by gp2idx: O(log N) references.
//  * TracedEnhancedHashStorage — chained hash keyed by gp2idx: O(1)
//    expected references.
#pragma once

#include <array>

#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/compact_storage.hpp"
#include "csg/memsim/cache.hpp"
#include "csg/memsim/traced_containers.hpp"

namespace csg::memsim {

class TracedCompactStorage {
 public:
  TracedCompactStorage(RegularSparseGrid grid, CacheHierarchy* caches)
      : inner_(std::move(grid)), caches_(caches) {
    CSG_EXPECTS(caches != nullptr);
  }

  const RegularSparseGrid& grid() const { return inner_.grid(); }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    touch_binmat(l);
    const flat_index_t idx = inner_.grid().gp2idx(l, i);
    caches_->touch(value_address(idx), sizeof(real_t));
    return inner_[idx];
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    touch_binmat(l);
    const flat_index_t idx = inner_.grid().gp2idx(l, i);
    caches_->touch(value_address(idx), sizeof(real_t));
    inner_[idx] = v;
  }

  std::size_t memory_bytes() const { return inner_.memory_bytes(); }
  static const char* name() { return "compact"; }

  CompactStorage& inner() { return inner_; }

 private:
  std::uint64_t value_address(flat_index_t idx) const {
    return reinterpret_cast<std::uint64_t>(inner_.data() + idx);
  }

  /// gp2idx performs ~2 binmat lookups per dimension (Alg. 5 lines 8-10);
  /// the table is a few KB and therefore effectively always L1-resident,
  /// which is the paper's "number of cache misses triggered ... can be
  /// considered 0" argument — the simulator verifies rather than assumes it.
  void touch_binmat(const LevelVector& l) const {
    const auto& flat = inner_.grid().binmat().flat();
    const auto base = reinterpret_cast<std::uint64_t>(flat.data());
    std::uint64_t sum = l[0];
    for (dim_t t = 1; t < l.size(); ++t) {
      caches_->touch(
          base + BinomialTable::flat_index(
                     static_cast<std::uint32_t>(t + sum), t) *
                     sizeof(std::uint64_t),
          sizeof(std::uint64_t));
      sum += l[t];
      caches_->touch(
          base + BinomialTable::flat_index(
                     static_cast<std::uint32_t>(t + sum), t) *
                     sizeof(std::uint64_t),
          sizeof(std::uint64_t));
    }
  }

  CompactStorage inner_;
  CacheHierarchy* caches_;
};

class TracedPrefixTreeStorage {
 public:
  TracedPrefixTreeStorage(RegularSparseGrid grid, CacheHierarchy* caches)
      : inner_(std::move(grid)), caches_(caches) {
    CSG_EXPECTS(caches != nullptr);
  }

  const RegularSparseGrid& grid() const { return inner_.grid(); }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    return inner_.get_traced(
        l, i, [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    inner_.set_traced(
        l, i, v,
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
  }

  std::size_t memory_bytes() const { return inner_.memory_bytes(); }
  static const char* name() { return "prefix_tree"; }

 private:
  baselines::PrefixTreeStorage inner_;
  CacheHierarchy* caches_;
};

/// Fixed-width multi-word key for the std::map analog: (level, index)
/// packed per dimension. Held inline in the node (sized for the grid's
/// dimension at compile-time capacity), so node bytes grow with d just as
/// the paper describes for the standard STL map.
struct MultiWordKey {
  std::array<std::uint64_t, kMaxDim> words;
  dim_t size;

  friend bool operator<(const MultiWordKey& a, const MultiWordKey& b) {
    for (dim_t t = 0; t < a.size; ++t)
      if (a.words[t] != b.words[t]) return a.words[t] < b.words[t];
    return false;
  }
  friend bool operator==(const MultiWordKey& a, const MultiWordKey& b) {
    for (dim_t t = 0; t < a.size; ++t)
      if (a.words[t] != b.words[t]) return false;
    return true;
  }
};

inline MultiWordKey make_multi_word_key(const LevelVector& l,
                                        const IndexVector& i) {
  MultiWordKey key{};
  key.size = l.size();
  for (dim_t t = 0; t < l.size(); ++t)
    key.words[t] = (static_cast<std::uint64_t>(l[t]) << 58) | i[t];
  return key;
}

class TracedStdMapStorage {
 public:
  TracedStdMapStorage(RegularSparseGrid grid, CacheHierarchy* caches)
      : grid_(std::move(grid)),
        map_(static_cast<std::size_t>(grid_.num_points())),
        caches_(caches) {
    CSG_EXPECTS(caches != nullptr);
  }

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const real_t* v = map_.find(
        make_multi_word_key(l, i),
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
    return v == nullptr ? real_t{0} : *v;
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    map_.insert_or_assign(
        make_multi_word_key(l, i), v,
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
  }

  std::size_t memory_bytes() const { return map_.memory_bytes(); }
  static const char* name() { return "std_map"; }

 private:
  RegularSparseGrid grid_;
  TracedAvlMap<MultiWordKey, real_t> map_;
  CacheHierarchy* caches_;
};

class TracedEnhancedMapStorage {
 public:
  TracedEnhancedMapStorage(RegularSparseGrid grid, CacheHierarchy* caches)
      : grid_(std::move(grid)),
        map_(static_cast<std::size_t>(grid_.num_points())),
        caches_(caches) {
    CSG_EXPECTS(caches != nullptr);
  }

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const real_t* v = map_.find(
        grid_.gp2idx(l, i),
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
    return v == nullptr ? real_t{0} : *v;
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    map_.insert_or_assign(
        grid_.gp2idx(l, i), v,
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
  }

  std::size_t memory_bytes() const { return map_.memory_bytes(); }
  static const char* name() { return "enhanced_map"; }

 private:
  RegularSparseGrid grid_;
  TracedAvlMap<flat_index_t, real_t> map_;
  CacheHierarchy* caches_;
};

class TracedEnhancedHashStorage {
 public:
  TracedEnhancedHashStorage(RegularSparseGrid grid, CacheHierarchy* caches)
      : grid_(std::move(grid)),
        map_(static_cast<std::size_t>(grid_.num_points())),
        caches_(caches) {
    CSG_EXPECTS(caches != nullptr);
  }

  const RegularSparseGrid& grid() const { return grid_; }

  real_t get(const LevelVector& l, const IndexVector& i) const {
    const real_t* v = map_.find(
        grid_.gp2idx(l, i),
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
    return v == nullptr ? real_t{0} : *v;
  }

  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    map_.insert_or_assign(
        grid_.gp2idx(l, i), v,
        [this](std::uint64_t a, std::size_t b) { caches_->touch(a, b); });
  }

  std::size_t memory_bytes() const { return map_.memory_bytes(); }
  static const char* name() { return "enhanced_hash"; }

 private:
  RegularSparseGrid grid_;
  TracedHashMap<flat_index_t, real_t> map_;
  CacheHierarchy* caches_;
};

}  // namespace csg::memsim
