// Locality profiling and the multicore bandwidth-saturation model.
//
// Fig. 11 of the paper shows hierarchization over tree/hash storages
// saturating the memory connection beyond ~15 Opteron cores while the
// compact structure keeps scaling, and evaluation scaling for everyone.
// The paper's own explanation is bandwidth: each structure demands
// DRAM traffic proportional to its per-operation miss count. We measure
// that miss count exactly (cache simulator over the replayed access
// stream) and feed it to a two-parameter machine model:
//
//   t_1        = c + m * L            per-op time on one core
//   rate(T)    = min( T / t_1 , B / (m * line) )   ops per second
//   speedup(T) = rate(T) / rate(1)
//
// with c = compute time per op, m = DRAM lines per op (measured),
// L = memory latency, B = saturated memory bandwidth. This is the classic
// roofline argument; it is also exactly the mechanism the paper names
// ("the tree and hash table data structures saturate the connection to
// main memory", Sec. 6.2). On this repository's single-core container the
// OpenMP code cannot exhibit the curve physically, so the model — driven
// by measured locality — regenerates it (DESIGN.md §5).
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "csg/memsim/cache.hpp"

namespace csg::memsim {

/// Result of replaying one sparse grid operation through the simulator.
struct LocalityProfile {
  std::uint64_t operations = 0;     // point updates / point evaluations
  std::uint64_t accesses = 0;       // references issued to the hierarchy
  std::uint64_t l1_misses = 0;
  std::uint64_t dram_lines = 0;     // references that missed all levels

  double accesses_per_op() const {
    return operations ? static_cast<double>(accesses) /
                            static_cast<double>(operations)
                      : 0;
  }
  double dram_lines_per_op() const {
    return operations ? static_cast<double>(dram_lines) /
                            static_cast<double>(operations)
                      : 0;
  }
  double l1_miss_rate() const {
    return accesses ? static_cast<double>(l1_misses) /
                          static_cast<double>(accesses)
                    : 0;
  }
};

/// Capture the hierarchy's counter deltas around `body(storage)`.
template <typename TS, typename Body>
LocalityProfile replay(TS& storage, CacheHierarchy& caches,
                       std::uint64_t operations, Body&& body) {
  caches.reset_counters();
  body(storage);
  LocalityProfile p;
  p.operations = operations;
  p.accesses = caches.l1().accesses();
  p.l1_misses = caches.l1().misses();
  p.dram_lines = caches.memory_accesses();
  return p;
}

/// Multicore machine parameters for the scaling model.
struct MachineSpec {
  const char* name;
  int cores;
  double memory_latency_ns;   // exposed DRAM latency per missing line
  double bandwidth_gbs;       // saturated shared memory bandwidth
  double line_bytes;
};

/// The paper's 32-core, 8-socket AMD Opteron 8356 machine (DDR2-667).
/// Bandwidth is the effective shared *random-access line* bandwidth, not
/// the aggregate streaming peak: hierarchization walks pointer structures
/// allocated without NUMA awareness, so 64-byte lines bounce across the
/// HyperTransport mesh. ~7 GB/s reproduces the paper's observation that
/// pointer-based structures stop scaling around 12-15 threads (Fig. 11a).
inline constexpr MachineSpec opteron_8356() {
  return {"32-core Opteron 8356", 32, 110.0, 7.0, 64.0};
}

/// Dual-socket Nehalem E5540 (8 cores / 16 threads, DDR3-1066): on-die
/// memory controllers give much better random-access behaviour.
inline constexpr MachineSpec nehalem_e5540() {
  return {"8-core Nehalem E5540", 8, 65.0, 12.0, 64.0};
}

/// Single-socket Nehalem i7-920 (4 cores, the paper's sequential baseline).
inline constexpr MachineSpec nehalem_i7_920() {
  return {"4-core Nehalem i7-920", 4, 65.0, 8.0, 64.0};
}

/// Modeled speedup over 1 core for every thread count 1..machine.cores.
/// `compute_ns_per_op` is the pure-compute share of one operation;
/// `dram_lines_per_op` the measured miss traffic. `serial_fraction` is the
/// Amdahl share of unparallelizable work — for hierarchization that is the
/// per-level-group barrier overhead (the last groups hold too few
/// subspaces to fill 32 cores); for embarrassingly parallel evaluation it
/// is near zero.
inline std::vector<double> speedup_curve(const MachineSpec& machine,
                                         double compute_ns_per_op,
                                         double dram_lines_per_op,
                                         double serial_fraction = 0.0) {
  CSG_EXPECTS(compute_ns_per_op >= 0 && dram_lines_per_op >= 0);
  CSG_EXPECTS(serial_fraction >= 0 && serial_fraction < 1);
  const double t1 =
      compute_ns_per_op + dram_lines_per_op * machine.memory_latency_ns;
  const double rate1 = 1.0 / t1;  // ops per ns on one core
  // Bandwidth ceiling in ops per ns (infinite when an op needs no DRAM).
  const double bw_rate =
      dram_lines_per_op > 0
          ? machine.bandwidth_gbs /
                (dram_lines_per_op * machine.line_bytes)
          : std::numeric_limits<double>::infinity();
  std::vector<double> curve(static_cast<std::size_t>(machine.cores));
  for (int threads = 1; threads <= machine.cores; ++threads) {
    const double amdahl =
        1.0 / (serial_fraction + (1.0 - serial_fraction) / threads);
    const double rate = std::min(amdahl * rate1, bw_rate);
    curve[static_cast<std::size_t>(threads - 1)] = rate / rate1;
  }
  return curve;
}

}  // namespace csg::memsim
