// Self-built node-based containers whose every pointer hop is visible.
//
// The STL baselines of src/baselines are faithful to the paper, but their
// internal node traversals cannot be observed from outside, so they cannot
// feed the cache simulator with exact address streams. These replicas can:
// an AVL tree (stand-in for the rb-tree inside std::map — same O(log N)
// pointer-chasing shape, height within a constant of red-black) and a
// chained hash table (the std::unordered_map shape), both storing nodes in
// an arena so addresses are deterministic, with a Touch callback invoked
// for every node the traversal visits.
//
// Only the operations the sparse grid workloads need exist: insert-or-
// assign and find. Grids are fully populated during sampling and never
// erase points (regular, non-adaptive grids — the paper's setting).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "csg/core/types.hpp"

namespace csg::memsim {

/// AVL map over an arena. K must be less-than comparable. Touch is invoked
/// as touch(address, bytes) for every node inspected.
template <typename K, typename V>
class TracedAvlMap {
 public:
  explicit TracedAvlMap(std::size_t expected_size = 0) {
    nodes_.reserve(expected_size);
  }

  std::size_t size() const { return nodes_.size(); }

  /// Bytes of node storage (the Fig. 8-style footprint of this container).
  std::size_t memory_bytes() const { return nodes_.capacity() * sizeof(Node); }

  template <typename Touch>
  void insert_or_assign(const K& key, const V& value, Touch&& touch) {
    root_ = insert_rec(root_, key, value, touch);
  }

  /// Returns nullptr if absent. The returned pointer is invalidated by the
  /// next insert (arena growth).
  template <typename Touch>
  const V* find(const K& key, Touch&& touch) const {
    std::uint32_t idx = root_;
    while (idx != kNull) {
      const Node& n = nodes_[idx];
      touch(address_of(idx), sizeof(Node));
      if (key < n.key)
        idx = n.left;
      else if (n.key < key)
        idx = n.right;
      else
        return &n.value;
    }
    return nullptr;
  }

  /// Height of the tree (for tests: must stay O(log N)).
  int height() const { return height_of(root_); }

 private:
  static constexpr std::uint32_t kNull = ~std::uint32_t{0};

  struct Node {
    K key;
    V value;
    std::uint32_t left = kNull;
    std::uint32_t right = kNull;
    std::int32_t height = 1;
  };

  std::uint64_t address_of(std::uint32_t idx) const {
    return reinterpret_cast<std::uint64_t>(nodes_.data() + idx);
  }

  int height_of(std::uint32_t idx) const {
    return idx == kNull ? 0 : nodes_[idx].height;
  }

  void update_height(std::uint32_t idx) {
    nodes_[idx].height =
        1 + std::max(height_of(nodes_[idx].left), height_of(nodes_[idx].right));
  }

  int balance_of(std::uint32_t idx) const {
    return height_of(nodes_[idx].left) - height_of(nodes_[idx].right);
  }

  std::uint32_t rotate_right(std::uint32_t y) {
    const std::uint32_t x = nodes_[y].left;
    nodes_[y].left = nodes_[x].right;
    nodes_[x].right = y;
    update_height(y);
    update_height(x);
    return x;
  }

  std::uint32_t rotate_left(std::uint32_t x) {
    const std::uint32_t y = nodes_[x].right;
    nodes_[x].right = nodes_[y].left;
    nodes_[y].left = x;
    update_height(x);
    update_height(y);
    return y;
  }

  std::uint32_t rebalance(std::uint32_t idx) {
    update_height(idx);
    const int b = balance_of(idx);
    if (b > 1) {
      if (balance_of(nodes_[idx].left) < 0)
        nodes_[idx].left = rotate_left(nodes_[idx].left);
      return rotate_right(idx);
    }
    if (b < -1) {
      if (balance_of(nodes_[idx].right) > 0)
        nodes_[idx].right = rotate_right(nodes_[idx].right);
      return rotate_left(idx);
    }
    return idx;
  }

  template <typename Touch>
  std::uint32_t insert_rec(std::uint32_t idx, const K& key, const V& value,
                           Touch& touch) {
    if (idx == kNull) {
      nodes_.push_back(Node{key, value, kNull, kNull, 1});
      const auto fresh = static_cast<std::uint32_t>(nodes_.size() - 1);
      touch(address_of(fresh), sizeof(Node));
      return fresh;
    }
    touch(address_of(idx), sizeof(Node));
    if (key < nodes_[idx].key) {
      const std::uint32_t child = insert_rec(nodes_[idx].left, key, value,
                                             touch);
      nodes_[idx].left = child;
    } else if (nodes_[idx].key < key) {
      const std::uint32_t child = insert_rec(nodes_[idx].right, key, value,
                                             touch);
      nodes_[idx].right = child;
    } else {
      nodes_[idx].value = value;
      return idx;
    }
    return rebalance(idx);
  }

  std::vector<Node> nodes_;
  std::uint32_t root_ = kNull;
};

/// Chained hash map over arenas (bucket array + node arena).
template <typename K, typename V, typename Hash = std::hash<K>>
class TracedHashMap {
 public:
  explicit TracedHashMap(std::size_t expected_size) {
    std::size_t buckets = 16;
    while (buckets < expected_size) buckets <<= 1;  // load factor <= 1
    buckets_.assign(buckets, kNull);
    nodes_.reserve(expected_size);
  }

  std::size_t size() const { return nodes_.size(); }

  std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           buckets_.capacity() * sizeof(std::uint32_t);
  }

  template <typename Touch>
  void insert_or_assign(const K& key, const V& value, Touch&& touch) {
    const std::size_t b = bucket_of(key);
    touch(bucket_address(b), sizeof(std::uint32_t));
    for (std::uint32_t idx = buckets_[b]; idx != kNull;
         idx = nodes_[idx].next) {
      touch(node_address(idx), sizeof(Node));
      if (nodes_[idx].key == key) {
        nodes_[idx].value = value;
        return;
      }
    }
    nodes_.push_back(Node{key, value, buckets_[b]});
    buckets_[b] = static_cast<std::uint32_t>(nodes_.size() - 1);
    touch(node_address(buckets_[b]), sizeof(Node));
  }

  template <typename Touch>
  const V* find(const K& key, Touch&& touch) const {
    const std::size_t b = bucket_of(key);
    touch(bucket_address(b), sizeof(std::uint32_t));
    for (std::uint32_t idx = buckets_[b]; idx != kNull;
         idx = nodes_[idx].next) {
      touch(node_address(idx), sizeof(Node));
      if (nodes_[idx].key == key) return &nodes_[idx].value;
    }
    return nullptr;
  }

  /// Longest chain (for tests: should stay O(1) expected).
  std::size_t max_chain() const {
    std::size_t longest = 0;
    for (std::uint32_t head : buckets_) {
      std::size_t len = 0;
      for (std::uint32_t idx = head; idx != kNull; idx = nodes_[idx].next)
        ++len;
      longest = std::max(longest, len);
    }
    return longest;
  }

 private:
  static constexpr std::uint32_t kNull = ~std::uint32_t{0};

  struct Node {
    K key;
    V value;
    std::uint32_t next;
  };

  std::size_t bucket_of(const K& key) const {
    return Hash{}(key) & (buckets_.size() - 1);
  }
  std::uint64_t bucket_address(std::size_t b) const {
    return reinterpret_cast<std::uint64_t>(buckets_.data() + b);
  }
  std::uint64_t node_address(std::uint32_t idx) const {
    return reinterpret_cast<std::uint64_t>(nodes_.data() + idx);
  }

  std::vector<std::uint32_t> buckets_;
  std::vector<Node> nodes_;
};

}  // namespace csg::memsim
