// Transport abstraction for csg::net: a blocking byte stream plus a
// listener that produces them.
//
// Two implementations ship:
//
//  * Loopback — an in-process bounded pipe pair. Deterministic (no kernel
//    buffers, no ports, no timing dependence on the network stack), so the
//    whole protocol surface — including corrupt-frame rejection and drain
//    shutdown — is testable byte-for-byte in unit tests and sanitizer
//    lanes. The bounded buffer also reproduces transport backpressure: a
//    writer blocks when the peer stops reading.
//
//  * TCP — 127.0.0.1 sockets for the real csgtool net-serve / net-bench
//    path. accept() multiplexes over a self-pipe so close() reliably
//    unblocks it; per-connection reads unblock via shutdown(2).
//
// Streams are used by at most one reader and one writer thread at a time
// (the server's connection loop is strictly serial); shutdown() may be
// called from any thread and wakes both sides.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "csg/core/thread_annotations.hpp"

namespace csg::net {

/// Blocking byte stream. read_some returns 0 on end-of-stream (peer closed
/// or shutdown()); write_all returns false once the peer is gone.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  ByteStream() = default;
  ByteStream(const ByteStream&) = delete;
  ByteStream& operator=(const ByteStream&) = delete;

  virtual std::size_t read_some(void* buf, std::size_t n) = 0;
  virtual bool write_all(const void* buf, std::size_t n) = 0;
  /// Terminate both directions; blocked reads return 0, blocked writes
  /// fail. Idempotent, callable from any thread.
  virtual void shutdown() = 0;
};

/// Read exactly n bytes; false on a clean or mid-read end-of-stream.
bool read_exact(ByteStream& stream, void* buf, std::size_t n);

/// Accept source for NetServer.
class Listener {
 public:
  virtual ~Listener() = default;
  Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Block until a connection arrives; nullptr once close() was called.
  virtual std::unique_ptr<ByteStream> accept() = 0;
  /// Unblock and permanently stop accept(). Idempotent, any thread.
  virtual void close() = 0;
};

// --------------------------------------------------------------------------
// Loopback
// --------------------------------------------------------------------------

namespace detail {
/// One direction of a loopback connection: a bounded byte queue.
struct LoopbackPipe {
  Mutex mutex;
  CondVar readable;
  CondVar writable;
  std::deque<std::uint8_t> data CSG_GUARDED_BY(mutex);
  const std::size_t capacity;  ///< immutable after construction
  /// No more bytes will ever arrive or be accepted.
  bool closed CSG_GUARDED_BY(mutex) = false;

  explicit LoopbackPipe(std::size_t cap) : capacity(cap) {}
};
}  // namespace detail

/// A connected pair of in-process streams. `capacity` bounds each
/// direction's buffer, giving transport backpressure.
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
loopback_pair(std::size_t capacity = std::size_t{1} << 16);

/// In-process listener: connect() hands back the client end and queues the
/// server end for accept().
class LoopbackListener : public Listener {
 public:
  explicit LoopbackListener(std::size_t capacity = std::size_t{1} << 16)
      : capacity_(capacity) {}

  /// Create a connection; nullptr once the listener is closed.
  std::unique_ptr<ByteStream> connect();

  std::unique_ptr<ByteStream> accept() override;
  void close() override;

 private:
  const std::size_t capacity_;
  Mutex mutex_;
  CondVar pending_cv_;
  std::deque<std::unique_ptr<ByteStream>> pending_ CSG_GUARDED_BY(mutex_);
  bool closed_ CSG_GUARDED_BY(mutex_) = false;
};

// --------------------------------------------------------------------------
// TCP (127.0.0.1)
// --------------------------------------------------------------------------

/// Listening socket on 127.0.0.1:port; port 0 picks an ephemeral port
/// (readable via port()). Throws std::runtime_error when the bind fails —
/// the port-conflict path csgtool net-serve surfaces as exit code 1.
class TcpListener : public Listener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener() override;

  std::uint16_t port() const { return port_; }

  std::unique_ptr<ByteStream> accept() override;
  void close() override;

 private:
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: close() wakes the poll
  std::uint16_t port_ = 0;
  Mutex mutex_;
  bool closed_ CSG_GUARDED_BY(mutex_) = false;
};

/// Blocking connect to 127.0.0.1:port (or `host`, dotted-quad only).
/// Throws std::runtime_error on failure.
std::unique_ptr<ByteStream> tcp_connect(const std::string& host,
                                        std::uint16_t port);

}  // namespace csg::net
