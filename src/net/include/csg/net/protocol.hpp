// csg::net wire protocol — the versioned, self-describing binary layout in
// front of serve::EvalService (docs/SERVING.md "Wire protocol").
//
// Every frame opens with the same self-description the on-disk formats use
// (docs/FORMATS.md): a 4-byte magic, the 0x01020304 byte-order tag written
// natively, and sizeof(real_t) of the writing build. A peer on a machine
// with the opposite byte order, or built with a retyped real_t, rejects the
// very first frame loudly instead of silently misreading coordinates. The
// header then carries a protocol version, a message type, and a 64-bit
// payload length, so a reader always knows how many bytes to consume before
// interpreting anything.
//
// Decoding is total: every malformed input maps to a WireError, never to a
// crash or an exception. Payload decoders are structural (lengths, counts,
// ranges, exact consumption) — semantic failures (unknown grid, coordinate
// outside [0,1]) travel as per-point serve::Status values in the response,
// exactly like the in-process API.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "csg/core/dim_vector.hpp"
#include "csg/core/types.hpp"

namespace csg::net {

/// Frame magic: "CSRV" (Compact Sparse-grid eRpc, Versioned).
inline constexpr std::array<char, 4> kMagic{'C', 'S', 'R', 'V'};
/// Byte-order tag, written natively; a byte-swapped peer reads 0x04030201.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Wire protocol version this build speaks.
inline constexpr std::uint16_t kVersion = 1;
/// Fixed frame header size: magic + tag + real width + version + type +
/// reserved + payload length (see docs/SERVING.md for the layout table).
inline constexpr std::size_t kFrameHeaderBytes = 24;

enum class MsgType : std::uint8_t {
  kEvalRequest = 1,
  kEvalResponse = 2,
  kListRequest = 3,
  kListResponse = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kError = 7,
};

/// Everything that can be wrong with a frame. Header errors (kBadMagic
/// through kOversizedFrame) mean the stream position can no longer be
/// trusted and the connection must close; kBadType/kOversizedBatch/
/// kBadPayload leave the length-prefixed framing intact, so a server can
/// answer with an error frame and keep the connection.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,        ///< first four bytes are not "CSRV"
  kBadEndianness,   ///< byte-order tag mismatch (cross-endian peer)
  kBadRealWidth,    ///< sizeof(real_t) mismatch between the builds
  kBadVersion,      ///< protocol version this build does not speak
  kBadReserved,     ///< reserved header byte not zero
  kOversizedFrame,  ///< payload length exceeds the frame limit
  kBadType,         ///< unknown message type
  kOversizedBatch,  ///< eval request carries more points than allowed
  kBadPayload,      ///< structural decode failure inside the payload
  kTruncated,       ///< stream ended mid-frame
};

const char* to_string(WireError e);

/// Shared bounds for both peers. The server enforces them on requests, the
/// client on responses; tests deliberately loosen one side to drive the
/// other's rejection paths.
struct ProtocolLimits {
  std::uint64_t max_frame_bytes = 1u << 20;  ///< payload bytes per frame
  std::uint64_t max_batch_points = 4096;     ///< points per eval request
  std::uint64_t max_name_bytes = 256;        ///< grid name length
  std::uint64_t max_error_bytes = 1024;      ///< error message length
  std::uint64_t max_list_entries = 4096;     ///< grids per list response
};

/// Decoded fixed header of one frame.
struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kError;
  std::uint64_t payload_bytes = 0;
};

// --------------------------------------------------------------------------
// Message bodies
// --------------------------------------------------------------------------

/// Evaluate-batch request: `points.size()` queries against one grid.
/// `deadline_us` is a *relative* budget in microseconds, measured from the
/// moment the server decodes the frame (relative, so peers need no clock
/// sync): 0 = no deadline, negative = already expired on arrival (the
/// deterministic way to exercise the timeout/shedding path end to end).
struct EvalRequest {
  std::uint64_t id = 0;
  std::string grid;
  std::int64_t deadline_us = 0;
  std::vector<CoordVector> points;
};

struct PointResult {
  std::uint8_t status = 0;  ///< a serve::Status value
  real_t value = 0;
};

struct EvalResponse {
  std::uint64_t id = 0;
  std::vector<PointResult> results;
};

struct GridInfo {
  std::string name;
  std::uint32_t dim = 0;
  std::uint32_t level = 0;
  std::uint64_t points = 0;
  std::uint64_t memory_bytes = 0;
};

struct ListResponse {
  std::vector<GridInfo> grids;
};

/// Per-shard counter triple of the sharded EvalService, appended to the
/// stats frame after the fixed v1 fields (see kStatsFieldCount).
struct WireShardStats {
  std::uint64_t submits = 0;
  std::uint64_t rejections = 0;
  std::uint64_t max_queue_depth = 0;
};

/// Cumulative counters of the serving stack, service + network layer, as
/// one flat list of u64 fields (field count on the wire for forward
/// compatibility; v1 wrote exactly kStatsFieldCount, newer builds append
/// the pipelining counters and the per-shard triples behind it).
struct WireStats {
  // serve::ServiceStats
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t not_found = 0;
  std::uint64_t invalid = 0;
  std::uint64_t shed_at_admission = 0;
  std::uint64_t batches_formed = 0;
  std::uint64_t batched_points = 0;
  std::uint64_t max_batch = 0;
  // NetServer
  std::uint64_t connections_accepted = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t eval_requests = 0;
  std::uint64_t eval_points = 0;
  // Appended fields (absent on frames from a pre-pipelining peer; the
  // decoder leaves the defaults in place for those).
  std::uint64_t frames_in_flight_peak = 0;  ///< per-connection high-water
  std::uint64_t pipelined_frames = 0;  ///< frames admitted with >=1 pending
  std::vector<WireShardStats> shards;  ///< per-shard service counters
};

/// The v1 field floor: every stats frame carries at least these 16 fields.
/// Newer builds append `kStatsAppendedFieldCount` scalar fields (pipelining
/// counters + shard count) followed by 3 u64 per shard; an older reader
/// skips everything past the floor by count.
inline constexpr std::uint32_t kStatsFieldCount = 16;
inline constexpr std::uint32_t kStatsAppendedFieldCount = 3;

/// Error frame: `code` is a WireError value; `id` echoes the offending
/// request's id when one was decodable, 0 otherwise.
struct ErrorFrame {
  std::uint64_t id = 0;
  std::uint32_t code = 0;
  std::string message;
};

// --------------------------------------------------------------------------
// Codec
// --------------------------------------------------------------------------

/// Encoders produce one complete frame (header + payload). They never fail:
/// size limits are the *receiving* side's business, and tests need to be
/// able to encode oversized frames to drive rejections.
std::vector<std::uint8_t> encode_eval_request(const EvalRequest& msg);
std::vector<std::uint8_t> encode_eval_response(const EvalResponse& msg);
std::vector<std::uint8_t> encode_list_request();
std::vector<std::uint8_t> encode_list_response(const ListResponse& msg);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats_response(const WireStats& msg);
std::vector<std::uint8_t> encode_error(const ErrorFrame& msg);

/// Validate the 24-byte fixed header. `bytes` must hold at least
/// kFrameHeaderBytes. Checks run in wire order (magic, endianness, real
/// width, version, reserved, type, length-vs-limit) so the first corrupted
/// field names the rejection.
WireError decode_header(std::span<const std::uint8_t> bytes, FrameHeader& out,
                        const ProtocolLimits& limits);

/// Payload decoders: structural validation plus exact consumption — any
/// trailing or missing byte is kBadPayload. decode_eval_request additionally
/// enforces limits.max_batch_points (kOversizedBatch) and
/// limits.max_name_bytes / dimension bounds (kBadPayload).
WireError decode_eval_request(std::span<const std::uint8_t> payload,
                              EvalRequest& out, const ProtocolLimits& limits);
WireError decode_eval_response(std::span<const std::uint8_t> payload,
                               EvalResponse& out,
                               const ProtocolLimits& limits);
WireError decode_list_response(std::span<const std::uint8_t> payload,
                               ListResponse& out,
                               const ProtocolLimits& limits);
WireError decode_stats_response(std::span<const std::uint8_t> payload,
                                WireStats& out);
WireError decode_error(std::span<const std::uint8_t> payload, ErrorFrame& out,
                       const ProtocolLimits& limits);

}  // namespace csg::net
