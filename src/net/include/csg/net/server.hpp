// NetServer: the network front of serve::EvalService.
//
// One thread accepts connections from a Listener (TCP or loopback); each
// connection gets a handler thread running a strictly serial loop: read one
// frame, decode, dispatch, write the response, repeat. Serial handling *is*
// the per-connection backpressure — a client never has more than one
// request outstanding per connection, and a slow client stalls only its own
// connection (the transport's bounded buffers push back on the writer).
//
// Malformed input never crashes the server; it is classified by the codec:
//
//  * header-level corruption (bad magic / endianness / real width / version
//    / reserved byte / oversized length) — the stream position can no
//    longer be trusted, so the server sends a best-effort error frame and
//    closes the connection;
//  * payload-level corruption (unknown type, structural decode failure,
//    oversized batch) — the length-prefixed framing is still intact, so the
//    server answers with an error frame and keeps the connection;
//  * a stream that ends mid-frame counts as truncated and closes.
//
// Deadlines propagate: an eval request's relative budget becomes an
// absolute serve::EvalService deadline at decode time, so expired work is
// shed by the service (at admission or at batch formation), never silently
// computed. stop() drains: accepting stops, every in-flight request
// completes and its response is written, then connections close.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "csg/core/thread_annotations.hpp"
#include "csg/net/protocol.hpp"
#include "csg/net/transport.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/serve/service.hpp"

namespace csg::net {

struct NetServerOptions {
  ProtocolLimits limits;
  /// Connections beyond this are accepted, sent an error frame, and closed.
  std::size_t max_connections = 64;
};

/// Cumulative network-layer counters (the service keeps its own). Reads are
/// individually atomic, like serve::ServiceStats.
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_decoded = 0;   ///< well-formed request frames
  std::uint64_t frames_rejected = 0;  ///< malformed or over-limit frames
  std::uint64_t eval_requests = 0;
  std::uint64_t eval_points = 0;
  std::uint64_t list_requests = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t error_frames_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t active_connections = 0;  ///< gauge, not cumulative
};

class NetServer {
 public:
  /// Listener, registry and service must outlive the server. Call start()
  /// to begin accepting.
  NetServer(Listener& listener, const serve::GridRegistry& registry,
            serve::EvalService& service, NetServerOptions opts = {});

  /// Drains (stop()).
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  void start();

  /// Drain shutdown: stop accepting, let every fully received request
  /// finish and flush its response, close all connections, join. The
  /// EvalService itself is left running (the caller owns its lifecycle).
  /// Idempotent.
  void stop();

  NetServerStats stats() const;

 private:
  struct Connection {
    std::shared_ptr<ByteStream> stream;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(ByteStream& stream);
  /// Handle one already-read frame; false closes the connection.
  bool handle_frame(ByteStream& stream, const FrameHeader& header,
                    std::span<const std::uint8_t> payload);
  bool send(ByteStream& stream, const std::vector<std::uint8_t>& frame);
  bool send_error(ByteStream& stream, std::uint64_t id, WireError code);
  /// Join finished connection threads (amortized in the accept loop).
  void reap_locked() CSG_REQUIRES(mutex_);

  Listener& listener_;
  const serve::GridRegistry& registry_;
  serve::EvalService& service_;
  const NetServerOptions opts_;

  Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      CSG_GUARDED_BY(mutex_);
  std::thread accept_thread_;
  bool started_ CSG_GUARDED_BY(mutex_) = false;
  bool stopped_ CSG_GUARDED_BY(mutex_) = false;
  std::atomic<bool> stopping_{false};

  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> frames_decoded{0};
    std::atomic<std::uint64_t> frames_rejected{0};
    std::atomic<std::uint64_t> eval_requests{0};
    std::atomic<std::uint64_t> eval_points{0};
    std::atomic<std::uint64_t> list_requests{0};
    std::atomic<std::uint64_t> stats_requests{0};
    std::atomic<std::uint64_t> error_frames_sent{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> active_connections{0};
  };
  Counters counters_;
};

}  // namespace csg::net
