// NetServer: the network front of serve::EvalService.
//
// One thread accepts connections from a Listener (TCP or loopback); each
// connection gets a reader thread (read one frame, decode, dispatch) and a
// writer thread draining a bounded in-order response queue. A connection
// may have up to max_in_flight frames outstanding: the reader keeps
// decoding and submitting while earlier responses are still being
// evaluated or written, so one slow batch no longer stalls the requests
// queued behind it on the same connection. Responses are written strictly
// in request order — the reader appends response slots FIFO and the single
// writer pops them FIFO, waiting on each slot's evaluation futures in
// turn. Once max_in_flight slots are pending the reader blocks, so a slow
// client still backpressures only its own connection (the transport's
// bounded buffers push back on the writer).
//
// Malformed input never crashes the server; it is classified by the codec:
//
//  * header-level corruption (bad magic / endianness / real width / version
//    / reserved byte / oversized length) — the stream position can no
//    longer be trusted, so the server sends a best-effort error frame and
//    closes the connection;
//  * payload-level corruption (unknown type, structural decode failure,
//    oversized batch) — the length-prefixed framing is still intact, so the
//    server answers with an error frame and keeps the connection;
//  * a stream that ends mid-frame counts as truncated and closes.
//
// Deadlines propagate: an eval request's relative budget becomes an
// absolute serve::EvalService deadline at decode time, so expired work is
// shed by the service (at admission or at batch formation), never silently
// computed. stop() drains: accepting stops, every in-flight request
// completes and its response is written, then connections close.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "csg/core/thread_annotations.hpp"
#include "csg/net/protocol.hpp"
#include "csg/net/transport.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/serve/service.hpp"

namespace csg::net {

struct NetServerOptions {
  ProtocolLimits limits;
  /// Connections beyond this are accepted, sent an error frame, and closed.
  std::size_t max_connections = 64;
  /// Frames a connection may have outstanding (decoded but response not yet
  /// written). 1 restores the strictly serial pre-pipelining discipline.
  std::size_t max_in_flight = 8;
};

/// Cumulative network-layer counters (the service keeps its own). Reads are
/// individually atomic, like serve::ServiceStats.
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_decoded = 0;   ///< well-formed request frames
  std::uint64_t frames_rejected = 0;  ///< malformed or over-limit frames
  std::uint64_t eval_requests = 0;
  std::uint64_t eval_points = 0;
  std::uint64_t list_requests = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t error_frames_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t active_connections = 0;  ///< gauge, not cumulative
  /// High-water mark of response slots outstanding on any one connection.
  std::uint64_t frames_in_flight_peak = 0;
  /// Frames admitted while >= 1 earlier frame on the same connection was
  /// still pending — zero for a strictly serial client.
  std::uint64_t pipelined_frames = 0;
};

class NetServer {
 public:
  /// Listener, registry and service must outlive the server. Call start()
  /// to begin accepting.
  NetServer(Listener& listener, const serve::GridRegistry& registry,
            serve::EvalService& service, NetServerOptions opts = {});

  /// Drains (stop()).
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  void start();

  /// Drain shutdown: stop accepting, let every fully received request
  /// finish and flush its response, close all connections, join. The
  /// EvalService itself is left running (the caller owns its lifecycle).
  /// Idempotent.
  void stop();

  NetServerStats stats() const;

 private:
  struct Connection {
    std::shared_ptr<ByteStream> stream;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// One queued response, in request order. Eval slots carry the service
  /// futures and are encoded by the writer once they resolve; every other
  /// response (list, stats, error) is pre-encoded by the reader.
  struct ResponseSlot {
    bool is_eval = false;
    bool is_error = false;
    std::uint64_t id = 0;
    std::vector<std::future<serve::EvalResult>> futures;
    std::vector<std::uint8_t> frame;
  };

  /// Reader/writer handoff of one connection: a bounded FIFO of response
  /// slots. Lives on the reader's stack; the writer is joined before it
  /// goes away.
  struct Pipeline {
    Mutex mutex;
    CondVar slot_free;   ///< reader waits here when max_in_flight are pending
    CondVar slot_ready;  ///< writer waits here for work (or reader_done)
    std::deque<ResponseSlot> queue CSG_GUARDED_BY(mutex);
    /// Responses admitted but not yet written to the stream. Differs from
    /// queue.size(): a slot the writer popped stays in flight until its
    /// frame is actually sent, which is what the pipelining counters
    /// observe (and what makes them deterministic against a paused
    /// service, where nothing is ever sent).
    std::size_t inflight CSG_GUARDED_BY(mutex) = 0;
    /// No further slots will be enqueued; the writer exits once drained.
    bool reader_done CSG_GUARDED_BY(mutex) = false;
    /// A write failed: the stream is dead, stop enqueueing and drop slots.
    bool aborted CSG_GUARDED_BY(mutex) = false;
  };

  void accept_loop();
  void connection_loop(ByteStream& stream);
  void writer_loop(ByteStream& stream, Pipeline& pipeline);
  /// Queue one response slot in request order, blocking while max_in_flight
  /// slots are already pending. False when the writer aborted.
  bool enqueue(Pipeline& pipeline, ResponseSlot slot);
  /// Handle one already-read frame; false closes the connection (the
  /// writer still drains everything queued, including a final error frame).
  bool handle_frame(Pipeline& pipeline, const FrameHeader& header,
                    std::span<const std::uint8_t> payload);
  ResponseSlot error_slot(std::uint64_t id, WireError code);
  bool send(ByteStream& stream, const std::vector<std::uint8_t>& frame);
  bool send_error(ByteStream& stream, std::uint64_t id, WireError code);
  /// Join finished connection threads (amortized in the accept loop).
  void reap_locked() CSG_REQUIRES(mutex_);

  Listener& listener_;
  const serve::GridRegistry& registry_;
  serve::EvalService& service_;
  const NetServerOptions opts_;

  Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      CSG_GUARDED_BY(mutex_);
  std::thread accept_thread_;
  bool started_ CSG_GUARDED_BY(mutex_) = false;
  bool stopped_ CSG_GUARDED_BY(mutex_) = false;
  std::atomic<bool> stopping_{false};

  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> frames_decoded{0};
    std::atomic<std::uint64_t> frames_rejected{0};
    std::atomic<std::uint64_t> eval_requests{0};
    std::atomic<std::uint64_t> eval_points{0};
    std::atomic<std::uint64_t> list_requests{0};
    std::atomic<std::uint64_t> stats_requests{0};
    std::atomic<std::uint64_t> error_frames_sent{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> active_connections{0};
    std::atomic<std::uint64_t> frames_in_flight_peak{0};
    std::atomic<std::uint64_t> pipelined_frames{0};
  };
  Counters counters_;
};

}  // namespace csg::net
