// NetClient: request/response client for the csg::net protocol.
//
// The blocking calls (evaluate_batch, list_grids, fetch_stats) keep one
// request in flight. The async pair submit_eval()/collect() pipelines:
// submit_eval writes a request frame and returns its id immediately, and
// collect() reads the oldest outstanding response — the server guarantees
// responses arrive in request order, so collect() resolves submissions
// FIFO. Up to NetServerOptions::max_in_flight frames may be outstanding
// before the server stops reading ahead (the transport then backpressures
// further submits). Transport failures and protocol violations — a
// response that is malformed, carries the wrong id, or answers with the
// wrong message type — throw std::runtime_error, the same loud-rejection
// contract the csg::io loaders follow. A server-sent error frame throws a
// RemoteError carrying the wire code so callers can tell "the server
// rejected this request" from "the connection is broken".
//
// Not thread-safe: callers serialize access or open one client per thread.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "csg/net/protocol.hpp"
#include "csg/net/transport.hpp"

namespace csg::net {

/// The server answered with an error frame (request rejected, connection
/// possibly still usable) rather than a response.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(WireError code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  WireError code() const { return code_; }

 private:
  WireError code_;
};

class NetClient {
 public:
  /// Takes ownership of a connected stream (loopback or TCP). The limits
  /// bound what the client itself will *send and accept*; tests loosen them
  /// to drive the server's rejection paths.
  explicit NetClient(std::unique_ptr<ByteStream> stream,
                     ProtocolLimits limits = {});

  /// Convenience: blocking TCP connect to host:port.
  static NetClient connect_tcp(const std::string& host, std::uint16_t port,
                               ProtocolLimits limits = {});

  /// Evaluate `points` against grid `name`. `deadline_us` is the relative
  /// per-request budget (0 = none, negative = expired on arrival; see
  /// protocol.hpp). Statuses come back per point.
  EvalResponse evaluate_batch(const std::string& name,
                              const std::vector<CoordVector>& points,
                              std::int64_t deadline_us = 0);

  /// Pipelined submission: write an eval request and return its id without
  /// waiting for the response. Pair each submit_eval with one collect().
  std::uint64_t submit_eval(const std::string& name,
                            const std::vector<CoordVector>& points,
                            std::int64_t deadline_us = 0);

  /// Read the response of the *oldest* outstanding submit_eval (responses
  /// arrive in request order). Throws when nothing is outstanding.
  EvalResponse collect();

  /// Eval requests submitted and not yet collected.
  std::size_t outstanding() const { return pending_.size(); }

  ListResponse list_grids();

  WireStats fetch_stats();

  /// Close the connection; further calls throw.
  void close();

 private:
  struct PendingEval {
    std::uint64_t id = 0;
    std::size_t points = 0;
  };

  /// Write `frame`, read one frame back, expecting `want` (error frames
  /// throw RemoteError). Returns the response payload. Blocking calls must
  /// not interleave with outstanding pipelined submissions.
  std::vector<std::uint8_t> round_trip(const std::vector<std::uint8_t>& frame,
                                       MsgType want);
  void write_frame(const std::vector<std::uint8_t>& frame);
  /// Read one frame, expecting `want`; error frames throw RemoteError.
  std::vector<std::uint8_t> read_response(MsgType want);
  void require_idle(const char* what) const;

  std::unique_ptr<ByteStream> stream_;
  ProtocolLimits limits_;
  std::uint64_t next_id_ = 1;
  std::deque<PendingEval> pending_;
};

}  // namespace csg::net
