#include "csg/net/transport.hpp"

#include <algorithm>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace csg::net {

bool read_exact(ByteStream& stream, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = stream.read_some(p + got, n - got);
    if (r == 0) return false;
    got += r;
  }
  return true;
}

// --------------------------------------------------------------------------
// Loopback
// --------------------------------------------------------------------------

namespace {

using detail::LoopbackPipe;

class LoopbackStream : public ByteStream {
 public:
  LoopbackStream(std::shared_ptr<LoopbackPipe> in,
                 std::shared_ptr<LoopbackPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackStream() override { shutdown(); }

  std::size_t read_some(void* buf, std::size_t n) override {
    LoopbackPipe& pipe = *in_;
    UniqueMutexLock lock(pipe.mutex);
    while (pipe.data.empty() && !pipe.closed) pipe.readable.wait(lock);
    if (pipe.data.empty()) return 0;  // closed and drained
    const std::size_t take = std::min(n, pipe.data.size());
    auto* p = static_cast<std::uint8_t*>(buf);
    for (std::size_t k = 0; k < take; ++k) {
      p[k] = pipe.data.front();
      pipe.data.pop_front();
    }
    lock.unlock();
    pipe.writable.notify_one();
    return take;
  }

  bool write_all(const void* buf, std::size_t n) override {
    LoopbackPipe& pipe = *out_;
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t sent = 0;
    while (sent < n) {
      UniqueMutexLock lock(pipe.mutex);
      while (pipe.data.size() >= pipe.capacity && !pipe.closed)
        pipe.writable.wait(lock);
      if (pipe.closed) return false;
      const std::size_t room = pipe.capacity - pipe.data.size();
      const std::size_t put = std::min(room, n - sent);
      pipe.data.insert(pipe.data.end(), p + sent, p + sent + put);
      sent += put;
      lock.unlock();
      pipe.readable.notify_one();
    }
    return true;
  }

  void shutdown() override {
    for (const auto& end : {in_, out_}) {
      LoopbackPipe& pipe = *end;
      {
        MutexLock lock(pipe.mutex);
        pipe.closed = true;
      }
      pipe.readable.notify_all();
      pipe.writable.notify_all();
    }
  }

 private:
  std::shared_ptr<LoopbackPipe> in_;
  std::shared_ptr<LoopbackPipe> out_;
};

}  // namespace

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
loopback_pair(std::size_t capacity) {
  auto a_to_b = std::make_shared<LoopbackPipe>(capacity);
  auto b_to_a = std::make_shared<LoopbackPipe>(capacity);
  return {std::make_unique<LoopbackStream>(b_to_a, a_to_b),
          std::make_unique<LoopbackStream>(a_to_b, b_to_a)};
}

std::unique_ptr<ByteStream> LoopbackListener::connect() {
  auto [client, server] = loopback_pair(capacity_);
  {
    MutexLock lock(mutex_);
    if (closed_) return nullptr;  // both ends die with their pipes
    pending_.push_back(std::move(server));
  }
  pending_cv_.notify_one();
  return std::move(client);
}

std::unique_ptr<ByteStream> LoopbackListener::accept() {
  UniqueMutexLock lock(mutex_);
  while (pending_.empty() && !closed_) pending_cv_.wait(lock);
  if (pending_.empty()) return nullptr;
  auto stream = std::move(pending_.front());
  pending_.pop_front();
  return stream;
}

void LoopbackListener::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  pending_cv_.notify_all();
}

// --------------------------------------------------------------------------
// TCP
// --------------------------------------------------------------------------

namespace {

class TcpStream : public ByteStream {
 public:
  explicit TcpStream(int fd) : fd_(fd) {}

  ~TcpStream() override {
    shutdown();
    ::close(fd_);
  }

  std::size_t read_some(void* buf, std::size_t n) override {
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, n, 0);
      if (r > 0) return static_cast<std::size_t>(r);
      if (r == 0) return 0;
      if (errno == EINTR) continue;
      return 0;  // connection error == end of stream for the caller
    }
  }

  bool write_all(const void* buf, std::size_t n) override {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
      if (r > 0) {
        sent += static_cast<std::size_t>(r);
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("csg::net: invalid address '" + host + "'");
  return addr;
}

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("csg::net: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("csg::net: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("csg::net: pipe() failed");
  }
}

TcpListener::~TcpListener() {
  close();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : wake_fds_)
    if (fd >= 0) ::close(fd);
}

std::unique_ptr<ByteStream> TcpListener::accept() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (closed_) return nullptr;
    }
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return nullptr;
    }
    if ((fds[1].revents & POLLIN) != 0) return nullptr;  // close() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<TcpStream>(fd);
  }
}

void TcpListener::close() {
  {
    MutexLock lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  const char byte = 1;
  (void)!::write(wake_fds_[1], &byte, 1);
}

std::unique_ptr<ByteStream> tcp_connect(const std::string& host,
                                        std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error("csg::net: socket() failed: " +
                             std::string(std::strerror(errno)));
  sockaddr_in addr = loopback_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("csg::net: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpStream>(fd);
}

}  // namespace csg::net
