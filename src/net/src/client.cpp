#include "csg/net/client.hpp"

#include <utility>

namespace csg::net {

NetClient::NetClient(std::unique_ptr<ByteStream> stream, ProtocolLimits limits)
    : stream_(std::move(stream)), limits_(limits) {
  if (stream_ == nullptr)
    throw std::runtime_error("csg::net: client constructed without a stream");
}

NetClient NetClient::connect_tcp(const std::string& host, std::uint16_t port,
                                 ProtocolLimits limits) {
  return NetClient(tcp_connect(host, port), limits);
}

void NetClient::close() {
  if (stream_ != nullptr) stream_->shutdown();
  stream_.reset();
  pending_.clear();
}

void NetClient::require_idle(const char* what) const {
  if (!pending_.empty())
    throw std::runtime_error(
        std::string("csg::net: ") + what +
        " with pipelined requests outstanding (collect() them first)");
}

void NetClient::write_frame(const std::vector<std::uint8_t>& frame) {
  if (stream_ == nullptr)
    throw std::runtime_error("csg::net: client is closed");
  if (!stream_->write_all(frame.data(), frame.size()))
    throw std::runtime_error("csg::net: connection lost while sending");
}

std::vector<std::uint8_t> NetClient::round_trip(
    const std::vector<std::uint8_t>& frame, MsgType want) {
  write_frame(frame);
  return read_response(want);
}

std::vector<std::uint8_t> NetClient::read_response(MsgType want) {
  if (stream_ == nullptr)
    throw std::runtime_error("csg::net: client is closed");
  std::uint8_t header_buf[kFrameHeaderBytes];
  if (!read_exact(*stream_, header_buf, kFrameHeaderBytes))
    throw std::runtime_error("csg::net: connection closed by server");
  FrameHeader header;
  const WireError head_err =
      decode_header({header_buf, kFrameHeaderBytes}, header, limits_);
  if (head_err != WireError::kNone)
    throw std::runtime_error(std::string("csg::net: bad response header: ") +
                             to_string(head_err));

  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(header.payload_bytes));
  if (header.payload_bytes > 0 &&
      !read_exact(*stream_, payload.data(), payload.size()))
    throw std::runtime_error("csg::net: truncated response");

  if (header.type == MsgType::kError) {
    ErrorFrame err;
    if (decode_error(payload, err, limits_) != WireError::kNone)
      throw std::runtime_error("csg::net: malformed error frame");
    throw RemoteError(static_cast<WireError>(err.code),
                      "csg::net: server rejected request: " + err.message);
  }
  if (header.type != want)
    throw std::runtime_error("csg::net: unexpected response type");
  return payload;
}

EvalResponse NetClient::evaluate_batch(const std::string& name,
                                       const std::vector<CoordVector>& points,
                                       std::int64_t deadline_us) {
  require_idle("evaluate_batch");
  (void)submit_eval(name, points, deadline_us);
  return collect();
}

std::uint64_t NetClient::submit_eval(const std::string& name,
                                     const std::vector<CoordVector>& points,
                                     std::int64_t deadline_us) {
  EvalRequest req;
  req.id = next_id_++;
  req.grid = name;
  req.deadline_us = deadline_us;
  req.points = points;
  write_frame(encode_eval_request(req));
  pending_.push_back({req.id, points.size()});
  return req.id;
}

EvalResponse NetClient::collect() {
  if (pending_.empty())
    throw std::runtime_error("csg::net: collect() with nothing outstanding");
  // Responses come back in request order, so the frame on the stream
  // belongs to the oldest pending submission. Any failure (including a
  // RemoteError frame) consumes that submission: the slot is spent either
  // way, and the caller keeps collecting the rest.
  const PendingEval expect = pending_.front();
  pending_.pop_front();
  const auto payload = read_response(MsgType::kEvalResponse);

  EvalResponse resp;
  const WireError err = decode_eval_response(payload, resp, limits_);
  if (err != WireError::kNone)
    throw std::runtime_error(std::string("csg::net: malformed response: ") +
                             to_string(err));
  if (resp.id != expect.id)
    throw std::runtime_error("csg::net: response id mismatch");
  if (resp.results.size() != expect.points)
    throw std::runtime_error("csg::net: response point count mismatch");
  return resp;
}

ListResponse NetClient::list_grids() {
  require_idle("list_grids");
  const auto payload =
      round_trip(encode_list_request(), MsgType::kListResponse);
  ListResponse resp;
  if (decode_list_response(payload, resp, limits_) != WireError::kNone)
    throw std::runtime_error("csg::net: malformed list response");
  return resp;
}

WireStats NetClient::fetch_stats() {
  require_idle("fetch_stats");
  const auto payload =
      round_trip(encode_stats_request(), MsgType::kStatsResponse);
  WireStats stats;
  if (decode_stats_response(payload, stats) != WireError::kNone)
    throw std::runtime_error("csg::net: malformed stats response");
  return stats;
}

}  // namespace csg::net
