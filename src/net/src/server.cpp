#include "csg/net/server.hpp"

#include <chrono>
#include <future>
#include <utility>

namespace csg::net {

namespace {

/// Header errors poison the stream position; payload errors do not.
bool closes_connection(WireError e) {
  switch (e) {
    case WireError::kBadMagic:
    case WireError::kBadEndianness:
    case WireError::kBadRealWidth:
    case WireError::kBadVersion:
    case WireError::kBadReserved:
    case WireError::kOversizedFrame:
    case WireError::kTruncated:
      return true;
    default:
      return false;
  }
}

}  // namespace

NetServer::NetServer(Listener& listener, const serve::GridRegistry& registry,
                     serve::EvalService& service, NetServerOptions opts)
    : listener_(listener),
      registry_(registry),
      service_(service),
      opts_(opts) {}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  MutexLock lock(mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void NetServer::stop() {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake every connection blocked in a read; handlers finish the request
  // they are processing (and flush its response) before exiting.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    MutexLock lock(mutex_);
    conns.swap(connections_);
  }
  for (const auto& c : conns) c->stream->shutdown();
  for (const auto& c : conns)
    if (c->thread.joinable()) c->thread.join();
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_rejected =
      counters_.connections_rejected.load(std::memory_order_relaxed);
  s.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  s.frames_decoded = counters_.frames_decoded.load(std::memory_order_relaxed);
  s.frames_rejected =
      counters_.frames_rejected.load(std::memory_order_relaxed);
  s.eval_requests = counters_.eval_requests.load(std::memory_order_relaxed);
  s.eval_points = counters_.eval_points.load(std::memory_order_relaxed);
  s.list_requests = counters_.list_requests.load(std::memory_order_relaxed);
  s.stats_requests = counters_.stats_requests.load(std::memory_order_relaxed);
  s.error_frames_sent =
      counters_.error_frames_sent.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.active_connections =
      counters_.active_connections.load(std::memory_order_relaxed);
  return s;
}

void NetServer::reap_locked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    if (c->thread.joinable()) c->thread.join();
    return true;
  });
}

void NetServer::accept_loop() {
  for (;;) {
    std::unique_ptr<ByteStream> stream = listener_.accept();
    if (stream == nullptr) return;  // listener closed: shutting down

    MutexLock lock(mutex_);
    reap_locked();
    if (stopping_.load(std::memory_order_acquire) ||
        connections_.size() >= opts_.max_connections) {
      counters_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      send_error(*stream, 0, WireError::kNone);  // "go away" with code 0
      continue;  // stream destructor closes it
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->stream = std::shared_ptr<ByteStream>(std::move(stream));
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      connection_loop(*raw->stream);
      // Close eagerly: the peer must see end-of-stream now, not when the
      // connection record is reaped or the server stops.
      raw->stream->shutdown();
      counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
      counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }
}

void NetServer::connection_loop(ByteStream& stream) {
  std::vector<std::uint8_t> header_buf(kFrameHeaderBytes);
  std::vector<std::uint8_t> payload;
  for (;;) {
    // Clean end-of-stream between frames is a normal close; anything that
    // ends inside a frame is a truncation and counts as rejected.
    const std::size_t first = stream.read_some(header_buf.data(), 1);
    if (first == 0) return;
    if (!read_exact(stream, header_buf.data() + 1, kFrameHeaderBytes - 1)) {
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    counters_.bytes_in.fetch_add(kFrameHeaderBytes, std::memory_order_relaxed);

    FrameHeader header;
    const WireError head_err = decode_header(header_buf, header, opts_.limits);
    if (head_err == WireError::kBadType) {
      // The length field is trustworthy, so the framing survives an unknown
      // type byte: discard the payload, reject loudly, keep the connection.
      payload.resize(static_cast<std::size_t>(header.payload_bytes));
      if (header.payload_bytes > 0 &&
          !read_exact(stream, payload.data(), payload.size())) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      counters_.bytes_in.fetch_add(header.payload_bytes,
                                   std::memory_order_relaxed);
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      if (!send_error(stream, 0, head_err)) return;
      continue;
    }
    if (head_err != WireError::kNone) {
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      send_error(stream, 0, head_err);
      return;  // other header errors poison the stream position
    }

    payload.resize(static_cast<std::size_t>(header.payload_bytes));
    if (header.payload_bytes > 0 &&
        !read_exact(stream, payload.data(), payload.size())) {
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    counters_.bytes_in.fetch_add(header.payload_bytes,
                                 std::memory_order_relaxed);

    if (!handle_frame(stream, header, payload)) return;
    if (stopping_.load(std::memory_order_acquire)) return;  // drained
  }
}

bool NetServer::handle_frame(ByteStream& stream, const FrameHeader& header,
                             std::span<const std::uint8_t> payload) {
  switch (header.type) {
    case MsgType::kEvalRequest: {
      EvalRequest req;
      const WireError err = decode_eval_request(payload, req, opts_.limits);
      if (err != WireError::kNone) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        if (!send_error(stream, req.id, err)) return false;
        return !closes_connection(err);
      }
      counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_.eval_requests.fetch_add(1, std::memory_order_relaxed);
      counters_.eval_points.fetch_add(req.points.size(),
                                      std::memory_order_relaxed);

      // Deadline propagation: the relative wire budget becomes an absolute
      // service deadline now, at decode time. A non-positive budget is
      // already expired and exercises admission shedding deterministically.
      auto deadline = serve::EvalService::kNoDeadline;
      if (req.deadline_us != 0)
        deadline = serve::EvalService::Clock::now() +
                   std::chrono::microseconds(req.deadline_us);

      std::vector<std::future<serve::EvalResult>> futures;
      futures.reserve(req.points.size());
      for (CoordVector& p : req.points)
        futures.push_back(service_.submit(req.grid, std::move(p), deadline));

      EvalResponse resp;
      resp.id = req.id;
      resp.results.reserve(futures.size());
      for (auto& f : futures) {
        const serve::EvalResult r = f.get();
        resp.results.push_back(
            {static_cast<std::uint8_t>(r.status), r.value});
      }
      return send(stream, encode_eval_response(resp));
    }

    case MsgType::kListRequest: {
      if (!payload.empty()) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        return send_error(stream, 0, WireError::kBadPayload);
      }
      counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_.list_requests.fetch_add(1, std::memory_order_relaxed);
      ListResponse resp;
      for (const std::string& name : registry_.names()) {
        const auto entry = registry_.find(name);
        if (entry == nullptr) continue;  // removed between names() and find()
        GridInfo info;
        info.name = name;
        info.dim = entry->storage.dim();
        info.level = entry->storage.grid().level();
        info.points = entry->storage.size();
        info.memory_bytes = entry->memory_bytes();
        resp.grids.push_back(std::move(info));
      }
      return send(stream, encode_list_response(resp));
    }

    case MsgType::kStatsRequest: {
      if (!payload.empty()) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        return send_error(stream, 0, WireError::kBadPayload);
      }
      counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_.stats_requests.fetch_add(1, std::memory_order_relaxed);
      const serve::ServiceStats sv = service_.stats();
      const NetServerStats ns = stats();
      WireStats out;
      out.submitted = sv.submitted;
      out.completed = sv.completed;
      out.rejected = sv.rejected;
      out.timed_out = sv.timed_out;
      out.cancelled = sv.cancelled;
      out.not_found = sv.not_found;
      out.invalid = sv.invalid;
      out.shed_at_admission = sv.shed_at_admission;
      out.batches_formed = sv.batches_formed;
      out.batched_points = sv.batched_points;
      out.max_batch = sv.max_batch;
      out.connections_accepted = ns.connections_accepted;
      out.frames_decoded = ns.frames_decoded;
      out.frames_rejected = ns.frames_rejected;
      out.eval_requests = ns.eval_requests;
      out.eval_points = ns.eval_points;
      return send(stream, encode_stats_response(out));
    }

    default:
      // Well-formed header carrying a message only a client should send
      // (responses, errors): framing is intact, reject and continue.
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return send_error(stream, 0, WireError::kBadType);
  }
}

bool NetServer::send(ByteStream& stream,
                     const std::vector<std::uint8_t>& frame) {
  if (!stream.write_all(frame.data(), frame.size())) return false;
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

bool NetServer::send_error(ByteStream& stream, std::uint64_t id,
                           WireError code) {
  ErrorFrame err;
  err.id = id;
  err.code = static_cast<std::uint32_t>(code);
  err.message = to_string(code);
  const bool sent = send(stream, encode_error(err));
  if (sent)
    counters_.error_frames_sent.fetch_add(1, std::memory_order_relaxed);
  return sent;
}

}  // namespace csg::net
