#include "csg/net/server.hpp"

#include <chrono>
#include <future>
#include <utility>

namespace csg::net {

namespace {

/// Atomic max for the frames_in_flight_peak counter.
void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t candidate) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !slot.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

/// Header errors poison the stream position; payload errors do not.
bool closes_connection(WireError e) {
  switch (e) {
    case WireError::kBadMagic:
    case WireError::kBadEndianness:
    case WireError::kBadRealWidth:
    case WireError::kBadVersion:
    case WireError::kBadReserved:
    case WireError::kOversizedFrame:
    case WireError::kTruncated:
      return true;
    default:
      return false;
  }
}

}  // namespace

NetServer::NetServer(Listener& listener, const serve::GridRegistry& registry,
                     serve::EvalService& service, NetServerOptions opts)
    : listener_(listener),
      registry_(registry),
      service_(service),
      opts_(opts) {}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  MutexLock lock(mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void NetServer::stop() {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake every connection blocked in a read; handlers finish the request
  // they are processing (and flush its response) before exiting.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    MutexLock lock(mutex_);
    conns.swap(connections_);
  }
  for (const auto& c : conns) c->stream->shutdown();
  for (const auto& c : conns)
    if (c->thread.joinable()) c->thread.join();
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_rejected =
      counters_.connections_rejected.load(std::memory_order_relaxed);
  s.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  s.frames_decoded = counters_.frames_decoded.load(std::memory_order_relaxed);
  s.frames_rejected =
      counters_.frames_rejected.load(std::memory_order_relaxed);
  s.eval_requests = counters_.eval_requests.load(std::memory_order_relaxed);
  s.eval_points = counters_.eval_points.load(std::memory_order_relaxed);
  s.list_requests = counters_.list_requests.load(std::memory_order_relaxed);
  s.stats_requests = counters_.stats_requests.load(std::memory_order_relaxed);
  s.error_frames_sent =
      counters_.error_frames_sent.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.active_connections =
      counters_.active_connections.load(std::memory_order_relaxed);
  s.frames_in_flight_peak =
      counters_.frames_in_flight_peak.load(std::memory_order_relaxed);
  s.pipelined_frames =
      counters_.pipelined_frames.load(std::memory_order_relaxed);
  return s;
}

void NetServer::reap_locked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    if (c->thread.joinable()) c->thread.join();
    return true;
  });
}

void NetServer::accept_loop() {
  for (;;) {
    std::unique_ptr<ByteStream> stream = listener_.accept();
    if (stream == nullptr) return;  // listener closed: shutting down

    MutexLock lock(mutex_);
    reap_locked();
    if (stopping_.load(std::memory_order_acquire) ||
        connections_.size() >= opts_.max_connections) {
      counters_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      send_error(*stream, 0, WireError::kNone);  // "go away" with code 0
      continue;  // stream destructor closes it
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->stream = std::shared_ptr<ByteStream>(std::move(stream));
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      connection_loop(*raw->stream);
      // Close eagerly: the peer must see end-of-stream now, not when the
      // connection record is reaped or the server stops.
      raw->stream->shutdown();
      counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
      counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }
}

void NetServer::connection_loop(ByteStream& stream) {
  // Reader half of the connection: decode frames and enqueue response
  // slots; the writer thread drains them in request order. The pipeline
  // lives on this stack frame — the writer is joined before it unwinds.
  Pipeline pipeline;
  std::thread writer(
      [this, &stream, &pipeline] { writer_loop(stream, pipeline); });

  std::vector<std::uint8_t> header_buf(kFrameHeaderBytes);
  std::vector<std::uint8_t> payload;
  for (;;) {
    // Clean end-of-stream between frames is a normal close; anything that
    // ends inside a frame is a truncation and counts as rejected.
    const std::size_t first = stream.read_some(header_buf.data(), 1);
    if (first == 0) break;
    if (!read_exact(stream, header_buf.data() + 1, kFrameHeaderBytes - 1)) {
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    counters_.bytes_in.fetch_add(kFrameHeaderBytes, std::memory_order_relaxed);

    FrameHeader header;
    const WireError head_err = decode_header(header_buf, header, opts_.limits);
    if (head_err == WireError::kBadType) {
      // The length field is trustworthy, so the framing survives an unknown
      // type byte: discard the payload, reject loudly, keep the connection.
      payload.resize(static_cast<std::size_t>(header.payload_bytes));
      if (header.payload_bytes > 0 &&
          !read_exact(stream, payload.data(), payload.size())) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      counters_.bytes_in.fetch_add(header.payload_bytes,
                                   std::memory_order_relaxed);
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      if (!enqueue(pipeline, error_slot(0, head_err))) break;
      continue;
    }
    if (head_err != WireError::kNone) {
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      // Other header errors poison the stream position: queue a final
      // best-effort error frame and stop reading; the writer drains it.
      enqueue(pipeline, error_slot(0, head_err));
      break;
    }

    payload.resize(static_cast<std::size_t>(header.payload_bytes));
    if (header.payload_bytes > 0 &&
        !read_exact(stream, payload.data(), payload.size())) {
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    counters_.bytes_in.fetch_add(header.payload_bytes,
                                 std::memory_order_relaxed);

    if (!handle_frame(pipeline, header, payload)) break;
    if (stopping_.load(std::memory_order_acquire)) break;  // drained
  }

  // No more slots will arrive; the writer flushes what is queued and exits.
  {
    MutexLock lock(pipeline.mutex);
    pipeline.reader_done = true;
  }
  pipeline.slot_ready.notify_all();
  writer.join();
}

void NetServer::writer_loop(ByteStream& stream, Pipeline& pipeline) {
  for (;;) {
    ResponseSlot slot;
    {
      UniqueMutexLock lock(pipeline.mutex);
      while (pipeline.queue.empty() && !pipeline.reader_done)
        pipeline.slot_ready.wait(lock);
      if (pipeline.queue.empty()) return;  // reader done and fully drained
      slot = std::move(pipeline.queue.front());
      pipeline.queue.pop_front();
    }
    pipeline.slot_free.notify_one();

    if (slot.is_eval) {
      // Resolve this slot's futures now, in queue position: responses
      // leave in request order no matter how batches were scheduled.
      EvalResponse resp;
      resp.id = slot.id;
      resp.results.reserve(slot.futures.size());
      for (auto& f : slot.futures) {
        const serve::EvalResult r = f.get();
        resp.results.push_back({static_cast<std::uint8_t>(r.status), r.value});
      }
      slot.frame = encode_eval_response(resp);
    }
    if (!send(stream, slot.frame)) {
      // The stream is dead. Unblock the reader and drop everything still
      // queued — the futures inside resolve into discarded promises.
      {
        MutexLock lock(pipeline.mutex);
        pipeline.aborted = true;
        pipeline.queue.clear();
        pipeline.inflight = 0;
      }
      pipeline.slot_free.notify_all();
      stream.shutdown();  // wake a reader blocked mid-read
      return;
    }
    {
      MutexLock lock(pipeline.mutex);
      --pipeline.inflight;
    }
    if (slot.is_error)
      counters_.error_frames_sent.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::enqueue(Pipeline& pipeline, ResponseSlot slot) {
  std::size_t outstanding;
  {
    UniqueMutexLock lock(pipeline.mutex);
    while (!pipeline.aborted &&
           pipeline.queue.size() >= opts_.max_in_flight)
      pipeline.slot_free.wait(lock);
    if (pipeline.aborted) return false;
    outstanding = pipeline.inflight;
    ++pipeline.inflight;
    pipeline.queue.push_back(std::move(slot));
  }
  pipeline.slot_ready.notify_one();
  if (outstanding > 0)
    counters_.pipelined_frames.fetch_add(1, std::memory_order_relaxed);
  update_max(counters_.frames_in_flight_peak, outstanding + 1);
  return true;
}

NetServer::ResponseSlot NetServer::error_slot(std::uint64_t id,
                                              WireError code) {
  ErrorFrame err;
  err.id = id;
  err.code = static_cast<std::uint32_t>(code);
  err.message = to_string(code);
  ResponseSlot slot;
  slot.is_error = true;
  slot.id = id;
  slot.frame = encode_error(err);
  return slot;
}

bool NetServer::handle_frame(Pipeline& pipeline, const FrameHeader& header,
                             std::span<const std::uint8_t> payload) {
  switch (header.type) {
    case MsgType::kEvalRequest: {
      EvalRequest req;
      const WireError err = decode_eval_request(payload, req, opts_.limits);
      if (err != WireError::kNone) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        if (!enqueue(pipeline, error_slot(req.id, err))) return false;
        return !closes_connection(err);
      }
      counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_.eval_requests.fetch_add(1, std::memory_order_relaxed);
      counters_.eval_points.fetch_add(req.points.size(),
                                      std::memory_order_relaxed);

      // Deadline propagation: the relative wire budget becomes an absolute
      // service deadline now, at decode time. A non-positive budget is
      // already expired and exercises admission shedding deterministically.
      auto deadline = serve::EvalService::kNoDeadline;
      if (req.deadline_us != 0)
        deadline = serve::EvalService::Clock::now() +
                   std::chrono::microseconds(req.deadline_us);

      // Submit now, respond later: the reader moves on to the next frame
      // while the writer waits for these futures in queue order.
      ResponseSlot slot;
      slot.is_eval = true;
      slot.id = req.id;
      slot.futures.reserve(req.points.size());
      for (CoordVector& p : req.points)
        slot.futures.push_back(
            service_.submit(req.grid, std::move(p), deadline));
      return enqueue(pipeline, std::move(slot));
    }

    case MsgType::kListRequest: {
      if (!payload.empty()) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        return enqueue(pipeline, error_slot(0, WireError::kBadPayload));
      }
      counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_.list_requests.fetch_add(1, std::memory_order_relaxed);
      ListResponse resp;
      for (const std::string& name : registry_.names()) {
        const auto entry = registry_.find(name);
        if (entry == nullptr) continue;  // removed between names() and find()
        GridInfo info;
        info.name = name;
        info.dim = entry->storage.dim();
        info.level = entry->storage.grid().level();
        info.points = entry->storage.size();
        info.memory_bytes = entry->memory_bytes();
        resp.grids.push_back(std::move(info));
      }
      ResponseSlot slot;
      slot.frame = encode_list_response(resp);
      return enqueue(pipeline, std::move(slot));
    }

    case MsgType::kStatsRequest: {
      if (!payload.empty()) {
        counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
        return enqueue(pipeline, error_slot(0, WireError::kBadPayload));
      }
      counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_.stats_requests.fetch_add(1, std::memory_order_relaxed);
      const serve::ServiceStats sv = service_.stats();
      const NetServerStats ns = stats();
      WireStats out;
      out.submitted = sv.submitted;
      out.completed = sv.completed;
      out.rejected = sv.rejected;
      out.timed_out = sv.timed_out;
      out.cancelled = sv.cancelled;
      out.not_found = sv.not_found;
      out.invalid = sv.invalid;
      out.shed_at_admission = sv.shed_at_admission;
      out.batches_formed = sv.batches_formed;
      out.batched_points = sv.batched_points;
      out.max_batch = sv.max_batch;
      out.connections_accepted = ns.connections_accepted;
      out.frames_decoded = ns.frames_decoded;
      out.frames_rejected = ns.frames_rejected;
      out.eval_requests = ns.eval_requests;
      out.eval_points = ns.eval_points;
      out.frames_in_flight_peak = ns.frames_in_flight_peak;
      out.pipelined_frames = ns.pipelined_frames;
      out.shards.reserve(sv.shards.size());
      for (const auto& sh : sv.shards)
        out.shards.push_back({sh.submits, sh.rejections, sh.max_queue_depth});
      ResponseSlot slot;
      slot.frame = encode_stats_response(out);
      return enqueue(pipeline, std::move(slot));
    }

    default:
      // Well-formed header carrying a message only a client should send
      // (responses, errors): framing is intact, reject and continue.
      counters_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return enqueue(pipeline, error_slot(0, WireError::kBadType));
  }
}

bool NetServer::send(ByteStream& stream,
                     const std::vector<std::uint8_t>& frame) {
  if (!stream.write_all(frame.data(), frame.size())) return false;
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  return true;
}

bool NetServer::send_error(ByteStream& stream, std::uint64_t id,
                           WireError code) {
  ErrorFrame err;
  err.id = id;
  err.code = static_cast<std::uint32_t>(code);
  err.message = to_string(code);
  const bool sent = send(stream, encode_error(err));
  if (sent)
    counters_.error_frames_sent.fetch_add(1, std::memory_order_relaxed);
  return sent;
}

}  // namespace csg::net
