#include "csg/net/protocol.hpp"

namespace csg::net {

namespace {

/// Append-only native-order byte writer.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &v, sizeof(T));
  }

  void put_bytes(const void* data, std::size_t n) {
    const auto at = out_.size();
    out_.resize(at + n);
    if (n > 0) std::memcpy(out_.data() + at, data, n);
  }

  void put_string(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked native-order reader. Overruns latch `ok() == false`;
/// values read past the end are zero, so callers can defer the error check
/// to one place.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (pos_ + sizeof(T) > data_.size()) {
      ok_ = false;
      pos_ = data_.size();
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool get_string(std::string& out, std::uint64_t max_bytes) {
    const auto len = get<std::uint32_t>();
    if (!ok_ || len > max_bytes || pos_ + len > data_.size()) {
      ok_ = false;
      return false;
    }
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  bool ok() const { return ok_; }
  /// True iff every payload byte was consumed and nothing overran.
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Reserve a frame header slot; the payload length is patched in last.
std::vector<std::uint8_t> begin_frame(MsgType type) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes);
  Writer w(out);
  w.put_bytes(kMagic.data(), kMagic.size());
  w.put<std::uint32_t>(kEndianTag);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(sizeof(real_t)));
  w.put<std::uint16_t>(kVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(type));
  w.put<std::uint8_t>(0);  // reserved
  w.put<std::uint64_t>(0);  // payload length, patched by end_frame
  return out;
}

std::vector<std::uint8_t> end_frame(std::vector<std::uint8_t> frame) {
  const std::uint64_t payload = frame.size() - kFrameHeaderBytes;
  std::memcpy(frame.data() + (kFrameHeaderBytes - sizeof(std::uint64_t)),
              &payload, sizeof(payload));
  return frame;
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kEvalRequest) &&
         t <= static_cast<std::uint8_t>(MsgType::kError);
}

}  // namespace

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kNone:
      return "ok";
    case WireError::kBadMagic:
      return "bad magic";
    case WireError::kBadEndianness:
      return "endianness mismatch";
    case WireError::kBadRealWidth:
      return "real_t width mismatch";
    case WireError::kBadVersion:
      return "unsupported protocol version";
    case WireError::kBadReserved:
      return "nonzero reserved header byte";
    case WireError::kOversizedFrame:
      return "frame exceeds size limit";
    case WireError::kBadType:
      return "unknown message type";
    case WireError::kOversizedBatch:
      return "batch exceeds point limit";
    case WireError::kBadPayload:
      return "malformed payload";
    case WireError::kTruncated:
      return "truncated frame";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_eval_request(const EvalRequest& msg) {
  auto frame = begin_frame(MsgType::kEvalRequest);
  Writer w(frame);
  w.put<std::uint64_t>(msg.id);
  w.put<std::int64_t>(msg.deadline_us);
  w.put_string(msg.grid);
  const std::uint32_t dim =
      msg.points.empty() ? 0 : static_cast<std::uint32_t>(msg.points[0].size());
  w.put<std::uint32_t>(dim);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(msg.points.size()));
  for (const CoordVector& p : msg.points)
    for (dim_t t = 0; t < p.size(); ++t) w.put<real_t>(p[t]);
  return end_frame(std::move(frame));
}

std::vector<std::uint8_t> encode_eval_response(const EvalResponse& msg) {
  auto frame = begin_frame(MsgType::kEvalResponse);
  Writer w(frame);
  w.put<std::uint64_t>(msg.id);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(msg.results.size()));
  for (const PointResult& r : msg.results) {
    w.put<std::uint8_t>(r.status);
    w.put<real_t>(r.value);
  }
  return end_frame(std::move(frame));
}

std::vector<std::uint8_t> encode_list_request() {
  return end_frame(begin_frame(MsgType::kListRequest));
}

std::vector<std::uint8_t> encode_list_response(const ListResponse& msg) {
  auto frame = begin_frame(MsgType::kListResponse);
  Writer w(frame);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(msg.grids.size()));
  for (const GridInfo& g : msg.grids) {
    w.put_string(g.name);
    w.put<std::uint32_t>(g.dim);
    w.put<std::uint32_t>(g.level);
    w.put<std::uint64_t>(g.points);
    w.put<std::uint64_t>(g.memory_bytes);
  }
  return end_frame(std::move(frame));
}

std::vector<std::uint8_t> encode_stats_request() {
  return end_frame(begin_frame(MsgType::kStatsRequest));
}

std::vector<std::uint8_t> encode_stats_response(const WireStats& msg) {
  auto frame = begin_frame(MsgType::kStatsResponse);
  Writer w(frame);
  const auto shard_fields =
      3 * static_cast<std::uint32_t>(msg.shards.size());
  w.put<std::uint32_t>(kStatsFieldCount + kStatsAppendedFieldCount +
                       shard_fields);
  w.put<std::uint64_t>(msg.submitted);
  w.put<std::uint64_t>(msg.completed);
  w.put<std::uint64_t>(msg.rejected);
  w.put<std::uint64_t>(msg.timed_out);
  w.put<std::uint64_t>(msg.cancelled);
  w.put<std::uint64_t>(msg.not_found);
  w.put<std::uint64_t>(msg.invalid);
  w.put<std::uint64_t>(msg.shed_at_admission);
  w.put<std::uint64_t>(msg.batches_formed);
  w.put<std::uint64_t>(msg.batched_points);
  w.put<std::uint64_t>(msg.max_batch);
  w.put<std::uint64_t>(msg.connections_accepted);
  w.put<std::uint64_t>(msg.frames_decoded);
  w.put<std::uint64_t>(msg.frames_rejected);
  w.put<std::uint64_t>(msg.eval_requests);
  w.put<std::uint64_t>(msg.eval_points);
  // Appended past the v1 floor: pipelining counters, then the shard count
  // and 3 u64 per shard. An older reader skips all of this by field count.
  w.put<std::uint64_t>(msg.frames_in_flight_peak);
  w.put<std::uint64_t>(msg.pipelined_frames);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(msg.shards.size()));
  for (const WireShardStats& sh : msg.shards) {
    w.put<std::uint64_t>(sh.submits);
    w.put<std::uint64_t>(sh.rejections);
    w.put<std::uint64_t>(sh.max_queue_depth);
  }
  return end_frame(std::move(frame));
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& msg) {
  auto frame = begin_frame(MsgType::kError);
  Writer w(frame);
  w.put<std::uint64_t>(msg.id);
  w.put<std::uint32_t>(msg.code);
  w.put_string(msg.message);
  return end_frame(std::move(frame));
}

WireError decode_header(std::span<const std::uint8_t> bytes, FrameHeader& out,
                        const ProtocolLimits& limits) {
  if (bytes.size() < kFrameHeaderBytes) return WireError::kTruncated;
  Reader r(bytes.first(kFrameHeaderBytes));
  std::array<char, 4> magic{};
  for (char& c : magic) c = static_cast<char>(r.get<std::uint8_t>());
  if (magic != kMagic) return WireError::kBadMagic;
  if (r.get<std::uint32_t>() != kEndianTag) return WireError::kBadEndianness;
  if (r.get<std::uint32_t>() != sizeof(real_t)) return WireError::kBadRealWidth;
  out.version = r.get<std::uint16_t>();
  if (out.version != kVersion) return WireError::kBadVersion;
  const auto type = r.get<std::uint8_t>();
  const auto reserved = r.get<std::uint8_t>();
  if (reserved != 0) return WireError::kBadReserved;
  out.payload_bytes = r.get<std::uint64_t>();
  if (out.payload_bytes > limits.max_frame_bytes)
    return WireError::kOversizedFrame;
  if (!known_type(type)) return WireError::kBadType;
  out.type = static_cast<MsgType>(type);
  return WireError::kNone;
}

WireError decode_eval_request(std::span<const std::uint8_t> payload,
                              EvalRequest& out, const ProtocolLimits& limits) {
  Reader r(payload);
  out.id = r.get<std::uint64_t>();
  out.deadline_us = r.get<std::int64_t>();
  if (!r.get_string(out.grid, limits.max_name_bytes))
    return WireError::kBadPayload;
  const auto dim = r.get<std::uint32_t>();
  const auto count = r.get<std::uint32_t>();
  if (!r.ok()) return WireError::kBadPayload;
  if (dim < 1 || dim > kMaxDim || count < 1) return WireError::kBadPayload;
  if (count > limits.max_batch_points) return WireError::kOversizedBatch;
  out.points.assign(count, CoordVector(static_cast<dim_t>(dim), 0));
  for (CoordVector& p : out.points)
    for (dim_t t = 0; t < p.size(); ++t) p[t] = r.get<real_t>();
  return r.done() ? WireError::kNone : WireError::kBadPayload;
}

WireError decode_eval_response(std::span<const std::uint8_t> payload,
                               EvalResponse& out,
                               const ProtocolLimits& limits) {
  Reader r(payload);
  out.id = r.get<std::uint64_t>();
  const auto count = r.get<std::uint32_t>();
  if (!r.ok() || count > limits.max_batch_points)
    return WireError::kBadPayload;
  out.results.assign(count, PointResult{});
  for (PointResult& p : out.results) {
    p.status = r.get<std::uint8_t>();
    p.value = r.get<real_t>();
  }
  return r.done() ? WireError::kNone : WireError::kBadPayload;
}

WireError decode_list_response(std::span<const std::uint8_t> payload,
                               ListResponse& out,
                               const ProtocolLimits& limits) {
  Reader r(payload);
  const auto count = r.get<std::uint32_t>();
  if (!r.ok() || count > limits.max_list_entries)
    return WireError::kBadPayload;
  out.grids.assign(count, GridInfo{});
  for (GridInfo& g : out.grids) {
    if (!r.get_string(g.name, limits.max_name_bytes))
      return WireError::kBadPayload;
    g.dim = r.get<std::uint32_t>();
    g.level = r.get<std::uint32_t>();
    g.points = r.get<std::uint64_t>();
    g.memory_bytes = r.get<std::uint64_t>();
  }
  return r.done() ? WireError::kNone : WireError::kBadPayload;
}

WireError decode_stats_response(std::span<const std::uint8_t> payload,
                                WireStats& out) {
  Reader r(payload);
  const auto fields = r.get<std::uint32_t>();
  // Forward compatibility: a newer peer may append fields; fewer than v1's
  // set is malformed.
  if (!r.ok() || fields < kStatsFieldCount) return WireError::kBadPayload;
  out.submitted = r.get<std::uint64_t>();
  out.completed = r.get<std::uint64_t>();
  out.rejected = r.get<std::uint64_t>();
  out.timed_out = r.get<std::uint64_t>();
  out.cancelled = r.get<std::uint64_t>();
  out.not_found = r.get<std::uint64_t>();
  out.invalid = r.get<std::uint64_t>();
  out.shed_at_admission = r.get<std::uint64_t>();
  out.batches_formed = r.get<std::uint64_t>();
  out.batched_points = r.get<std::uint64_t>();
  out.max_batch = r.get<std::uint64_t>();
  out.connections_accepted = r.get<std::uint64_t>();
  out.frames_decoded = r.get<std::uint64_t>();
  out.frames_rejected = r.get<std::uint64_t>();
  out.eval_requests = r.get<std::uint64_t>();
  out.eval_points = r.get<std::uint64_t>();
  out.frames_in_flight_peak = 0;
  out.pipelined_frames = 0;
  out.shards.clear();
  std::uint64_t extras = fields - kStatsFieldCount;
  if (extras >= kStatsAppendedFieldCount) {
    out.frames_in_flight_peak = r.get<std::uint64_t>();
    out.pipelined_frames = r.get<std::uint64_t>();
    const auto shard_count = r.get<std::uint64_t>();
    extras -= kStatsAppendedFieldCount;
    // The declared shard triples must fit inside the declared field count;
    // a frame that claims more shards than fields is structurally broken.
    if (!r.ok() || shard_count > extras / 3) return WireError::kBadPayload;
    out.shards.assign(static_cast<std::size_t>(shard_count),
                      WireShardStats{});
    for (WireShardStats& sh : out.shards) {
      sh.submits = r.get<std::uint64_t>();
      sh.rejections = r.get<std::uint64_t>();
      sh.max_queue_depth = r.get<std::uint64_t>();
    }
    extras -= 3 * shard_count;
  }
  // Skip fields appended by a newer peer. Bail on the first overrun: a
  // garbage field count must not turn into a multi-billion-step spin.
  for (std::uint64_t k = 0; k < extras && r.ok(); ++k)
    (void)r.get<std::uint64_t>();
  return r.done() ? WireError::kNone : WireError::kBadPayload;
}

WireError decode_error(std::span<const std::uint8_t> payload, ErrorFrame& out,
                       const ProtocolLimits& limits) {
  Reader r(payload);
  out.id = r.get<std::uint64_t>();
  out.code = r.get<std::uint32_t>();
  if (!r.get_string(out.message, limits.max_error_bytes))
    return WireError::kBadPayload;
  return r.done() ? WireError::kNone : WireError::kBadPayload;
}

}  // namespace csg::net
