// Verification of the gp2idx <-> idx2gp bijection (paper Sec. 4, Alg. 5).
//
// Exhaustive mode enumerates every point of a grid in canonical order
// (level groups ascending, subspaces in Alg. 3 order, points row-major) and
// proves four properties at once:
//   1. range      — every gp2idx value lands in [0, N)
//   2. collision  — no two points share a flat index (bitmap)
//   3. layout     — indices are consecutive: subspace k of group j starts at
//                   group_offset(j) + k * 2^j and its points follow row-major
//   4. inverse    — idx2gp(gp2idx(l, i)) == (l, i), and for every flat index
//                   gp2idx(idx2gp(idx)) == idx
// Together with the enumeration visiting exactly N points, 1+2 imply
// bijectivity; 3 pins the Fig. 6 layout; 4 the inverse decode.
//
// Sampled mode draws random flat indices for grids too large to enumerate
// and checks containment plus both inverse directions per draw.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "csg/core/regular_grid.hpp"

namespace csg::testing {

struct BijectionReport {
  bool ok = true;
  /// Grid points proven correct (forward direction; the exhaustive check
  /// additionally verifies every flat index in the reverse direction).
  std::uint64_t points_checked = 0;
  /// First violation found, empty when ok.
  std::string detail;

  explicit operator bool() const { return ok; }
};

/// Exhaustive proof for one grid; O(N * d) time, N bits of scratch.
BijectionReport verify_bijection_exhaustive(const RegularSparseGrid& grid);

/// Randomized spot check: `trials` random flat indices, each decoded,
/// containment-checked and re-encoded. For shapes where N is astronomical.
BijectionReport verify_bijection_sampled(const RegularSparseGrid& grid,
                                         std::mt19937_64& rng,
                                         std::uint64_t trials);

}  // namespace csg::testing
