// Shared test-name generators for INSTANTIATE_TEST_SUITE_P sweeps.
//
// Centralised for two reasons: every (d, n) sweep across the suite gets the
// same "d<d>n<n>" label, and the names are built by appending rather than by
// chained std::string operator+ — GCC 12 misfires -Wrestrict on those chains
// at -O2 (GCC PR105651), and the hardened lane (CSG_HARDEN=ON) promotes the
// false positive to an error.
#pragma once

#include <string>

namespace csg::testing {

/// "d<d>n<n>" — canonical label of a (dimension, level) parameter case.
template <typename D, typename N>
std::string dn_name(D d, N n) {
  std::string name = "d";
  name += std::to_string(d);
  name += 'n';
  name += std::to_string(n);
  return name;
}

/// "<prefix><value>" without an operator+ chain (see header comment).
template <typename V>
std::string prefixed_name(const char* prefix, V value) {
  std::string name = prefix;
  name += std::to_string(value);
  return name;
}

}  // namespace csg::testing
