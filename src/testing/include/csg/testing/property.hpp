// Property-test harness: run a randomized check across many derived seeds,
// report the exact seed of the first failure, and replay a single seed from
// the CSG_PROPERTY_SEED environment variable.
//
// Protocol: a property body receives a freshly seeded std::mt19937_64 and
// returns an empty string on success or a failure description. The harness
// seeds iteration k with mix_seed(base_seed + k) and runs until the first
// failure; when CSG_PROPERTY_SEED is set it runs exactly one iteration with
// that seed, which is the deterministic replay of a reported failure:
//
//   [  FAILED  ] property 'round_trip' seed 0x1c8e...  <detail>
//   $ CSG_PROPERTY_SEED=0x1c8e... ctest -R round_trip   # reproduces it
//
// The harness is gtest-agnostic (csgtool selfcheck uses it too); tests
// funnel a PropertyResult through EXPECT_TRUE(r.passed) << r.detail.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>

namespace csg::testing {

struct PropertyConfig {
  std::string name;
  int iterations = 16;
  std::uint64_t base_seed = 0x5eedc0ffee5eedull;
};

struct PropertyResult {
  bool passed = true;
  int iterations_run = 0;
  /// Seed of the failing iteration (valid iff !passed). Exporting it via
  /// CSG_PROPERTY_SEED reruns exactly that case.
  std::uint64_t failing_seed = 0;
  /// Human-readable failure report, including the replay instructions.
  std::string detail;

  explicit operator bool() const { return passed; }
};

/// Body contract: empty string = pass, otherwise a failure description.
using PropertyBody = std::function<std::string(std::mt19937_64&)>;

/// The CSG_PROPERTY_SEED override, if set ("0x..." hex or decimal);
/// std::nullopt when unset or unparsable.
std::optional<std::uint64_t> seed_from_env();

/// Run `body` for cfg.iterations derived seeds (or for exactly the
/// CSG_PROPERTY_SEED seed when the environment overrides), stopping at the
/// first failure. Failures are also printed to stderr immediately so the
/// replay line survives even if the caller swallows the result.
PropertyResult run_property(const PropertyConfig& cfg,
                            const PropertyBody& body);

}  // namespace csg::testing
