// Deterministic test-input generators — the single RNG convention for every
// randomized test and benchmark in the repository.
//
// All generators draw from a caller-owned std::mt19937_64, so one seed fully
// determines a test case: shape, coefficients, and evaluation points. The
// property harness (property.hpp) derives per-iteration seeds from a base
// seed with splitmix64, prints the failing one, and replays it from the
// CSG_PROPERTY_SEED environment variable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/core/regular_grid.hpp"

namespace csg::testing {

/// splitmix64: the standard 64-bit seed scrambler. Used to derive stream
/// seeds (iteration k of base seed s -> mix_seed(s + k)) so that nearby
/// base seeds still yield unrelated streams.
inline std::uint64_t mix_seed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct GridShape {
  dim_t d;
  level_t n;
};

/// Bounds for random_shape. max_points caps N(d, n) so that a property
/// iteration's cost stays bounded no matter which (d, n) the RNG picks.
struct ShapeConstraints {
  dim_t min_dim = 1;
  dim_t max_dim = 6;
  level_t min_level = 1;
  level_t max_level = 8;
  flat_index_t max_points = 200'000;
};

/// Uniform dimension, then a level uniform over those levels whose grid
/// fits the point budget (at least min_level is always admitted).
inline GridShape random_shape(std::mt19937_64& rng,
                              const ShapeConstraints& c = {}) {
  CSG_EXPECTS(c.min_dim >= 1 && c.min_dim <= c.max_dim &&
              c.max_dim <= kMaxDim);
  CSG_EXPECTS(c.min_level >= 1 && c.min_level <= c.max_level &&
              c.max_level <= kMaxLevel);
  const auto d = static_cast<dim_t>(
      std::uniform_int_distribution<unsigned>(c.min_dim, c.max_dim)(rng));
  level_t feasible = c.min_level;
  while (feasible < c.max_level &&
         regular_grid_num_points(d, feasible + 1) <= c.max_points)
    ++feasible;
  const auto n = static_cast<level_t>(
      std::uniform_int_distribution<unsigned>(c.min_level, feasible)(rng));
  return {d, n};
}

/// A grid function with i.i.d. uniform coefficients in [lo, hi]. Not sampled
/// from any smooth function on purpose: the algebraic identities under test
/// (round trips, cross-algorithm parity, bijections) must hold for
/// arbitrary data, not just for interpolants of nice functions.
inline CompactStorage random_coefficients(std::mt19937_64& rng, dim_t d,
                                          level_t n, real_t lo = -2,
                                          real_t hi = 2) {
  CompactStorage s(d, n);
  std::uniform_real_distribution<real_t> dist(lo, hi);
  for (flat_index_t j = 0; j < s.size(); ++j) s[j] = dist(rng);
  return s;
}

inline CompactStorage random_coefficients(std::mt19937_64& rng,
                                          const GridShape& shape,
                                          real_t lo = -2, real_t hi = 2) {
  return random_coefficients(rng, shape.d, shape.n, lo, hi);
}

/// `count` i.i.d. uniform points in [0,1]^d drawn from the shared RNG
/// stream (unlike workloads::uniform_points, which owns its seed — use
/// that one when a fixed, named point cloud is wanted).
inline std::vector<CoordVector> random_points(std::mt19937_64& rng, dim_t d,
                                              std::size_t count) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  std::uniform_real_distribution<real_t> dist(0, 1);
  std::vector<CoordVector> pts(count, CoordVector(d));
  for (auto& p : pts)
    for (dim_t t = 0; t < d; ++t) p[t] = dist(rng);
  return pts;
}

/// A uniformly random flat index of the grid — the raw form of
/// random_grid_point for callers that feed gp2idx/idx2gp round trips or
/// index directly into storage.
inline flat_index_t random_flat_index(std::mt19937_64& rng,
                                      const RegularSparseGrid& grid) {
  return std::uniform_int_distribution<flat_index_t>(
      0, grid.num_points() - 1)(rng);
}

/// A uniformly random point of the grid itself: flat index first, decoded
/// through idx2gp. Used by the sampled bijection checks and by access
/// microbenchmarks that want an unbiased point mix.
inline GridPoint random_grid_point(std::mt19937_64& rng,
                                   const RegularSparseGrid& grid) {
  return grid.idx2gp(random_flat_index(rng, grid));
}

/// Every grid point exactly once, in shuffled order — the random-access
/// tour the Table 1 microbenchmarks walk. Decoding first and shuffling
/// second keeps the decode cost out of the timed region and guarantees
/// uniform coverage (unlike sampling with replacement).
inline std::vector<GridPoint> shuffled_grid_tour(std::mt19937_64& rng,
                                                 const RegularSparseGrid& grid) {
  std::vector<GridPoint> tour;
  tour.reserve(static_cast<std::size_t>(grid.num_points()));
  for (flat_index_t j = 0; j < grid.num_points(); ++j)
    tour.push_back(grid.idx2gp(j));
  std::shuffle(tour.begin(), tour.end(), rng);
  return tour;
}

/// Random subset of `k` distinct dimensions out of `d`, sorted ascending —
/// the `kept` argument of restrict_to_plane.
inline DimVector<dim_t> random_kept_dims(std::mt19937_64& rng, dim_t d,
                                         dim_t k) {
  CSG_EXPECTS(k >= 1 && k <= d);
  DimVector<dim_t> all(d);
  for (dim_t t = 0; t < d; ++t) all[t] = t;
  std::shuffle(all.begin(), all.end(), rng);
  DimVector<dim_t> kept(all.begin(), all.begin() + k);
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace csg::testing
