// ULP-aware floating point comparison for the differential oracles.
//
// Cross-algorithm checks need two regimes: the compact-structure transforms
// (iterative, pole-based, OpenMP) are bit-identical by construction, so they
// compare with 0 ULPs; the recursive baselines accumulate the same sums in a
// different association order, so they compare within a small ULP budget
// that — unlike an absolute epsilon — stays meaningful across magnitudes.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "csg/core/types.hpp"

namespace csg::testing {

/// Distance between two doubles in units of representable values, i.e. how
/// many doubles lie between a and b. 0 iff bit-identical up to -0.0 == 0.0;
/// infinite (max) if either is NaN. Works across the sign boundary by
/// mapping the IEEE-754 bit patterns onto a single monotone integer line.
inline std::uint64_t ulp_distance(real_t a, real_t b) {
  static_assert(sizeof(real_t) == sizeof(std::uint64_t));
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  auto ordered = [](real_t v) -> std::int64_t {
    const auto bits = std::bit_cast<std::int64_t>(v);
    // Negative floats order in reverse bit order; reflect them below zero.
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ia = ordered(a), ib = ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                 : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

inline bool almost_equal_ulps(real_t a, real_t b, std::uint64_t max_ulps) {
  return ulp_distance(a, b) <= max_ulps;
}

/// "a=... b=... (N ulps apart)" — the comparison half of an oracle failure
/// message, with full round-trip precision so the values can be re-derived.
inline std::string describe_mismatch(real_t a, real_t b) {
  std::ostringstream os;
  os.precision(17);
  os << "a=" << a << " b=" << b << " (" << ulp_distance(a, b)
     << " ulps apart)";
  return os.str();
}

}  // namespace csg::testing
