// Storage-agnostic differential oracles.
//
// Each oracle runs one operation through every implementation the library
// has — iterative/literal/pole-based/OpenMP on the compact structure, the
// recursive and key-value algorithms over the map/hash/prefix-tree
// baselines, the serializer — and checks that they all describe the same
// function. Comparison is ULP-aware (compare.hpp) with two budgets: the
// compact-structure family is bit-identical by construction (exact_ulps,
// default 0), while the recursive baselines re-associate the same sums and
// get a small relative budget plus an absolute floor for the near-zero
// coefficients that cancellation passes through.
//
// Oracles return a result instead of asserting, so the same code drives
// gtest properties (EXPECT_TRUE(r.ok) << r.detail), csgtool selfcheck, and
// any future fuzz driver.
#pragma once

#include <random>
#include <span>
#include <string>
#include <vector>

#include "csg/core/compact_storage.hpp"

namespace csg::testing {

struct OracleResult {
  bool ok = true;
  /// Individual value comparisons performed (coverage indicator).
  std::uint64_t comparisons = 0;
  /// First mismatch, empty when ok. Includes which implementations
  /// disagreed, at which point, and the two values with ULP distance.
  std::string detail;

  explicit operator bool() const { return ok; }
  /// Fold another oracle's outcome into this one (first failure wins).
  void merge(const OracleResult& other);
};

struct OracleOptions {
  /// Budget for the compact-structure family (iterative, literal, poles,
  /// OpenMP): these share arithmetic and order, so 0 = bit-identical.
  std::uint64_t exact_ulps = 0;
  /// Budget for cross-family comparisons (recursive baselines).
  std::uint64_t cross_ulps = 1024;
  /// Absolute floor accompanying cross_ulps / round trips: coefficients
  /// that cancel to near zero carry absolute error from the large values
  /// they were computed from, where a pure ULP budget is meaningless.
  real_t abs_floor = 1e-9;
  /// Thread count for the OpenMP variants.
  int threads = 3;
  /// Run the map/hash/prefix-tree differential baselines (the slow part).
  bool include_baselines = true;
};

/// Every hierarchization implementation agrees on `nodal` (values are
/// interpreted as nodal samples; the input is not modified).
OracleResult check_hierarchize_parity(const CompactStorage& nodal,
                                      const OracleOptions& opts = {});

/// hierarchize/dehierarchize pairings (including mixed traversals) return
/// the original array.
OracleResult check_round_trip(const CompactStorage& values,
                              const OracleOptions& opts = {});

/// Every evaluation path — plan, walk, blocked at several block sizes,
/// OpenMP, recursive/key-value over the baselines — agrees at `points`
/// (values are interpreted as hierarchical coefficients).
OracleResult check_evaluate_parity(const CompactStorage& coeffs,
                                   std::span<const CoordVector> points,
                                   const OracleOptions& opts = {});

/// Differential battery for the SoA batch kernel (DESIGN.md §14): the SoA
/// and scalar blocked paths are each pinned against the per-point reference
/// walker with the exact_ulps comparator, across a block-size sweep that
/// includes 1, the lane width +-1, and oversized blocks, plus a direct
/// evaluate_block_soa call on a hand-built PointBlock. Kernel selection is
/// flipped via set_eval_kernel and restored on exit.
OracleResult check_eval_soa_parity(const CompactStorage& coeffs,
                                   std::span<const CoordVector> points,
                                   const OracleOptions& opts = {});

/// save/load round trip is bit-exact and shape-preserving.
OracleResult check_serialize_round_trip(const CompactStorage& values);

/// The combination technique reproduces the direct interpolant: sampling
/// the component grids with the compact interpolant of `nodal` (every
/// component point lies on the sparse grid, so this equals sampling the
/// original function), the combined evaluation must agree at `points` and
/// to_compact must return the reference coefficients. Cross-validates the
/// component enumeration and weights against gp2idx/hierarchize/Alg. 7
/// through an independent representation.
OracleResult check_combination_parity(const CompactStorage& nodal,
                                      std::span<const CoordVector> points,
                                      const OracleOptions& opts = {});

/// The spatially adaptive (hash-keyed) representation seeded with the same
/// regular point set computes the same surpluses at every grid point and
/// the same interpolant at `points` as the compact structure.
OracleResult check_adaptive_parity(const CompactStorage& nodal,
                                   std::span<const CoordVector> points,
                                   const OracleOptions& opts = {});

/// The full battery on one grid function: parity, round trip, evaluation
/// differentials at a random point cloud, serialization. `nodal` is
/// interpreted as nodal samples. This is the one-call oracle property
/// tests use.
OracleResult check_all(const CompactStorage& nodal, std::mt19937_64& rng,
                       const OracleOptions& opts = {});

}  // namespace csg::testing
