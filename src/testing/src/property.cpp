#include "csg/testing/property.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "csg/testing/generators.hpp"

namespace csg::testing {

std::optional<std::uint64_t> seed_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only, pre-thread startup
  const char* raw = std::getenv("CSG_PROPERTY_SEED");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 0);  // 0x.. or dec
  if (end == raw || *end != '\0') {
    std::fprintf(stderr,
                 "csg::testing: ignoring unparsable CSG_PROPERTY_SEED='%s'\n",
                 raw);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

PropertyResult run_property(const PropertyConfig& cfg,
                            const PropertyBody& body) {
  PropertyResult result;
  const std::optional<std::uint64_t> replay = seed_from_env();

  auto run_one = [&](std::uint64_t seed) -> bool {
    std::mt19937_64 rng(seed);
    std::string failure = body(rng);
    ++result.iterations_run;
    if (failure.empty()) return true;
    result.passed = false;
    result.failing_seed = seed;
    std::ostringstream os;
    os << "property '" << cfg.name << "' failed at seed 0x" << std::hex
       << seed << std::dec << ": " << failure
       << "\n  replay: CSG_PROPERTY_SEED=0x" << std::hex << seed << std::dec
       << " <this test>";
    result.detail = os.str();
    std::fprintf(stderr, "csg::testing: %s\n", result.detail.c_str());
    return false;
  };

  if (replay.has_value()) {
    // Environment override: deterministic replay of one reported seed.
    run_one(*replay);
    return result;
  }
  for (int k = 0; k < cfg.iterations; ++k)
    if (!run_one(mix_seed(cfg.base_seed + static_cast<std::uint64_t>(k))))
      break;
  return result;
}

}  // namespace csg::testing
