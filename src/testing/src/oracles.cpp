#include "csg/testing/oracles.hpp"

#include <cmath>
#include <sstream>

#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/combination/combination_grid.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/core/point_block.hpp"
#include "csg/core/simd.hpp"
#include "csg/io/serialize.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/testing/compare.hpp"
#include "csg/testing/generators.hpp"

namespace csg::testing {

void OracleResult::merge(const OracleResult& other) {
  comparisons += other.comparisons;
  if (ok && !other.ok) {
    ok = false;
    detail = other.detail;
  }
}

namespace {

bool close(real_t a, real_t b, std::uint64_t max_ulps, real_t abs_floor) {
  return almost_equal_ulps(a, b, max_ulps) || std::fabs(a - b) <= abs_floor;
}

/// Compare two coefficient arrays laid out by the same grid; `what` names
/// the pairing for the failure report.
void compare_arrays(OracleResult& r, const CompactStorage& expected,
                    const CompactStorage& got, const std::string& what,
                    std::uint64_t max_ulps, real_t abs_floor) {
  if (!r.ok) return;
  for (flat_index_t j = 0; j < expected.size(); ++j) {
    ++r.comparisons;
    if (!close(expected[j], got[j], max_ulps, abs_floor)) {
      std::ostringstream os;
      const GridPoint gp = expected.grid().idx2gp(j);
      os << what << " disagree at idx " << j << " (l=" << gp.level
         << " i=" << gp.index << "): "
         << describe_mismatch(expected[j], got[j]);
      r.ok = false;
      r.detail = os.str();
      return;
    }
  }
}

/// Compare a baseline storage against the compact reference per point.
template <typename S>
void compare_storage(OracleResult& r, const CompactStorage& expected,
                     const S& got, const std::string& what,
                     std::uint64_t max_ulps, real_t abs_floor) {
  if (!r.ok) return;
  baselines::for_each_point(
      expected.grid(), [&](const LevelVector& l, const IndexVector& i) {
        if (!r.ok) return;
        ++r.comparisons;
        const real_t a = expected.at(l, i);
        const real_t b = got.get(l, i);
        if (!close(a, b, max_ulps, abs_floor)) {
          std::ostringstream os;
          os << what << " disagree at l=" << l << " i=" << i << ": "
             << describe_mismatch(a, b);
          r.ok = false;
          r.detail = os.str();
        }
      });
}

/// Copy the compact array into a key-value baseline storage.
template <typename S>
S to_baseline(const CompactStorage& src) {
  S out(src.grid());
  baselines::for_each_point(src.grid(),
                            [&](const LevelVector& l, const IndexVector& i) {
                              out.set(l, i, src.at(l, i));
                            });
  return out;
}

}  // namespace

OracleResult check_hierarchize_parity(const CompactStorage& nodal,
                                      const OracleOptions& opts) {
  OracleResult r;
  CompactStorage ref = nodal;
  hierarchize(ref);

  {
    CompactStorage s = nodal;
    hierarchize_literal(s);
    compare_arrays(r, ref, s, "hierarchize vs hierarchize_literal",
                   opts.exact_ulps, 0);
  }
  {
    CompactStorage s = nodal;
    hierarchize_poles(s);
    compare_arrays(r, ref, s, "hierarchize vs hierarchize_poles",
                   opts.exact_ulps, 0);
  }
  {
    CompactStorage s = nodal;
    parallel::omp_hierarchize(s, opts.threads);
    compare_arrays(r, ref, s, "hierarchize vs omp_hierarchize",
                   opts.exact_ulps, 0);
  }
  {
    CompactStorage s = nodal;
    parallel::omp_hierarchize_poles(s, opts.threads);
    compare_arrays(r, ref, s, "hierarchize vs omp_hierarchize_poles",
                   opts.exact_ulps, 0);
  }
  if (opts.include_baselines) {
    {
      auto s = to_baseline<baselines::EnhancedHashStorage>(nodal);
      baselines::hierarchize_iterative(s);
      compare_storage(r, ref, s, "hierarchize vs kv-iterative(hash)",
                      opts.exact_ulps, 0);
    }
    {
      auto s = to_baseline<baselines::PrefixTreeStorage>(nodal);
      baselines::hierarchize_recursive(s);
      compare_storage(r, ref, s, "hierarchize vs recursive(prefix-tree)",
                      opts.cross_ulps, opts.abs_floor);
    }
    {
      auto s = to_baseline<baselines::StdMapStorage>(nodal);
      parallel::omp_hierarchize_recursive(s, opts.threads);
      compare_storage(r, ref, s, "hierarchize vs omp-recursive(std-map)",
                      opts.cross_ulps, opts.abs_floor);
    }
  }
  return r;
}

OracleResult check_round_trip(const CompactStorage& values,
                              const OracleOptions& opts) {
  OracleResult r;
  struct Pairing {
    const char* name;
    void (*forward)(CompactStorage&);
    void (*inverse)(CompactStorage&);
  };
  const Pairing pairings[] = {
      {"hierarchize/dehierarchize", &hierarchize, &dehierarchize},
      {"poles/poles", &hierarchize_poles, &dehierarchize_poles},
      {"hierarchize/dehierarchize_poles", &hierarchize,
       &dehierarchize_poles},
      {"poles/dehierarchize", &hierarchize_poles, &dehierarchize},
  };
  for (const Pairing& p : pairings) {
    CompactStorage s = values;
    p.forward(s);
    p.inverse(s);
    compare_arrays(r, values, s, std::string("round trip ") + p.name,
                   opts.cross_ulps, opts.abs_floor);
  }
  {
    CompactStorage s = values;
    parallel::omp_hierarchize(s, opts.threads);
    parallel::omp_dehierarchize(s, opts.threads);
    compare_arrays(r, values, s, "round trip omp/omp", opts.cross_ulps,
                   opts.abs_floor);
  }
  return r;
}

OracleResult check_evaluate_parity(const CompactStorage& coeffs,
                                   std::span<const CoordVector> points,
                                   const OracleOptions& opts) {
  OracleResult r;
  const RegularSparseGrid& grid = coeffs.grid();
  const std::span<const real_t> raw(coeffs.data(), coeffs.values().size());

  std::vector<real_t> ref(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    ref[p] = evaluate(coeffs, points[p]);

  auto compare_values = [&](std::span<const real_t> got,
                            const std::string& what, std::uint64_t max_ulps,
                            real_t abs_floor) {
    if (!r.ok) return;
    if (got.size() != ref.size()) {
      r.ok = false;
      r.detail = what + " returned " + std::to_string(got.size()) +
                 " values for " + std::to_string(ref.size()) + " points";
      return;
    }
    for (std::size_t p = 0; p < ref.size(); ++p) {
      ++r.comparisons;
      if (!close(ref[p], got[p], max_ulps, abs_floor)) {
        std::ostringstream os;
        os << what << " disagrees at point " << p << ": "
           << describe_mismatch(ref[p], got[p]);
        r.ok = false;
        r.detail = os.str();
        return;
      }
    }
  };

  {
    std::vector<real_t> got(points.size());
    for (std::size_t p = 0; p < points.size(); ++p)
      got[p] = evaluate_span_walk(grid, raw, points[p]);
    compare_values(got, "evaluate vs evaluate_span_walk", opts.exact_ulps, 0);
  }
  compare_values(evaluate_many(coeffs, points), "evaluate vs evaluate_many",
                 opts.exact_ulps, 0);
  for (const std::size_t block : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, points.size() + 3}) {
    compare_values(evaluate_many_blocked(coeffs, points, block),
                   "evaluate vs evaluate_many_blocked(block=" +
                       std::to_string(block) + ")",
                   opts.exact_ulps, 0);
  }
  compare_values(parallel::omp_evaluate_many(coeffs, points, opts.threads),
                 "evaluate vs omp_evaluate_many", opts.exact_ulps, 0);
  compare_values(
      parallel::omp_evaluate_many_blocked(coeffs, points, 5, opts.threads),
      "evaluate vs omp_evaluate_many_blocked", opts.exact_ulps, 0);

  if (opts.include_baselines) {
    const auto tree = to_baseline<baselines::PrefixTreeStorage>(coeffs);
    const auto hash = to_baseline<baselines::EnhancedHashStorage>(coeffs);
    std::vector<real_t> rec(points.size()), kv(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      rec[p] = baselines::evaluate_recursive(tree, points[p]);
      kv[p] = baselines::evaluate_iterative(hash, points[p]);
    }
    compare_values(rec, "evaluate vs recursive(prefix-tree)", opts.cross_ulps,
                   opts.abs_floor);
    compare_values(kv, "evaluate vs kv-iterative(hash)", opts.cross_ulps,
                   opts.abs_floor);
    compare_values(
        baselines::evaluate_many_blocked_iterative(hash, points, 9),
        "evaluate vs kv-blocked(hash)", opts.cross_ulps, opts.abs_floor);
  }
  return r;
}

namespace {

/// Restores the process-wide kernel selection when a differential oracle
/// that flips it (check_eval_soa_parity) leaves scope, pass or fail.
class KernelGuard {
 public:
  KernelGuard() : saved_(eval_kernel()) {}
  ~KernelGuard() { set_eval_kernel(saved_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  EvalKernel saved_;
};

}  // namespace

OracleResult check_eval_soa_parity(const CompactStorage& coeffs,
                                   std::span<const CoordVector> points,
                                   const OracleOptions& opts) {
  OracleResult r;
  const std::span<const real_t> raw(coeffs.data(), coeffs.values().size());
  const auto plan = EvaluationPlan::shared(coeffs.grid());

  std::vector<real_t> ref(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    ref[p] = evaluate(coeffs, points[p]);

  auto compare_values = [&](std::span<const real_t> got,
                            const std::string& what) {
    if (!r.ok) return;
    if (got.size() != ref.size()) {
      r.ok = false;
      r.detail = what + " returned " + std::to_string(got.size()) +
                 " values for " + std::to_string(ref.size()) + " points";
      return;
    }
    for (std::size_t p = 0; p < ref.size(); ++p) {
      ++r.comparisons;
      if (!close(ref[p], got[p], opts.exact_ulps, 0)) {
        std::ostringstream os;
        os << what << " disagrees at point " << p << ": "
           << describe_mismatch(ref[p], got[p]);
        r.ok = false;
        r.detail = os.str();
        return;
      }
    }
  };

  // Block sweep straddling the lane width: partial tail lanes, single-point
  // blocks, one block holding everything.
  const std::size_t lane = kPointBlockLane;
  const std::size_t sweep[] = {1,        lane - 1,          lane,
                               lane + 1, 3 * lane,          points.size() + 3};
  KernelGuard guard;
  for (const EvalKernel kernel : {EvalKernel::kScalar, EvalKernel::kSoa}) {
    set_eval_kernel(kernel);
    const char* name = kernel == EvalKernel::kSoa ? "soa" : "scalar";
    for (const std::size_t block : sweep) {
      compare_values(evaluate_many_blocked(coeffs, points, block),
                     std::string("evaluate vs blocked[") + name +
                         "](block=" + std::to_string(block) + ")");
    }
    compare_values(
        parallel::omp_evaluate_many_blocked(*plan, raw, points, lane + 1,
                                            opts.threads),
        std::string("evaluate vs omp_blocked[") + name + "]");
  }

  // Direct kernel call on a hand-built PointBlock: the accumulator lanes for
  // the real points must match the walker; the padded tail is scratch.
  if (!points.empty()) {
    PointBlock block;
    block.assign(coeffs.dim(), points);
    evaluate_block_soa(*plan, raw, block);
    compare_values(std::span<const real_t>(block.accum(), points.size()),
                   "evaluate vs evaluate_block_soa(direct)");
  }
  return r;
}

OracleResult check_serialize_round_trip(const CompactStorage& values) {
  OracleResult r;
  std::stringstream blob;
  io::save(values, blob);
  const CompactStorage reloaded = io::load(blob);
  if (!(reloaded.grid() == values.grid())) {
    r.ok = false;
    r.detail = "serialize round trip changed the grid shape";
    return r;
  }
  compare_arrays(r, values, reloaded, "serialize round trip", 0, 0);
  return r;
}

OracleResult check_combination_parity(const CompactStorage& nodal,
                                      std::span<const CoordVector> points,
                                      const OracleOptions& opts) {
  OracleResult r;
  CompactStorage ref = nodal;
  hierarchize(ref);

  // Every component grid point lies on the sparse grid, so sampling the
  // components with the compact interpolant equals sampling the original
  // function there: the combination identity must then hold everywhere.
  combination::CombinationGrid combi(nodal.dim(), nodal.grid().level());
  combi.sample([&](const CoordVector& x) { return evaluate(ref, x); });

  for (std::size_t p = 0; p < points.size(); ++p) {
    ++r.comparisons;
    const real_t direct = evaluate(ref, points[p]);
    const real_t combined = combi.evaluate(points[p]);
    if (!close(direct, combined, opts.cross_ulps, opts.abs_floor)) {
      std::ostringstream os;
      os << "combination identity fails at point " << p << ": "
         << describe_mismatch(direct, combined);
      r.ok = false;
      r.detail = os.str();
      return r;
    }
  }

  // Round-tripping through the replicated representation and back must
  // reproduce the hierarchical coefficients.
  const CompactStorage regathered = combination::to_compact(combi);
  if (!(regathered.grid() == ref.grid())) {
    r.ok = false;
    r.detail = "to_compact(combination) changed the grid shape";
    return r;
  }
  compare_arrays(r, ref, regathered, "combination to_compact round trip",
                 opts.cross_ulps, opts.abs_floor);
  return r;
}

OracleResult check_adaptive_parity(const CompactStorage& nodal,
                                   std::span<const CoordVector> points,
                                   const OracleOptions& opts) {
  OracleResult r;
  CompactStorage ref = nodal;
  hierarchize(ref);

  adaptive::AdaptiveSparseGrid adaptive(nodal.dim(), nodal.grid().level());
  if (adaptive.num_points() != nodal.grid().num_points()) {
    r.ok = false;
    r.detail = "adaptive grid seeded at level " +
               std::to_string(nodal.grid().level()) + " holds " +
               std::to_string(adaptive.num_points()) + " points, compact has " +
               std::to_string(nodal.grid().num_points());
    return r;
  }
  baselines::for_each_point(
      nodal.grid(), [&](const LevelVector& l, const IndexVector& i) {
        adaptive.set_node(GridPoint{l, i}, nodal.at(l, i), 0);
      });
  adaptive.hierarchize();

  // The unstructured hierarchization (per-node ancestor walks) must find
  // the same surpluses the compact unidirectional passes compute.
  adaptive.for_each_node([&](const adaptive::AdaptiveSparseGrid::Node& node) {
    if (!r.ok) return;
    ++r.comparisons;
    const real_t expected = ref.at(node.point.level, node.point.index);
    if (!close(expected, node.surplus, opts.cross_ulps, opts.abs_floor)) {
      std::ostringstream os;
      os << "adaptive surplus disagrees at l=" << node.point.level
         << " i=" << node.point.index << ": "
         << describe_mismatch(expected, node.surplus);
      r.ok = false;
      r.detail = os.str();
    }
  });
  if (!r.ok) return r;

  for (std::size_t p = 0; p < points.size(); ++p) {
    ++r.comparisons;
    const real_t direct = evaluate(ref, points[p]);
    const real_t adapted = adaptive.evaluate(points[p]);
    if (!close(direct, adapted, opts.cross_ulps, opts.abs_floor)) {
      std::ostringstream os;
      os << "adaptive interpolant disagrees at point " << p << ": "
         << describe_mismatch(direct, adapted);
      r.ok = false;
      r.detail = os.str();
      return r;
    }
  }
  return r;
}

OracleResult check_all(const CompactStorage& nodal, std::mt19937_64& rng,
                       const OracleOptions& opts) {
  OracleResult r;
  r.merge(check_hierarchize_parity(nodal, opts));
  r.merge(check_round_trip(nodal, opts));
  CompactStorage coeffs = nodal;
  hierarchize(coeffs);
  const auto pts = random_points(rng, nodal.dim(), 48);
  r.merge(check_evaluate_parity(coeffs, pts, opts));
  r.merge(check_eval_soa_parity(coeffs, pts, opts));
  r.merge(check_serialize_round_trip(coeffs));
  return r;
}

}  // namespace csg::testing
