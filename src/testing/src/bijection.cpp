#include "csg/testing/bijection.hpp"

#include <sstream>
#include <vector>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg::testing {

namespace {

std::string format_point(const LevelVector& l, const IndexVector& i) {
  std::ostringstream os;
  os << "l=" << l << " i=" << i;
  return os.str();
}

/// Advance the row-major index odometer of subspace l; false when wrapped.
bool advance_index(const LevelVector& l, IndexVector& i) {
  for (dim_t t = l.size(); t-- > 0;) {
    i[t] += 2;
    if (i[t] < (index1d_t{1} << (l[t] + 1))) return true;
    i[t] = 1;
  }
  return false;
}

}  // namespace

BijectionReport verify_bijection_exhaustive(const RegularSparseGrid& grid) {
  BijectionReport report;
  const dim_t d = grid.dim();
  const flat_index_t total = grid.num_points();
  std::vector<bool> seen(static_cast<std::size_t>(total), false);

  auto fail = [&](const std::string& what) {
    report.ok = false;
    report.detail = what;
  };

  // Forward sweep in canonical enumeration order: range, collisions,
  // consecutive layout, and idx2gp o gp2idx == id.
  for (level_t j = 0; j < grid.level() && report.ok; ++j) {
    flat_index_t expected = grid.group_offset(j);
    for (const LevelVector& l : LevelRange(d, j)) {
      IndexVector i(d, 1);
      do {
        const flat_index_t idx = grid.gp2idx(l, i);
        if (idx >= total) {
          fail("gp2idx out of range: " + format_point(l, i) + " -> " +
               std::to_string(idx) + " >= N=" + std::to_string(total));
          break;
        }
        if (idx != expected) {
          fail("layout not consecutive: " + format_point(l, i) + " -> " +
               std::to_string(idx) + ", expected " +
               std::to_string(expected));
          break;
        }
        if (seen[static_cast<std::size_t>(idx)]) {
          fail("collision: " + format_point(l, i) + " -> " +
               std::to_string(idx) + " already taken");
          break;
        }
        seen[static_cast<std::size_t>(idx)] = true;
        const GridPoint back = grid.idx2gp(idx);
        if (back.level != l || back.index != i) {
          fail("idx2gp(gp2idx(" + format_point(l, i) + ")) = " +
               format_point(back.level, back.index));
          break;
        }
        ++report.points_checked;
        ++expected;
      } while (advance_index(l, i));
      if (!report.ok) break;
    }
  }
  if (!report.ok) return report;

  // The enumeration visited exactly N distinct in-range indices, so gp2idx
  // is onto; sweep the reverse direction independently.
  if (report.points_checked != total) {
    fail("enumeration visited " + std::to_string(report.points_checked) +
         " points, grid claims " + std::to_string(total));
    return report;
  }
  for (flat_index_t idx = 0; idx < total; ++idx) {
    const GridPoint gp = grid.idx2gp(idx);
    if (!grid.contains(gp)) {
      fail("idx2gp(" + std::to_string(idx) + ") = " +
           format_point(gp.level, gp.index) + " not contained in grid");
      return report;
    }
    const flat_index_t back = grid.gp2idx(gp);
    if (back != idx) {
      fail("gp2idx(idx2gp(" + std::to_string(idx) + ")) = " +
           std::to_string(back));
      return report;
    }
  }
  return report;
}

BijectionReport verify_bijection_sampled(const RegularSparseGrid& grid,
                                         std::mt19937_64& rng,
                                         std::uint64_t trials) {
  BijectionReport report;
  std::uniform_int_distribution<flat_index_t> dist(0, grid.num_points() - 1);
  for (std::uint64_t k = 0; k < trials; ++k) {
    const flat_index_t idx = dist(rng);
    const GridPoint gp = grid.idx2gp(idx);
    if (!grid.contains(gp)) {
      report.ok = false;
      report.detail = "idx2gp(" + std::to_string(idx) + ") = " +
                      format_point(gp.level, gp.index) +
                      " not contained in grid";
      return report;
    }
    const flat_index_t back = grid.gp2idx(gp);
    if (back != idx) {
      report.ok = false;
      report.detail = "gp2idx(idx2gp(" + std::to_string(idx) +
                      ")) = " + std::to_string(back);
      return report;
    }
    ++report.points_checked;
  }
  return report;
}

}  // namespace csg::testing
