// Umbrella header for the csg core library: the compact sparse grid data
// structure (gp2idx bijection, contiguous storage) and the iterative
// hierarchization / evaluation algorithms of Murarasu et al., PPoPP'11.
#pragma once

#include "csg/core/binomial_table.hpp"
#include "csg/core/boundary_grid.hpp"
#include "csg/core/calculus.hpp"
#include "csg/core/compact_storage.hpp"
#include "csg/core/dim_vector.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/evaluation_plan.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/core/level_enumeration.hpp"
#include "csg/core/regular_grid.hpp"
#include "csg/core/restriction.hpp"
#include "csg/core/thread_annotations.hpp"
#include "csg/core/truncated.hpp"
#include "csg/core/types.hpp"
