// Grid points of the hierarchical basis and their 1d hierarchy relations.
//
// A point is a pair (l, i) of level and index vectors (0-based levels).
// In each dimension the point (l_t, i_t) sits at x_t = i_t * 2^{-(l_t+1)},
// its hat basis has support [x - h, x + h] with h = 2^{-(l_t+1)}, and its
// hierarchical parents are the grid points at the two support endpoints
// (Fig. 5 right). Endpoints on the domain boundary have no parent; for the
// zero-boundary grids of the paper their value contribution is 0.
#pragma once

#include <bit>
#include <cmath>

#include "csg/core/dim_vector.hpp"
#include "csg/core/types.hpp"

namespace csg {

/// A sparse grid point: level vector + index vector, componentwise
/// 1 <= i_t <= 2^{l_t+1} - 1 with i_t odd.
struct GridPoint {
  LevelVector level;
  IndexVector index;

  friend bool operator==(const GridPoint&, const GridPoint&) = default;
};

/// The result of a 1d parent lookup: either a real grid point (level, index)
/// or the domain boundary (x = 0 or x = 1), where zero-boundary functions
/// contribute nothing.
struct Parent1d {
  bool is_boundary;
  level_t level;    // valid iff !is_boundary
  index1d_t index;  // valid iff !is_boundary

  static Parent1d boundary() { return {true, 0, 0}; }
  static Parent1d at(level_t l, index1d_t i) { return {false, l, i}; }
};

/// Coordinate of the 1d point (l, i): i * 2^{-(l+1)}.
inline real_t coordinate_1d(level_t l, index1d_t i) {
  return std::ldexp(static_cast<real_t>(i), -static_cast<int>(l + 1));
}

/// Coordinates of a d-dimensional grid point.
inline CoordVector coordinates(const GridPoint& gp) {
  CoordVector x(gp.level.size());
  for (dim_t t = 0; t < x.size(); ++t)
    x[t] = coordinate_1d(gp.level[t], gp.index[t]);
  return x;
}

namespace detail {
/// Decompose the even endpoint index e = i -+ 1 (at level l) into the grid
/// point at coordinate e * 2^{-(l+1)}: strip the trailing zero bits s of e;
/// the parent lives at 0-based level l - s with odd index e >> s.
inline Parent1d endpoint_to_parent(level_t l, index1d_t e) {
  if (e == 0) return Parent1d::boundary();          // x = 0
  const int s = std::countr_zero(e);
  if (static_cast<level_t>(s) > l) return Parent1d::boundary();  // x = 1
  return Parent1d::at(l - static_cast<level_t>(s), e >> s);
}
}  // namespace detail

/// Left hierarchical parent of the 1d point (l, i): the grid point at the
/// left end of the basis support, coordinate (i-1) * 2^{-(l+1)}.
inline Parent1d left_parent_1d(level_t l, index1d_t i) {
  CSG_ASSERT(i % 2 == 1);
  return detail::endpoint_to_parent(l, i - 1);
}

/// Right hierarchical parent of the 1d point (l, i), coordinate
/// (i+1) * 2^{-(l+1)}.
inline Parent1d right_parent_1d(level_t l, index1d_t i) {
  CSG_ASSERT(i % 2 == 1);
  return detail::endpoint_to_parent(l, i + 1);
}

/// Hierarchical children of the 1d point (l, i): both on level l + 1, at
/// indices 2i - 1 (left) and 2i + 1 (right).
inline index1d_t left_child_index_1d(index1d_t i) { return 2 * i - 1; }
inline index1d_t right_child_index_1d(index1d_t i) { return 2 * i + 1; }

/// The 1d hat function of the point (l, i) evaluated at x:
/// max(1 - |x - x_{l,i}| / h, 0) with h = 2^{-(l+1)}.
inline real_t hat_basis_1d(level_t l, index1d_t i, real_t x) {
  const real_t h_inv = std::ldexp(real_t{1}, static_cast<int>(l + 1));
  const real_t v = real_t{1} - std::abs(x * h_inv - static_cast<real_t>(i));
  return v > 0 ? v : 0;
}

/// Index (odd) of the level-l basis function whose support contains x,
/// for x in [0, 1]. This is the cell-locate step of Alg. 7 lines 9-12.
/// At x == 1 the last cell is returned; its hat evaluates to 0 there, which
/// is exactly the zero-boundary convention.
inline index1d_t support_index_1d(level_t l, real_t x) {
  CSG_ASSERT(x >= 0 && x <= 1);
  auto cell = static_cast<index1d_t>(std::ldexp(x, static_cast<int>(l)));
  const index1d_t max_cell = (index1d_t{1} << l) - 1;
  if (cell > max_cell) cell = max_cell;  // guards x == 1-eps rounding up
  return 2 * cell + 1;
}

/// True iff (l, i) is a valid interior grid point in one dimension.
inline bool valid_point_1d(level_t l, index1d_t i) {
  return i % 2 == 1 && i >= 1 && i < (index1d_t{1} << (l + 1));
}

/// True iff gp is a structurally valid grid point of any grid with dimension
/// gp.level.size().
inline bool valid_point(const GridPoint& gp) {
  if (gp.level.size() != gp.index.size() || gp.level.empty()) return false;
  for (dim_t t = 0; t < gp.level.size(); ++t)
    if (!valid_point_1d(gp.level[t], gp.index[t])) return false;
  return true;
}

}  // namespace csg
