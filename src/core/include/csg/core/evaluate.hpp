// Iterative evaluation (interpolation) of a sparse grid function at
// arbitrary points of [0,1]^d — paper Alg. 7.
//
// The sum over all basis functions collapses to one term per subspace: in a
// regular subspace exactly one hat has the query point in its support. The
// subspaces are walked with the next_level iterator, so neither gp2idx nor
// idx2gp is needed, and the coefficient offset advances by 2^j per subspace.
#pragma once

#include <span>
#include <vector>

#include "csg/core/compact_storage.hpp"

namespace csg {

/// Evaluate a coefficient array laid out by `grid` at one point x in
/// [0,1]^d. The span form exists so that sub-grid views (e.g. the boundary
/// decomposition of Sec. 4.4) can be evaluated without copying.
real_t evaluate_span(const RegularSparseGrid& grid,
                     std::span<const real_t> coeffs, const CoordVector& x);

/// Evaluate the sparse grid function at one point x in [0,1]^d.
real_t evaluate(const CompactStorage& storage, const CoordVector& x);

/// Evaluate at many points; the straightforward loop over evaluate().
std::vector<real_t> evaluate_many(const CompactStorage& storage,
                                  std::span<const CoordVector> points);

/// Cache-blocked evaluation (paper Sec. 4.3): the subspace loop is hoisted
/// outside a block of evaluation points, so one subspace's coefficients are
/// reused across the whole block while they are hot in cache.
std::vector<real_t> evaluate_many_blocked(const CompactStorage& storage,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size = 64);

}  // namespace csg
