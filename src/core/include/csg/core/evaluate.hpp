// Iterative evaluation (interpolation) of a sparse grid function at
// arbitrary points of [0,1]^d — paper Alg. 7.
//
// The sum over all basis functions collapses to one term per subspace: in a
// regular subspace exactly one hat has the query point in its support, and
// the coefficient offset advances by 2^j per subspace. The subspaces are
// visited through an EvaluationPlan — a one-time flattening of the level
// enumeration into contiguous arrays — so the per-point inner loop is a
// linear scan with no level-vector rederivation. A reference walker that
// still derives levels with first_level/advance_level is kept for parity
// tests and as the benchmark baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/core/evaluation_plan.hpp"
#include "csg/core/point_block.hpp"

namespace csg {

/// Evaluate a coefficient array laid out by `grid` at one point x in
/// [0,1]^d. The span form exists so that sub-grid views (e.g. the boundary
/// decomposition of Sec. 4.4) can be evaluated without copying. Fetches the
/// shared plan for (d, n); callers holding a plan use the overload below.
real_t evaluate_span(const RegularSparseGrid& grid,
                     std::span<const real_t> coeffs, const CoordVector& x);

/// Plan-based core: one linear scan over the flattened subspaces.
real_t evaluate_span(const EvaluationPlan& plan,
                     std::span<const real_t> coeffs, const CoordVector& x);

/// Reference implementation of Alg. 7 that re-derives every level vector
/// with first_level/advance_level. Bit-identical to the plan-based path;
/// retained so tests can pin the plan down and benchmarks can report the
/// plan's speedup against it.
real_t evaluate_span_walk(const RegularSparseGrid& grid,
                          std::span<const real_t> coeffs,
                          const CoordVector& x);

/// Evaluate the sparse grid function at one point x in [0,1]^d.
real_t evaluate(const CompactStorage& storage, const CoordVector& x);

/// Evaluate at many points; fetches the plan once and loops over points.
std::vector<real_t> evaluate_many(const CompactStorage& storage,
                                  std::span<const CoordVector> points);

/// Cache-blocked evaluation (paper Sec. 4.3): the subspace loop is hoisted
/// outside a block of evaluation points, so one subspace's coefficients are
/// reused across the whole block while they are hot in cache.
std::vector<real_t> evaluate_many_blocked(const CompactStorage& storage,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size = 64);

/// Plan-held variant of the blocked evaluation.
std::vector<real_t> evaluate_many_blocked(const EvaluationPlan& plan,
                                          std::span<const real_t> coeffs,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size = 64);

/// Blocked accumulation into a caller-provided, zero-initialized output
/// range (out.size() == points.size()). This is the shared core of the
/// sequential and the OpenMP blocked paths: a parallel caller hands each
/// thread a disjoint (points, out) slice and needs no reduction or barrier.
/// Each block runs through the SoA kernel below (a thread-local PointBlock
/// arena is transposed once per block and reused across calls), unless the
/// scalar path is selected via set_eval_kernel/CSG_FORCE_SCALAR_EVAL.
void evaluate_blocked_into(const EvaluationPlan& plan,
                           std::span<const real_t> coeffs,
                           std::span<const CoordVector> points,
                           std::size_t block_size, std::span<real_t> out);

/// SoA batch kernel (DESIGN.md §14): accumulate the interpolant for every
/// point of `block` into block.accum(). The inner loops run one subspace
/// against a full lane of points with `#pragma omp simd`; the boundary and
/// support tests of Alg. 7 are arithmetic selects, so the loop body is
/// branch-free and vectorizes. For finite coefficients the result is
/// bit-identical to the scalar path per point; tests pin ULP-0 equality
/// through the comparator (which also identifies +0 and -0).
void evaluate_block_soa(const EvaluationPlan& plan,
                        std::span<const real_t> coeffs, PointBlock& block);

/// Which batch kernel evaluate_blocked_into runs. kAuto defers to the
/// CSG_FORCE_SCALAR_EVAL environment variable (set and non-"0" forces the
/// scalar path); kSoa/kScalar pin the choice programmatically — the
/// differential tests and `csgtool evalbatch --soa|--scalar` use this.
enum class EvalKernel : std::uint8_t { kAuto = 0, kSoa = 1, kScalar = 2 };

/// Process-wide kernel selection override (relaxed atomic; flip only from
/// a quiesced state — tests and CLI setup, not mid-batch).
void set_eval_kernel(EvalKernel kernel);
EvalKernel eval_kernel();

/// The resolved decision: true iff evaluate_blocked_into will run the SoA
/// kernel for the current selection + environment.
bool eval_uses_soa();

/// Deterministic SoA kernel tallies (relaxed atomics): blocks and
/// kPointBlockLane-wide lanes fed through evaluate_block_soa, and subspaces
/// visited (subspace_count summed over blocks). The benches gate on these.
struct SoaKernelStats {
  std::uint64_t blocks = 0;
  std::uint64_t lanes = 0;
  std::uint64_t subspaces_visited = 0;
};
SoaKernelStats soa_kernel_stats();
void reset_soa_kernel_stats();

}  // namespace csg
