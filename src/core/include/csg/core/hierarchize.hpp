// Iterative hierarchization / dehierarchization on CompactStorage
// (paper Alg. 6 and its inverse).
//
// Hierarchization converts nodal values (samples of f at grid points) into
// hierarchical coefficients, one dimension at a time. Within a dimension the
// level groups are processed in descending |l|_1 order so that a point's
// update reads its dimension-t parents while they still hold their previous
// (pre-update-in-t) values — exactly the dependency order the paper enforces
// with per-group barriers on the GPU.
#pragma once

#include "csg/core/compact_storage.hpp"

namespace csg {

/// Flat position of the dimension-t left/right hierarchical parent of the
/// point (l, i), or ~0 if the parent is the domain boundary (contribution 0
/// for the zero-boundary grids of the paper).
inline constexpr flat_index_t kBoundaryParent = ~flat_index_t{0};

flat_index_t parent_flat_index(const RegularSparseGrid& grid, LevelVector l,
                               IndexVector i, dim_t t, bool right);

/// In-place hierarchization (Alg. 6), subspace-wise traversal: per dimension,
/// level groups descending, subspaces enumerated with next_level, points via
/// an index odometer. O(N * d^2) like the paper's version, but without the
/// per-point idx2gp decode.
void hierarchize(CompactStorage& storage);

/// Literal transcription of Alg. 6: per dimension, one flat loop
/// j = N-1 ... 0 with a full idx2gp decode per point. Kept as an executable
/// reference for tests and the ablation benchmarks.
void hierarchize_literal(CompactStorage& storage);

/// Pole-based in-place hierarchization: the unidirectional principle.
/// For each dimension, the grid decomposes into 1d "poles" (all points
/// sharing every coordinate except dimension t). Within a subspace family
/// l' = l except l'[t] = lev, the flat position factors as
///   offs[lev] + A * 2^lev * S + c * S + B
/// with A/B the row-major prefix/suffix of the other dimensions and
/// S = prod_{s>t} 2^{l_s}, so the classic scalar Alg. 1 recursion runs on
/// direct index arithmetic — no gp2idx, no idx2gp, no parent lookups at
/// all. Same O(N d) operation count as hierarchize() but with the lowest
/// constant; results are bit-identical. Exposed both as the fastest CPU
/// path and as an ablation subject (bench_ablation_traversal).
void hierarchize_poles(CompactStorage& storage);

/// Pole-based inverse transform (mirror of hierarchize_poles).
void dehierarchize_poles(CompactStorage& storage);

/// In-place inverse transform: hierarchical coefficients back to nodal
/// values (the decompression counterpart used by round-trip tests and the
/// Fig. 1 pipeline). Processes dimensions in reverse and level groups in
/// ascending order.
void dehierarchize(CompactStorage& storage);

}  // namespace csg
