// DimVector<T>: a fixed-capacity inline vector sized by the number of grid
// dimensions. Level vectors, index vectors and coordinate tuples are all
// DimVectors, so the hot paths (gp2idx, next, evaluation) never touch the
// heap and copies are trivial memcpys.
#pragma once

#include <algorithm>
#include <compare>
#include <initializer_list>
#include <iterator>
#include <numeric>
#include <ostream>
#include <type_traits>

#include "csg/core/types.hpp"

namespace csg {

template <typename T>
class DimVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "DimVector is designed for trivially copyable element types");

 public:
  using value_type = T;
  using size_type = dim_t;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr DimVector() = default;

  /// Construct with `size` copies of `fill`.
  constexpr explicit DimVector(dim_t size, T fill = T{}) : size_(size) {
    CSG_EXPECTS(size <= kMaxDim);
    std::fill_n(data_, size_, fill);
  }

  constexpr DimVector(std::initializer_list<T> init)
      : size_(static_cast<dim_t>(init.size())) {
    CSG_EXPECTS(init.size() <= kMaxDim);
    std::copy(init.begin(), init.end(), data_);
  }

  template <std::input_iterator InputIt>
  constexpr DimVector(InputIt first, InputIt last) {
    for (; first != last; ++first) push_back(static_cast<T>(*first));
  }

  constexpr dim_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  static constexpr dim_t capacity() { return kMaxDim; }

  constexpr T& operator[](dim_t pos) {
    CSG_ASSERT(pos < size_);
    return data_[pos];
  }
  constexpr const T& operator[](dim_t pos) const {
    CSG_ASSERT(pos < size_);
    return data_[pos];
  }

  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr T* data() { return data_; }
  constexpr const T* data() const { return data_; }

  constexpr iterator begin() { return data_; }
  constexpr const_iterator begin() const { return data_; }
  constexpr const_iterator cbegin() const { return data_; }
  constexpr iterator end() { return data_ + size_; }
  constexpr const_iterator end() const { return data_ + size_; }
  constexpr const_iterator cend() const { return data_ + size_; }

  constexpr void push_back(T value) {
    CSG_EXPECTS(size_ < kMaxDim);
    data_[size_++] = value;
  }

  constexpr void pop_back() {
    CSG_EXPECTS(size_ > 0);
    --size_;
  }

  constexpr void resize(dim_t new_size, T fill = T{}) {
    CSG_EXPECTS(new_size <= kMaxDim);
    if (new_size > size_) std::fill(data_ + size_, data_ + new_size, fill);
    size_ = new_size;
  }

  constexpr void clear() { size_ = 0; }

  /// Sum of all components (|l|_1 for a level vector). The result type is
  /// widened to avoid overflow for narrow T.
  constexpr std::uint64_t l1_norm() const {
    std::uint64_t acc = 0;
    for (dim_t t = 0; t < size_; ++t) acc += static_cast<std::uint64_t>(data_[t]);
    return acc;
  }

  /// Maximum component (|l|_inf for a level vector). Zero for empty vectors.
  constexpr T linf_norm() const {
    T acc{};
    for (dim_t t = 0; t < size_; ++t) acc = std::max(acc, data_[t]);
    return acc;
  }

  friend constexpr bool operator==(const DimVector& a, const DimVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  /// Lexicographic order; shorter vectors order first on ties.
  friend constexpr auto operator<=>(const DimVector& a, const DimVector& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(), b.begin(),
                                                  b.end());
  }

  friend std::ostream& operator<<(std::ostream& os, const DimVector& v) {
    os << '(';
    for (dim_t t = 0; t < v.size_; ++t) {
      if (t) os << ',';
      os << +v.data_[t];
    }
    return os << ')';
  }

 private:
  T data_[kMaxDim] = {};
  dim_t size_ = 0;
};

/// A subspace level vector l (0-based levels, paper Sec. 4).
using LevelVector = DimVector<level_t>;
/// A spatial index vector i (odd components, 1 <= i_t < 2^{l_t+1}).
using IndexVector = DimVector<index1d_t>;
/// A point in [0,1]^d.
using CoordVector = DimVector<real_t>;

}  // namespace csg
