// Lossy compression by surplus truncation.
//
// Hierarchical coefficients ARE local error indicators: dropping every
// |alpha| <= eps leaves an interpolant whose pointwise error is bounded by
// the sum over level groups of the largest dropped surplus per subspace
// (at any x at most one basis per subspace is active, and |phi| <= 1).
// For smooth data the surpluses decay ~4x per level (Sec. 2), so most of
// the fine-level coefficients vanish and the storage shrinks far below
// the already-compact 8 bytes/point — the natural second compression
// stage for the paper's Fig. 1 storage box.
//
// The kept coefficients are stored as sorted (flat index, value) pairs.
// Evaluation walks subspaces exactly like Alg. 7; because the target flat
// positions are strictly increasing along the walk, the lookup is a
// forward merge — O(#subspaces + kept) per evaluation, no hashing, no
// per-point keys beyond one index word.
#pragma once

#include <vector>

#include "csg/core/compact_storage.hpp"

namespace csg {

class TruncatedStorage {
 public:
  /// Keep only coefficients with |alpha| > epsilon.
  TruncatedStorage(const CompactStorage& source, real_t epsilon);

  /// Reassemble from previously extracted parts (deserialization).
  /// `indices` must be strictly increasing positions within `grid`.
  TruncatedStorage(RegularSparseGrid grid, std::vector<flat_index_t> indices,
                   std::vector<real_t> values, real_t error_bound);

  const RegularSparseGrid& grid() const { return grid_; }
  std::size_t kept_count() const { return indices_.size(); }
  std::size_t dropped_count() const {
    return static_cast<std::size_t>(grid_.num_points()) - kept_count();
  }

  /// Guaranteed bound on max_x |fs(x) - fs_truncated(x)|: the sum over
  /// subspaces of the largest dropped |alpha| in that subspace.
  real_t error_bound() const { return error_bound_; }

  /// Fraction of the dense compact payload still stored (pairs are 16 B
  /// vs 8 B dense, so ratios below 0.5 mean net savings).
  double payload_ratio() const {
    return static_cast<double>(memory_bytes()) /
           (static_cast<double>(grid_.num_points()) * sizeof(real_t));
  }

  std::size_t memory_bytes() const {
    return indices_.size() * (sizeof(flat_index_t) + sizeof(real_t));
  }

  /// Interpolate at x (Alg. 7 walk + forward index merge).
  real_t evaluate(const CoordVector& x) const;

  /// Expand back to the dense compact representation (dropped
  /// coefficients become exact zeros).
  CompactStorage densify() const;

  const std::vector<flat_index_t>& indices() const { return indices_; }
  const std::vector<real_t>& values() const { return values_; }

 private:
  RegularSparseGrid grid_;
  std::vector<flat_index_t> indices_;  // strictly increasing
  std::vector<real_t> values_;
  real_t error_bound_ = 0;
};

}  // namespace csg
