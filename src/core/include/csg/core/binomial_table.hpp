// The binmat lookup table (paper Sec. 4.2): gp2idx needs binomial
// coefficients C(t + s, t) for t < d and s <= n on its innermost path, so we
// precompute Pascal's triangle once per grid and answer lookups in O(1).
//
// The paper stores an n x d matrix in GPU constant memory; on the CPU the
// full triangle up to row d - 1 + n is a few kilobytes and lives comfortably
// in L1, which is what makes the "zero cache misses from gp2idx itself"
// argument of Sec. 4.3 hold.
#pragma once

#include <vector>

#include "csg/core/types.hpp"

namespace csg {

class BinomialTable {
 public:
  BinomialTable() = default;

  /// Precompute all C(a, b) for 0 <= b <= a <= max_row.
  explicit BinomialTable(std::uint32_t max_row) : max_row_(max_row) {
    rows_.resize(static_cast<std::size_t>(max_row + 1) * (max_row + 2) / 2);
    for (std::uint32_t a = 0; a <= max_row; ++a) {
      row_ptr(a)[0] = 1;
      row_ptr(a)[a] = 1;
      for (std::uint32_t b = 1; b < a; ++b) {
        const std::uint64_t v = row_ptr(a - 1)[b - 1] + row_ptr(a - 1)[b];
        CSG_ASSERT(v >= row_ptr(a - 1)[b - 1] && "binomial overflow");
        row_ptr(a)[b] = v;
      }
    }
  }

  /// C(a, b); requires a <= max_row(). Returns 0 for b > a, matching the
  /// combinatorial convention.
  std::uint64_t operator()(std::uint32_t a, std::uint32_t b) const {
    CSG_EXPECTS(a <= max_row_);
    if (b > a) return 0;
    return row_ptr(a)[b];
  }

  std::uint32_t max_row() const { return max_row_; }

  /// Triangle-packed flat storage and its index function, exposed so the
  /// GPU simulator can mirror binmat into constant/shared memory.
  const std::vector<std::uint64_t>& flat() const { return rows_; }
  static constexpr std::size_t flat_index(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::size_t>(a) * (a + 1) / 2 + b;
  }

  /// Bytes of table payload (reported by the memory benchmarks; the paper
  /// counts binmat as part of its data structure's footprint).
  std::size_t payload_bytes() const { return rows_.size() * sizeof(std::uint64_t); }

 private:
  std::uint64_t* row_ptr(std::uint32_t a) {
    return rows_.data() + static_cast<std::size_t>(a) * (a + 1) / 2;
  }
  const std::uint64_t* row_ptr(std::uint32_t a) const {
    return rows_.data() + static_cast<std::size_t>(a) * (a + 1) / 2;
  }

  std::uint32_t max_row_ = 0;
  std::vector<std::uint64_t> rows_{1};  // C(0,0) = 1
};

/// One-shot binomial coefficient, computed multiplicatively in O(min(b, a-b)).
/// This is the "on the fly" variant the paper ablates against binmat
/// (Sec. 5.3: on-the-fly computation makes hierarchization ~4x slower).
constexpr std::uint64_t binomial_on_the_fly(std::uint32_t a, std::uint32_t b) {
  if (b > a) return 0;
  if (b > a - b) b = a - b;
  std::uint64_t result = 1;
  for (std::uint32_t k = 1; k <= b; ++k) {
    // Multiply before dividing: result * (a - b + k) is always divisible by k
    // here because result holds C(a-b+k-1, k-1) * ... — the running product of
    // a full prefix of the multiplicative formula.
    result = result * (a - b + k) / k;
  }
  return result;
}

}  // namespace csg
