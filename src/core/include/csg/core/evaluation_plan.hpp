// EvaluationPlan: a one-time flattening of the level-group enumeration into
// contiguous arrays, so the Alg. 7 subspace walk becomes a linear scan.
//
// evaluate() visits every subspace of the grid once per query point. The
// iterator walk (first_level/advance_level) re-derives each level vector on
// every visit; amortized over a batch of points that is pure overhead, and
// its branchy data-dependent scan defeats prefetching. The plan precomputes
//  * packed_levels(): all level vectors back to back (subspace s occupies
//    entries [s*d, (s+1)*d)), in the exact Alg. 3 enumeration order, and
//  * offsets(): the flat coefficient base (index2 + index3 of Alg. 5) of
//    every subspace,
// turning the inner loop of Alg. 7 into "for s: read d levels, read one
// base, accumulate" over two contiguous arrays. The plan depends only on
// (d, n), costs O(|subspaces| * d) memory — tiny next to the coefficient
// array — and is shared read-only by any number of threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "csg/core/regular_grid.hpp"

namespace csg {

class EvaluationPlan {
 public:
  /// Flatten the subspace enumeration of `grid`. O(|subspaces| * d).
  explicit EvaluationPlan(const RegularSparseGrid& grid);

  dim_t dim() const { return d_; }
  level_t level() const { return n_; }

  /// Total coefficients the planned grid addresses (== grid.num_points()).
  flat_index_t num_points() const { return num_points_; }

  /// Number of subspaces across all level groups (= C(d+n-1, d)).
  std::size_t subspace_count() const { return offsets_.size(); }

  /// All level vectors, packed row-major: subspace s is
  /// packed_levels()[s*dim() .. s*dim()+dim()-1], in enumeration order.
  const level_t* packed_levels() const { return levels_.data(); }

  /// Per-subspace flat base offset of the first coefficient
  /// (index2 + index3 of Alg. 5), aligned with packed_levels().
  const flat_index_t* offsets() const { return offsets_.data(); }

  /// Unpacked level vector of subspace s (convenience for tests/tools).
  LevelVector level_of(std::size_t s) const {
    CSG_EXPECTS(s < subspace_count());
    const level_t* base = levels_.data() + s * d_;
    return LevelVector(base, base + d_);
  }

  /// Bytes held by the two plan arrays.
  std::size_t memory_bytes() const {
    return levels_.size() * sizeof(level_t) +
           offsets_.size() * sizeof(flat_index_t);
  }

  /// Observable state of the process-wide plan cache (all counters are
  /// cumulative since process start or the last shared_cache_clear()).
  struct SharedCacheStats {
    std::size_t size = 0;      ///< plans currently resident
    std::size_t capacity = 0;  ///< LRU bound (>= 1)
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< lookups that had to build a plan
    std::uint64_t evictions = 0;   ///< plans dropped by the LRU bound
    std::uint64_t build_races = 0; ///< concurrent builds of the same key
                                   ///< resolved to the first insert
    /// Bytes of the plans currently resident — live state only: an evicted
    /// plan's bytes leave this figure even while callers still hold it.
    std::size_t memory_bytes = 0;
  };

  /// Process-wide plan cache keyed by (d, n). All evaluate() entry points
  /// that are handed only a grid go through here, so repeated batched
  /// queries against the same grid shape pay the flattening cost once.
  /// Thread-safe; the returned plan is immutable and safe to share.
  ///
  /// The cache is a capacity-bounded LRU (default kDefaultSharedCacheCap
  /// plans): a long-lived server touching many (d, n) shapes holds at most
  /// `capacity` plans; least-recently-used shapes are dropped. Eviction
  /// never invalidates outstanding shared_ptrs — holders (e.g. a
  /// serve::GridRegistry pinning the plans it fronts) keep their plan
  /// alive; only the cache's reference is released.
  static std::shared_ptr<const EvaluationPlan> shared(
      const RegularSparseGrid& grid);

  /// Default LRU capacity of the shared cache, in plans.
  static constexpr std::size_t kDefaultSharedCacheCap = 64;

  /// Snapshot of the shared cache counters (thread-safe).
  static SharedCacheStats shared_cache_stats();

  /// Drop every cached plan and reset all counters; capacity is kept.
  /// Outstanding shared_ptrs stay valid.
  static void shared_cache_clear();

  /// Rebound the LRU capacity (>= 1), evicting immediately if the cache
  /// currently holds more than `cap` plans.
  static void shared_cache_set_capacity(std::size_t cap);

 private:
  dim_t d_;
  level_t n_;
  flat_index_t num_points_;
  std::vector<level_t> levels_;
  std::vector<flat_index_t> offsets_;
};

}  // namespace csg
