// Restriction of a sparse grid function to an axis-aligned plane.
//
// The visualization front-end of the paper's Fig. 1 pipeline browses
// 1d/2d/3d slices of a d-dimensional compressed field. Evaluating the full
// d-dimensional interpolant per pixel costs O(#subspaces(d) * d) per
// sample; but the restriction of fs to an axis-aligned plane IS ITSELF a
// regular sparse grid function over the kept dimensions, of the same
// level:
//
//   fs(x_kept, a) = sum_{l,i} alpha_{l,i} phi_kept(x_kept) *
//                   prod_{t dropped} phi_{l_t,i_t}(a_t)
//
// Grouping by the kept components gives 2d (say) hierarchical coefficients
// beta = sum over dropped components of alpha * (anchor weights) — one
// O(N d) pass. After that every frame sample costs only the 2d
// evaluation. This turns "decompress a 64x64 slice" from 4096 full
// evaluations into one restriction plus 4096 cheap 2d evaluations.
#pragma once

#include "csg/core/compact_storage.hpp"

namespace csg {

/// Restrict `storage` to the plane where every dimension NOT in
/// `kept_dims` is pinned to the matching component of `anchor`.
///
/// * kept_dims: strictly increasing dimension indices to keep
///   (1 <= size < d);
/// * anchor: one coordinate per DROPPED dimension, in the order the
///   dropped dimensions appear.
///
/// The result is a CompactStorage over (kept_dims.size(), same level)
/// whose interpolant equals fs on the plane exactly (up to round-off).
CompactStorage restrict_to_plane(const CompactStorage& storage,
                                 const DimVector<dim_t>& kept_dims,
                                 const CoordVector& anchor);

/// Convenience: embed a kept-dims coordinate back into the full domain
/// (inverse bookkeeping of restrict_to_plane, for tests and callers).
CoordVector embed_in_plane(dim_t full_dim, const DimVector<dim_t>& kept_dims,
                           const CoordVector& anchor, const CoordVector& x);

}  // namespace csg
