// CompactStorage: the paper's data structure — all coefficients of a regular
// sparse grid in one contiguous 1d array, addressed through gp2idx. No keys,
// no pointers; the only metadata is the O(d*n) binmat and group offset table
// owned by the RegularSparseGrid descriptor.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "csg/core/regular_grid.hpp"

namespace csg {

class CompactStorage {
 public:
  explicit CompactStorage(RegularSparseGrid grid)
      : grid_(std::move(grid)),
        values_(static_cast<std::size_t>(grid_.num_points()), real_t{0}) {}

  CompactStorage(dim_t d, level_t n) : CompactStorage(RegularSparseGrid(d, n)) {}

  const RegularSparseGrid& grid() const { return grid_; }
  dim_t dim() const { return grid_.dim(); }
  flat_index_t size() const { return grid_.num_points(); }

  /// Access by flat position (the rawStorage array of Alg. 6/7).
  real_t& operator[](flat_index_t idx) {
    CSG_ASSERT(idx < size());
    return values_[static_cast<std::size_t>(idx)];
  }
  real_t operator[](flat_index_t idx) const {
    CSG_ASSERT(idx < size());
    return values_[static_cast<std::size_t>(idx)];
  }

  /// Access by grid point, through gp2idx.
  real_t& at(const LevelVector& l, const IndexVector& i) {
    return (*this)[grid_.gp2idx(l, i)];
  }
  real_t at(const LevelVector& l, const IndexVector& i) const {
    return (*this)[grid_.gp2idx(l, i)];
  }

  /// Uniform key-value access (shared with the baseline storages, so the
  /// generic algorithms and benchmarks can run over any GridStorage).
  real_t get(const LevelVector& l, const IndexVector& i) const {
    return at(l, i);
  }
  void set(const LevelVector& l, const IndexVector& i, real_t v) {
    at(l, i) = v;
  }
  static const char* name() { return "compact"; }

  real_t* data() { return values_.data(); }
  const real_t* data() const { return values_.data(); }

  std::vector<real_t>& values() { return values_; }
  const std::vector<real_t>& values() const { return values_; }

  /// Fill the array with f evaluated at every grid point (the "initialize
  /// rawStorage with corresponding values from the full grid" step of
  /// Alg. 6 line 1). After this the array holds nodal values; hierarchize()
  /// turns them into hierarchical coefficients.
  void sample(const std::function<real_t(const CoordVector&)>& f) {
    for (flat_index_t j = 0; j < size(); ++j)
      values_[static_cast<std::size_t>(j)] = f(coordinates(grid_.idx2gp(j)));
  }

  /// Bytes of coefficient payload plus descriptor metadata. This is what the
  /// Fig. 8 memory benchmark reports for "our data structure". Counted from
  /// size(), not capacity(): the metric is the payload the grid needs, and
  /// capacity can overstate it after a resize path.
  std::size_t memory_bytes() const {
    return values_.size() * sizeof(real_t) +
           grid_.binmat().payload_bytes() +
           (grid_.level() + 1) * sizeof(flat_index_t);
  }

 private:
  RegularSparseGrid grid_;
  std::vector<real_t> values_;
};

}  // namespace csg
