// RegularSparseGrid: the descriptor of a regular (non-adaptive) sparse grid
// of dimension d and refinement level n, together with the bijection gp2idx
// (Alg. 5) and its inverse idx2gp.
//
// The grid contains every subspace with |l|_1 <= n - 1. Points are laid out
// exactly as in Fig. 6: level groups (|l|_1 = 0, 1, ..., n-1) back to back,
// within a group the subspaces in Alg. 3 enumeration order, within a
// subspace the points in row-major order of (i_t - 1) / 2. The flat position
// of a point decomposes as index1 + index2 + index3 (paper Sec. 4.1).
#pragma once

#include <vector>

#include "csg/core/binomial_table.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"
#include "csg/core/types.hpp"

namespace csg {

class RegularSparseGrid {
 public:
  /// A grid of dimension d >= 1 with n >= 1 level groups (the paper's
  /// "sparse grid of level n"). Precomputes binmat and the level-group
  /// offset table; both are O(d * n) small.
  RegularSparseGrid(dim_t d, level_t n) : d_(d), n_(n) {
    CSG_EXPECTS(d >= 1 && d <= kMaxDim);
    CSG_EXPECTS(n >= 1 && n <= kMaxLevel);
    binmat_ = BinomialTable(d - 1 + n);
    group_offset_.resize(n + 1);
    unsigned __int128 total = 0;
    for (level_t j = 0; j < n; ++j) {
      group_offset_[j] = static_cast<flat_index_t>(total);
      total += static_cast<unsigned __int128>(num_subspaces(d, j, binmat_))
               << j;
      CSG_EXPECTS(total < (static_cast<unsigned __int128>(1) << 63) &&
                  "grid too large for 64-bit flat indices");
    }
    group_offset_[n] = static_cast<flat_index_t>(total);
  }

  dim_t dim() const { return d_; }

  /// The refinement level n: subspaces satisfy |l|_1 <= n - 1.
  level_t level() const { return n_; }

  /// Total number of grid points N = sum_{j<n} C(d-1+j, d-1) * 2^j.
  flat_index_t num_points() const { return group_offset_[n_]; }

  const BinomialTable& binmat() const { return binmat_; }

  /// index3 for |l|_1 = j: number of coefficients in all level groups < j.
  flat_index_t group_offset(level_t j) const {
    CSG_EXPECTS(j <= n_);
    return group_offset_[j];
  }

  /// Number of coefficients in level group j.
  flat_index_t group_size(level_t j) const {
    return group_offset(j + 1) - group_offset(j);
  }

  /// Number of subspaces in level group j (= |L^d_j|).
  std::uint64_t subspaces_in_group(level_t j) const {
    CSG_EXPECTS(j < n_);
    return num_subspaces(d_, j, binmat_);
  }

  /// Number of points per subspace in level group j (= 2^j).
  flat_index_t points_per_subspace(level_t j) const {
    CSG_EXPECTS(j < n_);
    return flat_index_t{1} << j;
  }

  /// True iff (l, i) designates a point of this grid.
  bool contains(const GridPoint& gp) const {
    return gp.level.size() == d_ && valid_point(gp) &&
           gp.level.l1_norm() < n_;
  }

  /// index1 of Alg. 5: row-major position of i within its subspace l.
  flat_index_t point_index_in_subspace(const LevelVector& l,
                                       const IndexVector& i) const {
    flat_index_t index1 = 0;
    // The accumulated shift count is |l|_1 <= n - 1 < kMaxLevel, so the
    // running index never shifts past the 64-bit accumulator (anchor for
    // the csg-lint shift-width rule; widths pinned in types.hpp).
    static_assert(sizeof(index1) == 8 && kMaxLevel < 64);
    for (dim_t t = 0; t < d_; ++t)
      index1 = (index1 << l[t]) + ((i[t] - 1) >> 1);
    return index1;
  }

  /// Flat offset of the first coefficient of subspace l
  /// (= index2 + index3 of Alg. 5).
  flat_index_t subspace_offset(const LevelVector& l) const {
    const auto lsum = static_cast<level_t>(l.l1_norm());
    CSG_ASSERT(lsum < n_);
    return group_offset_[lsum] + (subspace_index(l, binmat_) << lsum);
  }

  /// The bijection gp2idx (Alg. 5): flat position of the point (l, i).
  /// O(d) with O(1) binmat lookups; no memory allocated.
  flat_index_t gp2idx(const LevelVector& l, const IndexVector& i) const {
    CSG_ASSERT(contains({l, i}));
    return point_index_in_subspace(l, i) + subspace_offset(l);
  }

  flat_index_t gp2idx(const GridPoint& gp) const {
    return gp2idx(gp.level, gp.index);
  }

  /// Inverse bijection: the grid point stored at flat position idx.
  /// O(d + n): locate the level group, unrank the subspace, decode i.
  GridPoint idx2gp(flat_index_t idx) const {
    CSG_EXPECTS(idx < num_points());
    const level_t j = group_of(idx);
    const flat_index_t local = idx - group_offset_[j];
    const std::uint64_t rank = local >> j;
    GridPoint gp;
    gp.level = unrank_subspace(d_, j, rank, binmat_);
    gp.index = point_in_subspace(gp.level, local & ((flat_index_t{1} << j) - 1));
    return gp;
  }

  /// Decode index1 (row-major position) into the index vector of subspace l.
  IndexVector point_in_subspace(const LevelVector& l,
                                flat_index_t index1) const {
    IndexVector i(d_);
    for (dim_t t = d_; t-- > 0;) {
      const flat_index_t mask = (flat_index_t{1} << l[t]) - 1;
      i[t] = 2 * (index1 & mask) + 1;
      index1 >>= l[t];
    }
    CSG_ASSERT(index1 == 0);
    return i;
  }

  /// Level group (|l|_1) of the point stored at flat position idx, found by
  /// binary search over the n+1 group offsets.
  level_t group_of(flat_index_t idx) const {
    CSG_EXPECTS(idx < num_points());
    level_t lo = 0, hi = n_ - 1;
    while (lo < hi) {
      const level_t mid = (lo + hi + 1) / 2;
      if (group_offset_[mid] <= idx)
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo;
  }

  friend bool operator==(const RegularSparseGrid& a,
                         const RegularSparseGrid& b) {
    return a.d_ == b.d_ && a.n_ == b.n_;
  }

 private:
  dim_t d_;
  level_t n_;
  BinomialTable binmat_;
  std::vector<flat_index_t> group_offset_;  // size n+1; [n] == num_points()
};

/// Convenience: N(d, n) without building a grid (used by size planning and
/// the memory benchmarks).
inline flat_index_t regular_grid_num_points(dim_t d, level_t n) {
  return RegularSparseGrid(d, n).num_points();
}

}  // namespace csg
