// Calculus on sparse grid functions: gradients and quadrature.
//
// Both follow directly from the tensor hat basis and are core needs of the
// paper's application domains — visualization requires surface normals
// (gradients) for shading the decompressed slices, and the quadrature /
// data mining applications cited in Sec. 1 integrate the interpolant.
//
//  * Gradient: fs is piecewise d-linear, so within a cell each partial
//    derivative is obtained by differentiating the 1d hat factor of the
//    active dimension (+-1/h) and evaluating the others as usual.
//  * Integral: each 1d hat integrates to its mesh width h = 2^{-(l+1)},
//    so the tensor basis of subspace l integrates to 2^{-(|l|_1 + d)} and
//    the whole integral is a per-group weighted sum of coefficient sums —
//    one O(N) sequential sweep.
#pragma once

#include <span>

#include "csg/core/compact_storage.hpp"

namespace csg {

/// Value and gradient of the sparse grid function at x. The gradient is
/// the one-sided derivative within the cell containing x (fs is not
/// differentiable on grid lines; there the cell to the left of x in each
/// dimension wins, matching the hat's closed-left convention).
struct ValueAndGradient {
  real_t value;
  CoordVector gradient;
};

ValueAndGradient evaluate_with_gradient(const CompactStorage& storage,
                                        const CoordVector& x);

/// Integral of the sparse grid function over [0,1]^d: O(N) exact
/// accumulation of coefficient sums weighted by 2^{-(|l|_1 + d)}.
real_t integrate(const CompactStorage& storage);

/// L2 norm of fs computed from the hierarchical coefficients via pairwise
/// basis products is expensive; the commonly used surrogate is the
/// discrete l2 norm of the surpluses per level, which also drives
/// adaptivity criteria. max_surplus_per_group returns max |alpha| within
/// each level group (size n) — a cheap smoothness fingerprint of the data.
std::vector<real_t> max_surplus_per_group(const CompactStorage& storage);

}  // namespace csg
