// Fundamental scalar types and contract macros shared by every csg module.
//
// The library follows the paper's (Murarasu et al., PPoPP'11, Sec. 4) modified
// notation throughout: subspace levels are 0-based, so a subspace with level
// vector l holds 2^{|l|_1} grid points, and the grid point (l_t, i_t) in
// dimension t has the coordinate i_t * 2^{-(l_t + 1)} with i_t odd.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <type_traits>

namespace csg {

/// Number of dimensions of a grid. The paper evaluates d in [1, 10]; we allow
/// a generous fixed upper bound so that level/index vectors never allocate.
using dim_t = std::uint32_t;

/// A one-dimensional hierarchical level (0-based as in the paper, Sec. 4).
using level_t = std::uint32_t;

/// A one-dimensional spatial index within a level; always odd for interior
/// points: 1 <= i < 2^{l+1}.
using index1d_t = std::uint64_t;

/// A flat position in the contiguous coefficient array (the image of gp2idx).
using flat_index_t = std::uint64_t;

/// Grid coordinates and coefficient values.
using real_t = double;

/// Hard upper bound on the number of dimensions. Level and index vectors are
/// fixed-capacity inline arrays of this size, so raising it trades memory for
/// range. 16 comfortably covers the paper's d <= 10 plus boundary sub-grids.
inline constexpr dim_t kMaxDim = 16;

/// Hard upper bound on the refinement level n of a regular sparse grid. The
/// flat index arithmetic in gp2idx stays within uint64 for every (d, n) with
/// d <= kMaxDim and n <= kMaxLevel.
inline constexpr level_t kMaxLevel = 40;

// Width anchors for the index arithmetic of gp2idx (Alg. 5). Every flat
// accumulator of the form `index1 = (index1 << l[t]) + ...` relies on the
// left operand being a 64-bit unsigned type and on the total shift count
// |l|_1 <= kMaxLevel - 1 staying below that width; otherwise the shift is
// UB or silently truncates at deep levels. The csg-lint shift-width rule
// polices new call sites; these asserts pin the types the rule assumes.
static_assert(std::is_unsigned_v<flat_index_t> && sizeof(flat_index_t) == 8,
              "gp2idx accumulators must be 64-bit unsigned");
static_assert(std::is_unsigned_v<index1d_t> && sizeof(index1d_t) == 8,
              "1d spatial indices must be 64-bit unsigned");
static_assert(kMaxLevel < 64,
              "level sums must not shift past the 64-bit accumulator width");
static_assert(std::is_unsigned_v<level_t> && std::is_unsigned_v<dim_t>,
              "level/dimension counters are unsigned by contract");

namespace detail {
[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "csg: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}
}  // namespace detail

// Contract macros in the spirit of the C++ Core Guidelines' Expects/Ensures.
// CSG_EXPECTS/CSG_ENSURES guard public API boundaries and stay enabled in all
// build types (their cost is negligible next to the guarded operations).
// CSG_ASSERT is an internal invariant check compiled out in release builds.
#define CSG_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::csg::detail::contract_violation("precondition", #cond,      \
                                              __FILE__, __LINE__))
#define CSG_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::csg::detail::contract_violation("postcondition", #cond,     \
                                              __FILE__, __LINE__))
#ifndef NDEBUG
#define CSG_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::csg::detail::contract_violation("invariant", #cond,          \
                                              __FILE__, __LINE__))
#else
#define CSG_ASSERT(cond) static_cast<void>(0)
#endif

}  // namespace csg
