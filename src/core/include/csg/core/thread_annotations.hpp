// Compile-time lock discipline: Clang thread-safety capability annotations
// plus the annotated synchronization primitives the analysis needs.
//
// The serving stack's mutex invariants used to live in comments, enforced
// only dynamically by the TSan lane. Clang's -Wthread-safety analysis turns
// them into compile errors: a member declared CSG_GUARDED_BY(mutex_) cannot
// be touched without the lock, a method declared CSG_REQUIRES(mutex_)
// cannot be called without it — on every build, before a race ever has to
// be provoked at runtime. Two layers live here:
//
//  1. The CSG_* annotation macros. Under Clang they expand to the capability
//     attributes; under every other compiler they expand to nothing, so GCC
//     builds (the dev-container default) are unaffected.
//
//  2. Annotated primitives: csg::Mutex, csg::SharedMutex, the scoped guards
//     (MutexLock, UniqueMutexLock, ExclusiveLock, SharedLock) and CondVar.
//     These exist because libstdc++'s std::mutex carries no capability
//     attributes, so the analysis cannot see std::lock_guard acquire it —
//     every lock-guarded class in src/ uses these wrappers instead (the
//     csg-lint mutex-guard-annotations rule enforces it). Zero-overhead
//     shims: the bodies opt out of the analysis because they manipulate the
//     raw std types, while the declarations carry the acquire/release
//     contracts call sites are checked against.
//
// The lane: -DCSG_THREAD_SAFETY=ON under Clang builds the whole tree with
// -Wthread-safety -Wthread-safety-beta -Werror; negative-compile fixtures
// under tests/thread_safety_fixtures/ prove the annotations bite. Macro
// reference and how-to: docs/STATIC_ANALYSIS.md, "Thread-safety
// annotations".
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define CSG_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CSG_THREAD_ANNOTATION_(x)
#endif

/// Class attribute: instances are lockable capabilities.
#define CSG_CAPABILITY(name) CSG_THREAD_ANNOTATION_(capability(name))

/// Class attribute: RAII object that holds a capability for its lifetime.
#define CSG_SCOPED_CAPABILITY CSG_THREAD_ANNOTATION_(scoped_lockable)

/// Data member: may only be accessed while `x` is held (reads need at least
/// a shared hold, writes an exclusive one).
#define CSG_GUARDED_BY(x) CSG_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member: the pointed-to data is protected by `x` (the pointer
/// itself is not).
#define CSG_PT_GUARDED_BY(x) CSG_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function: caller must already hold the listed capabilities exclusively.
#define CSG_REQUIRES(...) \
  CSG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function: caller must hold the listed capabilities at least shared.
#define CSG_REQUIRES_SHARED(...) \
  CSG_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function: acquires the listed capabilities (exclusive) before returning.
#define CSG_ACQUIRE(...) \
  CSG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function: acquires the listed capabilities shared before returning.
#define CSG_ACQUIRE_SHARED(...) \
  CSG_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function: releases the listed exclusively-held capabilities.
#define CSG_RELEASE(...) \
  CSG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function: releases the listed shared-held capabilities.
#define CSG_RELEASE_SHARED(...) \
  CSG_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function: releases capabilities held in either mode (scoped-guard
/// destructors that may hold shared or exclusive).
#define CSG_RELEASE_GENERIC(...) \
  CSG_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function: acquires the capabilities only when returning `val`.
#define CSG_TRY_ACQUIRE(val, ...) \
  CSG_THREAD_ANNOTATION_(try_acquire_capability(val, __VA_ARGS__))

/// Function: caller must NOT hold the listed capabilities (deadlock guard
/// for public entry points of classes that lock internally).
#define CSG_EXCLUDES(...) CSG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function: asserts (runtime fact, e.g. single-threaded phase) that the
/// capability is held without acquiring it.
#define CSG_ASSERT_CAPABILITY(x) CSG_THREAD_ANNOTATION_(assert_capability(x))

/// Function: returns a reference to the capability protecting its result.
#define CSG_RETURN_CAPABILITY(x) CSG_THREAD_ANNOTATION_(lock_returned(x))

/// Function: opt this body out of the analysis. Reserved for the primitive
/// wrappers below and for deliberately-racy test injection; never use it to
/// silence a finding in product code.
#define CSG_NO_THREAD_SAFETY_ANALYSIS \
  CSG_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace csg {

class CondVar;
class UniqueMutexLock;

/// Annotated std::mutex. Same size, same cost — the capability attribute is
/// purely a compile-time artifact.
class CSG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CSG_ACQUIRE() CSG_NO_THREAD_SAFETY_ANALYSIS { m_.lock(); }
  void unlock() CSG_RELEASE() CSG_NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }
  bool try_lock() CSG_TRY_ACQUIRE(true) CSG_NO_THREAD_SAFETY_ANALYSIS {
    return m_.try_lock();
  }

 private:
  friend class UniqueMutexLock;
  std::mutex m_;
};

/// Annotated std::shared_mutex: exclusive writers, shared readers.
class CSG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CSG_ACQUIRE() CSG_NO_THREAD_SAFETY_ANALYSIS { m_.lock(); }
  void unlock() CSG_RELEASE() CSG_NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }
  void lock_shared() CSG_ACQUIRE_SHARED() CSG_NO_THREAD_SAFETY_ANALYSIS {
    m_.lock_shared();
  }
  void unlock_shared() CSG_RELEASE_SHARED() CSG_NO_THREAD_SAFETY_ANALYSIS {
    m_.unlock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// std::lock_guard equivalent: holds the Mutex for the enclosing scope, no
/// early release.
class CSG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) CSG_ACQUIRE(m) : m_(m) { m.lock(); }
  ~MutexLock() CSG_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// std::unique_lock equivalent: supports early unlock()/relock() and is the
/// lock type CondVar waits on. The analysis tracks its lock state across
/// unlock()/lock() pairs (Clang's relockable scoped capabilities).
class CSG_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& m)
      CSG_ACQUIRE(m) CSG_NO_THREAD_SAFETY_ANALYSIS : lock_(m.m_) {}
  ~UniqueMutexLock() CSG_RELEASE() CSG_NO_THREAD_SAFETY_ANALYSIS {
    // std::unique_lock releases iff still owned.
  }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void lock() CSG_ACQUIRE() CSG_NO_THREAD_SAFETY_ANALYSIS { lock_.lock(); }
  void unlock() CSG_RELEASE() CSG_NO_THREAD_SAFETY_ANALYSIS {
    lock_.unlock();
  }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Writer guard over a SharedMutex (std::unique_lock<std::shared_mutex>
/// equivalent, scope-bound).
class CSG_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& m) CSG_ACQUIRE(m) : m_(m) { m.lock(); }
  ~ExclusiveLock() CSG_RELEASE() { m_.unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& m_;
};

/// Reader guard over a SharedMutex (std::shared_lock equivalent,
/// scope-bound).
class CSG_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& m) CSG_ACQUIRE_SHARED(m) : m_(m) {
    m.lock_shared();
  }
  ~SharedLock() CSG_RELEASE_GENERIC() { m_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& m_;
};

/// Condition variable over csg::Mutex via UniqueMutexLock. Predicate waits
/// are deliberately absent: spell the loop at the call site —
///
///   while (!condition_involving_guarded_state()) cv.wait(lock);
///
/// so the guarded reads in the condition are checked against the held lock
/// in the waiting function itself (a predicate lambda would need its own
/// REQUIRES annotation and hides the guarded access from the caller's
/// analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `lock`, sleep, reacquire. From the analysis's view
  /// the lock is held throughout, which is exactly the guarantee the caller
  /// observes on both sides of the call.
  void wait(UniqueMutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueMutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace csg
