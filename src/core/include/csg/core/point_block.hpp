// PointBlock: structure-of-arrays transpose of a block of evaluation points.
//
// The blocked evaluation of paper Sec. 4.3 reuses one subspace's coefficients
// across a block of points, but with an array-of-structs point layout
// (std::span<const CoordVector>) the per-point inner loop still strides
// through kMaxDim-sized tuples. PointBlock transposes a block once into d
// contiguous coordinate arrays — coords(t)[p] is dimension t of point p — so
// the SoA kernel (evaluate_block_soa) can run one subspace against a full
// lane of points with unit-stride loads (DESIGN.md §14).
//
// Arrays are padded to a multiple of kPointBlockLane points; the pad
// coordinate is 0, whose hat product is 0 in every subspace, so padded lanes
// flow through the kernel harmlessly and their accumulator slots are simply
// never read back.
//
// The block also owns the kernel's per-point scratch (accumulator, running
// hat product, running flat index), so one PointBlock is a complete reusable
// evaluation arena: assign() only touches the heap when capacity grows, and
// a process-wide allocation counter makes "steady state performs zero
// point-layout allocations" a testable claim (bench_serve gates on it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "csg/core/dim_vector.hpp"
#include "csg/core/simd.hpp"
#include "csg/core/types.hpp"

namespace csg {

class PointBlock {
 public:
  PointBlock() = default;

  /// Transpose `points` (each of dimension d) into the SoA arrays, growing
  /// capacity only if this block never held a (d, size) this large before.
  void assign(dim_t d, std::span<const CoordVector> points);

  dim_t dim() const { return dim_; }
  /// Number of live points of the current assign().
  std::size_t size() const { return size_; }
  /// size() rounded up to a multiple of kPointBlockLane (0 stays 0).
  std::size_t padded_size() const { return padded_; }
  /// Number of kPointBlockLane-wide lanes covering the padded block.
  std::size_t lanes() const { return padded_ / kPointBlockLane; }

  /// Coordinate array of dimension t: padded_size() contiguous values.
  const real_t* coords(dim_t t) const {
    CSG_EXPECTS(t < dim_);
    return storage_.data() + static_cast<std::size_t>(t) * stride_;
  }

  // Kernel scratch, owned here so the whole arena is reused together.
  // Contents are only meaningful during/after an evaluate_block_soa call:
  // accum()[p] is the interpolant at point p for p < size().
  real_t* accum() { return scratch(0); }
  const real_t* accum() const {
    return storage_.data() + (static_cast<std::size_t>(cap_dims_) + 0) * stride_;
  }
  real_t* scratch_products() { return scratch(1); }
  real_t* scratch_indices() { return scratch(2); }

  /// Heap footprint of the arena.
  std::size_t memory_bytes() const {
    return storage_.capacity() * sizeof(real_t);
  }

  /// Process-wide count of arena growth events (capacity-increasing
  /// assigns) across every PointBlock. Flat across a steady-state workload
  /// — the scratch-reuse invariant the serve bench asserts.
  static std::uint64_t allocation_count();

 private:
  real_t* scratch(std::size_t which) {
    return storage_.data() +
           (static_cast<std::size_t>(cap_dims_) + which) * stride_;
  }

  std::vector<real_t> storage_;
  std::size_t stride_ = 0;  // padded point capacity per array
  dim_t cap_dims_ = 0;
  dim_t dim_ = 0;
  std::size_t size_ = 0;
  std::size_t padded_ = 0;
};

}  // namespace csg
