// Enumeration of subspace level vectors (paper Sec. 4.2).
//
// The set L^d_n = { l in N_0^d : |l|_1 = n } is ordered by the recursive
// scheme of Alg. 3; Alg. 4 turns that order into an O(d) iterator `next`,
// and Eq. 4 (`subspace_index`) ranks a level vector within L^d_n in O(d)
// using binomial lookups. `unrank_subspace` inverts the ranking.
#pragma once

#include <functional>

#include "csg/core/binomial_table.hpp"
#include "csg/core/dim_vector.hpp"
#include "csg/core/types.hpp"

namespace csg {

/// |L^d_n| = C(d-1+n, d-1), Eq. 2 — the number of subspaces on level sum n.
inline std::uint64_t num_subspaces(dim_t d, level_t n,
                                   const BinomialTable& binmat) {
  CSG_EXPECTS(d >= 1);
  return binmat(d - 1 + n, d - 1);
}

/// First level vector in enumeration order: (n, 0, ..., 0)  (Eq. 3).
inline LevelVector first_level(dim_t d, level_t n) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  LevelVector l(d, 0);
  l[0] = n;
  return l;
}

/// Last level vector in enumeration order: (0, ..., 0, n)  (Eq. 3).
inline LevelVector last_level(dim_t d, level_t n) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  LevelVector l(d, 0);
  l[d - 1] = n;
  return l;
}

/// Iterator increment (Alg. 4): the unique successor of l in the order of
/// Alg. 3. Precondition: l != last_level (i.e. some component before the last
/// is non-zero).
inline LevelVector next_level(const LevelVector& l) {
  // Bounded scan, and the precondition check precedes any use of t: an
  // all-zero vector (e.g. the single subspace of an n = 0 grid) must abort
  // here instead of reading past the end of l.
  dim_t t = 0;
  while (t < l.size() && l[t] == 0) ++t;
  CSG_EXPECTS(t + 1 < l.size() && "next_level called on the last level vector");
  LevelVector r = l;
  r[t] = 0;
  r[0] = l[t] - 1;  // after r[t]=0 so that the t==0 case degenerates correctly
  r[t + 1] = l[t + 1] + 1;
  return r;
}

/// In-place variant of next_level for hot loops; returns false (leaving l at
/// the last vector) when l has no successor.
inline bool advance_level(LevelVector& l) {
  dim_t t = 0;
  while (t < l.size() && l[t] == 0) ++t;
  if (t + 1 >= l.size()) return false;  // all-zero vector or last vector
  const level_t lt = l[t];
  l[t] = 0;
  l[0] = lt - 1;
  l[t + 1] += 1;
  return true;
}

/// Rank of l within L^d_{|l|_1} under the Alg. 3 order (Eq. 4):
///   subspaceidx(l) = sum_{t=1}^{d-1} [ C(t + S_t, t) - C(t + S_{t-1}, t) ]
/// with partial sums S_t = l_0 + ... + l_t. Runs in O(d); all binomials come
/// from binmat.
inline std::uint64_t subspace_index(const LevelVector& l,
                                    const BinomialTable& binmat) {
  std::uint64_t sum = l[0];
  std::uint64_t rank = 0;
  // The rank later feeds `subspace_index(l) << |l|_1` in subspace_offset
  // (regular_grid.hpp), so it must carry the full 64-bit width the grid
  // constructor's < 2^63 size guard admits (csg-lint shift-width anchor).
  static_assert(sizeof(rank) == 8 && kMaxLevel < 64);
  for (dim_t t = 1; t < l.size(); ++t) {
    rank -= binmat(static_cast<std::uint32_t>(t + sum), t);
    sum += l[t];
    rank += binmat(static_cast<std::uint32_t>(t + sum), t);
  }
  return rank;
}

/// Inverse of subspace_index: the level vector of the given rank within
/// L^d_n. O(d + n) via the block structure of the Alg. 3 order (the last
/// component ascends, each value k owning a block of |L^{d-1}_{n-k}| ranks).
inline LevelVector unrank_subspace(dim_t d, level_t n, std::uint64_t rank,
                                   const BinomialTable& binmat) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  CSG_EXPECTS(rank < num_subspaces(d, n, binmat));
  LevelVector l(d, 0);
  level_t remaining = n;
  for (dim_t t = d - 1; t >= 1; --t) {
    level_t k = 0;
    for (;; ++k) {
      const std::uint64_t block = binmat(t - 1 + remaining - k, t - 1);
      if (rank < block) break;
      rank -= block;
    }
    l[t] = k;
    remaining -= k;
  }
  CSG_ASSERT(rank == 0);
  l[0] = remaining;
  return l;
}

/// Reference enumeration (Alg. 3), recursive: invokes `visit` for every
/// l in L^d_n in order. Used by tests to pin the iterative scheme down.
inline void enumerate_levels(dim_t d, level_t n,
                             const std::function<void(const LevelVector&)>& visit) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  LevelVector scratch(d, 0);
  // enumerate(k+1, m): fill scratch[0..k] with all vectors summing to m,
  // last component varying slowest, then emit.
  auto rec = [&](auto&& self, dim_t k, level_t m) -> void {
    if (k == 0) {
      scratch[0] = m;
      visit(scratch);
      return;
    }
    for (level_t v = 0; v <= m; ++v) {
      scratch[k] = v;
      self(self, k - 1, m - v);
    }
  };
  rec(rec, d - 1, n);
}

/// Range-for support over L^d_n in enumeration order:
///   for (const LevelVector& l : LevelRange(d, n)) { ... }
class LevelRange {
 public:
  LevelRange(dim_t d, level_t n) : d_(d), n_(n) {}

  class iterator {
   public:
    using value_type = LevelVector;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(LevelVector l, bool done) : l_(l), done_(done) {}

    const LevelVector& operator*() const { return l_; }
    const LevelVector* operator->() const { return &l_; }

    iterator& operator++() {
      done_ = !advance_level(l_);
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++*this;
      return old;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.done_ == b.done_ && (a.done_ || a.l_ == b.l_);
    }

   private:
    LevelVector l_;
    bool done_ = true;
  };

  iterator begin() const { return {first_level(d_, n_), false}; }
  iterator end() const { return {last_level(d_, n_), true}; }

 private:
  dim_t d_;
  level_t n_;
};

}  // namespace csg
