// Non-zero boundary extension of the compact data structure (paper Sec. 4.4).
//
// The boundary of a d-dimensional sparse grid decomposes into
// lower-dimensional zero-boundary sparse grids: fixing a subset F of j
// dimensions to 0 or 1 leaves a (d-j)-dimensional interior sparse grid on
// the remaining dimensions, and there are 2^j * C(d, j) such sub-grids of
// dimensionality d - j (Fig. 7; j = d gives the 2^d corners). Grouping
// sub-grids by j, ordering the subsets F colexicographically and the 2^j
// sign patterns numerically yields a gap-free global bijection bp2idx that
// delegates to gp2idx inside every sub-grid — exactly the extension the
// paper sketches.
//
// On top of the storage map we also provide the d-linear algorithms: in each
// dimension the two level-0 boundary functions are phi_left(x) = 1 - x and
// phi_right(x) = x, so evaluation sums, over all sub-grids, the product of
// boundary weights times the interior interpolant of the sub-grid, and
// hierarchization treats boundary values as (never-updated) parents instead
// of zeros.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "csg/core/compact_storage.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/core/regular_grid.hpp"

namespace csg {

/// Sentinel level marking a dimension fixed to the boundary; the index
/// component is then 0 (x = 0) or 1 (x = 1).
inline constexpr level_t kBoundaryLevel = ~level_t{0};

/// A point of a boundary sparse grid: per dimension either an interior
/// (level, odd index) pair or kBoundaryLevel with index in {0, 1}.
struct BoundaryPoint {
  LevelVector level;
  IndexVector index;

  friend bool operator==(const BoundaryPoint&, const BoundaryPoint&) = default;

  bool fixed(dim_t t) const { return level[t] == kBoundaryLevel; }

  real_t coordinate(dim_t t) const {
    return fixed(t) ? static_cast<real_t>(index[t])
                    : coordinate_1d(level[t], index[t]);
  }

  CoordVector coordinates() const {
    CoordVector x(level.size());
    for (dim_t t = 0; t < x.size(); ++t) x[t] = coordinate(t);
    return x;
  }
};

/// Number of sub-grids of the boundary decomposition with j fixed
/// dimensions: 2^j * C(d, j).
std::uint64_t num_boundary_subgrids(dim_t d, dim_t j);

class BoundarySparseGrid {
 public:
  /// A d-dimensional sparse grid of level n with non-zero boundary: the
  /// union over j = 0..d of 2^j C(d,j) interior sparse grids of dimension
  /// d - j and level n (0-dimensional sub-grids are single corner values).
  BoundarySparseGrid(dim_t d, level_t n);

  dim_t dim() const { return d_; }
  level_t level() const { return n_; }

  /// Total number of points across all sub-grids.
  flat_index_t num_points() const { return group_offset_.back(); }

  /// First flat position of the group of sub-grids with j fixed dimensions.
  flat_index_t group_offset(dim_t j) const {
    CSG_EXPECTS(j <= d_);
    return group_offset_[j];
  }

  /// Points per sub-grid of dimensionality d - j (1 for corners).
  flat_index_t subgrid_points(dim_t j) const { return subgrid_points_[j]; }

  /// The interior descriptor shared by every sub-grid of dimension k >= 1.
  const RegularSparseGrid& interior_grid(dim_t k) const {
    CSG_EXPECTS(k >= 1 && k <= d_);
    return interior_[k - 1];
  }

  /// True iff p is structurally valid for this grid.
  bool contains(const BoundaryPoint& p) const;

  /// The global bijection: flat position of a boundary-grid point.
  flat_index_t bp2idx(const BoundaryPoint& p) const;

  /// Inverse of bp2idx.
  BoundaryPoint idx2bp(flat_index_t idx) const;

  /// Colex rank of the fixed-dimension subset of p within all j-subsets of
  /// {0..d-1}; exposed for tests.
  std::uint64_t subset_rank(const BoundaryPoint& p) const;

  const BinomialTable& binmat() const { return binmat_; }

 private:
  dim_t d_;
  level_t n_;
  BinomialTable binmat_;
  std::vector<RegularSparseGrid> interior_;      // [k-1] = grid of dim k
  std::vector<flat_index_t> subgrid_points_;     // by j = #fixed dims
  std::vector<flat_index_t> group_offset_;       // size d+2
};

/// Coefficient array over a BoundarySparseGrid.
class BoundaryStorage {
 public:
  explicit BoundaryStorage(BoundarySparseGrid grid);
  BoundaryStorage(dim_t d, level_t n) : BoundaryStorage(BoundarySparseGrid(d, n)) {}

  const BoundarySparseGrid& grid() const { return grid_; }
  flat_index_t size() const { return grid_.num_points(); }

  real_t& operator[](flat_index_t idx) {
    CSG_ASSERT(idx < size());
    return values_[static_cast<std::size_t>(idx)];
  }
  real_t operator[](flat_index_t idx) const {
    CSG_ASSERT(idx < size());
    return values_[static_cast<std::size_t>(idx)];
  }

  real_t& at(const BoundaryPoint& p) { return (*this)[grid_.bp2idx(p)]; }
  real_t at(const BoundaryPoint& p) const { return (*this)[grid_.bp2idx(p)]; }

  const std::vector<real_t>& values() const { return values_; }

  /// Sample f at every point (nodal values, including the boundary).
  void sample(const std::function<real_t(const CoordVector&)>& f);

 private:
  BoundarySparseGrid grid_;
  std::vector<real_t> values_;
};

/// In-place hierarchization with non-zero boundary: like Alg. 6 but a
/// parent on the domain boundary contributes the (nodal) boundary value of
/// the corresponding sub-grid point instead of zero. Boundary coefficients
/// themselves are nodal in their fixed dimensions and hierarchize in their
/// free dimensions.
void hierarchize(BoundaryStorage& storage);

/// Inverse of the boundary hierarchization.
void dehierarchize(BoundaryStorage& storage);

/// Evaluate the boundary sparse grid function at x in [0,1]^d.
real_t evaluate(const BoundaryStorage& storage, const CoordVector& x);

}  // namespace csg
