// SIMD width detection for the SoA batch-evaluation kernel.
//
// CSG_SIMD_WIDTH is the number of real_t (double) lanes the target ISA can
// process per vector instruction; it is a *hint* used for reporting and for
// the static width probe below, not a correctness parameter. The PointBlock
// lane padding is fixed at kPointBlockLane (a multiple of every supported
// width) so that deterministic lane counters in the benchmarks do not drift
// across machines with different vector units.
//
// The shim can be overridden on the compile line (-DCSG_SIMD_WIDTH=4) for
// cross-compilation; the static_asserts reject widths the padding cannot
// honour.
#pragma once

#include <cstddef>

#if !defined(CSG_SIMD_WIDTH)
#if defined(__AVX512F__)
#define CSG_SIMD_WIDTH 8
#elif defined(__AVX__)
#define CSG_SIMD_WIDTH 4
#elif defined(__SSE2__) || defined(__x86_64__) || defined(__aarch64__) || \
    defined(__ARM_NEON)
#define CSG_SIMD_WIDTH 2
#else
#define CSG_SIMD_WIDTH 1
#endif
#endif

namespace csg {

/// Detected (or overridden) double lanes per vector register.
inline constexpr std::size_t kSimdWidth = CSG_SIMD_WIDTH;

/// Fixed lane-padding granule of PointBlock: every SoA coordinate array is
/// padded to a multiple of this many points. Fixed (not kSimdWidth) so the
/// padded sizes — and the lane counters derived from them — are identical on
/// every machine; it only needs to be a multiple of the real vector width
/// for the padded tail to fill whole vectors.
inline constexpr std::size_t kPointBlockLane = 8;

// Width probe: the detection shim must report a power of two that divides
// the fixed padding granule, or the padded tail would not cover an integral
// number of hardware vectors and the "lanes" counters would lie.
static_assert(kSimdWidth >= 1 && kSimdWidth <= kPointBlockLane,
              "CSG_SIMD_WIDTH out of the supported [1, 8] double-lane range");
static_assert((kSimdWidth & (kSimdWidth - 1)) == 0,
              "CSG_SIMD_WIDTH must be a power of two");
static_assert(kPointBlockLane % kSimdWidth == 0,
              "PointBlock padding must cover whole hardware vectors");

}  // namespace csg
