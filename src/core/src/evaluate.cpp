#include "csg/core/evaluate.hpp"

#include <algorithm>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

namespace {

/// Contribution of one subspace (level components l[0..d), coefficients
/// starting at flat position `base`) to the interpolant at x: the one basis
/// with x in its support, times its coefficient. The body of Alg. 7 lines
/// 6-16. Shared verbatim by the walk and the plan paths so both produce
/// bit-identical sums.
real_t subspace_contribution(const real_t* coeffs, const level_t* l, dim_t d,
                             flat_index_t base, const CoordVector& x) {
  real_t prod = 1;
  flat_index_t index1 = 0;
  for (dim_t t = 0; t < d; ++t) {
    const index1d_t i = support_index_1d(l[t], x[t]);
    index1 = (index1 << l[t]) + ((i - 1) >> 1);
    prod *= hat_basis_1d(l[t], i, x[t]);
    if (prod == 0) return 0;  // x on a grid line of this subspace
  }
  return prod * coeffs[base + index1];
}

}  // namespace

real_t evaluate_span_walk(const RegularSparseGrid& grid,
                          std::span<const real_t> coeffs,
                          const CoordVector& x) {
  CSG_EXPECTS(x.size() == grid.dim());
  CSG_EXPECTS(coeffs.size() >= grid.num_points());
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  real_t res = 0;
  flat_index_t index2 = 0;
  for (level_t j = 0; j < n; ++j) {
    LevelVector l = first_level(d, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      res += subspace_contribution(coeffs.data(), l.data(), d, index2, x);
      index2 += grid.points_per_subspace(j);
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  CSG_ASSERT(index2 == grid.num_points());
  return res;
}

real_t evaluate_span(const EvaluationPlan& plan,
                     std::span<const real_t> coeffs, const CoordVector& x) {
  CSG_EXPECTS(x.size() == plan.dim());
  CSG_EXPECTS(coeffs.size() >= plan.num_points());
  const dim_t d = plan.dim();
  const level_t* levels = plan.packed_levels();
  const flat_index_t* offsets = plan.offsets();
  const std::size_t count = plan.subspace_count();
  real_t res = 0;
  for (std::size_t s = 0; s < count; ++s)
    res += subspace_contribution(coeffs.data(), levels + s * d, d, offsets[s],
                                 x);
  return res;
}

real_t evaluate_span(const RegularSparseGrid& grid,
                     std::span<const real_t> coeffs, const CoordVector& x) {
  return evaluate_span(*EvaluationPlan::shared(grid), coeffs, x);
}

real_t evaluate(const CompactStorage& storage, const CoordVector& x) {
  return evaluate_span(storage.grid(),
                       std::span<const real_t>(storage.data(),
                                               storage.values().size()),
                       x);
}

std::vector<real_t> evaluate_many(const CompactStorage& storage,
                                  std::span<const CoordVector> points) {
  const auto plan = EvaluationPlan::shared(storage.grid());
  const std::span<const real_t> coeffs(storage.data(),
                                       storage.values().size());
  std::vector<real_t> out(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    out[p] = evaluate_span(*plan, coeffs, points[p]);
  return out;
}

void evaluate_blocked_into(const EvaluationPlan& plan,
                           std::span<const real_t> coeffs,
                           std::span<const CoordVector> points,
                           std::size_t block_size, std::span<real_t> out) {
  CSG_EXPECTS(block_size >= 1);
  CSG_EXPECTS(out.size() == points.size());
  CSG_EXPECTS(coeffs.size() >= plan.num_points());
  const dim_t d = plan.dim();
  const level_t* levels = plan.packed_levels();
  const flat_index_t* offsets = plan.offsets();
  const std::size_t count = plan.subspace_count();
  for (std::size_t b0 = 0; b0 < points.size(); b0 += block_size) {
    const std::size_t b1 = std::min(b0 + block_size, points.size());
    for (std::size_t s = 0; s < count; ++s) {
      const level_t* l = levels + s * d;
      const flat_index_t base = offsets[s];
      for (std::size_t p = b0; p < b1; ++p)
        out[p] += subspace_contribution(coeffs.data(), l, d, base, points[p]);
    }
  }
}

std::vector<real_t> evaluate_many_blocked(const EvaluationPlan& plan,
                                          std::span<const real_t> coeffs,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size) {
  std::vector<real_t> out(points.size(), 0);
  evaluate_blocked_into(plan, coeffs, points, block_size, out);
  return out;
}

std::vector<real_t> evaluate_many_blocked(const CompactStorage& storage,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size) {
  const auto plan = EvaluationPlan::shared(storage.grid());
  return evaluate_many_blocked(
      *plan,
      std::span<const real_t>(storage.data(), storage.values().size()),
      points, block_size);
}

}  // namespace csg
