#include "csg/core/evaluate.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

namespace {

/// Contribution of one subspace (level components l[0..d), coefficients
/// starting at flat position `base`) to the interpolant at x: the one basis
/// with x in its support, times its coefficient. The body of Alg. 7 lines
/// 6-16. Shared verbatim by the walk and the plan paths so both produce
/// bit-identical sums.
real_t subspace_contribution(const real_t* coeffs, const level_t* l, dim_t d,
                             flat_index_t base, const CoordVector& x) {
  real_t prod = 1;
  flat_index_t index1 = 0;
  for (dim_t t = 0; t < d; ++t) {
    const index1d_t i = support_index_1d(l[t], x[t]);
    index1 = (index1 << l[t]) + ((i - 1) >> 1);
    prod *= hat_basis_1d(l[t], i, x[t]);
    if (prod == 0) return 0;  // x on a grid line of this subspace
  }
  return prod * coeffs[base + index1];
}

std::atomic<EvalKernel> g_eval_kernel{EvalKernel::kAuto};
std::atomic<std::uint64_t> g_soa_blocks{0};
std::atomic<std::uint64_t> g_soa_lanes{0};
std::atomic<std::uint64_t> g_soa_subspaces{0};

bool env_forces_scalar() {
  // Read once: the env var selects the kernel for the process lifetime;
  // runtime flips go through set_eval_kernel instead.
  static const bool forced = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only, pre-thread startup
    const char* v = std::getenv("CSG_FORCE_SCALAR_EVAL");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return forced;
}

/// 2^l as an exact double (l <= kMaxLevel + 1 < 63).
real_t pow2_real(level_t l) {
  return static_cast<real_t>(flat_index_t{1} << l);
}

/// Adding and subtracting 2^52 rounds a non-negative double below 2^51 to
/// the nearest integer; the select then corrects nearest to floor. This is
/// the branch-free, SSE2-vectorizable spelling of the cell-locate truncation
/// in support_index_1d (values here are bounded by 2^kMaxLevel = 2^40).
constexpr real_t kFloorShift = 4503599627370496.0;  // 2^52

}  // namespace

void set_eval_kernel(EvalKernel kernel) {
  g_eval_kernel.store(kernel, std::memory_order_relaxed);
}

EvalKernel eval_kernel() {
  return g_eval_kernel.load(std::memory_order_relaxed);
}

bool eval_uses_soa() {
  switch (eval_kernel()) {
    case EvalKernel::kSoa: return true;
    case EvalKernel::kScalar: return false;
    case EvalKernel::kAuto: break;
  }
  return !env_forces_scalar();
}

SoaKernelStats soa_kernel_stats() {
  return {g_soa_blocks.load(std::memory_order_relaxed),
          g_soa_lanes.load(std::memory_order_relaxed),
          g_soa_subspaces.load(std::memory_order_relaxed)};
}

void reset_soa_kernel_stats() {
  g_soa_blocks.store(0, std::memory_order_relaxed);
  g_soa_lanes.store(0, std::memory_order_relaxed);
  g_soa_subspaces.store(0, std::memory_order_relaxed);
}

void evaluate_block_soa(const EvaluationPlan& plan,
                        std::span<const real_t> coeffs, PointBlock& block) {
  CSG_EXPECTS(block.dim() == plan.dim());
  CSG_EXPECTS(coeffs.size() >= plan.num_points());
  const dim_t d = plan.dim();
  const level_t* levels = plan.packed_levels();
  const flat_index_t* offsets = plan.offsets();
  const std::size_t count = plan.subspace_count();
  const std::size_t padded = block.padded_size();
  real_t* acc = block.accum();
  real_t* prod = block.scratch_products();
  real_t* idx = block.scratch_indices();
  std::fill_n(acc, padded, real_t{0});
  for (std::size_t s = 0; s < count; ++s) {
    const level_t* l = levels + s * d;
    const real_t* cbase = coeffs.data() + offsets[s];
    {
      // Dimension 0 initializes the running product and flat index; the
      // remaining dimensions fold into them. One pass runs one level of one
      // subspace against a full lane of points. All values are exact small
      // integers or power-of-two-scaled coordinates, so the arithmetic
      // rounds identically to the scalar path (the flat index stays below
      // 2^40 and is therefore exact in a double).
      const real_t cells = pow2_real(l[0]);  // 2^l: cells of this level
      const real_t h_inv = cells * 2;        // 1/h = 2^(l+1), exact
      const real_t max_cell = cells - 1;
      const real_t* x = block.coords(0);
      // scalar fallback: subspace_contribution
#pragma omp simd
      for (std::size_t p = 0; p < padded; ++p) {
        const real_t scaled = x[p] * cells;
        real_t cell = (scaled + kFloorShift) - kFloorShift;  // nearest int
        cell = cell > scaled ? cell - 1 : cell;              // -> floor
        cell = cell < max_cell ? cell : max_cell;            // x == 1 clamp
        // Alg. 7's support test: the hat of index i = 2*cell+1 evaluated at
        // x; max(v, 0) is the branch-free boundary/support select.
        const real_t v =
            real_t{1} - std::fabs(x[p] * h_inv - (2 * cell + 1));
        idx[p] = cell;
        prod[p] = v > 0 ? v : 0;
      }
    }
    for (dim_t t = 1; t < d; ++t) {
      const real_t cells = pow2_real(l[t]);
      const real_t h_inv = cells * 2;
      const real_t max_cell = cells - 1;
      const real_t* x = block.coords(t);
      // scalar fallback: subspace_contribution
#pragma omp simd
      for (std::size_t p = 0; p < padded; ++p) {
        const real_t scaled = x[p] * cells;
        real_t cell = (scaled + kFloorShift) - kFloorShift;
        cell = cell > scaled ? cell - 1 : cell;
        cell = cell < max_cell ? cell : max_cell;
        const real_t v =
            real_t{1} - std::fabs(x[p] * h_inv - (2 * cell + 1));
        idx[p] = idx[p] * cells + cell;
        prod[p] *= v > 0 ? v : 0;
      }
    }
    // Gather the selected coefficient per point and accumulate. Points on a
    // grid line of this subspace carry prod == 0 and contribute exactly +-0.
    // scalar fallback: subspace_contribution
#pragma omp simd
    for (std::size_t p = 0; p < padded; ++p)
      acc[p] += prod[p] * cbase[static_cast<flat_index_t>(idx[p])];
  }
  g_soa_blocks.fetch_add(1, std::memory_order_relaxed);
  g_soa_lanes.fetch_add(block.lanes(), std::memory_order_relaxed);
  g_soa_subspaces.fetch_add(count, std::memory_order_relaxed);
}

real_t evaluate_span_walk(const RegularSparseGrid& grid,
                          std::span<const real_t> coeffs,
                          const CoordVector& x) {
  CSG_EXPECTS(x.size() == grid.dim());
  CSG_EXPECTS(coeffs.size() >= grid.num_points());
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  real_t res = 0;
  flat_index_t index2 = 0;
  for (level_t j = 0; j < n; ++j) {
    LevelVector l = first_level(d, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      res += subspace_contribution(coeffs.data(), l.data(), d, index2, x);
      index2 += grid.points_per_subspace(j);
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  CSG_ASSERT(index2 == grid.num_points());
  return res;
}

real_t evaluate_span(const EvaluationPlan& plan,
                     std::span<const real_t> coeffs, const CoordVector& x) {
  CSG_EXPECTS(x.size() == plan.dim());
  CSG_EXPECTS(coeffs.size() >= plan.num_points());
  const dim_t d = plan.dim();
  const level_t* levels = plan.packed_levels();
  const flat_index_t* offsets = plan.offsets();
  const std::size_t count = plan.subspace_count();
  real_t res = 0;
  for (std::size_t s = 0; s < count; ++s)
    res += subspace_contribution(coeffs.data(), levels + s * d, d, offsets[s],
                                 x);
  return res;
}

real_t evaluate_span(const RegularSparseGrid& grid,
                     std::span<const real_t> coeffs, const CoordVector& x) {
  return evaluate_span(*EvaluationPlan::shared(grid), coeffs, x);
}

real_t evaluate(const CompactStorage& storage, const CoordVector& x) {
  return evaluate_span(storage.grid(),
                       std::span<const real_t>(storage.data(),
                                               storage.values().size()),
                       x);
}

std::vector<real_t> evaluate_many(const CompactStorage& storage,
                                  std::span<const CoordVector> points) {
  const auto plan = EvaluationPlan::shared(storage.grid());
  const std::span<const real_t> coeffs(storage.data(),
                                       storage.values().size());
  std::vector<real_t> out(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    out[p] = evaluate_span(*plan, coeffs, points[p]);
  return out;
}

void evaluate_blocked_into(const EvaluationPlan& plan,
                           std::span<const real_t> coeffs,
                           std::span<const CoordVector> points,
                           std::size_t block_size, std::span<real_t> out) {
  CSG_EXPECTS(block_size >= 1);
  CSG_EXPECTS(out.size() == points.size());
  CSG_EXPECTS(coeffs.size() >= plan.num_points());
  const dim_t d = plan.dim();
  if (eval_uses_soa()) {
    // Thread-local arena: OpenMP pool threads and serve workers alike keep
    // one PointBlock alive across calls, so a steady-state batch stream
    // transposes in place and performs zero point-layout allocations
    // (PointBlock::allocation_count() stays flat — bench_serve gates this).
    thread_local PointBlock block;
    for (std::size_t b0 = 0; b0 < points.size(); b0 += block_size) {
      const std::size_t b1 = std::min(b0 + block_size, points.size());
      block.assign(d, points.subspan(b0, b1 - b0));
      evaluate_block_soa(plan, coeffs, block);
      const real_t* acc = block.accum();
      for (std::size_t p = b0; p < b1; ++p) out[p] += acc[p - b0];
    }
    return;
  }
  // Scalar fallback: the pre-SoA blocked loop, kept verbatim (and selectable
  // via CSG_FORCE_SCALAR_EVAL / set_eval_kernel) so differential tests can
  // pin the SoA kernel against a bit-identical-to-seed reference.
  const level_t* levels = plan.packed_levels();
  const flat_index_t* offsets = plan.offsets();
  const std::size_t count = plan.subspace_count();
  for (std::size_t b0 = 0; b0 < points.size(); b0 += block_size) {
    const std::size_t b1 = std::min(b0 + block_size, points.size());
    for (std::size_t s = 0; s < count; ++s) {
      const level_t* l = levels + s * d;
      const flat_index_t base = offsets[s];
      for (std::size_t p = b0; p < b1; ++p)
        out[p] += subspace_contribution(coeffs.data(), l, d, base, points[p]);
    }
  }
}

std::vector<real_t> evaluate_many_blocked(const EvaluationPlan& plan,
                                          std::span<const real_t> coeffs,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size) {
  std::vector<real_t> out(points.size(), 0);
  evaluate_blocked_into(plan, coeffs, points, block_size, out);
  return out;
}

std::vector<real_t> evaluate_many_blocked(const CompactStorage& storage,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size) {
  const auto plan = EvaluationPlan::shared(storage.grid());
  return evaluate_many_blocked(
      *plan,
      std::span<const real_t>(storage.data(), storage.values().size()),
      points, block_size);
}

}  // namespace csg
