#include "csg/core/evaluate.hpp"

#include <algorithm>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

namespace {

/// Contribution of subspace l (whose coefficients start at flat position
/// `base`) to the interpolant at x: the one basis with x in its support,
/// times its coefficient. Also the body of Alg. 7 lines 6-16.
real_t subspace_contribution(const real_t* coeffs, const LevelVector& l,
                             flat_index_t base, const CoordVector& x) {
  real_t prod = 1;
  flat_index_t index1 = 0;
  for (dim_t t = 0; t < l.size(); ++t) {
    const index1d_t i = support_index_1d(l[t], x[t]);
    index1 = (index1 << l[t]) + ((i - 1) >> 1);
    prod *= hat_basis_1d(l[t], i, x[t]);
    if (prod == 0) return 0;  // x on a grid line of this subspace
  }
  return prod * coeffs[base + index1];
}

}  // namespace

real_t evaluate_span(const RegularSparseGrid& grid,
                     std::span<const real_t> coeffs, const CoordVector& x) {
  CSG_EXPECTS(x.size() == grid.dim());
  CSG_EXPECTS(coeffs.size() >= grid.num_points());
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  real_t res = 0;
  flat_index_t index2 = 0;
  for (level_t j = 0; j < n; ++j) {
    LevelVector l = first_level(d, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      res += subspace_contribution(coeffs.data(), l, index2, x);
      index2 += grid.points_per_subspace(j);
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  CSG_ASSERT(index2 == grid.num_points());
  return res;
}

real_t evaluate(const CompactStorage& storage, const CoordVector& x) {
  return evaluate_span(storage.grid(),
                       std::span<const real_t>(storage.data(),
                                               storage.values().size()),
                       x);
}

std::vector<real_t> evaluate_many(const CompactStorage& storage,
                                  std::span<const CoordVector> points) {
  std::vector<real_t> out(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    out[p] = evaluate(storage, points[p]);
  return out;
}

std::vector<real_t> evaluate_many_blocked(const CompactStorage& storage,
                                          std::span<const CoordVector> points,
                                          std::size_t block_size) {
  CSG_EXPECTS(block_size >= 1);
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  std::vector<real_t> out(points.size(), 0);
  for (std::size_t b0 = 0; b0 < points.size(); b0 += block_size) {
    const std::size_t b1 = std::min(b0 + block_size, points.size());
    flat_index_t index2 = 0;
    for (level_t j = 0; j < n; ++j) {
      LevelVector l = first_level(d, j);
      const std::uint64_t subspaces = grid.subspaces_in_group(j);
      for (std::uint64_t k = 0; k < subspaces; ++k) {
        for (std::size_t p = b0; p < b1; ++p)
          out[p] += subspace_contribution(storage.data(), l, index2,
                                           points[p]);
        index2 += grid.points_per_subspace(j);
        if (k + 1 < subspaces) advance_level(l);
      }
    }
  }
  return out;
}

}  // namespace csg
