#include "csg/core/boundary_grid.hpp"

#include <span>

#include "csg/core/evaluate.hpp"

namespace csg {

namespace {

/// Colex unranking of the rank-r subset of size j from {0..d-1}: for k = j
/// down to 1 pick the largest c with C(c, k) <= r. Returns the ascending
/// element list.
DimVector<dim_t> unrank_subset(dim_t d, dim_t j, std::uint64_t r,
                               const BinomialTable& binmat) {
  DimVector<dim_t> subset(j);
  for (dim_t k = j; k >= 1; --k) {
    dim_t c = k - 1;
    while (c + 1 < d && binmat(c + 1, k) <= r) ++c;
    subset[k - 1] = c;
    r -= binmat(c, k);
  }
  CSG_ASSERT(r == 0);
  return subset;
}

}  // namespace

std::uint64_t num_boundary_subgrids(dim_t d, dim_t j) {
  CSG_EXPECTS(j <= d);
  return binomial_on_the_fly(d, j) << j;
}

BoundarySparseGrid::BoundarySparseGrid(dim_t d, level_t n) : d_(d), n_(n) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  CSG_EXPECTS(n >= 1 && n <= kMaxLevel);
  binmat_ = BinomialTable(d);
  interior_.reserve(d);
  for (dim_t k = 1; k <= d; ++k) interior_.emplace_back(k, n);
  subgrid_points_.resize(d + 1);
  group_offset_.resize(d + 2);
  group_offset_[0] = 0;
  unsigned __int128 total = 0;
  for (dim_t j = 0; j <= d; ++j) {
    subgrid_points_[j] = (j < d) ? interior_[d - j - 1].num_points() : 1;
    total += static_cast<unsigned __int128>(num_boundary_subgrids(d, j)) *
             subgrid_points_[j];
    CSG_EXPECTS(total < (static_cast<unsigned __int128>(1) << 63) &&
                "boundary grid too large for 64-bit flat indices");
    group_offset_[j + 1] = static_cast<flat_index_t>(total);
  }
}

bool BoundarySparseGrid::contains(const BoundaryPoint& p) const {
  if (p.level.size() != d_ || p.index.size() != d_) return false;
  std::uint64_t interior_sum = 0;
  for (dim_t t = 0; t < d_; ++t) {
    if (p.fixed(t)) {
      if (p.index[t] > 1) return false;
    } else {
      if (!valid_point_1d(p.level[t], p.index[t])) return false;
      interior_sum += p.level[t];
    }
  }
  // Corners have interior_sum == 0 and satisfy this trivially (n_ >= 1).
  return interior_sum < n_;
}

std::uint64_t BoundarySparseGrid::subset_rank(const BoundaryPoint& p) const {
  std::uint64_t rank = 0;
  dim_t k = 0;
  for (dim_t t = 0; t < d_; ++t)
    if (p.fixed(t)) rank += binmat_(t, ++k);
  return rank;
}

flat_index_t BoundarySparseGrid::bp2idx(const BoundaryPoint& p) const {
  CSG_EXPECTS(p.level.size() == d_ && p.index.size() == d_);
  dim_t j = 0;
  std::uint64_t sign = 0;
  LevelVector li;
  IndexVector ii;
  for (dim_t t = 0; t < d_; ++t) {
    if (p.fixed(t)) {
      CSG_EXPECTS(p.index[t] <= 1);
      sign |= static_cast<std::uint64_t>(p.index[t]) << j;
      ++j;
    } else {
      li.push_back(p.level[t]);
      ii.push_back(p.index[t]);
    }
  }
  const std::uint64_t subgrid =
      (subset_rank(p) << j) + sign;
  const flat_index_t inner =
      (j == d_) ? 0 : interior_[d_ - j - 1].gp2idx(li, ii);
  return group_offset_[j] + subgrid * subgrid_points_[j] + inner;
}

BoundaryPoint BoundarySparseGrid::idx2bp(flat_index_t idx) const {
  CSG_EXPECTS(idx < num_points());
  dim_t j = 0;
  while (group_offset_[j + 1] <= idx) ++j;
  const flat_index_t local = idx - group_offset_[j];
  const flat_index_t block = subgrid_points_[j];
  const std::uint64_t subgrid = local / block;
  const flat_index_t inner = local % block;
  const std::uint64_t sign = subgrid & ((std::uint64_t{1} << j) - 1);
  const std::uint64_t rank = subgrid >> j;
  const DimVector<dim_t> subset = unrank_subset(d_, j, rank, binmat_);

  BoundaryPoint p;
  p.level.resize(d_);
  p.index.resize(d_);
  GridPoint ip;
  if (j < d_) ip = interior_[d_ - j - 1].idx2gp(inner);
  dim_t fixed_seen = 0, free_seen = 0;
  for (dim_t t = 0; t < d_; ++t) {
    if (fixed_seen < j && subset[fixed_seen] == t) {
      p.level[t] = kBoundaryLevel;
      p.index[t] = (sign >> fixed_seen) & 1;
      ++fixed_seen;
    } else {
      p.level[t] = ip.level[free_seen];
      p.index[t] = ip.index[free_seen];
      ++free_seen;
    }
  }
  return p;
}

BoundaryStorage::BoundaryStorage(BoundarySparseGrid grid)
    : grid_(std::move(grid)),
      values_(static_cast<std::size_t>(grid_.num_points()), real_t{0}) {}

void BoundaryStorage::sample(
    const std::function<real_t(const CoordVector&)>& f) {
  for (flat_index_t j = 0; j < size(); ++j)
    values_[static_cast<std::size_t>(j)] = f(grid_.idx2bp(j).coordinates());
}

namespace {

/// Value of the dimension-t parent of p, where the parent may be an
/// interior point or a boundary point of an adjacent sub-grid.
real_t boundary_parent_value(const BoundaryStorage& storage, BoundaryPoint p,
                             dim_t t, bool right) {
  const Parent1d par = right ? right_parent_1d(p.level[t], p.index[t])
                             : left_parent_1d(p.level[t], p.index[t]);
  if (par.is_boundary) {
    p.level[t] = kBoundaryLevel;
    p.index[t] = right ? 1 : 0;
  } else {
    p.level[t] = par.level;
    p.index[t] = par.index;
  }
  return storage[storage.grid().bp2idx(p)];
}

}  // namespace

void hierarchize(BoundaryStorage& storage) {
  const BoundarySparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  // Flat descending order puts, inside every sub-grid, higher interior level
  // groups first — so a point's (strictly lower-level or boundary) parents
  // in the active dimension are read before they are themselves updated.
  for (dim_t t = 0; t < d; ++t) {
    for (flat_index_t idx = grid.num_points(); idx-- > 0;) {
      const BoundaryPoint p = grid.idx2bp(idx);
      if (p.fixed(t)) continue;  // boundary coefficients are nodal in t
      const real_t v1 = boundary_parent_value(storage, p, t, false);
      const real_t v2 = boundary_parent_value(storage, p, t, true);
      storage[idx] -= (v1 + v2) / 2;
    }
  }
}

void dehierarchize(BoundaryStorage& storage) {
  const BoundarySparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  for (dim_t t = d; t-- > 0;) {
    for (flat_index_t idx = 0; idx < grid.num_points(); ++idx) {
      const BoundaryPoint p = grid.idx2bp(idx);
      if (p.fixed(t)) continue;
      const real_t v1 = boundary_parent_value(storage, p, t, false);
      const real_t v2 = boundary_parent_value(storage, p, t, true);
      storage[idx] += (v1 + v2) / 2;
    }
  }
}

real_t evaluate(const BoundaryStorage& storage, const CoordVector& x) {
  const BoundarySparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  CSG_EXPECTS(x.size() == d);
  const BinomialTable& binmat = grid.binmat();
  real_t res = 0;
  flat_index_t base = 0;
  for (dim_t j = 0; j <= d; ++j) {
    const std::uint64_t subsets = binmat(d, j);
    const flat_index_t block = grid.subgrid_points(j);
    for (std::uint64_t r = 0; r < subsets; ++r) {
      const DimVector<dim_t> subset = unrank_subset(d, j, r, binmat);
      for (std::uint64_t sign = 0; sign < (std::uint64_t{1} << j); ++sign) {
        // Weight: product of the level-0 boundary hats over fixed dims.
        real_t w = 1;
        for (dim_t k = 0; k < j; ++k) {
          const real_t xt = x[subset[k]];
          w *= ((sign >> k) & 1) ? xt : (1 - xt);
        }
        if (w != 0) {
          if (j == d) {
            res += w * storage[base];
          } else {
            CoordVector proj;
            dim_t fixed_seen = 0;
            for (dim_t t = 0; t < d; ++t) {
              if (fixed_seen < j && subset[fixed_seen] == t)
                ++fixed_seen;
              else
                proj.push_back(x[t]);
            }
            res += w * evaluate_span(
                           grid.interior_grid(d - j),
                           std::span<const real_t>(
                               storage.values().data() + base,
                               static_cast<std::size_t>(block)),
                           proj);
          }
        }
        base += block;
      }
    }
  }
  CSG_ASSERT(base == grid.num_points());
  return res;
}

}  // namespace csg
