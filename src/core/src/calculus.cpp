#include "csg/core/calculus.hpp"

#include <cmath>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

namespace {

/// 1d hat value and one-sided derivative at x for the level-l basis with
/// index i. At the kink (x on the center) and at the support edges the
/// cell to the LEFT of x decides, so piecewise-constant gradients are
/// left-continuous.
struct HatEval {
  real_t value;
  real_t derivative;
};

HatEval hat_value_and_derivative(level_t l, index1d_t i, real_t x) {
  const real_t h_inv = std::ldexp(real_t{1}, static_cast<int>(l + 1));
  const real_t u = x * h_inv - static_cast<real_t>(i);
  if (u <= -1 || u >= 1) return {0, 0};
  return {1 - std::abs(u), u <= 0 ? h_inv : -h_inv};
}

}  // namespace

ValueAndGradient evaluate_with_gradient(const CompactStorage& storage,
                                        const CoordVector& x) {
  const RegularSparseGrid& grid = storage.grid();
  CSG_EXPECTS(x.size() == grid.dim());
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  ValueAndGradient out{0, CoordVector(d, 0)};

  DimVector<real_t> value(d), deriv(d), prefix(d), suffix(d);
  flat_index_t index2 = 0;
  for (level_t j = 0; j < n; ++j) {
    LevelVector l = first_level(d, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      flat_index_t index1 = 0;
      for (dim_t t = 0; t < d; ++t) {
        const index1d_t i = support_index_1d(l[t], x[t]);
        index1 = (index1 << l[t]) + ((i - 1) >> 1);
        const HatEval he = hat_value_and_derivative(l[t], i, x[t]);
        value[t] = he.value;
        deriv[t] = he.derivative;
      }
      // prefix[t] = prod_{s<t} value[s], suffix[t] = prod_{s>t} value[s]:
      // no divisions, so zero factors (x on a grid line) stay exact.
      real_t acc = 1;
      for (dim_t t = 0; t < d; ++t) {
        prefix[t] = acc;
        acc *= value[t];
      }
      const real_t coeff = storage[index2 + index1];
      out.value += coeff * acc;
      acc = 1;
      for (dim_t t = d; t-- > 0;) {
        suffix[t] = acc;
        acc *= value[t];
      }
      for (dim_t t = 0; t < d; ++t)
        out.gradient[t] += coeff * prefix[t] * suffix[t] * deriv[t];
      index2 += grid.points_per_subspace(j);
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  return out;
}

real_t integrate(const CompactStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  real_t total = 0;
  for (level_t j = 0; j < grid.level(); ++j) {
    real_t group_sum = 0;
    const flat_index_t end = grid.group_offset(j + 1);
    for (flat_index_t idx = grid.group_offset(j); idx < end; ++idx)
      group_sum += storage[idx];
    total += std::ldexp(group_sum, -static_cast<int>(j + d));
  }
  return total;
}

std::vector<real_t> max_surplus_per_group(const CompactStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  std::vector<real_t> out(grid.level(), 0);
  for (level_t j = 0; j < grid.level(); ++j) {
    const flat_index_t end = grid.group_offset(j + 1);
    for (flat_index_t idx = grid.group_offset(j); idx < end; ++idx)
      out[j] = std::max(out[j], std::abs(storage[idx]));
  }
  return out;
}

}  // namespace csg
