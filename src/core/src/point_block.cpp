#include "csg/core/point_block.hpp"

#include <algorithm>
#include <atomic>

namespace csg {

namespace {

// Relaxed is enough: the counter is a monotone tally read by benches after
// the workload quiesces, never used for synchronization.
std::atomic<std::uint64_t> g_arena_allocations{0};

}  // namespace

std::uint64_t PointBlock::allocation_count() {
  return g_arena_allocations.load(std::memory_order_relaxed);
}

void PointBlock::assign(dim_t d, std::span<const CoordVector> points) {
  CSG_EXPECTS(d >= 1 && d <= kMaxDim);
  dim_ = d;
  size_ = points.size();
  padded_ =
      (size_ + kPointBlockLane - 1) / kPointBlockLane * kPointBlockLane;
  if (padded_ > stride_ || d > cap_dims_) {
    stride_ = std::max(padded_, stride_);
    cap_dims_ = std::max(d, cap_dims_);
    // 3 scratch arrays ride behind the coordinate arrays: accumulator,
    // running hat product, running flat index (see scratch()).
    storage_.assign((static_cast<std::size_t>(cap_dims_) + 3) * stride_,
                    real_t{0});
    g_arena_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  real_t* base = storage_.data();
  for (std::size_t p = 0; p < size_; ++p) {
    const CoordVector& x = points[p];
    CSG_EXPECTS(x.size() == d);
    for (dim_t t = 0; t < d; ++t)
      base[static_cast<std::size_t>(t) * stride_ + p] = x[t];
  }
  // Pad the tail with coordinate 0 (hat product 0 in every subspace).
  for (dim_t t = 0; t < d; ++t)
    for (std::size_t p = size_; p < padded_; ++p)
      base[static_cast<std::size_t>(t) * stride_ + p] = 0;
}

}  // namespace csg
