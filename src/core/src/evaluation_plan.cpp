#include "csg/core/evaluation_plan.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "csg/core/level_enumeration.hpp"

namespace csg {

EvaluationPlan::EvaluationPlan(const RegularSparseGrid& grid)
    : d_(grid.dim()), n_(grid.level()), num_points_(grid.num_points()) {
  std::size_t total_subspaces = 0;
  for (level_t j = 0; j < n_; ++j)
    total_subspaces += static_cast<std::size_t>(grid.subspaces_in_group(j));
  levels_.reserve(total_subspaces * d_);
  offsets_.reserve(total_subspaces);

  // Same walk evaluate_span used to do per query point, executed once:
  // level groups ascending, within a group the Alg. 3 order, the base
  // offset advancing by 2^j per subspace.
  flat_index_t base = 0;
  for (level_t j = 0; j < n_; ++j) {
    LevelVector l = first_level(d_, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    const flat_index_t span = grid.points_per_subspace(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      levels_.insert(levels_.end(), l.begin(), l.end());
      offsets_.push_back(base);
      base += span;
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  CSG_ENSURES(base == num_points_);
  CSG_ENSURES(offsets_.size() == total_subspaces);
}

std::shared_ptr<const EvaluationPlan> EvaluationPlan::shared(
    const RegularSparseGrid& grid) {
  static std::mutex mutex;
  static std::map<std::pair<dim_t, level_t>,
                  std::shared_ptr<const EvaluationPlan>>
      cache;
  const std::pair<dim_t, level_t> key{grid.dim(), grid.level()};
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Build outside the lock so concurrent first-time callers of different
  // shapes do not serialize on the flattening.
  auto plan = std::make_shared<const EvaluationPlan>(grid);
  std::lock_guard<std::mutex> lock(mutex);
  const auto [it, inserted] = cache.emplace(key, std::move(plan));
  return it->second;
}

}  // namespace csg
