#include "csg/core/evaluation_plan.hpp"

#include <list>
#include <map>
#include <utility>

#include "csg/core/level_enumeration.hpp"
#include "csg/core/thread_annotations.hpp"

namespace csg {

EvaluationPlan::EvaluationPlan(const RegularSparseGrid& grid)
    : d_(grid.dim()), n_(grid.level()), num_points_(grid.num_points()) {
  std::size_t total_subspaces = 0;
  for (level_t j = 0; j < n_; ++j)
    total_subspaces += static_cast<std::size_t>(grid.subspaces_in_group(j));
  levels_.reserve(total_subspaces * d_);
  offsets_.reserve(total_subspaces);

  // Same walk evaluate_span used to do per query point, executed once:
  // level groups ascending, within a group the Alg. 3 order, the base
  // offset advancing by 2^j per subspace.
  flat_index_t base = 0;
  for (level_t j = 0; j < n_; ++j) {
    LevelVector l = first_level(d_, j);
    const std::uint64_t subspaces = grid.subspaces_in_group(j);
    const flat_index_t span = grid.points_per_subspace(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      levels_.insert(levels_.end(), l.begin(), l.end());
      offsets_.push_back(base);
      base += span;
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  CSG_ENSURES(base == num_points_);
  CSG_ENSURES(offsets_.size() == total_subspaces);
}

namespace {

// The process-wide LRU plan cache. A plain unbounded map here was the
// footprint bug a long-lived multi-grid server hits: every (d, n) shape
// ever evaluated stayed resident forever. The cache now keeps at most
// `capacity` plans in recency order; the map indexes into the recency list
// so both lookup and LRU maintenance are O(log size).
struct PlanCache {
  using Key = std::pair<dim_t, level_t>;
  struct Entry {
    Key key;
    std::shared_ptr<const EvaluationPlan> plan;
  };

  Mutex mutex;
  // Front = most recently used. std::list iterators stay valid across
  // splice, which is all reordering ever does.
  std::list<Entry> lru CSG_GUARDED_BY(mutex);
  std::map<Key, std::list<Entry>::iterator> index CSG_GUARDED_BY(mutex);
  std::size_t capacity CSG_GUARDED_BY(mutex) =
      EvaluationPlan::kDefaultSharedCacheCap;
  std::uint64_t hits CSG_GUARDED_BY(mutex) = 0;
  std::uint64_t misses CSG_GUARDED_BY(mutex) = 0;
  std::uint64_t evictions CSG_GUARDED_BY(mutex) = 0;
  std::uint64_t build_races CSG_GUARDED_BY(mutex) = 0;

  /// Drops least-recently-used entries down to cap.
  void evict_to_capacity() CSG_REQUIRES(mutex) {
    while (lru.size() > capacity) {
      index.erase(lru.back().key);
      lru.pop_back();
      ++evictions;
    }
  }
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const EvaluationPlan> EvaluationPlan::shared(
    const RegularSparseGrid& grid) {
  PlanCache& cache = plan_cache();
  const PlanCache::Key key{grid.dim(), grid.level()};
  {
    MutexLock lock(cache.mutex);
    const auto it = cache.index.find(key);
    if (it != cache.index.end()) {
      ++cache.hits;
      cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
      return it->second->plan;
    }
    ++cache.misses;
  }
  // Build outside the lock so concurrent first-time callers of different
  // shapes do not serialize on the flattening. Two threads racing on the
  // same key both build; the re-check below keeps the first insert and
  // discards the loser's copy, so the cache never holds duplicates.
  auto plan = std::make_shared<const EvaluationPlan>(grid);
  MutexLock lock(cache.mutex);
  const auto it = cache.index.find(key);
  if (it != cache.index.end()) {
    ++cache.build_races;
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return it->second->plan;
  }
  cache.lru.push_front({key, std::move(plan)});
  cache.index.emplace(key, cache.lru.begin());
  cache.evict_to_capacity();
  return cache.lru.front().plan;
}

EvaluationPlan::SharedCacheStats EvaluationPlan::shared_cache_stats() {
  PlanCache& cache = plan_cache();
  MutexLock lock(cache.mutex);
  SharedCacheStats stats;
  stats.size = cache.lru.size();
  stats.capacity = cache.capacity;
  stats.hits = cache.hits;
  stats.misses = cache.misses;
  stats.evictions = cache.evictions;
  stats.build_races = cache.build_races;
  for (const auto& entry : cache.lru)
    stats.memory_bytes += entry.plan->memory_bytes();
  return stats;
}

void EvaluationPlan::shared_cache_clear() {
  PlanCache& cache = plan_cache();
  MutexLock lock(cache.mutex);
  cache.lru.clear();
  cache.index.clear();
  cache.hits = cache.misses = cache.evictions = cache.build_races = 0;
}

void EvaluationPlan::shared_cache_set_capacity(std::size_t cap) {
  CSG_EXPECTS(cap >= 1);
  PlanCache& cache = plan_cache();
  MutexLock lock(cache.mutex);
  cache.capacity = cap;
  cache.evict_to_capacity();
}

}  // namespace csg
