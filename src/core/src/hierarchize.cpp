#include "csg/core/hierarchize.hpp"

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

flat_index_t parent_flat_index(const RegularSparseGrid& grid, LevelVector l,
                               IndexVector i, dim_t t, bool right) {
  const Parent1d p =
      right ? right_parent_1d(l[t], i[t]) : left_parent_1d(l[t], i[t]);
  if (p.is_boundary) return kBoundaryParent;
  l[t] = p.level;
  i[t] = p.index;
  return grid.gp2idx(l, i);
}

namespace {

/// Advance the index odometer of subspace l to the next row-major point;
/// returns false after the last point.
bool advance_index(const LevelVector& l, IndexVector& i) {
  for (dim_t t = l.size(); t-- > 0;) {
    i[t] += 2;
    if (i[t] < (index1d_t{1} << (l[t] + 1))) return true;
    i[t] = 1;
  }
  return false;
}

real_t parent_value(const CompactStorage& storage, const LevelVector& l,
                    const IndexVector& i, dim_t t, bool right) {
  const flat_index_t p =
      parent_flat_index(storage.grid(), l, i, t, right);
  return p == kBoundaryParent ? real_t{0} : storage[p];
}

}  // namespace

void hierarchize(CompactStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = 0; t < d; ++t) {
    // Points with l[t] == 0 have both parents on the boundary: no-op.
    for (level_t j = n; j-- > 1;) {
      flat_index_t pos = grid.group_offset(j);
      for (const LevelVector& l : LevelRange(d, j)) {
        if (l[t] == 0) {
          pos += grid.points_per_subspace(j);
          continue;
        }
        IndexVector i(d, 1);
        do {
          const real_t v1 = parent_value(storage, l, i, t, /*right=*/false);
          const real_t v2 = parent_value(storage, l, i, t, /*right=*/true);
          storage[pos] -= (v1 + v2) / 2;
          ++pos;
        } while (advance_index(l, i));
      }
      CSG_ASSERT(pos == grid.group_offset(j + 1));
    }
  }
}

namespace {

/// Scalar Alg. 1 recursion over one pole of dimension t in the flat array.
/// Point (lev, c) — c = (i-1)/2 — sits at offs[lev] + ((A << lev) + c) * S
/// + B. Forward: children consume the pre-update ancestor values riding
/// down the recursion; inverse: the point is restored before its children
/// read it.
struct PoleTransform {
  real_t* data;
  const flat_index_t* offs;
  flat_index_t prefix;  // A
  flat_index_t stride;  // S
  flat_index_t suffix;  // B
  level_t budget;

  flat_index_t position(level_t lev, flat_index_t c) const {
    return offs[lev] + ((prefix << lev) + c) * stride + suffix;
  }

  void forward(level_t lev, flat_index_t c, real_t left, real_t right) const {
    const flat_index_t pos = position(lev, c);
    const real_t cur = data[pos];
    if (lev < budget) {
      forward(lev + 1, 2 * c, left, cur);
      forward(lev + 1, 2 * c + 1, cur, right);
    }
    data[pos] = cur - (left + right) / 2;
  }

  void inverse(level_t lev, flat_index_t c, real_t left, real_t right) const {
    const flat_index_t pos = position(lev, c);
    const real_t cur = data[pos] + (left + right) / 2;
    data[pos] = cur;
    if (lev < budget) {
      inverse(lev + 1, 2 * c, left, cur);
      inverse(lev + 1, 2 * c + 1, cur, right);
    }
  }
};

void transform_poles(CompactStorage& storage, bool inverse_op) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  std::vector<flat_index_t> offs(n);
  for (dim_t t = 0; t < d; ++t) {
    // Pole roots: subspaces with l[t] = 0 in every level group.
    for (level_t j = 0; j < n; ++j) {
      for (const LevelVector& l : LevelRange(d, j)) {
        if (l[t] != 0) continue;
        const auto budget = static_cast<level_t>(n - 1 - j);
        LevelVector lt = l;
        for (level_t lev = 0; lev <= budget; ++lev) {
          lt[t] = lev;
          offs[lev] = grid.subspace_offset(lt);
        }
        flat_index_t prefix_count = 1, stride = 1;
        for (dim_t s = 0; s < t; ++s) prefix_count <<= l[s];
        for (dim_t s = t + 1; s < d; ++s) stride <<= l[s];
        PoleTransform pole{storage.data(), offs.data(), 0, stride, 0, budget};
        for (flat_index_t a = 0; a < prefix_count; ++a) {
          pole.prefix = a;
          for (flat_index_t b = 0; b < stride; ++b) {
            pole.suffix = b;
            if (inverse_op)
              pole.inverse(0, 0, 0, 0);
            else
              pole.forward(0, 0, 0, 0);
          }
        }
      }
    }
  }
}

}  // namespace

void hierarchize_poles(CompactStorage& storage) {
  transform_poles(storage, /*inverse_op=*/false);
}

void dehierarchize_poles(CompactStorage& storage) {
  transform_poles(storage, /*inverse_op=*/true);
}

void hierarchize_literal(CompactStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  for (dim_t t = 0; t < d; ++t) {
    for (flat_index_t j = grid.num_points(); j-- > 0;) {
      const GridPoint gp = grid.idx2gp(j);
      const real_t v1 = parent_value(storage, gp.level, gp.index, t, false);
      const real_t v2 = parent_value(storage, gp.level, gp.index, t, true);
      storage[j] -= (v1 + v2) / 2;
    }
  }
}

void dehierarchize(CompactStorage& storage) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const level_t n = grid.level();
  for (dim_t t = d; t-- > 0;) {
    // Ascending level groups: a point's parents in dimension t are already
    // restored to nodal-in-t values when the point itself is updated.
    for (level_t j = 1; j < n; ++j) {
      flat_index_t pos = grid.group_offset(j);
      for (const LevelVector& l : LevelRange(d, j)) {
        if (l[t] == 0) {
          pos += grid.points_per_subspace(j);
          continue;
        }
        IndexVector i(d, 1);
        do {
          const real_t v1 = parent_value(storage, l, i, t, false);
          const real_t v2 = parent_value(storage, l, i, t, true);
          storage[pos] += (v1 + v2) / 2;
          ++pos;
        } while (advance_index(l, i));
      }
      CSG_ASSERT(pos == grid.group_offset(j + 1));
    }
  }
}

}  // namespace csg
