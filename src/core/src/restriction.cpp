#include "csg/core/restriction.hpp"

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

CompactStorage restrict_to_plane(const CompactStorage& storage,
                                 const DimVector<dim_t>& kept_dims,
                                 const CoordVector& anchor) {
  const RegularSparseGrid& grid = storage.grid();
  const dim_t d = grid.dim();
  const dim_t k = kept_dims.size();
  CSG_EXPECTS(k >= 1 && k < d);
  CSG_EXPECTS(anchor.size() == d - k);
  for (dim_t s = 0; s + 1 < k; ++s)
    CSG_EXPECTS(kept_dims[s] < kept_dims[s + 1]);
  CSG_EXPECTS(kept_dims[k - 1] < d);
  for (const real_t a : anchor) CSG_EXPECTS(a >= 0 && a <= 1);

  CompactStorage out(k, grid.level());
  const RegularSparseGrid& out_grid = out.grid();

  // Membership mask for O(1) kept/dropped classification.
  DimVector<dim_t> kept_slot(d, static_cast<dim_t>(~0u));
  DimVector<dim_t> dropped_slot(d, static_cast<dim_t>(~0u));
  {
    dim_t ks = 0, ds = 0;
    for (dim_t t = 0; t < d; ++t) {
      if (ks < k && kept_dims[ks] == t)
        kept_slot[t] = ks++;
      else
        dropped_slot[t] = ds++;
    }
  }

  // One pass over the source subspaces: within a subspace the dropped-dim
  // weight only depends on the dropped components of i, and the kept
  // destination subspace is fixed, so the inner loop accumulates rows.
  LevelVector lk(k);
  IndexVector ik(k);
  for (level_t j = 0; j < grid.level(); ++j) {
    flat_index_t pos = grid.group_offset(j);
    for (const LevelVector& l : LevelRange(d, j)) {
      for (dim_t t = 0; t < d; ++t)
        if (kept_slot[t] != static_cast<dim_t>(~0u))
          lk[kept_slot[t]] = l[t];
      const flat_index_t out_base = out_grid.subspace_offset(lk);
      IndexVector i(d, 1);
      for (;;) {
        // Dropped-dimension weight at the anchor.
        real_t w = 1;
        for (dim_t t = 0; t < d && w != 0; ++t) {
          if (dropped_slot[t] != static_cast<dim_t>(~0u))
            w *= hat_basis_1d(l[t], i[t], anchor[dropped_slot[t]]);
        }
        if (w != 0) {
          for (dim_t t = 0; t < d; ++t)
            if (kept_slot[t] != static_cast<dim_t>(~0u))
              ik[kept_slot[t]] = i[t];
          out[out_base + out_grid.point_index_in_subspace(lk, ik)] +=
              w * storage[pos];
        }
        ++pos;
        dim_t t = d;
        bool carry = true;
        while (t-- > 0) {
          i[t] += 2;
          if (i[t] < (index1d_t{1} << (l[t] + 1))) {
            carry = false;
            break;
          }
          i[t] = 1;
        }
        if (carry) break;
      }
    }
    CSG_ASSERT(pos == grid.group_offset(j + 1));
  }
  return out;
}

CoordVector embed_in_plane(dim_t full_dim, const DimVector<dim_t>& kept_dims,
                           const CoordVector& anchor, const CoordVector& x) {
  CSG_EXPECTS(x.size() == kept_dims.size());
  CSG_EXPECTS(anchor.size() == full_dim - kept_dims.size());
  CoordVector full(full_dim);
  dim_t ks = 0, ds = 0;
  for (dim_t t = 0; t < full_dim; ++t) {
    if (ks < kept_dims.size() && kept_dims[ks] == t)
      full[t] = x[ks++];
    else
      full[t] = anchor[ds++];
  }
  return full;
}

}  // namespace csg
