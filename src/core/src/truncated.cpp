#include "csg/core/truncated.hpp"

#include <cmath>

#include "csg/core/grid_point.hpp"
#include "csg/core/level_enumeration.hpp"

namespace csg {

TruncatedStorage::TruncatedStorage(const CompactStorage& source,
                                   real_t epsilon)
    : grid_(source.grid()) {
  CSG_EXPECTS(epsilon >= 0);
  // One pass in flat (subspace-contiguous) order: collect survivors and
  // accumulate the per-subspace maximum dropped surplus for the bound.
  for (level_t j = 0; j < grid_.level(); ++j) {
    const flat_index_t span = grid_.points_per_subspace(j);
    flat_index_t pos = grid_.group_offset(j);
    const flat_index_t group_end = grid_.group_offset(j + 1);
    while (pos < group_end) {
      real_t max_dropped = 0;
      for (flat_index_t k = 0; k < span; ++k, ++pos) {
        const real_t v = source[pos];
        if (std::abs(v) > epsilon) {
          indices_.push_back(pos);
          values_.push_back(v);
        } else {
          max_dropped = std::max(max_dropped, std::abs(v));
        }
      }
      error_bound_ += max_dropped;
    }
  }
}

TruncatedStorage::TruncatedStorage(RegularSparseGrid grid,
                                   std::vector<flat_index_t> indices,
                                   std::vector<real_t> values,
                                   real_t error_bound)
    : grid_(std::move(grid)), indices_(std::move(indices)),
      values_(std::move(values)), error_bound_(error_bound) {
  CSG_EXPECTS(indices_.size() == values_.size());
  CSG_EXPECTS(error_bound >= 0);
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    CSG_EXPECTS(indices_[k] < grid_.num_points());
    CSG_EXPECTS(k == 0 || indices_[k - 1] < indices_[k]);
  }
}

real_t TruncatedStorage::evaluate(const CoordVector& x) const {
  CSG_EXPECTS(x.size() == grid_.dim());
  const dim_t d = grid_.dim();
  real_t res = 0;
  std::size_t cursor = 0;  // forward merge into the sorted survivors
  flat_index_t index2 = 0;
  for (level_t j = 0; j < grid_.level(); ++j) {
    LevelVector l = first_level(d, j);
    const std::uint64_t subspaces = grid_.subspaces_in_group(j);
    for (std::uint64_t k = 0; k < subspaces; ++k) {
      real_t prod = 1;
      flat_index_t index1 = 0;
      for (dim_t t = 0; t < d; ++t) {
        const index1d_t i = support_index_1d(l[t], x[t]);
        index1 = (index1 << l[t]) + ((i - 1) >> 1);
        prod *= hat_basis_1d(l[t], i, x[t]);
        if (prod == 0) break;
      }
      if (prod != 0) {
        const flat_index_t target = index2 + index1;
        while (cursor < indices_.size() && indices_[cursor] < target)
          ++cursor;
        if (cursor < indices_.size() && indices_[cursor] == target)
          res += prod * values_[cursor];
      }
      index2 += grid_.points_per_subspace(j);
      if (k + 1 < subspaces) advance_level(l);
    }
  }
  return res;
}

CompactStorage TruncatedStorage::densify() const {
  CompactStorage out(grid_);
  for (std::size_t k = 0; k < indices_.size(); ++k)
    out[indices_[k]] = values_[k];
  return out;
}

}  // namespace csg
