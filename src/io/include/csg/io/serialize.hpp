// Binary serialization — the "Storage" box in the paper's Fig. 1 pipeline.
//
// Three grid flavours share the header discipline (magic, shape, count,
// raw payload) but differ in what identifies the point set:
//  * CompactStorage   "CSG1": (d, n) fully determines the layout, so the
//    payload is just N coefficients in gp2idx order — no keys on disk,
//    the same minimal footprint as in memory.
//  * BoundaryStorage  "CSB1": (d, n) again suffices (the Sec. 4.4
//    decomposition is canonical), payload in bp2idx order.
//  * AdaptiveSparseGrid "CSA1": the point set is data, so each record is
//    (levels, indices, nodal, surplus); loading restores the closure-
//    checked grid.
#pragma once

#include <iosfwd>
#include <string>

#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/core/boundary_grid.hpp"
#include "csg/core/compact_storage.hpp"
#include "csg/core/truncated.hpp"

namespace csg::io {

/// Serialize to a stream. Throws std::runtime_error on stream failure.
void save(const CompactStorage& storage, std::ostream& out);

/// Deserialize from a stream. Throws std::runtime_error on malformed input
/// (bad magic, inconsistent point count, truncated payload).
CompactStorage load(std::istream& in);

/// File-path convenience wrappers.
void save_file(const CompactStorage& storage, const std::string& path);
CompactStorage load_file(const std::string& path);

/// Size in bytes the serialized form will occupy.
std::size_t serialized_bytes(const CompactStorage& storage);

/// Truncated (lossy) grid serialization, format "CSGT": header + kept
/// (index, value) pairs. The error bound rides along so a reader can
/// report the guarantee without the dense original.
void save(const TruncatedStorage& storage, std::ostream& out);
TruncatedStorage load_truncated(std::istream& in);
void save_file(const TruncatedStorage& storage, const std::string& path);
TruncatedStorage load_truncated_file(const std::string& path);

/// Boundary grid (Sec. 4.4) serialization, format "CSB1".
void save(const BoundaryStorage& storage, std::ostream& out);
BoundaryStorage load_boundary(std::istream& in);
void save_file(const BoundaryStorage& storage, const std::string& path);
BoundaryStorage load_boundary_file(const std::string& path);

/// Adaptive grid serialization, format "CSA1". Surpluses are stored, so a
/// loaded grid evaluates immediately; nodal values ride along for further
/// refinement.
void save(const adaptive::AdaptiveSparseGrid& grid, std::ostream& out);
adaptive::AdaptiveSparseGrid load_adaptive(std::istream& in);
void save_file(const adaptive::AdaptiveSparseGrid& grid,
               const std::string& path);
adaptive::AdaptiveSparseGrid load_adaptive_file(const std::string& path);

}  // namespace csg::io
