#include "csg/io/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace csg::io {

namespace {

constexpr char kMagic[4] = {'C', 'S', 'G', '1'};
constexpr char kBoundaryMagic[4] = {'C', 'S', 'B', '1'};
constexpr char kAdaptiveMagic[4] = {'C', 'S', 'A', '1'};
constexpr char kTruncatedMagic[4] = {'C', 'S', 'G', 'T'};

/// Byte-order sentinel written natively right after the magic. A reader on
/// a platform with the opposite endianness sees the byte-reversed value and
/// rejects the file instead of silently loading scrambled coefficients.
constexpr std::uint32_t kEndianTag = 0x01020304u;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

/// Shared header prelude of all four formats: byte-order tag plus
/// sizeof(real_t), so a file from a mismatched platform or a real_t-retyped
/// build fails loudly at the header instead of misreading the payload.
void write_prelude(std::ostream& out) {
  write_u32(out, kEndianTag);
  write_u32(out, static_cast<std::uint32_t>(sizeof(real_t)));
}

void check_prelude(std::istream& in, const char* who) {
  const std::uint32_t endian = read_u32(in);
  const std::uint32_t width = read_u32(in);
  if (!in) throw std::runtime_error(std::string(who) + ": truncated header");
  if (endian != kEndianTag)
    throw std::runtime_error(
        std::string(who) +
        ": endianness mismatch (file written with a different byte order, "
        "or a legacy header without the byte-order tag)");
  if (width != sizeof(real_t))
    throw std::runtime_error(
        std::string(who) + ": real_t width mismatch (file stores " +
        std::to_string(width) + "-byte reals, this build uses " +
        std::to_string(sizeof(real_t)) + "-byte reals)");
}

}  // namespace

void save(const CompactStorage& storage, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_prelude(out);
  write_u32(out, storage.grid().dim());
  write_u32(out, storage.grid().level());
  write_u64(out, storage.grid().num_points());
  out.write(reinterpret_cast<const char*>(storage.data()),
            static_cast<std::streamsize>(storage.values().size() *
                                         sizeof(real_t)));
  if (!out) throw std::runtime_error("csg::io::save: stream write failed");
}

CompactStorage load(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("csg::io::load: bad magic (not a CSG1 file)");
  check_prelude(in, "csg::io::load");
  const std::uint32_t d = read_u32(in);
  const std::uint32_t n = read_u32(in);
  const std::uint64_t count = read_u64(in);
  if (!in || d < 1 || d > kMaxDim || n < 1 || n > kMaxLevel)
    throw std::runtime_error("csg::io::load: header out of range");
  CompactStorage storage(static_cast<dim_t>(d), static_cast<level_t>(n));
  if (storage.size() != count)
    throw std::runtime_error(
        "csg::io::load: point count does not match grid dimensions");
  in.read(reinterpret_cast<char*>(storage.data()),
          static_cast<std::streamsize>(count * sizeof(real_t)));
  if (!in || static_cast<std::uint64_t>(in.gcount()) !=
                 count * sizeof(real_t))
    throw std::runtime_error("csg::io::load: truncated coefficient payload");
  return storage;
}

void save_file(const CompactStorage& storage, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("csg::io::save_file: cannot open " + path);
  save(storage, out);
}

CompactStorage load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("csg::io::load_file: cannot open " + path);
  return load(in);
}

std::size_t serialized_bytes(const CompactStorage& storage) {
  // magic + (endian tag, real width) prelude + d + n + N + payload.
  return sizeof(kMagic) + 4 * sizeof(std::uint32_t) + sizeof(std::uint64_t) +
         storage.values().size() * sizeof(real_t);
}

void save(const TruncatedStorage& storage, std::ostream& out) {
  out.write(kTruncatedMagic, sizeof(kTruncatedMagic));
  write_prelude(out);
  write_u32(out, storage.grid().dim());
  write_u32(out, storage.grid().level());
  write_u64(out, storage.kept_count());
  const real_t bound = storage.error_bound();
  out.write(reinterpret_cast<const char*>(&bound), sizeof(bound));
  out.write(reinterpret_cast<const char*>(storage.indices().data()),
            static_cast<std::streamsize>(storage.indices().size() *
                                         sizeof(flat_index_t)));
  out.write(reinterpret_cast<const char*>(storage.values().data()),
            static_cast<std::streamsize>(storage.values().size() *
                                         sizeof(real_t)));
  if (!out)
    throw std::runtime_error("csg::io::save(truncated): stream write failed");
}

TruncatedStorage load_truncated(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kTruncatedMagic, sizeof(kTruncatedMagic)) != 0)
    throw std::runtime_error(
        "csg::io::load_truncated: bad magic (not a CSGT file)");
  check_prelude(in, "csg::io::load_truncated");
  const std::uint32_t d = read_u32(in);
  const std::uint32_t n = read_u32(in);
  const std::uint64_t kept = read_u64(in);
  real_t bound = 0;
  in.read(reinterpret_cast<char*>(&bound), sizeof(bound));
  if (!in || d < 1 || d > kMaxDim || n < 1 || n > kMaxLevel || bound < 0)
    throw std::runtime_error("csg::io::load_truncated: header out of range");
  RegularSparseGrid grid(static_cast<dim_t>(d), static_cast<level_t>(n));
  if (kept > grid.num_points())
    throw std::runtime_error(
        "csg::io::load_truncated: more survivors than grid points");
  std::vector<flat_index_t> indices(static_cast<std::size_t>(kept));
  std::vector<real_t> values(static_cast<std::size_t>(kept));
  in.read(reinterpret_cast<char*>(indices.data()),
          static_cast<std::streamsize>(kept * sizeof(flat_index_t)));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(kept * sizeof(real_t)));
  if (!in)
    throw std::runtime_error("csg::io::load_truncated: truncated payload");
  for (std::size_t k = 0; k < indices.size(); ++k)
    if (indices[k] >= grid.num_points() ||
        (k > 0 && indices[k - 1] >= indices[k]))
      throw std::runtime_error(
          "csg::io::load_truncated: corrupt index stream");
  return TruncatedStorage(std::move(grid), std::move(indices),
                          std::move(values), bound);
}

void save_file(const TruncatedStorage& storage, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("csg::io::save_file: cannot open " + path);
  save(storage, out);
}

TruncatedStorage load_truncated_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("csg::io::load_truncated_file: cannot open " +
                             path);
  return load_truncated(in);
}

void save(const BoundaryStorage& storage, std::ostream& out) {
  out.write(kBoundaryMagic, sizeof(kBoundaryMagic));
  write_prelude(out);
  write_u32(out, storage.grid().dim());
  write_u32(out, storage.grid().level());
  write_u64(out, storage.grid().num_points());
  out.write(reinterpret_cast<const char*>(storage.values().data()),
            static_cast<std::streamsize>(storage.values().size() *
                                         sizeof(real_t)));
  if (!out)
    throw std::runtime_error("csg::io::save(boundary): stream write failed");
}

BoundaryStorage load_boundary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBoundaryMagic, sizeof(kBoundaryMagic)) != 0)
    throw std::runtime_error(
        "csg::io::load_boundary: bad magic (not a CSB1 file)");
  check_prelude(in, "csg::io::load_boundary");
  const std::uint32_t d = read_u32(in);
  const std::uint32_t n = read_u32(in);
  const std::uint64_t count = read_u64(in);
  if (!in || d < 1 || d > kMaxDim || n < 1 || n > kMaxLevel)
    throw std::runtime_error("csg::io::load_boundary: header out of range");
  BoundaryStorage storage(static_cast<dim_t>(d), static_cast<level_t>(n));
  if (storage.size() != count)
    throw std::runtime_error(
        "csg::io::load_boundary: point count does not match grid shape");
  for (flat_index_t j = 0; j < storage.size(); ++j) {
    real_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    storage[j] = v;
  }
  if (!in)
    throw std::runtime_error("csg::io::load_boundary: truncated payload");
  return storage;
}

void save_file(const BoundaryStorage& storage, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("csg::io::save_file: cannot open " + path);
  save(storage, out);
}

BoundaryStorage load_boundary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("csg::io::load_boundary_file: cannot open " +
                             path);
  return load_boundary(in);
}

void save(const adaptive::AdaptiveSparseGrid& grid, std::ostream& out) {
  out.write(kAdaptiveMagic, sizeof(kAdaptiveMagic));
  write_prelude(out);
  write_u32(out, grid.dim());
  write_u32(out, 0);  // reserved
  write_u64(out, grid.num_points());
  grid.for_each_node([&](const adaptive::AdaptiveSparseGrid::Node& node) {
    for (dim_t t = 0; t < grid.dim(); ++t) {
      write_u32(out, node.point.level[t]);
      write_u64(out, node.point.index[t]);
    }
    out.write(reinterpret_cast<const char*>(&node.nodal), sizeof(real_t));
    out.write(reinterpret_cast<const char*>(&node.surplus), sizeof(real_t));
  });
  if (!out)
    throw std::runtime_error("csg::io::save(adaptive): stream write failed");
}

adaptive::AdaptiveSparseGrid load_adaptive(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kAdaptiveMagic, sizeof(kAdaptiveMagic)) != 0)
    throw std::runtime_error(
        "csg::io::load_adaptive: bad magic (not a CSA1 file)");
  check_prelude(in, "csg::io::load_adaptive");
  const std::uint32_t d = read_u32(in);
  (void)read_u32(in);  // reserved
  const std::uint64_t count = read_u64(in);
  if (!in || d < 1 || d > kMaxDim)
    throw std::runtime_error("csg::io::load_adaptive: header out of range");
  adaptive::AdaptiveSparseGrid grid(static_cast<dim_t>(d));
  struct Record {
    GridPoint point;
    real_t nodal;
    real_t surplus;
  };
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t k = 0; k < count; ++k) {
    Record rec;
    rec.point.level.resize(static_cast<dim_t>(d));
    rec.point.index.resize(static_cast<dim_t>(d));
    for (dim_t t = 0; t < static_cast<dim_t>(d); ++t) {
      rec.point.level[t] = read_u32(in);
      rec.point.index[t] = read_u64(in);
    }
    in.read(reinterpret_cast<char*>(&rec.nodal), sizeof(real_t));
    in.read(reinterpret_cast<char*>(&rec.surplus), sizeof(real_t));
    if (!in)
      throw std::runtime_error("csg::io::load_adaptive: truncated payload");
    if (!valid_point(rec.point))
      throw std::runtime_error("csg::io::load_adaptive: invalid grid point");
    records.push_back(rec);
  }
  // Insert all points first (a saved grid is closed, so this adds no
  // extras), then restore the stored values.
  for (const Record& rec : records) grid.insert(rec.point);
  if (grid.num_points() != count)
    throw std::runtime_error(
        "csg::io::load_adaptive: point set was not closed under parents");
  for (const Record& rec : records)
    grid.set_node(rec.point, rec.nodal, rec.surplus);
  return grid;
}

void save_file(const adaptive::AdaptiveSparseGrid& grid,
               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("csg::io::save_file: cannot open " + path);
  save(grid, out);
}

adaptive::AdaptiveSparseGrid load_adaptive_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("csg::io::load_adaptive_file: cannot open " +
                             path);
  return load_adaptive(in);
}

}  // namespace csg::io
