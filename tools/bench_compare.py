#!/usr/bin/env python3
"""Compare two BENCH_*.json records (or directories of them) metric by metric.

The schema is produced by csg::bench::Report (docs/BENCHMARKS.md). Usage:

    bench_compare.py BASELINE CURRENT [--fail-ratio R] [--require-all]
    bench_compare.py CURRENT [--fail-ratio R] [--require-all]
    bench_compare.py --validate FILE...
    bench_compare.py --selftest

With a single positional argument the baseline directory is taken from the
``CSG_BENCH_BASELINE_DIR`` environment variable — CI lanes and local runs
can repoint every comparison at a blessed artifact without editing each
invocation. Two explicit positionals always win over the environment.

Comparison model, per metric:

* ``better: neutral`` metrics are informational and never gated.
* Every gated metric gets a relative tolerance band around the baseline
  value: the record's own ``tolerance`` field when present, else a default
  by kind (wide for wall-clock ``time`` metrics, tight for deterministic
  ``counter`` metrics). Time metrics additionally widen the band by
  3 * MAD / value from whichever record is noisier — a run whose own
  repetition spread exceeds its tolerance should not be gated by it.
* A ``time`` metric beyond its band but within ``--fail-ratio`` is a
  REGRESSION (reported, exit stays 0); beyond ``--fail-ratio`` it is a
  FAILURE (exit 1). ``counter`` metrics beyond their band always fail —
  deterministic quantities have no noise to be advisory about. With the
  default --fail-ratio 1.0 every regression is a failure.

Exit codes: 0 clean (regressions may be listed as warnings when
--fail-ratio > 1), 1 failures or validation errors, 2 usage errors
(including a baseline path that does not exist), 3 incomplete coverage —
the baseline directory exists but holds no BENCH_*.json records, or a
baseline record has no matching current record under ``--require-all``.
Code 3 lets CI tell "the run regressed" (1) apart from "the run did not
measure everything the baseline pins" (3).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
from typing import Any

TIME_DEFAULT_TOLERANCE = 0.5     # +/-50% on wall-clock metrics
COUNTER_DEFAULT_TOLERANCE = 1e-6  # deterministic counters gate tightly
MAD_WIDENING = 3.0

REQUIRED_TOP = ("schema_version", "benchmark", "title", "paper_ref",
                "environment", "parameters", "metrics")
REQUIRED_ENV = ("compiler", "build_type", "build_flags", "git_sha",
                "cpu_model", "timestamp_utc", "openmp_max_threads",
                "hardware_threads")
REQUIRED_METRIC = ("name", "unit", "better", "kind", "value")


def validate_record(rec: Any, path: str) -> list[str]:
    """Return a list of schema violations (empty when the record is valid)."""
    errors = []
    if not isinstance(rec, dict):
        return [f"{path}: top level is not an object"]
    for key in REQUIRED_TOP:
        if key not in rec:
            errors.append(f"{path}: missing top-level key '{key}'")
    if rec.get("schema_version") != 1:
        errors.append(f"{path}: schema_version is {rec.get('schema_version')},"
                      " expected 1")
    env = rec.get("environment", {})
    if isinstance(env, dict):
        for key in REQUIRED_ENV:
            if key not in env:
                errors.append(f"{path}: environment missing '{key}'")
    else:
        errors.append(f"{path}: environment is not an object")
    if not isinstance(rec.get("parameters", {}), dict):
        errors.append(f"{path}: parameters is not an object")
    metrics = rec.get("metrics", [])
    if not isinstance(metrics, list):
        return errors + [f"{path}: metrics is not an array"]
    seen = set()
    for i, m in enumerate(metrics):
        where = f"{path}: metrics[{i}]"
        if not isinstance(m, dict):
            errors.append(f"{where} is not an object")
            continue
        for key in REQUIRED_METRIC:
            if key not in m:
                errors.append(f"{where} missing '{key}'")
        name = m.get("name")
        if name in seen:
            errors.append(f"{where} duplicate metric name '{name}'")
        seen.add(name)
        if m.get("better") not in ("less", "more", "neutral"):
            errors.append(f"{where} bad better '{m.get('better')}'")
        if m.get("kind") not in ("time", "counter"):
            errors.append(f"{where} bad kind '{m.get('kind')}'")
        value = m.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where} value is not a number")
        if m.get("kind") == "time":
            for key in ("min", "median", "mad", "repetitions", "samples"):
                if key not in m:
                    errors.append(f"{where} time metric missing '{key}'")
    return errors


def load_record(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def metric_tolerance(m: dict) -> float:
    if "tolerance" in m:
        return float(m["tolerance"])
    return (TIME_DEFAULT_TOLERANCE if m.get("kind") == "time"
            else COUNTER_DEFAULT_TOLERANCE)


def noise_widening(base: dict, cur: dict) -> float:
    """Extra relative slack from the repetition spread of either record."""
    slack = 0.0
    for m in (base, cur):
        mad = m.get("mad")
        value = m.get("value")
        if isinstance(mad, (int, float)) and isinstance(value, (int, float)) \
                and value:
            slack = max(slack, MAD_WIDENING * abs(mad) / abs(value))
    return slack


class Comparison:
    def __init__(self) -> None:
        self.regressions: list[str] = []
        self.failures: list[str] = []
        self.missing: list[str] = []
        self.improvements: list[str] = []
        self.notes: list[str] = []
        self.checked = 0

    def compare_metric(self, bench: str, base: dict, cur: dict,
                       fail_ratio: float) -> None:
        name = f"{bench}:{base['name']}"
        better = base.get("better", "neutral")
        if better == "neutral":
            return
        bval, cval = float(base["value"]), float(cur["value"])
        self.checked += 1
        tol = metric_tolerance(base) + noise_widening(base, cur)
        # Orient so that larger `ratio` is always worse.
        if better == "less":
            ratio = _safe_ratio(cval, bval)
        else:
            ratio = _safe_ratio(bval, cval)
        if math.isnan(ratio):
            self.notes.append(f"{name}: baseline and current both zero")
            return
        desc = (f"{name}: {bval:.6g} -> {cval:.6g} {base.get('unit', '')}"
                f" (x{ratio:.2f} worse, tolerance +{tol * 100:.0f}%)")
        if ratio > 1.0 + tol:
            # --fail-ratio softens wall-clock noise only: a deterministic
            # counter beyond its band is a real change and always fails.
            advisory = base.get("kind") == "time" and \
                ratio <= max(1.0 + tol, fail_ratio)
            if advisory:
                self.regressions.append(desc)
            else:
                self.failures.append(desc)
        elif ratio < 1.0 / (1.0 + tol):
            self.improvements.append(
                f"{name}: {bval:.6g} -> {cval:.6g} {base.get('unit', '')}"
                f" (x{1.0 / ratio:.2f} better)")

    def compare_records(self, base: Any, cur: Any, fail_ratio: float) -> None:
        bench = base.get("benchmark", "?")
        cur_by_name = {m["name"]: m for m in cur.get("metrics", [])}
        for bm in base.get("metrics", []):
            cm = cur_by_name.get(bm["name"])
            if cm is None:
                self.notes.append(
                    f"{bench}:{bm['name']}: missing from current run")
                continue
            self.compare_metric(bench, bm, cm, fail_ratio)
        base_names = {m["name"] for m in base.get("metrics", [])}
        for name in cur_by_name:
            if name not in base_names:
                self.notes.append(f"{bench}:{name}: new metric (no baseline)")


def _safe_ratio(num: float, den: float) -> float:
    if den == 0.0:
        return math.nan if num == 0.0 else math.inf
    return num / den


def collect_files(path: str) -> dict[str, str]:
    """Map record filename -> full path for a file or directory argument."""
    if os.path.isdir(path):
        return {
            name: os.path.join(path, name)
            for name in sorted(os.listdir(path))
            if name.startswith("BENCH_") and name.endswith(".json")
        }
    return {os.path.basename(path): path}


def run_compare(args: argparse.Namespace) -> int:
    if not os.path.exists(args.baseline):
        print(f"bench_compare: baseline path '{args.baseline}' does not exist",
              file=sys.stderr)
        return 2
    base_files = collect_files(args.baseline)
    cur_files = collect_files(args.current)
    if not base_files:
        # The directory is there but pins nothing: coverage problem, not a
        # usage error — an un-recorded baseline must not read as a pass.
        print(f"bench_compare: baseline directory '{args.baseline}' exists "
              "but contains no BENCH_*.json records — record a baseline "
              "first (tools/run_benches.sh --out-dir <dir>)",
              file=sys.stderr)
        return 3

    comparison = Comparison()
    validation_errors = []
    pairs = 0
    for name, bpath in base_files.items():
        cpath = cur_files.get(name)
        if cpath is None:
            msg = f"{name}: present in baseline, missing from current"
            if args.require_all:
                comparison.missing.append(msg)
            else:
                comparison.notes.append(msg)
            continue
        base, cur = load_record(bpath), load_record(cpath)
        validation_errors += validate_record(base, bpath)
        validation_errors += validate_record(cur, cpath)
        if validation_errors:
            continue
        pairs += 1
        comparison.compare_records(base, cur, args.fail_ratio)

    for err in validation_errors:
        print(f"INVALID  {err}")
    for note in comparison.notes:
        print(f"NOTE     {note}")
    for imp in comparison.improvements:
        print(f"BETTER   {imp}")
    for reg in comparison.regressions:
        print(f"WORSE    {reg}")
    for fail in comparison.failures:
        print(f"FAIL     {fail}")
    for miss in comparison.missing:
        print(f"MISSING  {miss}")
    print(f"bench_compare: {pairs} record pair(s), "
          f"{comparison.checked} gated metric(s), "
          f"{len(comparison.improvements)} better, "
          f"{len(comparison.regressions)} worse (within --fail-ratio), "
          f"{len(comparison.failures)} failed, "
          f"{len(comparison.missing)} missing, "
          f"{len(validation_errors)} invalid")
    if comparison.failures or validation_errors:
        return 1
    if comparison.missing:
        print("bench_compare: current run is missing baseline-pinned "
              "record(s) (--require-all): incomplete coverage, not a pass",
              file=sys.stderr)
        return 3
    return 0


def run_validate(paths: list[str]) -> int:
    errors = []
    count = 0
    for path in paths:
        for _, full in sorted(collect_files(path).items()):
            count += 1
            try:
                errors += validate_record(load_record(full), full)
            except (OSError, json.JSONDecodeError) as exc:
                errors.append(f"{full}: {exc}")
    for err in errors:
        print(f"INVALID  {err}")
    print(f"bench_compare: validated {count} record(s), "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


def _synthetic_record(time_value: float, counter_value: float) -> dict:
    return {
        "schema_version": 1,
        "benchmark": "bench_selftest",
        "title": "synthetic record for bench_compare --selftest",
        "paper_ref": "none",
        "environment": {
            "compiler": "none", "build_type": "Release", "build_flags": "",
            "git_sha": "0" * 12, "cpu_model": "none",
            "timestamp_utc": "1970-01-01T00:00:00Z",
            "openmp_max_threads": 1, "hardware_threads": 1,
        },
        "parameters": {"dims": 3},
        "metrics": [
            {
                "name": "stage/seconds", "unit": "s", "better": "less",
                "kind": "time", "value": time_value, "min": time_value,
                "median": time_value, "mad": 0.0, "repetitions": 3,
                "samples": [time_value] * 3, "tolerance": 0.5,
            },
            {
                "name": "stage/refs", "unit": "refs", "better": "less",
                "kind": "counter", "value": counter_value,
            },
            {
                "name": "stage/host_threads", "unit": "threads",
                "better": "neutral", "kind": "counter", "value": 8,
            },
        ],
    }


def run_selftest() -> int:
    """Prove the tool detects an injected 3x slowdown and passes a no-op."""
    failures = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.mkdir(base_dir)
        os.mkdir(cur_dir)

        def write(dirname: str, rec: dict) -> None:
            with open(os.path.join(dirname, "BENCH_bench_selftest.json"),
                      "w", encoding="utf-8") as fh:
                json.dump(rec, fh)

        base = _synthetic_record(time_value=1.0, counter_value=100.0)
        check("synthetic record passes validation",
              not validate_record(base, "synthetic"))

        write(base_dir, base)
        write(cur_dir, _synthetic_record(time_value=1.0, counter_value=100.0))
        ns = argparse.Namespace(baseline=base_dir, current=cur_dir,
                                fail_ratio=2.0, require_all=True)
        check("identical records compare clean", run_compare(ns) == 0)

        # 3x slowdown on the time metric: beyond its 50% tolerance AND the
        # 2x fail ratio -> the tool must exit nonzero.
        write(cur_dir, _synthetic_record(time_value=3.0, counter_value=100.0))
        check("injected 3x slowdown fails", run_compare(ns) == 1)

        # 1.8x slowdown: beyond tolerance but inside --fail-ratio 2.0 ->
        # reported as WORSE, exit 0 (the advisory CI mode).
        write(cur_dir, _synthetic_record(time_value=1.8, counter_value=100.0))
        check("1.8x slowdown is advisory under --fail-ratio 2",
              run_compare(ns) == 0)

        # Deterministic counter drift fails even when tiny-looking (0.1%).
        write(cur_dir, _synthetic_record(time_value=1.0, counter_value=100.2))
        check("counter drift fails", run_compare(ns) == 1)

        # Neutral metrics never gate: only the neutral one changed.
        cur = _synthetic_record(time_value=1.0, counter_value=100.0)
        cur["metrics"][2]["value"] = 999
        write(cur_dir, cur)
        check("neutral metric change compares clean", run_compare(ns) == 0)

        # CSG_BENCH_BASELINE_DIR supplies the baseline when only the
        # current run is given; the comparison is the same as the explicit
        # two-positional form, including counter gating.
        write(cur_dir, _synthetic_record(time_value=1.0, counter_value=100.0))
        saved_env = os.environ.get("CSG_BENCH_BASELINE_DIR")
        os.environ["CSG_BENCH_BASELINE_DIR"] = base_dir
        try:
            check("env baseline override compares clean",
                  main([cur_dir, "--fail-ratio", "2.0",
                        "--require-all"]) == 0)
            write(cur_dir,
                  _synthetic_record(time_value=1.0, counter_value=100.2))
            check("env baseline override catches counter drift",
                  main([cur_dir, "--fail-ratio", "2.0",
                        "--require-all"]) == 1)
            # Two explicit positionals ignore the environment.
            check("explicit positionals beat the env override",
                  main([cur_dir, cur_dir, "--require-all"]) == 0)
        finally:
            if saved_env is None:
                del os.environ["CSG_BENCH_BASELINE_DIR"]
            else:
                os.environ["CSG_BENCH_BASELINE_DIR"] = saved_env
        write(cur_dir, _synthetic_record(time_value=1.0, counter_value=100.0))

        # A record that loses a metric is noted; with --require-all a
        # missing file is incomplete coverage: the distinct exit code 3.
        os.remove(os.path.join(cur_dir, "BENCH_bench_selftest.json"))
        check("missing record exits 3 under --require-all",
              run_compare(ns) == 3)
        write(cur_dir, _synthetic_record(time_value=1.0, counter_value=100.0))

        # An existing-but-empty baseline directory is also exit 3 (nothing
        # was pinned), while a nonexistent baseline path stays a usage
        # error (exit 2).
        empty_dir = os.path.join(tmp, "empty")
        os.mkdir(empty_dir)
        ns_empty = argparse.Namespace(baseline=empty_dir, current=cur_dir,
                                      fail_ratio=2.0, require_all=True)
        check("empty baseline directory exits 3", run_compare(ns_empty) == 3)
        ns_gone = argparse.Namespace(
            baseline=os.path.join(tmp, "nonexistent"), current=cur_dir,
            fail_ratio=2.0, require_all=True)
        check("nonexistent baseline path exits 2", run_compare(ns_gone) == 2)

        # Schema violations are caught.
        bad = _synthetic_record(time_value=1.0, counter_value=100.0)
        del bad["metrics"][0]["samples"]
        bad["metrics"][1]["better"] = "sideways"
        check("validator flags bad records",
              len(validate_record(bad, "bad")) == 2)

    print("bench_compare --selftest: "
          + ("PASS" if not failures else f"{len(failures)} FAILED"))
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Compare csg::bench BENCH_*.json records.")
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH_*.json file or directory")
    parser.add_argument("current", nargs="?",
                        help="current BENCH_*.json file or directory")
    parser.add_argument("--fail-ratio", type=float, default=1.0,
                        help="hard-fail only when a gated metric is this many"
                             " times worse (default 1.0: any regression"
                             " beyond tolerance fails)")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a baseline record has no matching"
                             " current record")
    parser.add_argument("--validate", nargs="+", metavar="FILE",
                        help="only validate the given records/directories")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in detection self-test")
    args = parser.parse_args(argv)

    if args.selftest:
        return run_selftest()
    if args.validate:
        return run_validate(args.validate)
    env_base = os.environ.get("CSG_BENCH_BASELINE_DIR", "")
    if args.baseline and not args.current and env_base:
        args.baseline, args.current = env_base, args.baseline
    if not args.baseline or not args.current:
        print("bench_compare: need BASELINE CURRENT (or CURRENT with"
              " CSG_BENCH_BASELINE_DIR set)", file=sys.stderr)
        parser.print_usage(sys.stderr)
        return 2
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
