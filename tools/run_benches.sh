#!/bin/sh
# Run the bench/ experiment binaries as a suite and collect one
# BENCH_<name>.json per binary (docs/BENCHMARKS.md).
#
#   tools/run_benches.sh [--suite smoke|paper] [--bin-dir DIR]
#                        [--out-dir DIR] [--only NAME] [--list] [--compare]
#
# Suites:
#   smoke  reduced problem sizes, the whole suite in ~a minute — what the
#          CI perf lane runs and what bench/baselines/smoke pins.
#   paper  the full experiment shapes of DESIGN.md §4 (fig8/paper_scale at
#          the real Sec. 6 sizes) — the nightly archive run.
#
# --compare diffs the fresh records against the pinned baselines with
# tools/bench_compare.py; CSG_BENCH_BASELINE_DIR overrides the baseline
# directory (default bench/baselines/<suite>).
#
# Exit status is the number of failing binaries (0 = all green); with
# --compare a baseline mismatch also fails.
set -u

SUITE=smoke
BIN_DIR=build/bench
OUT_DIR=bench-results
ONLY=
LIST=0
COMPARE=0

usage() {
  sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
  exit 2
}

while [ $# -gt 0 ]; do
  case "$1" in
    --suite)   SUITE=$2; shift 2 ;;
    --bin-dir) BIN_DIR=$2; shift 2 ;;
    --out-dir) OUT_DIR=$2; shift 2 ;;
    --only)    ONLY=$2; shift 2 ;;
    --list)    LIST=1; shift ;;
    --compare) COMPARE=1; shift ;;
    -h|--help) usage ;;
    *) echo "run_benches.sh: unknown argument '$1'" >&2; usage ;;
  esac
done

case "$SUITE" in
  smoke|paper) ;;
  *) echo "run_benches.sh: unknown suite '$SUITE'" >&2; exit 2 ;;
esac

# args_<suite>_<bench> — one line per binary. The smoke shapes keep every
# binary to seconds while still exercising each recorded metric; the paper
# shapes are the defaults (sized for DESIGN.md §4) plus the --paper-scale
# direct measurements where supported.
args_smoke_bench_table1_access="--dims 4 --level 4"
args_smoke_bench_fig8_memory="--level 5"
args_smoke_bench_fig9_sequential="--level 4 --points 200 --dmin 5 --dmax 6"
args_smoke_bench_fig10_speedup="--level 5 --points 64 --dmax 4"
args_smoke_bench_fig11_scalability="--dims 4 --level 5 --points 64"
args_smoke_bench_ablation_binmat="--level 4 --dmax 6"
args_smoke_bench_ablation_sharedl="--level 4 --points 64"
args_smoke_bench_ablation_blocking="--dims 4 --level 6 --points 512"
args_smoke_bench_ablation_traversal="--level 4"
# --block is explicit: the soa/* work counters are exact functions of
# (points, block, plan) and bench_compare gates them at 1e-6.
args_smoke_bench_eval_plan="--dims 4 --level 7 --points 2000 --block 64"
args_smoke_bench_serve="--dims 3 --level 4 --requests 256 --batch 32 --queue 64 --producers 2 --workers 2"
args_smoke_bench_net="--dims 3 --level 4 --requests 256 --points 8 --clients 2 --workers 2 --in-flight 4"
args_smoke_bench_ext_fermi="--level 4 --points 64"
args_smoke_bench_ext_combination="--level 5 --points 100"
args_smoke_bench_ext_adaptive="--dims 2"
args_smoke_bench_ext_slicing="--level 5 --width 48 --height 32"
args_smoke_bench_ext_truncation="--dims 3 --level 6"
args_smoke_bench_paper_scale="--level 7"
args_smoke_bench_gp2idx_micro="--benchmark_min_time=0.05"

args_paper_bench_table1_access=""
args_paper_bench_fig8_memory="--paper-scale"
args_paper_bench_fig9_sequential=""
args_paper_bench_fig10_speedup=""
args_paper_bench_fig11_scalability=""
args_paper_bench_ablation_binmat=""
args_paper_bench_ablation_sharedl=""
args_paper_bench_ablation_blocking=""
args_paper_bench_ablation_traversal=""
args_paper_bench_eval_plan=""
args_paper_bench_serve=""
args_paper_bench_net=""
args_paper_bench_ext_fermi=""
args_paper_bench_ext_combination=""
args_paper_bench_ext_adaptive=""
args_paper_bench_ext_slicing=""
args_paper_bench_ext_truncation=""
args_paper_bench_paper_scale="--paper-scale"
args_paper_bench_gp2idx_micro=""

BENCHES="bench_table1_access bench_fig8_memory bench_fig9_sequential \
bench_fig10_speedup bench_fig11_scalability bench_ablation_binmat \
bench_ablation_sharedl bench_ablation_blocking bench_ablation_traversal \
bench_eval_plan bench_serve bench_net bench_ext_fermi bench_ext_combination \
bench_ext_adaptive bench_ext_slicing bench_ext_truncation bench_paper_scale \
bench_gp2idx_micro"

if [ "$LIST" = 1 ]; then
  for b in $BENCHES; do
    eval "a=\${args_${SUITE}_${b}}"
    echo "$b $a"
  done
  exit 0
fi

if [ ! -d "$BIN_DIR" ]; then
  echo "run_benches.sh: bench binary directory '$BIN_DIR' not found" \
       "(build first: cmake --build build -j)" >&2
  exit 2
fi

mkdir -p "$OUT_DIR"
failures=0
ran=0
for b in $BENCHES; do
  if [ -n "$ONLY" ] && [ "$b" != "$ONLY" ]; then continue; fi
  if [ ! -x "$BIN_DIR/$b" ]; then
    echo "run_benches.sh: MISSING $BIN_DIR/$b" >&2
    failures=$((failures + 1))
    continue
  fi
  eval "a=\${args_${SUITE}_${b}}"
  echo "==> $b $a"
  # shellcheck disable=SC2086 -- suite args are intentionally word-split
  if "$BIN_DIR/$b" $a --json-out "$OUT_DIR/BENCH_$b.json" \
      > "$OUT_DIR/$b.log" 2>&1; then
    ran=$((ran + 1))
  else
    echo "run_benches.sh: FAILED $b (see $OUT_DIR/$b.log)" >&2
    tail -n 20 "$OUT_DIR/$b.log" >&2
    failures=$((failures + 1))
  fi
done

if [ -n "$ONLY" ] && [ $((ran + failures)) -eq 0 ]; then
  echo "run_benches.sh: no bench named '$ONLY'" >&2
  exit 2
fi

echo "run_benches.sh: suite=$SUITE ran=$ran failed=$failures -> $OUT_DIR"

if [ "$COMPARE" = 1 ] && [ "$failures" -eq 0 ]; then
  BASELINE_DIR=${CSG_BENCH_BASELINE_DIR:-bench/baselines/$SUITE}
  echo "==> bench_compare $BASELINE_DIR $OUT_DIR"
  if ! python3 "$(dirname "$0")/bench_compare.py" "$BASELINE_DIR" "$OUT_DIR" \
      --fail-ratio 2.0 --require-all; then
    failures=$((failures + 1))
  fi
fi
exit "$failures"
