#!/bin/sh
# Exit-code and usage-path battery for csgtool. Usage errors must exit 2
# with a "usage:" banner; runtime errors (missing/corrupt file) exit 1; a
# crash or a surprise success fails the battery. Run under ctest as
#   sh cli_error_tests.sh /path/to/csgtool
set -u

CSGTOOL=${1:?usage: cli_error_tests.sh /path/to/csgtool}
WORK=$(mktemp -d) || exit 1
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

# expect <exit-code> <grep-pattern-on-stderr|-> <args...>
expect() {
    want_code=$1
    want_pattern=$2
    shift 2
    "$CSGTOOL" "$@" >"$WORK/out" 2>"$WORK/err"
    got_code=$?
    if [ "$got_code" -ne "$want_code" ]; then
        echo "FAIL: csgtool $* -> exit $got_code, want $want_code" >&2
        FAILURES=$((FAILURES + 1))
        return
    fi
    if [ "$want_pattern" != "-" ] && ! grep -q "$want_pattern" "$WORK/err"; then
        echo "FAIL: csgtool $* -> stderr lacks '$want_pattern':" >&2
        sed 's/^/    /' "$WORK/err" >&2
        FAILURES=$((FAILURES + 1))
    fi
}

# A small valid grid for the subcommands that need an input file.
"$CSGTOOL" create --dims 3 --level 4 --function gaussian_bump \
    -o "$WORK/g.csg" >/dev/null || { echo "FAIL: setup create" >&2; exit 1; }

# --- no / unknown subcommand ------------------------------------------------
expect 2 "usage:"
expect 2 "usage:" frobnicate
expect 2 "usage:" info          # missing file operand

# --- create: d / n bounds, unknown function ---------------------------------
expect 2 "usage:" create --dims 0 --level 5 -o "$WORK/x.csg"
expect 2 "usage:" create --dims 99 --level 5 -o "$WORK/x.csg"
expect 2 "usage:" create --dims 3 --level 0 -o "$WORK/x.csg"
expect 2 "usage:" create --dims 3 --level 99 -o "$WORK/x.csg"
expect 2 "usage:" create --dims not-a-number --level 5 -o "$WORK/x.csg"
expect 2 "unknown function" create --dims 3 --level 4 --function nope -o "$WORK/x.csg"

# --- eval: arity and domain -------------------------------------------------
expect 2 "expected 3 coordinates" eval "$WORK/g.csg" 0.5
expect 2 "expected 3 coordinates" eval "$WORK/g.csg" 0.1 0.2 0.3 0.4
expect 2 "must be in" eval "$WORK/g.csg" 0.5 1.5 0.5
expect 2 "must be in" eval "$WORK/g.csg" 0.5 -0.5 0.5

# --- evalbatch: positive counts required ------------------------------------
expect 2 "usage:" evalbatch "$WORK/g.csg" --points 0
expect 2 "usage:" evalbatch "$WORK/g.csg" --block 0
expect 2 "usage:" evalbatch "$WORK/g.csg" --threads 0
expect 2 "usage:" evalbatch "$WORK/g.csg" --threads -3

# --- evalbatch: kernel flags are mutually exclusive; each alone works and
# the banner names the path it forced ----------------------------------------
expect 2 "exclusive" evalbatch "$WORK/g.csg" --soa --scalar
"$CSGTOOL" evalbatch "$WORK/g.csg" --points 100 --soa >"$WORK/out" 2>&1 \
    && grep -q "soa kernel \[forced\]" "$WORK/out" \
    || { echo "FAIL: evalbatch --soa banner" >&2; FAILURES=$((FAILURES + 1)); }
"$CSGTOOL" evalbatch "$WORK/g.csg" --points 100 --scalar >"$WORK/out" 2>&1 \
    && grep -q "scalar kernel \[forced\]" "$WORK/out" \
    || { echo "FAIL: evalbatch --scalar banner" >&2; FAILURES=$((FAILURES + 1)); }

# --- restrict: keep list and anchor validation ------------------------------
expect 2 "usage:" restrict "$WORK/g.csg" --keep 0,1,2 --anchor 0.5 -o "$WORK/s.csg"   # keeps all dims
expect 2 "usage:" restrict "$WORK/g.csg" --keep 0,7 --anchor 0.5 -o "$WORK/s.csg"     # out of range
expect 2 "usage:" restrict "$WORK/g.csg" --keep 1,1 --anchor 0.5 -o "$WORK/s.csg"     # duplicate
expect 2 "usage:" restrict "$WORK/g.csg" --keep 2,0 --anchor 0.5 -o "$WORK/s.csg"     # unsorted
expect 2 "usage:" restrict "$WORK/g.csg" --keep 0 --anchor 1.5 -o "$WORK/s.csg"       # anchor > 1
expect 2 "usage:" restrict "$WORK/g.csg" --keep 0 --anchor -0.5 -o "$WORK/s.csg"      # anchor < 0

# --- slice: dimension validation --------------------------------------------
expect 2 "usage:" slice "$WORK/g.csg" --dimx 0 --dimy 0
expect 2 "usage:" slice "$WORK/g.csg" --dimx 0 --dimy 9
expect 2 "usage:" slice "$WORK/g.csg" --dimx 9 --dimy 1

# --- selfcheck: bound validation --------------------------------------------
expect 2 "usage:" selfcheck --dmax 0
expect 2 "usage:" selfcheck --dmax 99
expect 2 "usage:" selfcheck --nmax 0
expect 2 "usage:" selfcheck --budget 0
expect 2 "usage:" selfcheck --trials 0

# --- serve-bench: option validation -----------------------------------------
expect 2 "usage:" serve-bench --grids 0
expect 2 "usage:" serve-bench --requests 0
expect 2 "usage:" serve-bench --workers 0
expect 2 "usage:" serve-bench --policy sometimes
expect 2 "usage:" serve-bench --deadline-ms -5
expect 2 "usage:" serve-bench --shards -1

# --- net-serve / net-bench: option validation --------------------------------
expect 2 "usage:" net-serve --port 70000
expect 2 "usage:" net-serve --port -1
expect 2 "usage:" net-serve --grids 0
expect 2 "usage:" net-serve --workers 0
expect 2 "usage:" net-serve --max-conns 0
expect 2 "usage:" net-serve --max-points 0
expect 2 "usage:" net-serve --idle-exit-ms -1
expect 2 "usage:" net-serve --shards -1
expect 2 "usage:" net-serve --in-flight 0
expect 2 "usage:" net-bench --transport carrier-pigeon
expect 2 "usage:" net-bench --requests 0
expect 2 "usage:" net-bench --clients 0
expect 2 "usage:" net-bench --points 0
expect 2 "usage:" net-bench --deadline-ms -5
expect 2 "usage:" net-bench --port 70000
expect 2 "usage:" net-bench --shards -1
expect 2 "usage:" net-bench --in-flight 0

# --- net-serve: binding an already-bound port is a runtime error (exit 1) ----
# First server picks an ephemeral port (printed on its banner); the second
# bind on the same port must fail cleanly while the first is still up.
"$CSGTOOL" net-serve --port 0 --dims 2 --level 3 --grids 1 \
    --idle-exit-ms 2000 >"$WORK/srv.out" 2>&1 &
SRV_PID=$!
PORT=""
for _ in $(seq 1 50); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "$WORK/srv.out")
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "FAIL: net-serve never printed its port" >&2
    FAILURES=$((FAILURES + 1))
else
    expect 1 "csgtool:" net-serve --port "$PORT" --dims 2 --level 3 \
        --grids 1 --idle-exit-ms 100
fi
kill "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null

# --- runtime errors: missing / corrupt input exit 1, not 2 ------------------
expect 1 "csgtool:" info /nonexistent/no.csg
expect 1 "csgtool:" eval /nonexistent/no.csg 0.5 0.5 0.5
printf 'CSGX' > "$WORK/bad.csg"
expect 1 "csgtool:" info "$WORK/bad.csg"

if [ "$FAILURES" -ne 0 ]; then
    echo "cli_error_tests: $FAILURES failure(s)" >&2
    exit 1
fi
echo "cli_error_tests: all checks passed"
