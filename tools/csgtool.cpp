// csgtool — command-line front end for compact sparse grid files (.csg).
//
// The Fig. 1 pipeline as a shell workflow:
//
//   csgtool create --dims 4 --level 7 --function simulation_field -o f.csg
//   csgtool info f.csg
//   csgtool eval f.csg 0.3 0.5 0.2 0.9
//   csgtool evalbatch f.csg --points 10000 --threads 4
//   csgtool integrate f.csg
//   csgtool slice f.csg --dimx 0 --dimy 1 --anchor 0.5 --pgm slice.pgm
//
// `create` samples one of the built-in test functions (stand-ins for a
// simulation code's output) and stores the hierarchized coefficients;
// `slice` decompresses an axis-aligned 2d slice to a PGM image or an
// ASCII preview — the visualization front-end's per-frame request.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "csg/core.hpp"
#include "csg/io/serialize.hpp"
#include "csg/net/client.hpp"
#include "csg/net/server.hpp"
#include "csg/net/transport.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/serve/service.hpp"
#include "csg/testing/bijection.hpp"
#include "csg/testing/generators.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;

/// "g<index>", built append-style: GCC 12's -Wrestrict false-fires on the
/// inlined literal+rvalue-string operator+ chain under CSG_HARDEN.
std::string grid_name(long g) {
  std::string name = "g";
  name += std::to_string(g);
  return name;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  csgtool create --dims D --level N --function NAME -o F.csg\n"
               "  csgtool info F.csg\n"
               "  csgtool eval F.csg x1 ... xd\n"
               "  csgtool evalbatch F.csg [--points K] [--block B]\n"
               "                    [--threads T] [--seed S]\n"
               "                    [--soa | --scalar]  (default: auto)\n"
               "  csgtool integrate F.csg\n"
               "  csgtool slice F.csg [--dimx A] [--dimy B] [--anchor V]\n"
               "                      [--width W] [--height H] [--pgm OUT]\n"
               "  csgtool compress F.csg --epsilon E -o F.csgt\n"
               "  csgtool restrict F.csg --keep A,B[,...] --anchor V -o G.csg\n"
               "  csgtool selfcheck [--dmax D] [--nmax N] [--budget SEC]\n"
               "                    [--trials K] [--seed S]\n"
               "  csgtool serve-bench [--dims D] [--level N] [--grids G]\n"
               "                      [--requests R] [--producers P]\n"
               "                      [--workers W] [--queue Q] [--batch B]\n"
               "                      [--shards S (0 = auto)]\n"
               "                      [--window-us U] [--policy reject|block]\n"
               "                      [--deadline-ms M] [--seed S]\n"
               "  csgtool net-serve [--port P] [--dims D] [--level N]\n"
               "                    [--grids G] [--workers W] [--queue Q]\n"
               "                    [--batch B] [--window-us U]\n"
               "                    [--shards S (0 = auto)] [--in-flight F]\n"
               "                    [--max-conns C] [--max-points K]\n"
               "                    [--idle-exit-ms I]\n"
               "  csgtool net-bench [--transport loopback|tcp] [--port P]\n"
               "                    [--dims D] [--level N] [--grids G]\n"
               "                    [--requests R] [--clients C] [--points K]\n"
               "                    [--workers W] [--queue Q] [--batch B]\n"
               "                    [--shards S (0 = auto)] [--in-flight F]\n"
               "                    [--deadline-ms M] [--seed S]\n"
               "functions: parabola_product gaussian_bump oscillatory\n"
               "           coarse_dlinear simulation_field\n");
  return 2;
}

const char* flag_value(int argc, char** argv, const char* flag,
                       const char* fallback) {
  for (int k = 0; k + 1 < argc; ++k)
    if (std::strcmp(argv[k], flag) == 0) return argv[k + 1];
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int k = 0; k < argc; ++k)
    if (std::strcmp(argv[k], flag) == 0) return true;
  return false;
}

int cmd_create(int argc, char** argv) {
  const auto d = static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dims", "3")));
  const auto n =
      static_cast<level_t>(std::atoi(flag_value(argc, argv, "--level", "6")));
  const std::string name = flag_value(argc, argv, "--function", "simulation_field");
  const std::string out = flag_value(argc, argv, "-o", "grid.csg");
  if (d < 1 || d > kMaxDim || n < 1 || n > kMaxLevel) return usage();

  const workloads::TestFunction* chosen = nullptr;
  const auto suite = workloads::zero_boundary_suite(d);
  for (const auto& f : suite)
    if (f.name == name) chosen = &f;
  if (chosen == nullptr) {
    std::fprintf(stderr, "csgtool: unknown function '%s'\n", name.c_str());
    return usage();
  }

  CompactStorage storage(d, n);
  storage.sample(chosen->f);
  hierarchize(storage);
  io::save_file(storage, out);
  std::printf("wrote %s: d=%u level=%u, %llu points, %zu bytes\n",
              out.c_str(), d, n,
              static_cast<unsigned long long>(storage.size()),
              io::serialized_bytes(storage));
  return 0;
}

int cmd_info(const char* path) {
  const CompactStorage s = io::load_file(path);
  const RegularSparseGrid& g = s.grid();
  std::printf("%s:\n", path);
  std::printf("  dimension        %u\n", g.dim());
  std::printf("  level            %u\n", g.level());
  std::printf("  points           %llu\n",
              static_cast<unsigned long long>(g.num_points()));
  std::printf("  memory           %.3f MB\n",
              static_cast<double>(s.memory_bytes()) / 1e6);
  std::printf("  integral         %.6g\n", integrate(s));
  std::printf("  max |surplus| per level group:\n");
  const auto per_group = max_surplus_per_group(s);
  for (level_t j = 0; j < g.level(); ++j)
    std::printf("    |l|=%u  %12.4e   (%llu subspaces, %llu points)\n", j,
                per_group[j],
                static_cast<unsigned long long>(g.subspaces_in_group(j)),
                static_cast<unsigned long long>(g.group_size(j)));
  return 0;
}

int cmd_eval(const char* path, int coords_argc, char** coords_argv) {
  const CompactStorage s = io::load_file(path);
  if (static_cast<dim_t>(coords_argc) != s.grid().dim()) {
    std::fprintf(stderr, "csgtool: expected %u coordinates\n", s.grid().dim());
    return 2;
  }
  CoordVector x(s.grid().dim());
  for (dim_t t = 0; t < x.size(); ++t) {
    x[t] = std::atof(coords_argv[t]);
    if (x[t] < 0 || x[t] > 1) {
      std::fprintf(stderr, "csgtool: coordinates must be in [0,1]\n");
      return 2;
    }
  }
  const ValueAndGradient vg = evaluate_with_gradient(s, x);
  std::printf("value    %.12g\n", vg.value);
  std::printf("gradient");
  for (dim_t t = 0; t < x.size(); ++t) std::printf(" %.6g", vg.gradient[t]);
  std::printf("\n");
  return 0;
}

int cmd_evalbatch(const char* path, int argc, char** argv) {
  const CompactStorage s = io::load_file(path);
  const auto count = static_cast<std::size_t>(
      std::atoi(flag_value(argc, argv, "--points", "10000")));
  const auto block = static_cast<std::size_t>(
      std::atoi(flag_value(argc, argv, "--block", "64")));
  const auto seed = static_cast<std::uint32_t>(
      std::atoi(flag_value(argc, argv, "--seed", "17")));
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int threads =
      std::atoi(flag_value(argc, argv, "--threads",
                           std::to_string(hw).c_str()));
  if (count < 1 || block < 1 || threads < 1) return usage();
  const bool want_soa = has_flag(argc, argv, "--soa");
  const bool want_scalar = has_flag(argc, argv, "--scalar");
  if (want_soa && want_scalar) {
    std::fprintf(stderr, "csgtool: --soa and --scalar are exclusive\n");
    return usage();
  }
  if (want_soa) set_eval_kernel(EvalKernel::kSoa);
  if (want_scalar) set_eval_kernel(EvalKernel::kScalar);

  const auto pts = workloads::uniform_points(s.grid().dim(), count, seed);
  // The batched query path of the Fig. 1 pipeline: one shared
  // EvaluationPlan, threads over point blocks, disjoint output ranges.
  const auto plan = EvaluationPlan::shared(s.grid());
  const auto start = std::chrono::steady_clock::now();
  const auto values =
      parallel::omp_evaluate_many_blocked(s, pts, block, threads);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  real_t sum = 0, lo = values[0], hi = values[0];
  for (const real_t v : values) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Report the kernel actually selected: forced by flag, or resolved by
  // auto (which honours CSG_FORCE_SCALAR_EVAL).
  const char* kernel_name = eval_uses_soa() ? "soa" : "scalar";
  std::printf("evaluated %zu points (plan: %zu subspaces, %.1f KB; "
              "block %zu, %d thread(s), %s kernel%s)\n",
              values.size(), plan->subspace_count(),
              static_cast<double>(plan->memory_bytes()) / 1e3, block,
              threads, kernel_name,
              want_soa || want_scalar ? " [forced]" : " [auto]");
  std::printf("  time       %.4f s  (%.0f evals/s)\n", secs,
              static_cast<double>(values.size()) / secs);
  std::printf("  mean       %.6g\n",
              sum / static_cast<real_t>(values.size()));
  std::printf("  range      [%.6g, %.6g]\n", lo, hi);
  return 0;
}

int cmd_integrate(const char* path) {
  const CompactStorage s = io::load_file(path);
  std::printf("%.12g\n", integrate(s));
  return 0;
}

int cmd_compress(const char* path, int argc, char** argv) {
  const CompactStorage s = io::load_file(path);
  const real_t eps = std::atof(flag_value(argc, argv, "--epsilon", "1e-4"));
  const std::string out = flag_value(argc, argv, "-o", "grid.csgt");
  if (eps < 0) return usage();
  const TruncatedStorage t(s, eps);
  io::save_file(t, out);
  std::printf("wrote %s: kept %zu of %llu coefficients (%.1f%% of dense "
              "payload), guaranteed max error %.3e\n",
              out.c_str(), t.kept_count(),
              static_cast<unsigned long long>(s.size()),
              t.payload_ratio() * 100, t.error_bound());
  return 0;
}

int cmd_restrict(const char* path, int argc, char** argv) {
  const CompactStorage s = io::load_file(path);
  const dim_t d = s.grid().dim();
  const std::string keep_spec = flag_value(argc, argv, "--keep", "0,1");
  const real_t anchor_value = std::atof(flag_value(argc, argv, "--anchor", "0.5"));
  const std::string out = flag_value(argc, argv, "-o", "slice.csg");

  DimVector<dim_t> kept;
  for (std::size_t pos = 0; pos < keep_spec.size();) {
    const std::size_t comma = keep_spec.find(',', pos);
    const std::string tok = keep_spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    kept.push_back(static_cast<dim_t>(std::atoi(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (kept.empty() || kept.size() >= d) return usage();
  for (dim_t k = 0; k < kept.size(); ++k)
    if (kept[k] >= d || (k > 0 && kept[k] <= kept[k - 1])) return usage();
  if (anchor_value < 0 || anchor_value > 1) return usage();

  const CompactStorage slice = restrict_to_plane(
      s, kept, CoordVector(d - kept.size(), anchor_value));
  io::save_file(slice, out);
  std::printf("wrote %s: restricted %u-d grid to the %u kept dimension(s) "
              "at anchor %.3f (%llu -> %llu points)\n",
              out.c_str(), d, kept.size(), anchor_value,
              static_cast<unsigned long long>(s.size()),
              static_cast<unsigned long long>(slice.size()));
  return 0;
}

int cmd_slice(const char* path, int argc, char** argv) {
  const CompactStorage s = io::load_file(path);
  const dim_t d = s.grid().dim();
  const auto dim_x = static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dimx", "0")));
  const auto dim_y = static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dimy", "1")));
  const real_t anchor = std::atof(flag_value(argc, argv, "--anchor", "0.5"));
  const auto width = static_cast<std::size_t>(
      std::atoi(flag_value(argc, argv, "--width", "64")));
  const auto height = static_cast<std::size_t>(
      std::atoi(flag_value(argc, argv, "--height", "32")));
  const char* pgm = flag_value(argc, argv, "--pgm", nullptr);
  if (d < 2 || dim_x >= d || dim_y >= d || dim_x == dim_y) return usage();

  const auto pts = workloads::slice_points(CoordVector(d, anchor), dim_x,
                                           dim_y, width, height);
  // Per-frame slice decompression is a batched query: reuse the shared
  // plan for this grid shape across repeated invocations of the process's
  // lifetime and walk it blocked.
  const auto values = evaluate_many_blocked(
      *EvaluationPlan::shared(s.grid()),
      std::span<const real_t>(s.data(), s.values().size()), pts, 64);
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const real_t lo = *lo_it, hi = *hi_it;
  const real_t span = hi > lo ? hi - lo : real_t{1};

  if (pgm != nullptr) {
    std::ofstream out(pgm, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "csgtool: cannot open %s\n", pgm);
      return 1;
    }
    out << "P5\n" << width << " " << height << "\n255\n";
    for (std::size_t r = height; r-- > 0;)
      for (std::size_t c = 0; c < width; ++c) {
        const auto byte = static_cast<unsigned char>(
            (values[r * width + c] - lo) / span * 255.0);
        out.put(static_cast<char>(byte));
      }
    std::printf("wrote %s (%zux%zu, range [%.4g, %.4g])\n", pgm, width,
                height, lo, hi);
  } else {
    static const char* shades = " .:-=+*#%@";
    for (std::size_t r = height; r-- > 0;) {
      for (std::size_t c = 0; c < width; ++c) {
        const real_t t = (values[r * width + c] - lo) / span;
        std::putchar(shades[static_cast<int>(t * 9.999)]);
      }
      std::putchar('\n');
    }
  }
  return 0;
}

/// N(d, n) if it fits 64-bit flat indices, -1 otherwise — the feasibility
/// probe run before constructing a grid, whose constructor aborts on
/// overflow by contract.
long long grid_points_if_feasible(dim_t d, level_t n) {
  const BinomialTable binmat(d - 1 + n);
  unsigned __int128 total = 0;
  for (level_t j = 0; j < n; ++j) {
    total += static_cast<unsigned __int128>(num_subspaces(d, j, binmat)) << j;
    if (total >= (static_cast<unsigned __int128>(1) << 62)) return -1;
  }
  return static_cast<long long>(total);
}

// Machine verification of the gp2idx <-> idx2gp bijection (Sec. 4, Alg. 5):
// exhaustive for every (d <= dmax, n <= nmax) within the time budget,
// randomized spot checks for every higher dimension up to kMaxDim. The
// paper's whole storage scheme rests on this map being exact, so the check
// is a first-class subcommand rather than test-only code.
int cmd_selfcheck(int argc, char** argv) {
  const auto dmax =
      static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dmax", "6")));
  const auto nmax =
      static_cast<level_t>(std::atoi(flag_value(argc, argv, "--nmax", "8")));
  const double budget = std::atof(flag_value(argc, argv, "--budget", "60"));
  const auto trials = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--trials", "20000")));
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "1")));
  if (dmax < 1 || dmax > kMaxDim || nmax < 1 || nmax > kMaxLevel ||
      budget <= 0 || trials < 1)
    return usage();

  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::uint64_t exhaustive_points = 0, sampled_points = 0;
  unsigned exhaustive_shapes = 0, sampled_shapes = 0, skipped_shapes = 0;
  std::mt19937_64 rng(seed);
  bool out_of_time = false;

  for (dim_t d = 1; d <= dmax && !out_of_time; ++d) {
    std::uint64_t points_for_d = 0;
    for (level_t n = 1; n <= nmax; ++n) {
      if (elapsed() > budget) {
        out_of_time = true;
        break;
      }
      const long long npts = grid_points_if_feasible(d, n);
      if (npts < 0) {
        ++skipped_shapes;
        continue;
      }
      const RegularSparseGrid grid(d, n);
      // Exhaustive enumeration for everything within reach; very large
      // shapes inside the rectangle degrade to dense sampling so one huge
      // (d, n) cannot eat the whole budget.
      if (static_cast<std::uint64_t>(npts) <= 20'000'000ull) {
        const auto report = testing::verify_bijection_exhaustive(grid);
        if (!report.ok) {
          std::fprintf(stderr, "selfcheck FAILED at d=%u n=%u: %s\n", d, n,
                       report.detail.c_str());
          return 1;
        }
        exhaustive_points += report.points_checked;
        points_for_d += report.points_checked;
        ++exhaustive_shapes;
      } else {
        const auto report =
            testing::verify_bijection_sampled(grid, rng, trials);
        if (!report.ok) {
          std::fprintf(stderr, "selfcheck FAILED at d=%u n=%u: %s\n", d, n,
                       report.detail.c_str());
          return 1;
        }
        sampled_points += report.points_checked;
        ++sampled_shapes;
      }
    }
    std::printf("  d=%-2u  levels 1..%u  %12llu points exhaustive\n", d, nmax,
                static_cast<unsigned long long>(points_for_d));
  }

  // Spot checks above the exhaustive rectangle: random flat indices on the
  // largest feasible level per dimension, up to the hard dimension cap.
  for (dim_t d = dmax + 1; d <= kMaxDim && !out_of_time; ++d) {
    if (elapsed() > budget) {
      out_of_time = true;
      break;
    }
    level_t n = nmax;
    while (n > 1 && grid_points_if_feasible(d, n) < 0) --n;
    const RegularSparseGrid grid(d, n);
    const auto report = testing::verify_bijection_sampled(grid, rng, trials);
    if (!report.ok) {
      std::fprintf(stderr, "selfcheck FAILED at d=%u n=%u: %s\n", d, n,
                   report.detail.c_str());
      return 1;
    }
    sampled_points += report.points_checked;
    ++sampled_shapes;
    std::printf("  d=%-2u  level %u       %12llu points sampled (of %lld)\n",
                d, n, static_cast<unsigned long long>(report.points_checked),
                grid_points_if_feasible(d, n));
  }

  std::printf(
      "selfcheck %s: %llu points verified exhaustively (%u shapes), "
      "%llu sampled trials (%u shapes), %u shapes beyond 64-bit skipped, "
      "%.1f s\n",
      out_of_time ? "INCOMPLETE (budget exhausted)" : "OK",
      static_cast<unsigned long long>(exhaustive_points), exhaustive_shapes,
      static_cast<unsigned long long>(sampled_points), sampled_shapes,
      skipped_shapes, elapsed());
  return out_of_time ? 3 : 0;
}

// Closed-loop load generator over an in-process EvalService: G grids of the
// same shape, P producer threads each submitting its share of R requests and
// waiting for every future before issuing the next (so the offered load is
// bounded by P, like a pool of synchronous RPC clients). Reports end-to-end
// latency percentiles, throughput, and the service's batching counters.
int cmd_serve_bench(int argc, char** argv) {
  const auto d = static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dims", "3")));
  const auto n =
      static_cast<level_t>(std::atoi(flag_value(argc, argv, "--level", "5")));
  const int grids = std::atoi(flag_value(argc, argv, "--grids", "4"));
  const long requests = std::atol(flag_value(argc, argv, "--requests", "2000"));
  const int producers = std::atoi(flag_value(argc, argv, "--producers", "4"));
  const auto seed = static_cast<std::uint32_t>(
      std::atoi(flag_value(argc, argv, "--seed", "29")));
  const std::string policy = flag_value(argc, argv, "--policy", "reject");

  serve::ServiceOptions opts;
  opts.workers = std::atoi(flag_value(argc, argv, "--workers", "2"));
  opts.queue_capacity = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--queue", "1024")));
  opts.max_batch_points = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--batch", "64")));
  opts.batch_window = std::chrono::microseconds(
      std::atoll(flag_value(argc, argv, "--window-us", "200")));
  const long deadline_ms =
      std::atol(flag_value(argc, argv, "--deadline-ms", "0"));
  opts.default_deadline = std::chrono::milliseconds(deadline_ms);
  const long shards = std::atol(flag_value(argc, argv, "--shards", "0"));
  opts.shard_count = static_cast<std::size_t>(shards);
  if (policy == "reject")
    opts.overflow = serve::OverflowPolicy::kReject;
  else if (policy == "block")
    opts.overflow = serve::OverflowPolicy::kBlock;
  else
    return usage();
  if (d < 1 || d > kMaxDim || n < 1 || n > kMaxLevel || grids < 1 ||
      requests < 1 || producers < 1 || opts.workers < 1 ||
      opts.queue_capacity < 1 || opts.max_batch_points < 1 ||
      deadline_ms < 0 || shards < 0)
    return usage();

  serve::GridRegistry registry;
  for (int g = 0; g < grids; ++g) {
    CompactStorage s(d, n);
    s.sample(workloads::simulation_field(d).f);
    hierarchize(s);
    registry.add(grid_name(g), std::move(s));
  }
  serve::EvalService service(registry, opts);
  std::printf("serve-bench: %d grid(s) d=%u level=%u (%.1f KB registry), "
              "%ld requests, %d producer(s), %zu shard(s) x %d worker(s), "
              "queue %zu, batch %zu, window %lld us, policy %s\n",
              grids, d, n, static_cast<double>(registry.memory_bytes()) / 1e3,
              requests, producers, service.shard_count(), opts.workers,
              opts.queue_capacity, opts.max_batch_points,
              static_cast<long long>(opts.batch_window.count()),
              policy.c_str());

  std::vector<std::vector<double>> lat_us(
      static_cast<std::size_t>(producers));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p)
    threads.emplace_back([&, p] {
      const long share = requests / producers +
                         (p < requests % producers ? 1 : 0);
      const auto pts = workloads::uniform_points(
          d, static_cast<std::size_t>(std::max(share, 1l)),
          seed + static_cast<std::uint32_t>(p));
      auto& lat = lat_us[static_cast<std::size_t>(p)];
      lat.reserve(static_cast<std::size_t>(share));
      for (long k = 0; k < share; ++k) {
        const std::string grid = grid_name((p + k) % grids);
        const auto t0 = std::chrono::steady_clock::now();
        auto fut = service.submit(grid, pts[static_cast<std::size_t>(k)]);
        (void)fut.get();
        lat.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
      }
    });
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  service.stop();

  std::vector<double> all;
  for (const auto& lat : lat_us) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) {
    return all.empty()
               ? 0.0
               : all[std::min(all.size() - 1,
                              static_cast<std::size_t>(
                                  q * static_cast<double>(all.size())))];
  };
  const auto st = service.stats();
  std::printf("  throughput %.0f req/s (%ld requests in %.3f s)\n",
              static_cast<double>(requests) / secs, requests, secs);
  std::printf("  latency    p50 %.0f us, p95 %.0f us, p99 %.0f us, "
              "max %.0f us\n",
              pct(0.50), pct(0.95), pct(0.99), all.empty() ? 0.0 : all.back());
  std::printf("  batches    %llu formed, mean %.2f points, max %llu\n",
              static_cast<unsigned long long>(st.batches_formed),
              st.mean_batch(), static_cast<unsigned long long>(st.max_batch));
  std::printf("  outcomes   %llu ok, %llu rejected, %llu timed out\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.timed_out));
  std::size_t busy_shards = 0;
  std::uint64_t deepest = 0;
  for (const auto& sh : st.shards) {
    if (sh.submits > 0) ++busy_shards;
    deepest = std::max(deepest, sh.max_queue_depth);
  }
  std::printf("  shards     %zu of %zu took submissions, deepest queue %llu\n",
              busy_shards, st.shards.size(),
              static_cast<unsigned long long>(deepest));
  // Closed-loop producers never outrun the queue; anything other than R
  // completions means the service misbehaved.
  return st.completed == static_cast<std::uint64_t>(requests) ? 0 : 1;
}

/// Shared grid setup of the network commands: G hierarchized grids named
/// g0..g{G-1}, all of the same (d, n) shape.
void register_grids(serve::GridRegistry& registry, int grids, dim_t d,
                    level_t n) {
  for (int g = 0; g < grids; ++g) {
    CompactStorage s(d, n);
    s.sample(workloads::simulation_field(d).f);
    hierarchize(s);
    registry.add(grid_name(g), std::move(s));
  }
}

// TCP server over the wire protocol (docs/SERVING.md "Wire protocol"):
// binds 127.0.0.1:--port (0 = ephemeral, printed), serves G grids until
// the connection traffic has been idle for --idle-exit-ms (0 = forever).
// A bind conflict is a runtime error (exit 1), not a usage error.
int cmd_net_serve(int argc, char** argv) {
  const auto d = static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dims", "3")));
  const auto n =
      static_cast<level_t>(std::atoi(flag_value(argc, argv, "--level", "5")));
  const int grids = std::atoi(flag_value(argc, argv, "--grids", "2"));
  const long port = std::atol(flag_value(argc, argv, "--port", "0"));
  const int max_conns = std::atoi(flag_value(argc, argv, "--max-conns", "64"));
  const long max_points =
      std::atol(flag_value(argc, argv, "--max-points", "4096"));
  const long idle_exit_ms =
      std::atol(flag_value(argc, argv, "--idle-exit-ms", "0"));

  serve::ServiceOptions opts;
  opts.workers = std::atoi(flag_value(argc, argv, "--workers", "2"));
  opts.queue_capacity = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--queue", "1024")));
  opts.max_batch_points = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--batch", "64")));
  opts.batch_window = std::chrono::microseconds(
      std::atoll(flag_value(argc, argv, "--window-us", "200")));
  const long shards = std::atol(flag_value(argc, argv, "--shards", "0"));
  opts.shard_count = static_cast<std::size_t>(shards);
  const long in_flight = std::atol(flag_value(argc, argv, "--in-flight", "8"));
  if (d < 1 || d > kMaxDim || n < 1 || n > kMaxLevel || grids < 1 ||
      port < 0 || port > 65535 || max_conns < 1 || max_points < 1 ||
      idle_exit_ms < 0 || opts.workers < 1 || opts.queue_capacity < 1 ||
      opts.max_batch_points < 1 || shards < 0 || in_flight < 1)
    return usage();

  serve::GridRegistry registry;
  register_grids(registry, grids, d, n);
  serve::EvalService service(registry, opts);

  net::TcpListener listener(static_cast<std::uint16_t>(port));
  net::NetServerOptions nopts;
  nopts.max_connections = static_cast<std::size_t>(max_conns);
  nopts.max_in_flight = static_cast<std::size_t>(in_flight);
  nopts.limits.max_batch_points = static_cast<std::uint64_t>(max_points);
  net::NetServer server(listener, registry, service, nopts);
  server.start();
  std::printf("net-serve: listening on 127.0.0.1:%u (%d grid(s) d=%u "
              "level=%u, %.1f KB registry, %zu shard(s) x %d worker(s), "
              "%ld frame(s) in flight per connection)\n",
              listener.port(), grids, d, n,
              static_cast<double>(registry.memory_bytes()) / 1e3,
              service.shard_count(), opts.workers, in_flight);
  std::fflush(stdout);  // the port line must reach pipes before we block

  // Lifetime: exit after --idle-exit-ms of no connections and no traffic
  // (0 = serve until killed). Activity is watched through the same stats
  // counters a dashboard would poll.
  std::uint64_t last_marker = 0;
  auto last_activity = std::chrono::steady_clock::now();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const auto st = server.stats();
    const std::uint64_t marker =
        st.bytes_in + st.connections_accepted + st.active_connections;
    const auto now = std::chrono::steady_clock::now();
    if (marker != last_marker || st.active_connections > 0) {
      last_marker = marker;
      last_activity = now;
      continue;
    }
    if (idle_exit_ms > 0 &&
        now - last_activity >= std::chrono::milliseconds(idle_exit_ms))
      break;
  }
  server.stop();
  service.stop();
  const auto st = server.stats();
  std::printf("net-serve: idle for %ld ms, drained. %llu connection(s), "
              "%llu frame(s) decoded, %llu rejected, %llu eval point(s)\n",
              idle_exit_ms,
              static_cast<unsigned long long>(st.connections_accepted),
              static_cast<unsigned long long>(st.frames_decoded),
              static_cast<unsigned long long>(st.frames_rejected),
              static_cast<unsigned long long>(st.eval_points));
  return 0;
}

// Closed-loop load generator over the wire protocol. Self-contained: runs
// the server in-process (loopback transport by default, real TCP on an
// ephemeral port with --transport tcp), C client connections each issuing
// its share of R batched requests of K points, then fetches the grid list
// and stats over the wire. Exits non-zero unless every point completed.
int cmd_net_bench(int argc, char** argv) {
  const std::string transport =
      flag_value(argc, argv, "--transport", "loopback");
  const auto d = static_cast<dim_t>(std::atoi(flag_value(argc, argv, "--dims", "3")));
  const auto n =
      static_cast<level_t>(std::atoi(flag_value(argc, argv, "--level", "5")));
  const int grids = std::atoi(flag_value(argc, argv, "--grids", "2"));
  const long requests = std::atol(flag_value(argc, argv, "--requests", "1000"));
  const int clients = std::atoi(flag_value(argc, argv, "--clients", "4"));
  const long points = std::atol(flag_value(argc, argv, "--points", "8"));
  const long port = std::atol(flag_value(argc, argv, "--port", "0"));
  const long deadline_ms =
      std::atol(flag_value(argc, argv, "--deadline-ms", "0"));
  const auto seed = static_cast<std::uint32_t>(
      std::atoi(flag_value(argc, argv, "--seed", "37")));

  serve::ServiceOptions opts;
  opts.workers = std::atoi(flag_value(argc, argv, "--workers", "2"));
  opts.queue_capacity = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--queue", "4096")));
  opts.max_batch_points = static_cast<std::size_t>(
      std::atoll(flag_value(argc, argv, "--batch", "64")));
  const long shards = std::atol(flag_value(argc, argv, "--shards", "0"));
  opts.shard_count = static_cast<std::size_t>(shards);
  const long in_flight = std::atol(flag_value(argc, argv, "--in-flight", "8"));
  if ((transport != "loopback" && transport != "tcp") || d < 1 ||
      d > kMaxDim || n < 1 || n > kMaxLevel || grids < 1 || requests < 1 ||
      clients < 1 || points < 1 || port < 0 || port > 65535 ||
      deadline_ms < 0 || opts.workers < 1 || opts.queue_capacity < 1 ||
      opts.max_batch_points < 1 || shards < 0 || in_flight < 1)
    return usage();

  serve::GridRegistry registry;
  register_grids(registry, grids, d, n);
  serve::EvalService service(registry, opts);

  net::LoopbackListener loopback;
  std::unique_ptr<net::TcpListener> tcp;
  net::Listener* listener = &loopback;
  if (transport == "tcp") {
    tcp = std::make_unique<net::TcpListener>(static_cast<std::uint16_t>(port));
    listener = tcp.get();
  }
  net::NetServerOptions nopts;
  nopts.max_in_flight = static_cast<std::size_t>(in_flight);
  net::NetServer server(*listener, registry, service, nopts);
  server.start();
  std::printf("net-bench: %s transport, %d grid(s) d=%u level=%u, %ld "
              "request(s) x %ld point(s), %d client(s), %zu shard(s) x "
              "%d worker(s), %ld frame(s) in flight\n",
              transport.c_str(), grids, d, n, requests, points, clients,
              service.shard_count(), opts.workers, in_flight);

  const std::int64_t deadline_us = deadline_ms * 1000;
  std::vector<std::string> grid_names;
  grid_names.reserve(static_cast<std::size_t>(grids));
  for (int g = 0; g < grids; ++g)
    grid_names.push_back(grid_name(g));
  std::atomic<std::uint64_t> ok_points{0}, failed_points{0},
      transport_errors{0};
  std::vector<std::vector<double>> lat_us(static_cast<std::size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      try {
        net::NetClient client(
            transport == "tcp"
                ? net::tcp_connect("127.0.0.1", tcp->port())
                : loopback.connect());
        const long share =
            requests / clients + (c < requests % clients ? 1 : 0);
        const auto pts = workloads::uniform_points(
            d, static_cast<std::size_t>(std::max(points, 1l)),
            seed + static_cast<std::uint32_t>(c));
        auto& lat = lat_us[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(share));
        // Pipelined closed loop: keep up to --in-flight requests
        // outstanding, collecting the oldest (FIFO) once the window is
        // full. Latency is submit-to-collect, so it includes pipeline
        // queueing — the honest number under pipelining.
        std::deque<std::chrono::steady_clock::time_point> t0s;
        const auto collect_one = [&] {
          const auto resp = client.collect();
          lat.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0s.front())
                            .count());
          t0s.pop_front();
          for (const auto& r : resp.results) {
            if (r.status == static_cast<std::uint8_t>(serve::Status::kOk))
              ok_points.fetch_add(1);
            else
              failed_points.fetch_add(1);
          }
        };
        for (long k = 0; k < share; ++k) {
          const std::string& grid =
              grid_names[static_cast<std::size_t>((c + k) % grids)];
          t0s.push_back(std::chrono::steady_clock::now());
          (void)client.submit_eval(grid, pts, deadline_us);
          if (client.outstanding() >= static_cast<std::size_t>(in_flight))
            collect_one();
        }
        while (client.outstanding() > 0) collect_one();
      } catch (const std::exception&) {
        transport_errors.fetch_add(1);
      }
    });
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Observability round trip before shutdown: list + stats over the wire.
  std::uint64_t wire_frames = 0, wire_rejected = 0;
  std::uint64_t wire_pipelined = 0, wire_peak = 0;
  std::size_t listed = 0;
  try {
    net::NetClient probe(transport == "tcp"
                             ? net::tcp_connect("127.0.0.1", tcp->port())
                             : loopback.connect());
    listed = probe.list_grids().grids.size();
    const auto ws = probe.fetch_stats();
    wire_frames = ws.frames_decoded;
    wire_rejected = ws.frames_rejected;
    wire_pipelined = ws.pipelined_frames;
    wire_peak = ws.frames_in_flight_peak;
  } catch (const std::exception&) {
    transport_errors.fetch_add(1);
  }
  server.stop();
  service.stop();

  std::vector<double> all;
  for (const auto& lat : lat_us) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) {
    return all.empty()
               ? 0.0
               : all[std::min(all.size() - 1,
                              static_cast<std::size_t>(
                                  q * static_cast<double>(all.size())))];
  };
  const double total_points = static_cast<double>(requests) *
                              static_cast<double>(points);
  std::printf("  throughput %.0f req/s, %.0f point/s (%ld requests in "
              "%.3f s)\n",
              static_cast<double>(requests) / secs, total_points / secs,
              requests, secs);
  std::printf("  latency    p50 %.0f us, p95 %.0f us, p99 %.0f us, "
              "max %.0f us per batch\n",
              pct(0.50), pct(0.95), pct(0.99), all.empty() ? 0.0 : all.back());
  std::printf("  wire       %llu frame(s) decoded, %llu rejected, %zu "
              "grid(s) listed\n",
              static_cast<unsigned long long>(wire_frames),
              static_cast<unsigned long long>(wire_rejected), listed);
  std::printf("  pipeline   %llu frame(s) overlapped, peak %llu in flight\n",
              static_cast<unsigned long long>(wire_pipelined),
              static_cast<unsigned long long>(wire_peak));
  std::printf("  outcomes   %llu ok, %llu failed point(s), %llu transport "
              "error(s)\n",
              static_cast<unsigned long long>(ok_points.load()),
              static_cast<unsigned long long>(failed_points.load()),
              static_cast<unsigned long long>(transport_errors.load()));
  // Without deadlines every point must evaluate; with them, timeouts are
  // legitimate but transport failures never are.
  const bool ok =
      transport_errors.load() == 0 &&
      (deadline_ms > 0 ||
       ok_points.load() == static_cast<std::uint64_t>(requests) *
                               static_cast<std::uint64_t>(points));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "create") return cmd_create(argc - 2, argv + 2);
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "eval" && argc >= 3)
      return cmd_eval(argv[2], argc - 3, argv + 3);
    if (cmd == "evalbatch" && argc >= 3)
      return cmd_evalbatch(argv[2], argc - 3, argv + 3);
    if (cmd == "integrate" && argc >= 3) return cmd_integrate(argv[2]);
    if (cmd == "slice" && argc >= 3)
      return cmd_slice(argv[2], argc - 3, argv + 3);
    if (cmd == "compress" && argc >= 3)
      return cmd_compress(argv[2], argc - 3, argv + 3);
    if (cmd == "restrict" && argc >= 3)
      return cmd_restrict(argv[2], argc - 3, argv + 3);
    if (cmd == "selfcheck") return cmd_selfcheck(argc - 2, argv + 2);
    if (cmd == "serve-bench") return cmd_serve_bench(argc - 2, argv + 2);
    if (cmd == "net-serve") return cmd_net_serve(argc - 2, argv + 2);
    if (cmd == "net-bench") return cmd_net_bench(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "csgtool: %s\n", e.what());
    return 1;
  }
  return usage();
}
