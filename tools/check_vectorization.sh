#!/bin/sh
# Verify the SoA batch kernel's inner loops actually vectorize
# (DESIGN.md §14). The kernel's speedup rests on the two per-dimension hat
# passes in evaluate_block_soa compiling to vector code; a refactor that
# reintroduces a branch (or drops -fno-trapping-math) silently falls back
# to scalar and only a careful bench read would notice. This check makes
# that regression loud: it compiles src/core/src/evaluate.cpp standalone
# with the same per-TU flags the build uses (src/core/CMakeLists.txt),
# captures the compiler's vectorization report (-fopt-info-vec-* on GCC,
# -Rpass{,-missed}=loop-vectorize on Clang), and fails unless both hat
# passes are reported vectorized. The coefficient-gather loop is exempt:
# baseline x86-64 has no double<->uint64 vector conversion, so it is
# expected to stay scalar there.
#
# Usage: tools/check_vectorization.sh [c++-compiler]   (default: $CXX, g++)
set -u

CXX=${1:-${CXX:-g++}}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
TU=$ROOT/src/core/src/evaluate.cpp
OUT=$(mktemp) || exit 1
trap 'rm -f "$OUT"' EXIT

if "$CXX" --version 2>/dev/null | grep -qi clang; then
    REPORT="-Rpass=loop-vectorize -Rpass-missed=loop-vectorize"
else
    REPORT="-fopt-info-vec-optimized -fopt-info-vec-missed"
fi

# shellcheck disable=SC2086 -- REPORT is intentionally word-split
if ! "$CXX" -std=c++20 -O2 -fopenmp-simd -ffp-contract=off \
        -fno-trapping-math $REPORT \
        -I "$ROOT/src/core/include" -c "$TU" -o /dev/null 2> "$OUT"; then
    echo "check_vectorization: $CXX failed to compile $TU" >&2
    cat "$OUT" >&2
    exit 1
fi

# The kernel loops are the `#pragma omp simd` sites in the TU, in order:
# dimension-0 hat pass, dimension-t hat pass, coefficient gather. The
# first two must vectorize; the compiler reports against the `for` line,
# so accept a report within two lines below each pragma.
PRAGMAS=$(grep -n "#pragma omp simd" "$TU" | cut -d: -f1)
if [ "$(printf '%s\n' "$PRAGMAS" | wc -l)" -lt 2 ]; then
    echo "check_vectorization: expected >= 2 '#pragma omp simd' sites in" \
         "$TU, found '$PRAGMAS'" >&2
    exit 1
fi

failures=0
index=0
for p in $PRAGMAS; do
    index=$((index + 1))
    if [ "$index" -gt 2 ]; then break; fi
    hit=""
    for q in "$p" $((p + 1)) $((p + 2)); do
        hit=$(grep -E "evaluate\.cpp:$q:[0-9]+: *(optimized: loop vectorized|remark: vectorized loop)" "$OUT" | head -1)
        [ -n "$hit" ] && break
    done
    if [ -n "$hit" ]; then
        echo "ok    simd loop at line $p: ${hit#*: }"
    else
        echo "FAIL  simd loop at line $p: no vectorization report" >&2
        grep -E "evaluate\.cpp:($p|$((p + 1))|$((p + 2))):" "$OUT" >&2
        failures=$((failures + 1))
    fi
done

if [ "$failures" -ne 0 ]; then
    echo "check_vectorization: $failures SoA kernel loop(s) not vectorized" \
         "(full report follows)" >&2
    cat "$OUT" >&2
    exit 1
fi
echo "check_vectorization: SoA hat passes vectorized ($CXX)"
exit 0
