#!/bin/sh
# Run clang-tidy over the project's compilation database, honouring the
# .clang-tidy hierarchy (root profile + per-directory overrides).
#
#   tools/csg_lint/run_clang_tidy.sh [build-dir]
#
# build-dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS=ON
# (the root CMakeLists.txt sets it). Exits 0 with a notice when clang-tidy
# is not installed — the dev container ships GCC only; the tidy lane runs
# in CI where the tool is provisioned. Exits 2 on a usage/setup error,
# clang-tidy's own status otherwise.
set -eu

build_dir="${1:-build}"
root="$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (csg-lint still covers the project-specific rules)"
  exit 0
fi

db="$root/$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy: $db not found." >&2
  echo "  configure first: cmake -B $build_dir -S $root" >&2
  exit 2
fi

# First-party TUs only: the database also lists third-party/test-framework
# sources that the profile was never tuned for.
files=$(python3 -c '
import json, sys
root, db = sys.argv[1], sys.argv[2]
seen = []
for entry in json.load(open(db)):
    f = entry["file"]
    rel = f[len(root) + 1:] if f.startswith(root + "/") else f
    if rel.startswith(("src/", "tools/", "bench/", "examples/")) and rel not in seen:
        seen.append(rel)
print("\n".join(seen))
' "$root" "$db")

if [ -z "$files" ]; then
  echo "run_clang_tidy: no first-party TUs in $db" >&2
  exit 2
fi

echo "$files" | wc -l | xargs printf 'run_clang_tidy: checking %s translation units\n'
status=0
for f in $files; do
  clang-tidy -p "$root/$build_dir" --quiet "$root/$f" || status=$?
done
exit $status
