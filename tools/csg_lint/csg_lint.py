#!/usr/bin/env python3
"""csg-lint: project-invariant static analysis for the sparse grid codebase.

The paper's central artifact is the O(d) gp2idx bijection, whose correctness
hinges on bit-exact index arithmetic: a left-shift whose accumulator silently
narrows to 32 bits, or an implicit level_t <- uint64 conversion, corrupts
flat indices only at deep levels where no fast test treads. The runtime side
is defended by differential oracles and sanitizer lanes; this checker makes
the same bug classes unrepresentable at lint time.

Rules (catalog and suppression policy in docs/STATIC_ANALYSIS.md):

  shift-width            integer-literal left operands of << must carry an
                         explicit 64-bit width (T{1} brace form or l/L
                         suffix) unless the shift count is a small constant
  implicit-narrowing     in src/core, src/parallel, src/serve, and src/net,
                         level_t/dim_t declarations must not be initialised
                         from a wider index expression without an explicit
                         static_cast (shard_hash() results included, so the
                         grid-name -> shard mapping stays 64-bit-safe)
  raw-alloc              no raw new/delete/malloc/free outside src/memsim
                         (the memory-simulation layer owns allocation
                         instrumentation); placement new is exempt
  omp-loop-counter       every `#pragma omp ... for` loop variable must be a
                         64-bit counter so the parallel trip count can never
                         overflow or narrow against 64-bit grid bounds
  header-self-contained  every public header under src/*/include — plus
                         bench/*.hpp and tools/**/*.hpp — compiles
                         standalone (g++ -fsyntax-only)
  pragma-once            every header in scope starts with #pragma once
  bench-seed             benchmarks seed RNG engines through
                         csg::testing::mix_seed, never a bare integer
                         literal (raw seeds across binaries collide and
                         correlate the sampled workloads)
  mutex-guard-annotations  lock-based code in src/ uses the annotated
                         primitives from csg/core/thread_annotations.hpp:
                         no raw std::mutex/std::lock_guard/... (invisible
                         to Clang's -Wthread-safety analysis), every
                         csg::Mutex member tied to state or methods by a
                         CSG_* annotation, and no "must hold the mutex"
                         comments where CSG_REQUIRES belongs
  simd-scalar-parity     every `#pragma omp simd` loop in src/core carries
                         an adjacent `// scalar fallback: <name>` comment
                         naming the scalar reference implementation kept in
                         the same TU, so a vectorized kernel can never lose
                         its differential-testing partner silently

Findings are suppressed per site, never blanket:
  code();  // csg-lint: allow(rule-name) -- reason
  // csg-lint: allow-next(rule-name) -- reason
The tree must scan clean (exit 0); --selftest additionally proves every rule
still flags its known-bad fixture under tests/lint_fixtures/.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys

SCAN_DIRS = ("src", "tools", "bench", "examples")
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")

ALLOW_RE = re.compile(r"csg-lint:\s*allow\(([\w\-, ]+)\)")
ALLOW_NEXT_RE = re.compile(r"csg-lint:\s*allow-next\(([\w\-, ]+)\)")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based; 0 means whole-file
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def mask_comments_and_strings(text):
    """Replace comment/string/char contents with spaces, preserving offsets.

    Keeps the scanner honest: `// delete this` or "1 << n" in a log message
    never match a rule. Newlines survive so line numbers stay exact.
    """
    out = list(text)
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr' | 'raw'
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum()):
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    i += m.end()
                    continue
            if c == '"':
                state = "str"
                i += 1
                continue
            if c == "'" and not (i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_")):
                # character literal; the guard keeps digit separators (1'000)
                # out of this state
                state = "chr"
                i += 1
                continue
            i += 1
            continue
        if state == "line":
            if c == "\n":
                state = None
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == "block":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = None
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                for j in range(i, i + len(raw_delim)):
                    out[j] = " "
                i += len(raw_delim)
                state = None
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == "str":
            if c == "\\":
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = None
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == "chr":
            if c == "\\":
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                state = None
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
    return "".join(out)


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath
        self.abspath = os.path.join(root, relpath)
        with open(self.abspath, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.raw_lines = self.text.splitlines()
        self.masked = mask_comments_and_strings(self.text)
        self.masked_lines = self.masked.splitlines()

    def suppressed(self, rule, line):
        """True if the (1-based) line carries an inline suppression for rule."""
        for lineno, regex in ((line, ALLOW_RE), (line - 1, ALLOW_NEXT_RE)):
            if 1 <= lineno <= len(self.raw_lines):
                m = regex.search(self.raw_lines[lineno - 1])
                if m and rule in [r.strip() for r in m.group(1).split(",")]:
                    return True
        return False

    def line_of_offset(self, offset):
        return self.text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

class Rule:
    name = ""
    description = ""

    def applies(self, relpath):
        return True

    def run(self, src):
        raise NotImplementedError


class ShiftWidthRule(Rule):
    name = "shift-width"
    description = (
        "integer-literal << must have an explicit 64-bit-wide left operand "
        "(T{1} or an l/L suffix) unless shifting by a constant < 32"
    )

    LIT_SHIFT = re.compile(
        r"(?<![\w.])(\d[\w']*)\s*<<(?!=|<)\s*([\w:\[\]().]+)?", re.S
    )

    def run(self, src):
        findings = []
        for m in self.LIT_SHIFT.finditer(src.masked):
            lit, rhs = m.group(1), m.group(2) or ""
            # 'l' suffix => at least long, 64-bit on every platform we build
            if re.search(r"[lL]", re.sub(r"^0[xX][0-9a-fA-F']+", "", lit)):
                continue
            # T{1} brace form: the author chose a width explicitly
            before = src.masked[: m.start()].rstrip()
            if before.endswith("{"):
                continue
            # stream chains: `os << 1 << x` has << right before the literal
            if before.endswith("<<"):
                continue
            # constant shift counts below 32 cannot leave int range
            if re.fullmatch(r"\d[\d']*", rhs):
                if int(rhs.replace("'", "")) < 32:
                    continue
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                self.name, src.relpath, line,
                f"`{lit} << {rhs or '...'}`: literal left operand promotes "
                "to int; use an explicit 64-bit form such as "
                "flat_index_t{1} << ... (see types.hpp width anchors)",
            ))
        return findings


class ImplicitNarrowingRule(Rule):
    name = "implicit-narrowing"
    description = (
        "level_t/dim_t declarations in src/core, src/parallel, src/serve, "
        "and src/net must not be initialised from wider index expressions "
        "without a static_cast"
    )

    DECL = re.compile(
        r"\b(level_t|dim_t)\s+(\w+)\s*=\s*([^;{}]*);", re.S
    )
    # Unambiguously-64-bit sources only. Bare `.size()` is NOT a marker:
    # DimVector::size() already returns dim_t, so matching it would flag
    # sound code (std container sizes reach level_t/dim_t via the explicit
    # casts the compiler's -Wconversion lane enforces anyway).
    WIDE = re.compile(
        r"l1_norm\s*\(|num_points\s*\(|group_offset\s*\(|memory_bytes\s*\(|"
        r"subspace_index\s*\(|shard_hash\s*\(|flat_index_t|index1d_t|uint64|"
        # SoA batch-kernel sizes (PointBlock/EvaluationPlan) are std::size_t.
        r"padded_size\s*\(|subspace_count\s*\("
    )

    def applies(self, relpath):
        p = relpath.replace(os.sep, "/")
        return (p.startswith("src/core/") or p.startswith("src/parallel/")
                or p.startswith("src/serve/") or p.startswith("src/net/"))

    def run(self, src):
        findings = []
        for m in self.DECL.finditer(src.masked):
            typ, var, rhs = m.groups()
            if not self.WIDE.search(rhs):
                continue
            if "static_cast<" in rhs:
                continue
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                self.name, src.relpath, line,
                f"`{typ} {var} = ...`: initialiser carries a 64-bit index "
                "expression; narrowing must be spelled out with "
                f"static_cast<{typ}>(...)",
            ))
        return findings


class RawAllocRule(Rule):
    name = "raw-alloc"
    description = (
        "no raw new/delete/malloc/free outside src/memsim; ownership flows "
        "through containers (placement new is exempt)"
    )

    C_ALLOC = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
    OPERATOR = re.compile(r"\boperator\s+(new|delete)\b")
    NEW = re.compile(r"\bnew\b")
    DELETE = re.compile(r"\bdelete\b")

    def applies(self, relpath):
        return not relpath.replace(os.sep, "/").startswith("src/memsim/")

    def run(self, src):
        findings = []
        operator_spans = []
        preproc = set()
        offset = 0
        for i, line in enumerate(src.masked_lines):
            if line.lstrip().startswith("#"):
                preproc.add(i + 1)
            offset += len(line) + 1

        def emit(m, what):
            line = src.line_of_offset(m.start())
            if line in preproc:
                return
            findings.append(Finding(
                self.name, src.relpath, line,
                f"raw {what}: allocation belongs to containers or to "
                "src/memsim's instrumented allocators",
            ))

        for m in self.OPERATOR.finditer(src.masked):
            operator_spans.append((m.start(), m.end()))
            emit(m, f"operator {m.group(1)} call/definition")

        def inside_operator(pos):
            return any(s <= pos < e for s, e in operator_spans)

        for m in self.C_ALLOC.finditer(src.masked):
            emit(m, f"{m.group(1)}()")
        for m in self.NEW.finditer(src.masked):
            if inside_operator(m.start()):
                continue
            after = src.masked[m.end():].lstrip()
            if after.startswith("("):  # placement new
                continue
            emit(m, "new expression")
        for m in self.DELETE.finditer(src.masked):
            if inside_operator(m.start()):
                continue
            before = src.masked[: m.start()].rstrip()
            if before.endswith("="):  # `= delete;` declarations
                continue
            emit(m, "delete expression")
        return findings


class OmpLoopCounterRule(Rule):
    name = "omp-loop-counter"
    description = (
        "loop variables of `#pragma omp ... for` must be 64-bit counters "
        "(std::int64_t, std::size_t, flat_index_t, ...)"
    )

    ALLOWED = {
        "std::int64_t", "int64_t", "std::uint64_t", "uint64_t",
        "std::size_t", "size_t", "std::ptrdiff_t", "ptrdiff_t",
        "flat_index_t", "csg::flat_index_t",
    }
    FOR_DECL = re.compile(r"for\s*\(\s*(?:const\s+)?([\w:]+)\s+(\w+)\s*=")

    def run(self, src):
        findings = []
        lines = src.masked_lines
        i = 0
        while i < len(lines):
            line = lines[i]
            if re.search(r"#\s*pragma\s+omp\b", line) and re.search(r"\bfor\b", line):
                # find the `for (` statement within the next few lines
                # (pragma continuations included via the backslash joins)
                j = i
                while j < len(lines) and lines[j].rstrip().endswith("\\"):
                    j += 1
                for k in range(j + 1, min(j + 6, len(lines))):
                    m = self.FOR_DECL.search(lines[k])
                    if not m:
                        continue
                    typ, var = m.groups()
                    if typ not in self.ALLOWED:
                        findings.append(Finding(
                            self.name, src.relpath, k + 1,
                            f"OpenMP loop variable `{typ} {var}`: use a "
                            "64-bit counter so the trip count can neither "
                            "overflow nor narrow against 64-bit grid bounds",
                        ))
                    break
            i += 1
        return findings


class PragmaOnceRule(Rule):
    name = "pragma-once"
    description = "every header opens with #pragma once (doc comments aside)"

    def applies(self, relpath):
        return relpath.endswith(".hpp")

    def run(self, src):
        # Masked lines blank out comments, so the first line with content is
        # the first line of actual code — a leading doc block of any length
        # is fine, but the guard must come before includes or declarations.
        for line in src.masked_lines:
            if not line.strip():
                continue
            if re.match(r"\s*#\s*pragma\s+once\b", line):
                return []
            break
        return [Finding(self.name, src.relpath, 1,
                        "header is missing #pragma once before its first "
                        "line of code")]


class BenchSeedRule(Rule):
    name = "bench-seed"
    description = (
        "benchmarks construct RNG engines via csg::testing::mix_seed, "
        "not bare integer-literal seeds"
    )

    # An engine declaration whose constructor argument is a bare integer
    # literal: `std::mt19937_64 rng(2024)` or `mt19937 g{42}`. Seeds routed
    # through mix_seed(...) (or any other expression) do not match.
    ENGINE = re.compile(
        r"\b(?:std\s*::\s*)?"
        r"(mt19937(?:_64)?|default_random_engine|minstd_rand0?)"
        r"\s+\w+\s*[({]\s*(\d[\w']*)\s*[)}]"
    )

    def applies(self, relpath):
        return relpath.replace(os.sep, "/").startswith("bench/")

    def run(self, src):
        findings = []
        for m in self.ENGINE.finditer(src.masked):
            engine, seed = m.groups()
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                self.name, src.relpath, line,
                f"`{engine} ...({seed})`: bare literal seed; benchmarks "
                "must derive seeds with csg::testing::mix_seed so per-"
                "binary streams stay decorrelated and replayable",
            ))
        return findings


class MutexGuardAnnotationsRule(Rule):
    name = "mutex-guard-annotations"
    description = (
        "lock-based code in src/ goes through the annotated primitives of "
        "csg/core/thread_annotations.hpp: no raw std mutexes or guards, "
        "every csg::Mutex/SharedMutex member referenced by a CSG_* "
        "capability annotation, no 'must hold' comments standing in for "
        "CSG_REQUIRES"
    )

    # Raw standard-library synchronization vocabulary. Any of these in src/
    # is invisible to the Clang thread-safety analysis, which is exactly why
    # the annotated wrappers exist.
    STD_PRIMITIVE = re.compile(
        r"\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
        r"recursive_timed_mutex|condition_variable|condition_variable_any|"
        r"lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    )
    # A csg::Mutex / csg::SharedMutex data member declaration. The `;` / `{`
    # right after the name keeps references (`Mutex& m`) and constructor
    # parameters out.
    MUTEX_MEMBER = re.compile(
        r"\b(?:csg\s*::\s*)?(Mutex|SharedMutex)\s+(\w+)\s*[;{]"
    )
    # Any capability annotation that can tie state or methods to the mutex.
    ANNOTATION_USES = (
        "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED",
        "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
        "RELEASE_GENERIC", "TRY_ACQUIRE", "EXCLUDES", "ASSERT_CAPABILITY",
        "RETURN_CAPABILITY",
    )
    # A lock-discipline comment doing an annotation's job. Qualified with
    # mutex/lock so prose like "`bytes` must hold at least ..." (capacity)
    # or "invariants must hold for ..." (logic) never matches.
    MUST_HOLD = re.compile(r"must\s+hold\s+[^.\n]*?(mutex|lock)", re.I)

    def applies(self, relpath):
        p = relpath.replace(os.sep, "/")
        if p.endswith("core/thread_annotations.hpp"):
            return False  # the wrappers themselves own the raw primitives
        return p.startswith("src/")

    def run(self, src):
        findings = []
        for m in self.STD_PRIMITIVE.finditer(src.masked):
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                self.name, src.relpath, line,
                f"`std::{m.group(1)}`: raw standard-library synchronization "
                "is invisible to the thread-safety analysis; use the "
                "annotated csg:: primitives (thread_annotations.hpp)",
            ))
        annotated = set()
        for m in re.finditer(
                r"CSG_(?:" + "|".join(self.ANNOTATION_USES) + r")\s*\(([^)]*)\)",
                src.masked):
            annotated.update(re.findall(r"\w+", m.group(1)))
        for m in self.MUTEX_MEMBER.finditer(src.masked):
            typ, name = m.groups()
            if name in annotated:
                continue
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                self.name, src.relpath, line,
                f"`{typ} {name}`: mutex member is never referenced by a "
                "CSG_* capability annotation — annotate the state it guards "
                "(CSG_GUARDED_BY) or the methods that need it "
                "(CSG_REQUIRES)",
            ))
        for k, line_text in enumerate(src.raw_lines):
            if "//" not in line_text and "/*" not in line_text:
                continue
            if self.MUST_HOLD.search(line_text):
                findings.append(Finding(
                    self.name, src.relpath, k + 1,
                    "lock-discipline comment; state the contract as "
                    "CSG_REQUIRES(...) so the compiler enforces it instead",
                ))
        return findings


class SimdScalarParityRule(Rule):
    name = "simd-scalar-parity"
    description = (
        "`#pragma omp simd` in src/core needs an adjacent `// scalar "
        "fallback: <name>` comment whose named reference lives in the "
        "same TU"
    )

    # The pragma is code (it survives masking); the tag is a comment, so it
    # is read from the raw lines. Up to three lines of separation allows a
    # short explanatory comment between tag and pragma.
    PRAGMA = re.compile(r"#\s*pragma\s+omp\s+simd\b")
    FALLBACK = re.compile(r"//\s*scalar fallback:\s*(\w+)")

    def applies(self, relpath):
        return relpath.replace(os.sep, "/").startswith("src/core/")

    def run(self, src):
        findings = []
        for i, line in enumerate(src.masked_lines):
            if not self.PRAGMA.search(line):
                continue
            name = None
            for k in range(max(0, i - 3), i + 1):
                m = self.FALLBACK.search(src.raw_lines[k])
                if m:
                    name = m.group(1)
            if name is None:
                findings.append(Finding(
                    self.name, src.relpath, i + 1,
                    "`#pragma omp simd` without a `// scalar fallback: "
                    "<name>` comment: every vectorized loop must name the "
                    "scalar reference the differential tests pin it against",
                ))
            elif not re.search(r"\b" + re.escape(name) + r"\b", src.masked):
                findings.append(Finding(
                    self.name, src.relpath, i + 1,
                    f"scalar fallback `{name}` is not defined or referenced "
                    "in this translation unit — the vectorized loop has "
                    "lost its bit-identity partner",
                ))
        return findings


class HeaderSelfContainedRule(Rule):
    """Compiles every public header standalone; not a per-file text rule."""

    name = "header-self-contained"
    description = ("public headers under src/*/include plus bench/ and "
                   "tools/ headers compile standalone")

    def __init__(self, cxx):
        self.cxx = cxx

    def applies(self, relpath):
        return False  # driven separately over the public header set

    def include_dirs(self, root):
        dirs = []
        src = os.path.join(root, "src")
        if os.path.isdir(src):
            for mod in sorted(os.listdir(src)):
                inc = os.path.join(src, mod, "include")
                if os.path.isdir(inc):
                    dirs.append(inc)
        return dirs

    def check_header(self, root, abspath):
        cmd = [self.cxx, "-std=c++20", "-fsyntax-only", "-fopenmp",
               "-x", "c++"]
        for d in self.include_dirs(root):
            cmd += ["-I", d]
        cmd.append(abspath)
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
        except (OSError, subprocess.TimeoutExpired) as e:
            return f"could not run {self.cxx}: {e}"
        if proc.returncode != 0:
            first = next((ln for ln in proc.stderr.splitlines()
                          if "error:" in ln), proc.stderr.strip()[:200])
            return first
        return None

    def run_over_headers(self, root, headers):
        findings = []
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(8, os.cpu_count() or 2)) as ex:
            futs = {ex.submit(self.check_header, root,
                              os.path.join(root, h)): h for h in headers}
            for fut in concurrent.futures.as_completed(futs):
                err = fut.result()
                if err is not None:
                    findings.append(Finding(
                        self.name, futs[fut], 1,
                        f"header does not compile standalone: {err}"))
        return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def text_rules(_args):
    return [ShiftWidthRule(), ImplicitNarrowingRule(), RawAllocRule(),
            OmpLoopCounterRule(), PragmaOnceRule(), BenchSeedRule(),
            MutexGuardAnnotationsRule(), SimdScalarParityRule()]


def collect_sources(root):
    out = []
    for base in SCAN_DIRS:
        basedir = os.path.join(root, base)
        for dirpath, dirnames, filenames in os.walk(basedir):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith((".hpp", ".cpp")):
                    out.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return out


def collect_public_headers(root):
    out = []
    src = os.path.join(root, "src")
    if os.path.isdir(src):
        for mod in sorted(os.listdir(src)):
            inc = os.path.join(src, mod, "include")
            for dirpath, dirnames, filenames in os.walk(inc):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith(".hpp"):
                        out.append(
                            os.path.relpath(os.path.join(dirpath, fn), root))
    # Headers living outside src/*/include but included by many translation
    # units (the bench front-end, any tools helpers) must be just as
    # self-contained: they are the first include of every bench binary.
    for base in ("bench", "tools"):
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, base)):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(".hpp"):
                    out.append(
                        os.path.relpath(os.path.join(dirpath, fn), root))
    return out


def scan_tree(root, args, rules_filter=None):
    rules = [r for r in text_rules(args)
             if rules_filter is None or r.name in rules_filter]
    findings = []
    for rel in collect_sources(root):
        try:
            src = SourceFile(root, rel)
        except OSError as e:
            findings.append(Finding("io-error", rel, 0, str(e)))
            continue
        for rule in rules:
            if not rule.applies(rel):
                continue
            for f in rule.run(src):
                if not src.suppressed(f.rule, f.line):
                    findings.append(f)
    header_rule = HeaderSelfContainedRule(args.cxx)
    if rules_filter is None or header_rule.name in rules_filter:
        findings += header_rule.run_over_headers(root, collect_public_headers(root))
    return findings


def run_rule_on_file(root, args, rule_name, relpath):
    """Selftest path: force one rule onto one fixture, ignoring scope."""
    if rule_name == "header-self-contained":
        rule = HeaderSelfContainedRule(args.cxx)
        return rule.run_over_headers(root, [relpath])
    src = SourceFile(root, relpath)
    for rule in text_rules(args):
        if rule.name == rule_name:
            return [f for f in rule.run(src)
                    if not src.suppressed(f.rule, f.line)]
    raise SystemExit(f"csg-lint: unknown rule {rule_name}")


FIXTURES = {
    "shift-width": "bad_shift_width.cpp",
    "implicit-narrowing": "bad_implicit_narrowing.cpp",
    "raw-alloc": "bad_raw_alloc.cpp",
    "omp-loop-counter": "bad_omp_loop_counter.cpp",
    "header-self-contained": "bad_header_self_contained.hpp",
    "pragma-once": "bad_pragma_once.hpp",
    "bench-seed": "bad_bench_seed.cpp",
    "mutex-guard-annotations": "bad_mutex_guard.cpp",
    "simd-scalar-parity": "bad_simd_scalar_parity.cpp",
}


def selftest(root, args):
    """Each rule must flag its known-bad fixture AND the tree must be clean.

    The lint analog of the sanitizer lane's injected-race check: a rule that
    stops firing on its fixture has rotted, no matter how green the tree is.
    """
    failures = 0
    for rule_name, fixture in sorted(FIXTURES.items()):
        rel = os.path.join(FIXTURE_DIR, fixture)
        if not os.path.exists(os.path.join(root, rel)):
            print(f"FAIL  {rule_name}: fixture {rel} missing")
            failures += 1
            continue
        found = run_rule_on_file(root, args, rule_name, rel)
        mine = [f for f in found if f.rule == rule_name]
        if mine:
            print(f"ok    {rule_name}: fixture flagged "
                  f"({len(mine)} finding{'s' if len(mine) != 1 else ''})")
        else:
            print(f"FAIL  {rule_name}: fixture {rel} produced no finding")
            failures += 1
    # The shard-hash width fixture is a second implicit-narrowing probe
    # (FIXTURES holds one per rule): shard_hash() is how grid names map to
    # EvalService shards, and a 32-bit truncation of its 64-bit result
    # would skew the distribution silently. Expect exactly the two BAD
    # declarations — the static_cast line must stay clean.
    shard_fx = os.path.join(FIXTURE_DIR, "bad_shard_hash_width.cpp")
    if not os.path.exists(os.path.join(root, shard_fx)):
        print(f"FAIL  shard-hash-width: fixture {shard_fx} missing")
        failures += 1
    else:
        found = run_rule_on_file(root, args, "implicit-narrowing", shard_fx)
        if len(found) == 2:
            print("ok    shard-hash-width: both truncating declarations "
                  "flagged, cast form clean")
        else:
            print(f"FAIL  shard-hash-width: expected 2 findings, "
                  f"got {len(found)}")
            for f in found:
                print(f"      {f}")
            failures += 1
    # Suppression syntax must actually suppress (otherwise every allow()
    # comment in the tree is dead weight and the clean scan lies).
    supp = os.path.join(FIXTURE_DIR, "suppressed_ok.cpp")
    if os.path.exists(os.path.join(root, supp)):
        leaked = run_rule_on_file(root, args, "raw-alloc", supp)
        if leaked:
            print(f"FAIL  suppression: {supp} still reports {leaked[0]}")
            failures += 1
        else:
            print("ok    suppression: inline allow() silences the finding")
    tree = scan_tree(root, args)
    if tree:
        print(f"FAIL  clean-tree scan: {len(tree)} finding(s):")
        for f in tree:
            print(f"      {f}")
        failures += 1
    else:
        print("ok    clean-tree scan: 0 findings")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(
        description="project-invariant static analysis (see docs/STATIC_ANALYSIS.md)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        help="repository root (default: two levels above this script)")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "g++"),
                    help="compiler for header self-containment checks")
    ap.add_argument("--rules", help="comma-separated rule subset to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--selftest", action="store_true",
                    help="verify each rule flags its fixture, then scan the tree")
    args = ap.parse_args()

    if args.list_rules:
        for r in text_rules(args) + [HeaderSelfContainedRule(args.cxx)]:
            print(f"{r.name:22s} {r.description}")
        return 0

    if args.selftest:
        return selftest(args.root, args)

    rules_filter = None
    if args.rules:
        rules_filter = {r.strip() for r in args.rules.split(",")}
    findings = scan_tree(args.root, args, rules_filter)
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    n = len(findings)
    print(f"csg-lint: {n} finding{'s' if n != 1 else ''}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
