#!/usr/bin/env python3
"""Trend analysis across a series of bench runs (docs/BENCHMARKS.md).

    bench_trend.py RUN_DIR... [--out-md FILE] [--out-html FILE]
                   [--fail-drift R] [--labels CSV]
    bench_trend.py --selftest

Each RUN_DIR holds the BENCH_*.json records of one suite run; pass the
directories in chronological order (oldest first). The nightly perf-trend
CI job feeds it the last N downloaded ``bench-paper-*`` artifacts plus the
current run.

What it looks for is *monotonic creep*: a metric that regresses a little
every run — each step comfortably inside the per-run comparison band
(tools/bench_compare.py gates single runs at ±100% via --fail-ratio 2.0) —
but whose cumulative drift across the window is large. Per metric and
record the representative value is the run's median (``median`` field for
time metrics, ``value`` for counters); series are oriented by the metric's
``better`` direction so a ratio > 1 is always worse.

* cumulative drift = oriented(last) / oriented(first); > ``--fail-drift``
  (default 2.0) is a DRIFT failure (exit 1), even when — especially when —
  every single step stayed inside the per-run band;
* a metric whose cumulative drift exceeds half the budget while every step
  is inside it is flagged CREEP (reported, exit 0): tomorrow's DRIFT;
* ``better: neutral`` metrics appear in the report but never gate.

The markdown/HTML reports list every tracked metric with its series; CI
uploads them as the trend-report artifact.

Exit codes: 0 clean (fewer than two runs is a clean no-op), 1 drift
failures, 2 usage errors.
"""

from __future__ import annotations

import argparse
import html
import json
import math
import os
import sys
import tempfile

FAIL_DRIFT_DEFAULT = 2.0


def load_runs(run_dirs: list[str]) -> list[dict[str, dict]]:
    """Per run dir: map benchmark name -> parsed record."""
    runs = []
    for d in run_dirs:
        records = {}
        for name in sorted(os.listdir(d)):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(d, name), "r", encoding="utf-8") as fh:
                    rec = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"bench_trend: skipping {os.path.join(d, name)}: {exc}",
                      file=sys.stderr)
                continue
            if isinstance(rec, dict) and "benchmark" in rec:
                records[rec["benchmark"]] = rec
        runs.append(records)
    return runs


def representative(metric: dict) -> float | None:
    """The run's representative value: median for time, value otherwise."""
    value = metric.get("median", metric.get("value"))
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def collect_series(runs: list[dict[str, dict]]) -> list[dict]:
    """One entry per (benchmark, metric) seen in the *latest* run."""
    series = []
    latest = runs[-1]
    for bench in sorted(latest):
        for metric in latest[bench].get("metrics", []):
            name = metric.get("name")
            if not isinstance(name, str):
                continue
            points: list[float | None] = []
            for run in runs:
                rec = run.get(bench)
                found = None
                if rec is not None:
                    for m in rec.get("metrics", []):
                        if m.get("name") == name:
                            found = representative(m)
                            break
                points.append(found)
            series.append({
                "benchmark": bench,
                "metric": name,
                "unit": metric.get("unit", ""),
                "better": metric.get("better", "neutral"),
                "points": points,
            })
    return series


def oriented_ratio(first: float, last: float, better: str) -> float:
    """Ratio > 1 means worse, whatever the metric's direction."""
    num, den = (last, first) if better == "less" else (first, last)
    if den == 0.0:
        return math.nan if num == 0.0 else math.inf
    return num / den


def analyze(series: list[dict], fail_drift: float) -> None:
    """Annotate each series with drift/creep verdicts (in place)."""
    for s in series:
        s["drift"] = None
        s["verdict"] = ""
        if s["better"] == "neutral":
            continue
        points = [p for p in s["points"] if p is not None]
        if len(points) < 2:
            continue
        drift = oriented_ratio(points[0], points[-1], s["better"])
        if math.isnan(drift):
            continue
        s["drift"] = drift
        steps = [oriented_ratio(a, b, s["better"])
                 for a, b in zip(points, points[1:])]
        steps_in_band = all(st <= fail_drift for st in steps
                            if not math.isnan(st))
        if drift > fail_drift:
            s["verdict"] = "DRIFT"
        elif drift > 1.0 + (fail_drift - 1.0) / 2.0 and steps_in_band:
            # Halfway through the budget without any single step tripping
            # the per-run gate: the signature of monotonic creep.
            s["verdict"] = "CREEP"


def fmt(v: float | None) -> str:
    return "-" if v is None else f"{v:.6g}"


def render_markdown(series: list[dict], labels: list[str],
                    fail_drift: float) -> str:
    lines = ["# Bench trend report", "",
             f"{len(labels)} run(s), oldest first: " + ", ".join(labels), "",
             f"Drift gate: x{fail_drift:g} cumulative (oriented so >1 is "
             "worse). DRIFT fails the job; CREEP is the early warning.", ""]
    bench = None
    for s in series:
        if s["benchmark"] != bench:
            bench = s["benchmark"]
            lines += [f"## {bench}", "",
                      "| metric | " + " | ".join(labels)
                      + " | drift | verdict |",
                      "|---" * (len(labels) + 3) + "|"]
        row = [s["metric"] + (f" ({s['unit']})" if s["unit"] else "")]
        row += [fmt(p) for p in s["points"]]
        row.append("-" if s["drift"] is None else f"x{s['drift']:.2f}")
        row.append(s["verdict"] or ("skip" if s["better"] == "neutral"
                                    else "ok"))
        lines.append("| " + " | ".join(row) + " |")
        if s["metric"] == series[-1]["metric"] and s is series[-1]:
            lines.append("")
    drifted = [s for s in series if s["verdict"] == "DRIFT"]
    creeping = [s for s in series if s["verdict"] == "CREEP"]
    lines += ["", f"**Summary:** {len(drifted)} drift failure(s), "
              f"{len(creeping)} creep warning(s), "
              f"{len(series)} metric(s) tracked."]
    return "\n".join(lines) + "\n"


def render_html(series: list[dict], labels: list[str],
                fail_drift: float) -> str:
    head = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>Bench trend report</title><style>"
            "body{font-family:sans-serif;margin:2em}"
            "table{border-collapse:collapse;margin-bottom:2em}"
            "td,th{border:1px solid #999;padding:0.3em 0.6em;"
            "text-align:right}"
            "td:first-child,th:first-child{text-align:left}"
            ".DRIFT{background:#fbb}.CREEP{background:#ffd9a0}"
            "</style></head><body><h1>Bench trend report</h1>")
    parts = [head,
             f"<p>{len(labels)} run(s), oldest first. Drift gate: "
             f"x{fail_drift:g} cumulative.</p>"]
    bench = None
    for s in series:
        if s["benchmark"] != bench:
            if bench is not None:
                parts.append("</table>")
            bench = s["benchmark"]
            parts.append(f"<h2>{html.escape(bench)}</h2><table><tr>"
                         "<th>metric</th>"
                         + "".join(f"<th>{html.escape(lb)}</th>"
                                   for lb in labels)
                         + "<th>drift</th><th>verdict</th></tr>")
        verdict = s["verdict"] or ("skip" if s["better"] == "neutral"
                                   else "ok")
        cells = [f"<td>{html.escape(s['metric'])}</td>"]
        cells += [f"<td>{fmt(p)}</td>" for p in s["points"]]
        cells.append("<td>" + ("-" if s["drift"] is None
                               else f"x{s['drift']:.2f}") + "</td>")
        cells.append(f"<td class='{verdict}'>{verdict}</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    if bench is not None:
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts) + "\n"


def run_trend(args: argparse.Namespace) -> int:
    for d in args.runs:
        if not os.path.isdir(d):
            print(f"bench_trend: run directory '{d}' does not exist",
                  file=sys.stderr)
            return 2
    if args.labels:
        labels = args.labels.split(",")
        if len(labels) != len(args.runs):
            print("bench_trend: --labels count does not match run count",
                  file=sys.stderr)
            return 2
    else:
        labels = [os.path.basename(os.path.normpath(d)) or d
                  for d in args.runs]

    if len(args.runs) < 2:
        print("bench_trend: fewer than two runs — nothing to trend "
              "(clean no-op)")
        return 0

    runs = load_runs(args.runs)
    series = collect_series(runs)
    analyze(series, args.fail_drift)

    md = render_markdown(series, labels, args.fail_drift)
    if args.out_md:
        with open(args.out_md, "w", encoding="utf-8") as fh:
            fh.write(md)
    if args.out_html:
        with open(args.out_html, "w", encoding="utf-8") as fh:
            fh.write(render_html(series, labels, args.fail_drift))

    for s in series:
        if s["verdict"]:
            first = next(p for p in s["points"] if p is not None)
            last = next(p for p in reversed(s["points"]) if p is not None)
            print(f"{s['verdict']:5}  {s['benchmark']}:{s['metric']}: "
                  f"{fmt(first)} -> {fmt(last)} {s['unit']} "
                  f"(x{s['drift']:.2f} cumulative over {len(labels)} runs)")
    drifted = sum(1 for s in series if s["verdict"] == "DRIFT")
    creeping = sum(1 for s in series if s["verdict"] == "CREEP")
    print(f"bench_trend: {len(series)} metric(s) over {len(labels)} run(s), "
          f"{drifted} drift failure(s), {creeping} creep warning(s)")
    return 1 if drifted else 0


def _record(values: dict[str, float], neutral: float = 8.0) -> dict:
    metrics = [{"name": name, "unit": "s", "better": "less", "kind": "time",
                "value": v, "min": v, "median": v, "mad": 0.0,
                "repetitions": 3, "samples": [v] * 3}
               for name, v in values.items()]
    metrics.append({"name": "host/threads", "unit": "threads",
                    "better": "neutral", "kind": "counter", "value": neutral})
    return {"schema_version": 1, "benchmark": "bench_selftest",
            "title": "synthetic", "paper_ref": "none", "environment": {},
            "parameters": {}, "metrics": metrics}


def run_selftest() -> int:
    failures = []

    def check(label: str, ok: bool) -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}")
        if not ok:
            failures.append(label)

    def ns(runs: list[str], **kw) -> argparse.Namespace:
        base = dict(runs=runs, out_md=None, out_html=None,
                    fail_drift=FAIL_DRIFT_DEFAULT, labels=None)
        base.update(kw)
        return argparse.Namespace(**base)

    with tempfile.TemporaryDirectory() as tmp:
        def write_run(name: str, values: dict[str, float],
                      neutral: float = 8.0) -> str:
            d = os.path.join(tmp, name)
            os.makedirs(d, exist_ok=True)
            with open(os.path.join(d, "BENCH_bench_selftest.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(_record(values, neutral), fh)
            return d

        # Three stable runs: clean.
        stable = [write_run(f"s{i}", {"stage/seconds": 1.0})
                  for i in range(3)]
        check("stable series is clean", run_trend(ns(stable)) == 0)

        # Monotonic creep past the gate: every step inside the 2x per-run
        # band, cumulative 2.2x -> DRIFT, exit 1. Exactly the failure mode
        # single-run comparisons cannot see.
        creep = [write_run(f"c{i}", {"stage/seconds": v})
                 for i, v in enumerate([1.0, 1.5, 2.2])]
        check("monotonic creep past the gate fails", run_trend(ns(creep)) == 1)

        # Halfway into the budget: CREEP warning, exit stays 0.
        warn = [write_run(f"w{i}", {"stage/seconds": v})
                for i, v in enumerate([1.0, 1.3, 1.7])]
        check("half-budget creep warns but passes", run_trend(ns(warn)) == 0)

        # Improvements never gate.
        improving = [write_run(f"i{i}", {"stage/seconds": v})
                     for i, v in enumerate([2.0, 1.0, 0.5])]
        check("improving series is clean", run_trend(ns(improving)) == 0)

        # Neutral metrics never gate, whatever they do.
        jitter = [write_run(f"n{i}", {"stage/seconds": 1.0}, neutral=v)
                  for i, v in enumerate([1.0, 50.0, 400.0])]
        check("neutral metric swings are clean", run_trend(ns(jitter)) == 0)

        # Fewer than two runs: clean no-op (first scheduled nightly).
        check("single run is a clean no-op", run_trend(ns(stable[:1])) == 0)

        # Missing directory is a usage error.
        check("missing run dir exits 2",
              run_trend(ns([os.path.join(tmp, "gone")])) == 2)

        # A metric absent from older runs trends on what exists.
        sparse = [write_run("p0", {"stage/seconds": 1.0}),
                  write_run("p1", {"stage/seconds": 1.0,
                                   "stage/new_metric": 1.0}),
                  write_run("p2", {"stage/seconds": 1.0,
                                   "stage/new_metric": 1.1})]
        check("sparse series (new metric) is clean", run_trend(ns(sparse)) == 0)

        # Reports are written and name the drifting metric.
        md_path = os.path.join(tmp, "trend.md")
        html_path = os.path.join(tmp, "trend.html")
        rc = run_trend(ns(creep, out_md=md_path, out_html=html_path))
        with open(md_path, encoding="utf-8") as fh:
            md = fh.read()
        with open(html_path, encoding="utf-8") as fh:
            page = fh.read()
        check("report run still fails", rc == 1)
        check("markdown report names the drift",
              "stage/seconds" in md and "DRIFT" in md)
        check("html report names the drift",
              "stage/seconds" in page and "DRIFT" in page)

    print("bench_trend --selftest: "
          + ("PASS" if not failures else f"{len(failures)} FAILED"))
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Detect cumulative drift across csg::bench run series.")
    parser.add_argument("runs", nargs="*", metavar="RUN_DIR",
                        help="run directories, oldest first")
    parser.add_argument("--out-md", help="write a markdown report here")
    parser.add_argument("--out-html", help="write an HTML report here")
    parser.add_argument("--fail-drift", type=float,
                        default=FAIL_DRIFT_DEFAULT,
                        help="fail when a gated metric's cumulative drift"
                             " exceeds this ratio (default 2.0)")
    parser.add_argument("--labels",
                        help="comma-separated run labels (default: dir names)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in detection self-test")
    args = parser.parse_args(argv)
    if args.selftest:
        return run_selftest()
    if not args.runs:
        parser.print_usage(sys.stderr)
        return 2
    return run_trend(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
