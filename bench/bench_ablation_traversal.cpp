// Ablation — three traversals of the same O(N d) hierarchization on the
// compact structure:
//  * literal Alg. 6: flat loop with a full idx2gp decode per point (the
//    paper's pseudocode, verbatim);
//  * subspace-wise Alg. 6: level groups descending, index odometer, two
//    gp2idx parent lookups per point (the paper's intended GPU-style
//    implementation, used as hierarchize());
//  * pole-based unidirectional transform: scalar Alg. 1 recursions on
//    direct index arithmetic — no gp2idx at all (library extension).
// All three produce bit-identical coefficients (asserted in tests); the
// bench shows what the bijection arithmetic costs and what the flat
// layout enables.
#include "bench_common.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 7));

  csg::bench::print_header(
      "bench_ablation_traversal: literal Alg. 6 vs subspace-wise Alg. 6 vs "
      "pole-based transform",
      "Alg. 6 implementation space (all bit-identical; see "
      "tests/test_hierarchize.cpp)");

  Report report("bench_ablation_traversal",
                "literal vs subspace-wise vs pole-based hierarchization "
                "traversals",
                "Alg. 6");
  report.set_param("level", static_cast<std::int64_t>(level));

  std::printf("%-4s %12s %14s %14s %14s %10s\n", "d", "N points",
              "literal (ms)", "subspace (ms)", "poles (ms)", "poles win");
  for (dim_t d = 2; d <= 10; d += 2) {
    const auto f = workloads::parabola_product(d);
    // The transform mutates in place, so each repetition rebuilds; only the
    // transform itself is accumulated, until a 50 ms window is filled (at
    // small d a single pass is microseconds — far too noisy to gate).
    auto run = [&](void (*transform)(CompactStorage&)) {
      double accum = 0;
      int calls = 0;
      do {
        CompactStorage s(d, level);
        s.sample(f.f);
        accum += csg::bench::time_s([&] { transform(s); });
        ++calls;
      } while (accum < 0.05);
      return accum / calls;
    };
    const double t_lit = run(&hierarchize_literal);
    const double t_sub = run(&hierarchize);
    const double t_pole = run(&hierarchize_poles);
    std::printf("%-4u %12llu %14.3f %14.3f %14.3f %9.1fx\n", d,
                static_cast<unsigned long long>(
                    regular_grid_num_points(d, level)),
                t_lit * 1e3, t_sub * 1e3, t_pole * 1e3, t_sub / t_pole);
    const std::string dk = "/d" + std::to_string(d);
    report
        .add_time("hierarchize_ms/literal" + dk, csg::bench::summarize({t_lit}),
                  "ms", 1e3)
        .tolerance = 1.0;
    report
        .add_time("hierarchize_ms/subspace" + dk,
                  csg::bench::summarize({t_sub}), "ms", 1e3)
        .tolerance = 1.0;
    report
        .add_time("hierarchize_ms/poles" + dk, csg::bench::summarize({t_pole}),
                  "ms", 1e3)
        .tolerance = 1.0;
    report.add_counter("poles_speedup_vs_subspace" + dk, t_sub / t_pole, "x",
                       Better::kNeutral);
  }
  std::printf("\nreading: the pole transform removes every bijection call "
              "from the inner loop; the gp2idx arithmetic is what separates "
              "the three — exactly the cost the paper's Sec. 4.2 O(d) "
              "optimization minimizes.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
