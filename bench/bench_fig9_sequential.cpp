// Experiments E3/E4 — Fig. 9a/9b: sequential runtime of hierarchization and
// evaluation per data structure, as a function of the number of dimensions.
//
// The paper's i7-920 runs level-11 grids (up to 700 s per hierarchization
// for the std::map); the harness defaults to level 6 so the whole sweep
// finishes in well under a minute while preserving the ordering and growth
// the figure shows. Baselines run the paper's original recursive algorithms
// (Sec. 3); the compact structure runs the iterative Alg. 6/7 it enables.
#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_native.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::baselines;
using csg::bench::Args;

struct Timings {
  double hierarchize_s;
  double eval_per_point_s;
};

template <GridStorage S>
Timings run(dim_t d, level_t n, std::size_t eval_points) {
  const auto f = workloads::parabola_product(d);
  S storage(d, n);
  sample(storage, f.f);
  const double h = csg::bench::time_s([&] {
    if constexpr (std::is_same_v<S, CompactStorage>)
      hierarchize(storage);
    else if constexpr (std::is_same_v<S, PrefixTreeStorage>)
      hierarchize_native(storage);  // child-pointer descent, paper-style
    else
      hierarchize_recursive(storage);
  });
  const auto pts = workloads::uniform_points(d, eval_points, 99);
  double e;
  if constexpr (std::is_same_v<S, CompactStorage>) {
    e = csg::bench::time_s([&] { (void)evaluate_many(storage, pts); });
  } else if constexpr (std::is_same_v<S, PrefixTreeStorage>) {
    e = csg::bench::time_s([&] {
      for (const CoordVector& x : pts) (void)evaluate_native(storage, x);
    });
  } else {
    e = csg::bench::time_s([&] {
      (void)evaluate_many_recursive(storage, pts);
    });
  }
  return {h, e / static_cast<double>(eval_points)};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 6));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 2000));
  const auto d_lo = static_cast<dim_t>(args.get_int("--dmin", 5));
  const auto d_hi = static_cast<dim_t>(args.get_int("--dmax", 10));

  csg::bench::print_header(
      "bench_fig9_sequential: sequential hierarchization & evaluation "
      "runtimes per data structure",
      "Fig. 9a (hierarchization) and Fig. 9b (time per evaluation), i7-920");
  std::printf("level %u grids, %zu evaluation points per dimension count\n\n",
              level, points);

  const char* names[5] = {"compact", "prefix_tree", "enhanced_hash",
                          "enhanced_map", "std_map"};
  std::vector<std::array<Timings, 5>> results;

  for (dim_t d = d_lo; d <= d_hi; ++d) {
    std::array<Timings, 5> row;
    row[0] = run<CompactStorage>(d, level, points);
    row[1] = run<PrefixTreeStorage>(d, level, points);
    row[2] = run<EnhancedHashStorage>(d, level, points);
    row[3] = run<EnhancedMapStorage>(d, level, points);
    row[4] = run<StdMapStorage>(d, level, points);
    results.push_back(row);
  }

  std::printf("Fig. 9a analogue: sequential hierarchization time (s)\n");
  std::printf("%-15s", "structure");
  for (dim_t d = d_lo; d <= d_hi; ++d) std::printf("      d=%-4u", d);
  std::printf("\n");
  for (int s = 0; s < 5; ++s) {
    std::printf("%-15s", names[s]);
    for (std::size_t k = 0; k < results.size(); ++k)
      std::printf("  %10.4f", results[k][static_cast<std::size_t>(s)].hierarchize_s);
    std::printf("\n");
  }

  std::printf("\nFig. 9b analogue: time per evaluation (us)\n");
  std::printf("%-15s", "structure");
  for (dim_t d = d_lo; d <= d_hi; ++d) std::printf("      d=%-4u", d);
  std::printf("\n");
  for (int s = 0; s < 5; ++s) {
    std::printf("%-15s", names[s]);
    for (std::size_t k = 0; k < results.size(); ++k)
      std::printf("  %10.3f",
                  results[k][static_cast<std::size_t>(s)].eval_per_point_s * 1e6);
    std::printf("\n");
  }

  std::printf("\nshape checks vs the paper:\n");
  const auto& last = results.back();
  std::printf("  compact fastest hierarchization at d=%u: %s\n", d_hi,
              (last[0].hierarchize_s <= last[2].hierarchize_s &&
               last[0].hierarchize_s <= last[3].hierarchize_s &&
               last[0].hierarchize_s <= last[4].hierarchize_s)
                  ? "yes"
                  : "NO");
  // The paper's wording for Fig. 9b: the prefix tree's evaluation is
  // "very close to the performance obtained with our data structure"
  // (both exploit the cache; at the paper's level-11 scale compact edges
  // ahead, at reduced levels the trie's branch pruning can win slightly).
  std::printf("  compact and prefix_tree evaluation within 2x of each other "
              "and ahead of both maps at d=%u: %s\n",
              d_hi,
              (last[0].eval_per_point_s <= 2 * last[1].eval_per_point_s &&
               last[1].eval_per_point_s <= 2 * last[0].eval_per_point_s &&
               last[0].eval_per_point_s < last[3].eval_per_point_s &&
               last[0].eval_per_point_s < last[4].eval_per_point_s)
                  ? "yes"
                  : "NO");
  std::printf("  std_map slowest hierarchization at d=%u: %s\n", d_hi,
              (last[4].hierarchize_s >= last[0].hierarchize_s &&
               last[4].hierarchize_s >= last[1].hierarchize_s)
                  ? "yes"
                  : "NO");
  return 0;
}
