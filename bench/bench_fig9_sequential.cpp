// Experiments E3/E4 — Fig. 9a/9b: sequential runtime of hierarchization and
// evaluation per data structure, as a function of the number of dimensions.
//
// The paper's i7-920 runs level-11 grids (up to 700 s per hierarchization
// for the std::map); the harness defaults to level 6 so the whole sweep
// finishes in well under a minute while preserving the ordering and growth
// the figure shows. Baselines run the paper's original recursive algorithms
// (Sec. 3); the compact structure runs the iterative Alg. 6/7 it enables.
#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_native.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::baselines;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

struct Timings {
  double hierarchize_s;
  double eval_per_point_s;
};

template <GridStorage S>
Timings run(dim_t d, level_t n, std::size_t eval_points) {
  const auto f = workloads::parabola_product(d);
  // Hierarchization mutates the storage in place, so repeating it means
  // rebuilding; only the transform itself is accumulated, and the cycle
  // repeats until at least 50 ms of it was observed. At paper shapes one
  // call exceeds the window and this degenerates to a single timing.
  constexpr double kMinSeconds = 0.05;
  auto transform = [](S& s) {
    if constexpr (std::is_same_v<S, CompactStorage>)
      hierarchize(s);
    else if constexpr (std::is_same_v<S, PrefixTreeStorage>)
      hierarchize_native(s);  // child-pointer descent, paper-style
    else
      hierarchize_recursive(s);
  };
  double h_accum = 0;
  int h_calls = 0;
  do {
    S rebuilt(d, n);
    sample(rebuilt, f.f);
    h_accum += csg::bench::time_s([&] { transform(rebuilt); });
    ++h_calls;
  } while (h_accum < kMinSeconds);
  const double h = h_accum / h_calls;

  S storage(d, n);
  sample(storage, f.f);
  transform(storage);
  const auto pts = workloads::uniform_points(d, eval_points, 99);
  double e;
  if constexpr (std::is_same_v<S, CompactStorage>) {
    // The compact structure's batched query path: Sec. 4.3 blocking over
    // the shared plan, which runs the SoA batch kernel (DESIGN.md §14).
    e = csg::bench::time_per_call_s(
        [&] { (void)evaluate_many_blocked(storage, pts, 64); }, kMinSeconds);
  } else if constexpr (std::is_same_v<S, PrefixTreeStorage>) {
    e = csg::bench::time_per_call_s(
        [&] {
          for (const CoordVector& x : pts) (void)evaluate_native(storage, x);
        },
        kMinSeconds);
  } else {
    e = csg::bench::time_per_call_s(
        [&] { (void)evaluate_many_recursive(storage, pts); }, kMinSeconds);
  }
  return {h, e / static_cast<double>(eval_points)};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 6));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 2000));
  const auto d_lo = static_cast<dim_t>(args.get_int("--dmin", 5));
  const auto d_hi = static_cast<dim_t>(args.get_int("--dmax", 10));

  csg::bench::print_header(
      "bench_fig9_sequential: sequential hierarchization & evaluation "
      "runtimes per data structure",
      "Fig. 9a (hierarchization) and Fig. 9b (time per evaluation), i7-920");
  std::printf("level %u grids, %zu evaluation points per dimension count\n\n",
              level, points);

  Report report("bench_fig9_sequential",
                "sequential hierarchization and evaluation runtimes per data "
                "structure",
                "Fig. 9a/9b");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("points", static_cast<std::int64_t>(points));
  report.set_param("dims_min", static_cast<std::int64_t>(d_lo));
  report.set_param("dims_max", static_cast<std::int64_t>(d_hi));

  const char* names[5] = {"compact", "prefix_tree", "enhanced_hash",
                          "enhanced_map", "std_map"};
  std::vector<std::array<Timings, 5>> results;

  for (dim_t d = d_lo; d <= d_hi; ++d) {
    std::array<Timings, 5> row;
    row[0] = run<CompactStorage>(d, level, points);
    row[1] = run<PrefixTreeStorage>(d, level, points);
    row[2] = run<EnhancedHashStorage>(d, level, points);
    row[3] = run<EnhancedMapStorage>(d, level, points);
    row[4] = run<StdMapStorage>(d, level, points);
    results.push_back(row);
    // Hierarchization mutates the storage in place, so each timing is one
    // observation — recorded as a single-sample time metric with a wide
    // noise tolerance.
    for (int s = 0; s < 5; ++s) {
      const std::string base(names[s]);
      const std::string dk = "/d" + std::to_string(d);
      const Timings& t = row[static_cast<std::size_t>(s)];
      report
          .add_time(base + "/hierarchize_s" + dk,
                    csg::bench::summarize({t.hierarchize_s}), "s")
          .tolerance = 1.0;
      report
          .add_time(base + "/eval_us_per_point" + dk,
                    csg::bench::summarize({t.eval_per_point_s}), "us", 1e6)
          .tolerance = 1.0;
    }
  }

  std::printf("Fig. 9a analogue: sequential hierarchization time (s)\n");
  std::printf("%-15s", "structure");
  for (dim_t d = d_lo; d <= d_hi; ++d) std::printf("      d=%-4u", d);
  std::printf("\n");
  for (int s = 0; s < 5; ++s) {
    std::printf("%-15s", names[s]);
    for (std::size_t k = 0; k < results.size(); ++k)
      std::printf("  %10.4f", results[k][static_cast<std::size_t>(s)].hierarchize_s);
    std::printf("\n");
  }

  std::printf("\nFig. 9b analogue: time per evaluation (us)\n");
  std::printf("%-15s", "structure");
  for (dim_t d = d_lo; d <= d_hi; ++d) std::printf("      d=%-4u", d);
  std::printf("\n");
  for (int s = 0; s < 5; ++s) {
    std::printf("%-15s", names[s]);
    for (std::size_t k = 0; k < results.size(); ++k)
      std::printf("  %10.3f",
                  results[k][static_cast<std::size_t>(s)].eval_per_point_s * 1e6);
    std::printf("\n");
  }

  std::printf("\nshape checks vs the paper:\n");
  const auto& last = results.back();
  const bool compact_fastest_hier =
      last[0].hierarchize_s <= last[2].hierarchize_s &&
      last[0].hierarchize_s <= last[3].hierarchize_s &&
      last[0].hierarchize_s <= last[4].hierarchize_s;
  std::printf("  compact fastest hierarchization at d=%u: %s\n", d_hi,
              compact_fastest_hier ? "yes" : "NO");
  // The paper's Fig. 9b has the prefix tree "very close to the performance
  // obtained with our data structure" — that held for the per-point walk.
  // The compact column now runs the batched SoA path (blocking + vectorized
  // kernel, DESIGN.md §14), which the pointer-chasing trie cannot match, so
  // the shape check asks for compact strictly ahead of the trie and both
  // maps instead of "within 2x".
  const bool eval_shape_ok =
      last[0].eval_per_point_s <= last[1].eval_per_point_s &&
      last[0].eval_per_point_s < last[3].eval_per_point_s &&
      last[0].eval_per_point_s < last[4].eval_per_point_s;
  std::printf("  compact (SoA batched) evaluation ahead of prefix_tree and "
              "both maps at d=%u: %s\n",
              d_hi, eval_shape_ok ? "yes" : "NO");
  const bool std_map_slowest = last[4].hierarchize_s >= last[0].hierarchize_s &&
                               last[4].hierarchize_s >= last[1].hierarchize_s;
  std::printf("  std_map slowest hierarchization at d=%u: %s\n", d_hi,
              std_map_slowest ? "yes" : "NO");
  // Shape checks depend on the relative speed of small timings — recorded
  // as neutral counters (informational, never gated).
  report.add_counter("shape/compact_fastest_hierarchization",
                     compact_fastest_hier ? 1 : 0, "bool", Better::kNeutral);
  report.add_counter("shape/compact_eval_ahead", eval_shape_ok ? 1 : 0,
                     "bool", Better::kNeutral);
  report.add_counter("shape/std_map_slowest_hierarchization",
                     std_map_slowest ? 1 : 0, "bool", Better::kNeutral);
  csg::bench::finish_report(report, args);
  return 0;
}
