// Experiment E1 — Table 1: per-access time complexity and non-sequential
// memory references of every data structure.
//
// Two measurements per structure:
//  * wall-clock nanoseconds per get() over every grid point (the access
//    cost whose asymptotics Table 1 states), at two grid sizes so the
//    O(log N) vs O(d) vs O(1) growth is visible;
//  * references and cache misses per get() via the cache simulator over
//    the exact address stream (Table 1's "Non-seq. Refs." column).
#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/compact_storage.hpp"
#include "csg/memsim/scaling.hpp"
#include "csg/memsim/traced_storages.hpp"
#include "csg/testing/generators.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::baselines;
using csg::bench::Args;

/// ns per get() over a shuffled tour of all grid points (random access, the
/// worst case Table 1 characterizes).
template <GridStorage S>
double ns_per_get(dim_t d, level_t n, std::uint64_t seed) {
  S storage(d, n);
  sample(storage, [](const CoordVector&) { return 1.0; });
  std::mt19937_64 rng(csg::testing::mix_seed(seed));
  const auto tour = csg::testing::shuffled_grid_tour(rng, storage.grid());
  volatile real_t sink = 0;
  const double secs = csg::bench::time_per_call_s([&] {
    real_t acc = 0;
    for (const GridPoint& gp : tour) acc += storage.get(gp.level, gp.index);
    sink = acc;
  });
  (void)sink;
  return secs / static_cast<double>(tour.size()) * 1e9;
}

template <typename TS>
std::pair<double, double> refs_and_misses_per_get(dim_t d, level_t n) {
  memsim::CacheHierarchy caches = memsim::CacheHierarchy::nehalem_core();
  TS storage(RegularSparseGrid(d, n), &caches);
  sample(storage, [](const CoordVector&) { return 1.0; });
  std::mt19937_64 rng(csg::testing::mix_seed(17));
  const auto tour = csg::testing::shuffled_grid_tour(rng, storage.grid());
  caches.flush();
  caches.reset_counters();
  for (const GridPoint& gp : tour) (void)storage.get(gp.level, gp.index);
  const double gets = static_cast<double>(tour.size());
  return {static_cast<double>(caches.l1().accesses()) / gets,
          static_cast<double>(caches.l1().misses()) / gets};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 5));
  const auto n_small = static_cast<level_t>(args.get_int("--level", 5));
  const level_t n_large = n_small + 2;

  csg::bench::print_header(
      "bench_table1_access: access cost and non-sequential references per "
      "data structure",
      "Table 1 (time complexity / non-sequential refs for value access)");
  std::printf(
      "d = %u; 'small' grid level %u (N = %llu), 'large' level %u (N = "
      "%llu); random access order\n\n",
      d, n_small,
      static_cast<unsigned long long>(regular_grid_num_points(d, n_small)),
      n_large,
      static_cast<unsigned long long>(regular_grid_num_points(d, n_large)));

  struct Row {
    const char* name;
    const char* paper_time;
    const char* paper_refs;
    double ns_small, ns_large, refs, misses;
  };
  Row rows[] = {
      {"std_map", "O(d log N)", "O(log N)",
       ns_per_get<StdMapStorage>(d, n_small, 1),
       ns_per_get<StdMapStorage>(d, n_large, 1),
       refs_and_misses_per_get<memsim::TracedStdMapStorage>(d, n_large).first,
       refs_and_misses_per_get<memsim::TracedStdMapStorage>(d, n_large)
           .second},
      {"enhanced_map", "O(d + log N)", "O(log N)",
       ns_per_get<EnhancedMapStorage>(d, n_small, 2),
       ns_per_get<EnhancedMapStorage>(d, n_large, 2),
       refs_and_misses_per_get<memsim::TracedEnhancedMapStorage>(d, n_large)
           .first,
       refs_and_misses_per_get<memsim::TracedEnhancedMapStorage>(d, n_large)
           .second},
      {"enhanced_hash", "O(d)", "O(1)",
       ns_per_get<EnhancedHashStorage>(d, n_small, 3),
       ns_per_get<EnhancedHashStorage>(d, n_large, 3),
       refs_and_misses_per_get<memsim::TracedEnhancedHashStorage>(d, n_large)
           .first,
       refs_and_misses_per_get<memsim::TracedEnhancedHashStorage>(d, n_large)
           .second},
      {"prefix_tree", "O(d)", "O(d)",
       ns_per_get<PrefixTreeStorage>(d, n_small, 4),
       ns_per_get<PrefixTreeStorage>(d, n_large, 4),
       refs_and_misses_per_get<memsim::TracedPrefixTreeStorage>(d, n_large)
           .first,
       refs_and_misses_per_get<memsim::TracedPrefixTreeStorage>(d, n_large)
           .second},
      {"compact", "O(d)", "O(1)",
       ns_per_get<CompactStorage>(d, n_small, 5),
       ns_per_get<CompactStorage>(d, n_large, 5),
       refs_and_misses_per_get<memsim::TracedCompactStorage>(d, n_large).first,
       refs_and_misses_per_get<memsim::TracedCompactStorage>(d, n_large)
           .second},
  };

  std::printf("%-15s %-13s %-10s %11s %11s %10s %12s\n", "structure",
              "paper time", "paper refs", "ns/get(sm)", "ns/get(lg)",
              "refs/get", "misses/get");
  for (const Row& r : rows)
    std::printf("%-15s %-13s %-10s %11.1f %11.1f %10.2f %12.3f\n", r.name,
                r.paper_time, r.paper_refs, r.ns_small, r.ns_large, r.refs,
                r.misses);

  std::printf(
      "\nreading: map access cost grows with N; tree/hash/compact are flat; "
      "compact has the fewest miss-causing references (its binmat lookups "
      "stay L1-resident, Sec. 4.3).\n");
  return 0;
}
