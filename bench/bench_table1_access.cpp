// Experiment E1 — Table 1: per-access time complexity and non-sequential
// memory references of every data structure.
//
// Two measurements per structure:
//  * wall-clock nanoseconds per get() over every grid point (the access
//    cost whose asymptotics Table 1 states), at two grid sizes so the
//    O(log N) vs O(d) vs O(1) growth is visible;
//  * references and cache misses per get() via the cache simulator over
//    the exact address stream (Table 1's "Non-seq. Refs." column).
// Wall-clock metrics carry warmup + repetition statistics; the simulator
// counters are deterministic and gate tightly in bench_compare.
#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/compact_storage.hpp"
#include "csg/memsim/scaling.hpp"
#include "csg/memsim/traced_storages.hpp"
#include "csg/testing/generators.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::baselines;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::MeasureOptions;
using csg::bench::Report;
using csg::bench::TimingStats;

/// ns per get() over a shuffled tour of all grid points (random access, the
/// worst case Table 1 characterizes). Recorded as a time metric with a wide
/// noise tolerance: single-nanosecond access costs wobble with frequency
/// scaling and machine generation.
template <GridStorage S>
double ns_per_get(dim_t d, level_t n, std::uint64_t seed, Report& report,
                  const std::string& metric) {
  S storage(d, n);
  sample(storage, [](const CoordVector&) { return 1.0; });
  std::mt19937_64 rng(csg::testing::mix_seed(seed));
  const auto tour = csg::testing::shuffled_grid_tour(rng, storage.grid());
  volatile real_t sink = 0;
  const TimingStats stats = csg::bench::measure(
      [&] {
        real_t acc = 0;
        for (const GridPoint& gp : tour) acc += storage.get(gp.level, gp.index);
        sink = acc;
      },
      MeasureOptions{1, 3, 0.05});
  (void)sink;
  const double scale = 1e9 / static_cast<double>(tour.size());
  report.add_time(metric, stats, "ns", scale).tolerance = 1.0;
  return stats.median * scale;
}

template <typename TS>
std::pair<double, double> refs_and_misses_per_get(dim_t d, level_t n) {
  memsim::CacheHierarchy caches = memsim::CacheHierarchy::nehalem_core();
  TS storage(RegularSparseGrid(d, n), &caches);
  sample(storage, [](const CoordVector&) { return 1.0; });
  std::mt19937_64 rng(csg::testing::mix_seed(17));
  const auto tour = csg::testing::shuffled_grid_tour(rng, storage.grid());
  caches.flush();
  caches.reset_counters();
  for (const GridPoint& gp : tour) (void)storage.get(gp.level, gp.index);
  const double gets = static_cast<double>(tour.size());
  return {static_cast<double>(caches.l1().accesses()) / gets,
          static_cast<double>(caches.l1().misses()) / gets};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 5));
  const auto n_small = static_cast<level_t>(args.get_int("--level", 5));
  const level_t n_large = n_small + 2;

  csg::bench::print_header(
      "bench_table1_access: access cost and non-sequential references per "
      "data structure",
      "Table 1 (time complexity / non-sequential refs for value access)");
  std::printf(
      "d = %u; 'small' grid level %u (N = %llu), 'large' level %u (N = "
      "%llu); random access order\n\n",
      d, n_small,
      static_cast<unsigned long long>(regular_grid_num_points(d, n_small)),
      n_large,
      static_cast<unsigned long long>(regular_grid_num_points(d, n_large)));

  Report report("bench_table1_access",
                "access cost and non-sequential references per data structure",
                "Table 1");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level_small", static_cast<std::int64_t>(n_small));
  report.set_param("level_large", static_cast<std::int64_t>(n_large));

  struct Row {
    const char* name;
    const char* paper_time;
    const char* paper_refs;
    double ns_small, ns_large, refs, misses;
  };

  auto make_row = [&]<GridStorage S, typename TS>(
                      const char* name, const char* paper_time,
                      const char* paper_refs, std::uint64_t seed) {
    const std::string base(name);
    Row r{name, paper_time, paper_refs, 0, 0, 0, 0};
    r.ns_small =
        ns_per_get<S>(d, n_small, seed, report, base + "/ns_per_get/small");
    r.ns_large = ns_per_get<S>(d, n_large, seed + 100, report,
                               base + "/ns_per_get/large");
    const auto [refs, misses] = refs_and_misses_per_get<TS>(d, n_large);
    r.refs = refs;
    r.misses = misses;
    // Cache-sim counters key on real heap addresses; ASLR wobbles the
    // conflict misses slightly, so give them a 5% band (see fig11).
    report.add_counter(base + "/refs_per_get", refs, "refs", Better::kLess)
        .tolerance = 0.05;
    report
        .add_counter(base + "/misses_per_get", misses, "misses", Better::kLess)
        .tolerance = 0.05;
    return r;
  };

  const Row rows[] = {
      make_row.operator()<StdMapStorage, memsim::TracedStdMapStorage>(
          "std_map", "O(d log N)", "O(log N)", 1),
      make_row.operator()<EnhancedMapStorage, memsim::TracedEnhancedMapStorage>(
          "enhanced_map", "O(d + log N)", "O(log N)", 2),
      make_row
          .operator()<EnhancedHashStorage, memsim::TracedEnhancedHashStorage>(
              "enhanced_hash", "O(d)", "O(1)", 3),
      make_row.operator()<PrefixTreeStorage, memsim::TracedPrefixTreeStorage>(
          "prefix_tree", "O(d)", "O(d)", 4),
      make_row.operator()<CompactStorage, memsim::TracedCompactStorage>(
          "compact", "O(d)", "O(1)", 5),
  };

  std::printf("%-15s %-13s %-10s %11s %11s %10s %12s\n", "structure",
              "paper time", "paper refs", "ns/get(sm)", "ns/get(lg)",
              "refs/get", "misses/get");
  for (const Row& r : rows)
    std::printf("%-15s %-13s %-10s %11.1f %11.1f %10.2f %12.3f\n", r.name,
                r.paper_time, r.paper_refs, r.ns_small, r.ns_large, r.refs,
                r.misses);

  std::printf(
      "\nreading: map access cost grows with N; tree/hash/compact are flat; "
      "compact has the fewest miss-causing references (its binmat lookups "
      "stay L1-resident, Sec. 4.3).\n");
  csg::bench::finish_report(report, args);
  return 0;
}
