// Experiment E11 — Sec. 4.3 ablation: cache blocking of the evaluation
// point loop.
//
// "Cache exploitation can be improved by ... blocking ... on the set of
// evaluation points and each block is processed after the j and l loops.
// The optimization is based on the fact that a subspace ... is needed by
// all the evaluations and is already present in cache."
// The harness measures plain per-point evaluation against the blocked
// variant over a range of block sizes, on a grid sized to exceed L2, and
// cross-checks the effect with the cache simulator's measured misses.
#include <algorithm>
#include <thread>

#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/memsim/traced_storages.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 6));
  const auto level = static_cast<level_t>(args.get_int("--level", 8));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 4096));

  csg::bench::print_header(
      "bench_ablation_blocking: evaluation with and without blocking on "
      "the evaluation points",
      "Sec. 4.3 (subspace reuse across a block of evaluation points)");

  CompactStorage storage(d, level);
  storage.sample(workloads::parabola_product(d).f);
  hierarchize(storage);
  std::printf("grid: d=%u level=%u, %llu points (%.1f MB of coefficients), "
              "%zu evaluation points\n\n",
              d, level,
              static_cast<unsigned long long>(storage.size()),
              static_cast<double>(storage.size()) * 8 / 1e6, points);

  Report report("bench_ablation_blocking",
                "evaluation with and without blocking on the evaluation "
                "points",
                "Sec. 4.3");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("points", static_cast<std::int64_t>(points));

  const auto pts = workloads::uniform_points(d, points, 21);
  const std::span<const real_t> coeffs(storage.data(),
                                       storage.values().size());
  // Pre-plan walk (first_level/advance_level per subspace per point) as the
  // historical baseline, then the plan-based unblocked and blocked paths.
  const double walk_s = csg::bench::time_per_call_s([&] {
    for (const CoordVector& x : pts)
      (void)evaluate_span_walk(storage.grid(), coeffs, x);
  });
  std::printf("%-18s %10.4f s   (%.2fx)\n", "iterator walk", walk_s, 1.0);
  report.add_time("eval_s/iterator_walk", csg::bench::summarize({walk_s}))
      .tolerance = 1.0;
  const double plain_s = csg::bench::time_per_call_s(
      [&] { (void)evaluate_many(storage, pts); });
  std::printf("%-18s %10.4f s   (%.2fx)\n", "plan unblocked", plain_s,
              walk_s / plain_s);
  report.add_time("eval_s/plan_unblocked", csg::bench::summarize({plain_s}))
      .tolerance = 1.0;
  for (std::size_t block : {16u, 64u, 256u, 1024u}) {
    const double s = csg::bench::time_per_call_s(
        [&] { (void)evaluate_many_blocked(storage, pts, block); });
    std::printf("block size %-7zu %10.4f s   (%.2fx)\n", block, s,
                walk_s / s);
    report
        .add_time("eval_s/blocked_b" + std::to_string(block),
                  csg::bench::summarize({s}))
        .tolerance = 1.0;
  }
  const int host_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const double omp_s = csg::bench::time_per_call_s([&] {
    (void)parallel::omp_evaluate_many_blocked(storage, pts, 64, host_threads);
  });
  std::printf("omp blocked (B=64, %2d thr) %10.4f s   (%.2fx)\n",
              host_threads, omp_s, walk_s / omp_s);
  // Depends on the host's core count — never gated.
  report.add_time("eval_s/omp_blocked_b64", csg::bench::summarize({omp_s}), "s",
                  1, Better::kNeutral);

  std::printf("\n(note: wall-clock gains depend on the coefficient array "
              "exceeding this host's last-level cache; on machines with "
              "very large LLCs the effect only shows at paper-scale "
              "grids)\n");

  // Cache-simulated cross-check on a Barcelona-sized cache (the paper's
  // Opteron testbed), where the 1.1 MB coefficient array exceeds the
  // 512 KB L2: DRAM lines per evaluation, per-point order vs the blocked
  // subspace-major order of Sec. 4.3.
  const std::size_t sim_points = std::min<std::size_t>(points, 512);
  const auto sim_pts = workloads::uniform_points(d, sim_points, 21);
  auto dram_per_eval = [&](bool blocked, std::size_t block) {
    memsim::CacheHierarchy caches = memsim::CacheHierarchy::barcelona_core();
    memsim::TracedCompactStorage traced(RegularSparseGrid(d, level), &caches);
    baselines::sample(traced, workloads::parabola_product(d).f);
    caches.flush();
    caches.reset_counters();
    if (blocked) {
      (void)baselines::evaluate_many_blocked_iterative(traced, sim_pts, block);
    } else {
      for (const CoordVector& x : sim_pts)
        (void)baselines::evaluate_iterative(traced, x);
    }
    return static_cast<double>(caches.memory_accesses()) /
           static_cast<double>(sim_points);
  };
  std::printf("\ncache-simulated DRAM lines per evaluation (512 KB L2, "
              "coefficients %.1f MB):\n",
              static_cast<double>(storage.size()) * 8 / 1e6);
  const double per_point_dram = dram_per_eval(false, 0);
  std::printf("  per-point order:   %10.1f\n", per_point_dram);
  // 5% band: the simulator maps real heap addresses, ASLR wobbles misses.
  report
      .add_counter("dram_lines_per_eval/per_point", per_point_dram, "lines",
                   Better::kLess)
      .tolerance = 0.05;
  for (std::size_t block : {16u, 64u, 256u, 512u}) {
    const double lines = dram_per_eval(true, block);
    std::printf("  blocked (B=%4zu):  %10.1f\n", block, lines);
    report
        .add_counter("dram_lines_per_eval/blocked_b" + std::to_string(block),
                     lines, "lines", Better::kLess)
        .tolerance = 0.05;
  }
  std::printf("\nreading: the subspace-major blocked order divides the "
              "coefficient traffic by ~B, which is why evaluation stays "
              "compute-bound in Fig. 11b.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
