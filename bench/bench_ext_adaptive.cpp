// Extension experiment — regular (compact) vs spatially adaptive sparse
// grids: the flexibility the compact bijection trades away (paper Sec. 7).
//
// For a function with a localized sharp feature, surplus-driven adaptivity
// reaches a target accuracy with a fraction of the regular grid's points;
// for a globally smooth function the regular grid is competitive and its
// storage is ~an order of magnitude smaller per point. Both halves of the
// trade-off are measured.
#include <cmath>
#include <iomanip>
#include <sstream>

#include "bench_common.hpp"
#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

workloads::TestFunction spike(dim_t d) {
  return {"spike", "sharp localized bump at x = 0.31", true, false,
          [d](const CoordVector& x) {
            real_t r2 = 0, w = 1;
            for (dim_t t = 0; t < d; ++t) {
              const real_t c = x[t] - real_t{0.31};
              r2 += c * c;
              w *= 4 * x[t] * (1 - x[t]);
            }
            return w * std::exp(-80 * r2);
          }};
}

real_t max_error(const std::function<real_t(const CoordVector&)>& approx,
                 const workloads::TestFunction& f,
                 const std::vector<CoordVector>& probes) {
  real_t err = 0;
  for (const CoordVector& x : probes)
    err = std::max(err, std::abs(approx(x) - f(x)));
  return err;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 3));

  csg::bench::print_header(
      "bench_ext_adaptive: regular compact grid vs surplus-driven adaptive "
      "refinement",
      "Sec. 7 (hash structures keep 'the access structures ... suitable "
      "for adaptive refinement'; the compact structure requires regular "
      "grids)");

  const auto probes = workloads::halton_points(d, 2000);

  Report report("bench_ext_adaptive",
                "regular compact grid vs surplus-driven adaptive refinement",
                "Sec. 7");
  report.set_param("dims", static_cast<std::int64_t>(d));

  for (const bool use_spike : {true, false}) {
    const workloads::TestFunction f =
        use_spike ? spike(d) : workloads::parabola_product(d);
    std::printf("\ntarget function: %s (%s)\n", f.name.c_str(),
                f.description.c_str());
    std::printf("  %-28s %10s %14s %12s\n", "method", "points",
                "bytes/point", "max error");

    // Regular grids of increasing level.
    for (level_t n = 4; n <= 7; ++n) {
      CompactStorage regular(d, n);
      regular.sample(f.f);
      hierarchize(regular);
      const real_t err = max_error(
          [&](const CoordVector& x) { return evaluate(regular, x); }, f,
          probes);
      std::printf("  regular level %-14u %10llu %14.1f %12.3e\n", n,
                  static_cast<unsigned long long>(regular.size()),
                  static_cast<double>(regular.memory_bytes()) /
                      static_cast<double>(regular.size()),
                  err);
      // Grid sizes, metered bytes and interpolation errors on fixed Halton
      // probes are all deterministic.
      const std::string base = std::string(f.name) + "/regular_l" +
                               std::to_string(n);
      report.add_counter(base + "/points", static_cast<double>(regular.size()),
                         "points", Better::kNeutral);
      report.add_counter(base + "/bytes_per_point",
                         static_cast<double>(regular.memory_bytes()) /
                             static_cast<double>(regular.size()),
                         "bytes", Better::kLess);
      report.add_counter(base + "/max_error", static_cast<double>(err), "abs",
                         Better::kLess);
    }

    // Adaptive refinement under decreasing surplus thresholds. The start
    // grid must be fine enough to *see* the feature (surplus-driven
    // refinement cannot react to variation the initial samples miss).
    for (const real_t eps : {3e-2, 1e-2, 3e-3}) {
      adaptive::AdaptiveSparseGrid grid(d, 4);
      grid.adapt(f.f, eps, /*max_points=*/60000);
      const real_t err = max_error(
          [&](const CoordVector& x) { return grid.evaluate(x); }, f, probes);
      std::printf("  adaptive eps=%-10.0e    %10zu %14.1f %12.3e\n", eps,
                  grid.num_points(),
                  static_cast<double>(grid.memory_bytes()) /
                      static_cast<double>(grid.num_points()),
                  err);
      std::ostringstream eps_tag;
      eps_tag << std::scientific << std::setprecision(0) << eps;
      const std::string base =
          std::string(f.name) + "/adaptive_eps" + eps_tag.str();
      report.add_counter(base + "/points",
                         static_cast<double>(grid.num_points()), "points",
                         Better::kLess);
      report.add_counter(base + "/bytes_per_point",
                         static_cast<double>(grid.memory_bytes()) /
                             static_cast<double>(grid.num_points()),
                         "bytes", Better::kLess);
      report.add_counter(base + "/max_error", static_cast<double>(err), "abs",
                         Better::kLess);
    }
  }

  std::printf(
      "\nreading: on the localized spike the adaptive grid reaches a given "
      "accuracy with far fewer points; on the smooth function regular "
      "refinement is competitive — and the compact structure's 8 bytes per "
      "point beat the hash-backed adaptive node by an order of magnitude. "
      "That is exactly the flexibility-for-efficiency trade the paper "
      "makes.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
