// Experiment E15 — serving-layer benchmark: the csg::serve batched
// evaluation front-end under a closed-loop load generator.
//
// Two kinds of metrics come out of one binary:
//
//  * deterministic batching/backpressure/deadline counters, produced on a
//    paused service with a zero batching window so batch formation is pure
//    arithmetic (batches == ceil(R / B), rejections == R - queue capacity,
//    timeouts == requests with expired deadlines). These gate at 1e-6 in
//    tools/bench_compare.py — any drift is a logic change, not noise.
//  * wall-clock throughput/latency of the live service, recorded as
//    neutral metrics (scheduler-dependent; informational only).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/core/point_block.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/serve/service.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

CompactStorage make_grid(dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(workloads::simulation_field(d).f);
  hierarchize(s);
  return s;
}

/// Exact-equality gate: a deterministic counter whose drift in either
/// direction is a logic change. kLess + 1e-6 makes growth a hard failure
/// (and shrinkage a visible "improvement" in the comparison report).
void add_exact(Report& report, const std::string& name, double value,
               const std::string& unit) {
  report.add_counter(name, value, unit, Better::kLess).tolerance = 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 3));
  const auto n = static_cast<level_t>(args.get_int("--level", 5));
  const auto requests =
      static_cast<std::size_t>(args.get_int("--requests", 512));
  const auto batch = static_cast<std::size_t>(args.get_int("--batch", 64));
  const auto queue = static_cast<std::size_t>(args.get_int("--queue", 128));
  const int producers = static_cast<int>(args.get_int("--producers", 4));
  const int workers = static_cast<int>(args.get_int("--workers", 2));

  csg::bench::print_header(
      "bench_serve: batched multi-grid evaluation service",
      "csg::serve front-end over Sec. 4.3 blocked evaluation");

  serve::GridRegistry registry;
  registry.add("a", make_grid(d, n));
  registry.add("b", make_grid(d, n > 1 ? static_cast<level_t>(n - 1) : n));
  const auto pts = workloads::uniform_points(d, requests, 23);

  Report report("bench_serve", "batched multi-grid evaluation service",
                "serving front-end (docs/SERVING.md)");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level", static_cast<std::int64_t>(n));
  report.set_param("requests", static_cast<std::int64_t>(requests));
  report.set_param("batch", static_cast<std::int64_t>(batch));
  report.set_param("queue", static_cast<std::int64_t>(queue));
  report.set_param("producers", static_cast<std::int64_t>(producers));
  report.set_param("workers", static_cast<std::int64_t>(workers));
  report.set_param("shards", static_cast<std::int64_t>(4));

  // --- deterministic batching accounting -------------------------------
  // Paused service, zero window: all R requests are queued before any
  // worker runs, so batches form at full size and the counters are exact.
  {
    serve::ServiceOptions opts;
    opts.queue_capacity = requests;
    opts.max_batch_points = batch;
    opts.batch_window = std::chrono::microseconds(0);
    opts.workers = workers;
    opts.start_paused = true;
    serve::EvalService service(registry, opts);
    std::vector<std::future<serve::EvalResult>> futs;
    futs.reserve(requests);
    for (std::size_t k = 0; k < requests; ++k)
      futs.push_back(service.submit("a", pts[k]));
    service.start();
    for (auto& f : futs) (void)f.get();
    service.stop();
    const auto st = service.stats();
    const auto expected = (requests + batch - 1) / batch;
    std::printf("batching    %llu batches for %zu requests (expect %zu), "
                "mean %.2f, max %llu\n",
                static_cast<unsigned long long>(st.batches_formed), requests,
                expected, st.mean_batch(),
                static_cast<unsigned long long>(st.max_batch));
    add_exact(report, "batching/batches_formed",
              static_cast<double>(st.batches_formed), "batches");
    add_exact(report, "batching/mean_batch", st.mean_batch(), "points");
    add_exact(report, "batching/max_batch",
              static_cast<double>(st.max_batch), "points");
    add_exact(report, "batching/completed",
              static_cast<double>(st.completed), "requests");
  }

  // --- deterministic rejection accounting ------------------------------
  // Paused + kReject + small queue: exactly (submitted - capacity) shed.
  {
    serve::ServiceOptions opts;
    opts.queue_capacity = queue;
    opts.max_batch_points = batch;
    opts.batch_window = std::chrono::microseconds(0);
    opts.workers = workers;
    opts.overflow = serve::OverflowPolicy::kReject;
    opts.start_paused = true;
    serve::EvalService service(registry, opts);
    std::vector<std::future<serve::EvalResult>> futs;
    futs.reserve(requests);
    for (std::size_t k = 0; k < requests; ++k)
      futs.push_back(service.submit("a", pts[k]));
    service.start();
    for (auto& f : futs) (void)f.get();
    service.stop();
    const auto st = service.stats();
    std::printf("rejection   %llu shed of %zu offered at capacity %zu\n",
                static_cast<unsigned long long>(st.rejected), requests, queue);
    add_exact(report, "backpressure/rejected",
              static_cast<double>(st.rejected), "requests");
    add_exact(report, "backpressure/completed",
              static_cast<double>(st.completed), "requests");
  }

  // --- deterministic deadline accounting -------------------------------
  // Every request submitted with an already-expired deadline: all are shed
  // at admission (deadline-aware early shedding), none is evaluated.
  {
    serve::ServiceOptions opts;
    opts.queue_capacity = requests;
    opts.max_batch_points = batch;
    opts.batch_window = std::chrono::microseconds(0);
    opts.workers = workers;
    opts.start_paused = true;
    serve::EvalService service(registry, opts);
    const auto past =
        serve::EvalService::Clock::now() - std::chrono::seconds(1);
    std::vector<std::future<serve::EvalResult>> futs;
    futs.reserve(requests);
    for (std::size_t k = 0; k < requests; ++k)
      futs.push_back(service.submit("a", pts[k], past));
    service.start();
    for (auto& f : futs) (void)f.get();
    service.stop();
    const auto st = service.stats();
    std::printf("deadlines   %llu timed out of %zu, %llu evaluated\n",
                static_cast<unsigned long long>(st.timed_out), requests,
                static_cast<unsigned long long>(st.batched_points));
    add_exact(report, "deadline/timed_out",
              static_cast<double>(st.timed_out), "requests");
    add_exact(report, "deadline/evaluated_points",
              static_cast<double>(st.batched_points), "points");
  }

  // --- deterministic shard isolation -----------------------------------
  // One hot grid floods its shard past capacity (kReject) while a cold
  // grid on a *different* shard is loaded to exactly its own capacity.
  // Per-grid sharding means the hot shard sheds without touching the cold
  // one: the cold shard completes everything, rejections stay pinned to
  // the hot shard, and every number is pure arithmetic. The grid-to-shard
  // map is a fixed FNV-1a hash, so the hot/cold pick is stable run-to-run.
  {
    const std::size_t shard_count = 4;
    serve::GridRegistry shard_registry;
    const auto shard_level = static_cast<level_t>(std::min<int>(n, 3));
    for (int g = 0; g < 8; ++g)
      shard_registry.add("shard" + std::to_string(g),
                         make_grid(d, shard_level));
    serve::ServiceOptions opts;
    opts.shard_count = shard_count;
    opts.queue_capacity = queue;
    opts.max_batch_points = batch;
    opts.batch_window = std::chrono::microseconds(0);
    opts.workers = workers;
    opts.overflow = serve::OverflowPolicy::kReject;
    opts.start_paused = true;
    serve::EvalService service(shard_registry, opts);
    const std::string hot = "shard0";
    std::string cold;
    for (int g = 1; g < 8; ++g) {
      std::string name = "shard" + std::to_string(g);
      if (service.shard_of(name) != service.shard_of(hot)) {
        cold = std::move(name);
        break;
      }
    }
    if (cold.empty()) {
      std::fprintf(stderr, "bench_serve: no cold shard candidate found\n");
      return 1;
    }
    std::vector<std::future<serve::EvalResult>> futs;
    futs.reserve(requests + queue);
    for (std::size_t k = 0; k < requests; ++k)
      futs.push_back(service.submit(hot, pts[k % pts.size()]));
    for (std::size_t k = 0; k < queue; ++k)
      futs.push_back(service.submit(cold, pts[k % pts.size()]));
    service.start();
    std::size_t ok = 0, shed = 0;
    for (auto& f : futs) {
      const auto r = f.get();
      if (r.status == serve::Status::kOk)
        ++ok;
      else
        ++shed;
    }
    service.stop();
    const auto st = service.stats();
    const auto& hot_shard = st.shards[service.shard_of(hot)];
    const auto& cold_shard = st.shards[service.shard_of(cold)];
    std::printf("sharding    hot shard %zu shed %llu of %zu, cold shard %zu "
                "completed %llu of %zu (%zu ok / %zu shed overall)\n",
                service.shard_of(hot),
                static_cast<unsigned long long>(hot_shard.rejections),
                requests, service.shard_of(cold),
                static_cast<unsigned long long>(cold_shard.submits), queue,
                ok, shed);
    add_exact(report, "sharding/hot_submits",
              static_cast<double>(hot_shard.submits), "requests");
    add_exact(report, "sharding/hot_rejections",
              static_cast<double>(hot_shard.rejections), "requests");
    add_exact(report, "sharding/cold_submits",
              static_cast<double>(cold_shard.submits), "requests");
    add_exact(report, "sharding/cold_rejections",
              static_cast<double>(cold_shard.rejections), "requests");
    add_exact(report, "sharding/completed", static_cast<double>(st.completed),
              "requests");
    add_exact(report, "sharding/hot_max_queue_depth",
              static_cast<double>(hot_shard.max_queue_depth), "requests");
  }

  // --- deterministic SoA arena reuse -----------------------------------
  // One shard, one worker: the worker (and the OpenMP team it drives) owns
  // a fixed set of thread-local PointBlock arenas. The first drained round
  // sizes them; every later batch is equal or smaller, so the process-wide
  // arena growth counter must stay exactly flat — the "zero per-batch
  // point-layout allocation" claim of DESIGN.md §14, gated at 1e-6.
  {
    serve::ServiceOptions opts;
    opts.shard_count = 1;
    opts.queue_capacity = requests;
    opts.max_batch_points = batch;
    opts.batch_window = std::chrono::microseconds(0);
    opts.workers = 1;
    opts.start_paused = true;
    serve::EvalService service(registry, opts);
    std::vector<std::future<serve::EvalResult>> futs;
    futs.reserve(requests);
    for (std::size_t k = 0; k < requests; ++k)
      futs.push_back(service.submit("a", pts[k]));
    service.start();
    for (auto& f : futs) (void)f.get();
    futs.clear();
    const std::uint64_t warm = PointBlock::allocation_count();
    const int rounds = 4;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t k = 0; k < requests; ++k)
        futs.push_back(service.submit("a", pts[k]));
      for (auto& f : futs) (void)f.get();
      futs.clear();
    }
    service.stop();
    const std::uint64_t steady = PointBlock::allocation_count() - warm;
    std::printf("soa arena   %llu allocations across %d steady rounds of %zu "
                "requests (expect 0)\n",
                static_cast<unsigned long long>(steady), rounds, requests);
    add_exact(report, "soa_arena/steady_state_allocs",
              static_cast<double>(steady), "allocations");
  }

  // --- live throughput (informational) ---------------------------------
  // Closed loop: each producer waits for its future before the next
  // submit, alternating between the two grids.
  double secs = 0;
  {
    serve::ServiceOptions opts;
    opts.queue_capacity = queue;
    opts.max_batch_points = batch;
    opts.workers = workers;
    serve::EvalService service(registry, opts);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p)
      threads.emplace_back([&, p] {
        const std::size_t share = requests / static_cast<std::size_t>(
                                                 producers);
        for (std::size_t k = 0; k < share; ++k) {
          const char* grid = ((k + static_cast<std::size_t>(p)) % 2) ? "b"
                                                                     : "a";
          (void)service.submit(grid, pts[k]).get();
        }
      });
    for (std::thread& t : threads) t.join();
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    service.stop();
    const auto st = service.stats();
    std::printf("throughput  %.0f req/s closed-loop (%llu completed, "
                "mean batch %.2f)\n",
                static_cast<double>(st.completed) / secs,
                static_cast<unsigned long long>(st.completed),
                st.mean_batch());
    report.add_time("serve/closed_loop", csg::bench::summarize({secs}), "s",
                    1, Better::kNeutral);
    report.add_counter("serve/req_per_s",
                       static_cast<double>(st.completed) / secs, "req/s",
                       Better::kNeutral);
  }

  csg::bench::finish_report(report, args);
  return 0;
}
