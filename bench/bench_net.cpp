// Experiment E16 — network-layer benchmark: the csg::net wire protocol in
// front of serve::EvalService, over the deterministic loopback transport.
//
// Mirrors bench_serve's split:
//
//  * deterministic wire accounting, gated at 1e-6 in tools/bench_compare.py:
//    frame sizes of fixed messages (any drift is a wire-layout change —
//    tests/net_fixtures pins the same bytes), end-to-end frame/point/byte
//    counters of a fixed request schedule, admission-shedding counts for
//    expired budgets, and the rejection ledger of a fixed corrupt-frame
//    battery;
//  * wall-clock request throughput/latency of the live loopback stack,
//    recorded as neutral metrics (scheduler-dependent; informational only).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/net/client.hpp"
#include "csg/net/server.hpp"
#include "csg/net/transport.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/serve/service.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

CompactStorage make_grid(dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(workloads::simulation_field(d).f);
  hierarchize(s);
  return s;
}

/// Exact-equality gate, as in bench_serve: deterministic counters whose
/// drift in either direction is a logic (or wire-layout) change.
void add_exact(Report& report, const std::string& name, double value,
               const std::string& unit) {
  report.add_counter(name, value, unit, Better::kLess).tolerance = 1e-6;
}

/// Poll a server counter into its settled state (bounded, ~5 s).
template <typename Pred>
void settle(Pred pred) {
  for (int k = 0; k < 500 && !pred(); ++k)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

/// Read one response frame (header + payload) off `stream`. Synchronizes
/// the battery below: once the error frame is back, the server has counted
/// the rejection, so closing the connection afterwards races nothing.
bool read_back_frame(net::ByteStream& stream) {
  std::vector<std::uint8_t> header(net::kFrameHeaderBytes);
  if (!net::read_exact(stream, header.data(), header.size())) return false;
  net::FrameHeader decoded;
  if (net::decode_header(header, decoded, {}) != net::WireError::kNone)
    return false;
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(decoded.payload_bytes));
  return payload.empty() ||
         net::read_exact(stream, payload.data(), payload.size());
}

std::vector<std::uint8_t> raw_frame_header(std::uint8_t type,
                                           std::uint64_t payload_bytes,
                                           bool corrupt_magic) {
  net::EvalRequest probe;
  probe.grid = "x";
  probe.points = {CoordVector{0.5}};
  auto frame = net::encode_eval_request(probe);
  frame.resize(net::kFrameHeaderBytes);
  if (corrupt_magic) frame[0] ^= 0x20;
  frame[net::kFrameHeaderBytes - 10] = type;
  std::memcpy(frame.data() + net::kFrameHeaderBytes - 8, &payload_bytes,
              sizeof(payload_bytes));
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 3));
  const auto n = static_cast<level_t>(args.get_int("--level", 5));
  const auto requests =
      static_cast<std::size_t>(args.get_int("--requests", 512));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 8));
  const int clients = static_cast<int>(args.get_int("--clients", 4));
  const int workers = static_cast<int>(args.get_int("--workers", 2));
  const auto in_flight =
      static_cast<std::size_t>(args.get_int("--in-flight", 4));

  csg::bench::print_header(
      "bench_net: wire protocol in front of the evaluation service",
      "csg::net framed codec + loopback server (docs/SERVING.md)");

  Report report("bench_net", "wire protocol serving stack",
                "network front-end (docs/SERVING.md wire protocol)");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level", static_cast<std::int64_t>(n));
  report.set_param("requests", static_cast<std::int64_t>(requests));
  report.set_param("points", static_cast<std::int64_t>(points));
  report.set_param("clients", static_cast<std::int64_t>(clients));
  report.set_param("workers", static_cast<std::int64_t>(workers));
  report.set_param("in_flight", static_cast<std::int64_t>(in_flight));

  // --- wire layout freeze ----------------------------------------------
  // Frame sizes of fully specified messages. These are pure functions of
  // the v1 layout: a changed byte count here is a protocol break (the
  // golden fixtures in tests/net_fixtures pin the same bytes).
  {
    net::EvalRequest req;
    req.id = 7;
    req.grid = "temperature";
    req.deadline_us = 2500;
    req.points.assign(4, CoordVector(3, real_t{0.5}));
    net::EvalResponse resp;
    resp.id = 7;
    resp.results.assign(4, {0, real_t{1.5}});
    net::ListResponse list;
    list.grids = {{"temperature", 3, 5, 351, 11232}};
    net::ErrorFrame err;
    err.id = 9;
    err.code = static_cast<std::uint32_t>(net::WireError::kOversizedBatch);
    err.message = "batch exceeds point limit";

    const auto req_bytes = net::encode_eval_request(req).size();
    const auto resp_bytes = net::encode_eval_response(resp).size();
    const auto list_bytes = net::encode_list_response(list).size();
    const auto stats_bytes = net::encode_stats_response({}).size();
    const auto err_bytes = net::encode_error(err).size();
    std::printf("codec       eval_req %zu B, eval_resp %zu B, list %zu B, "
                "stats %zu B, error %zu B\n",
                req_bytes, resp_bytes, list_bytes, stats_bytes, err_bytes);
    add_exact(report, "codec/eval_request_bytes",
              static_cast<double>(req_bytes), "bytes");
    add_exact(report, "codec/eval_response_bytes",
              static_cast<double>(resp_bytes), "bytes");
    add_exact(report, "codec/list_response_bytes",
              static_cast<double>(list_bytes), "bytes");
    add_exact(report, "codec/stats_response_bytes",
              static_cast<double>(stats_bytes), "bytes");
    add_exact(report, "codec/error_bytes", static_cast<double>(err_bytes),
              "bytes");
  }

  // --- deterministic end-to-end accounting ------------------------------
  // One client, a fixed request schedule: every frame, point, and byte is
  // a pure function of (dims, points, requests).
  {
    serve::GridRegistry registry;
    registry.add("g0", make_grid(d, n));
    serve::ServiceOptions sopts;
    sopts.workers = workers;
    serve::EvalService service(registry, sopts);
    net::LoopbackListener listener;
    net::NetServer server(listener, registry, service, {});
    server.start();
    {
      net::NetClient client(listener.connect());
      const auto pts = workloads::uniform_points(d, points, 23);
      for (std::size_t r = 0; r < requests; ++r)
        (void)client.evaluate_batch("g0", pts);
    }
    server.stop();
    service.stop();
    const net::NetServerStats ns = server.stats();
    const serve::ServiceStats sv = service.stats();
    std::printf("e2e         %llu frames in, %llu points evaluated, "
                "%llu B in, %llu B out\n",
                static_cast<unsigned long long>(ns.frames_decoded),
                static_cast<unsigned long long>(ns.eval_points),
                static_cast<unsigned long long>(ns.bytes_in),
                static_cast<unsigned long long>(ns.bytes_out));
    add_exact(report, "e2e/frames_decoded",
              static_cast<double>(ns.frames_decoded), "frames");
    add_exact(report, "e2e/eval_points",
              static_cast<double>(ns.eval_points), "points");
    add_exact(report, "e2e/frames_rejected",
              static_cast<double>(ns.frames_rejected), "frames");
    add_exact(report, "e2e/bytes_in", static_cast<double>(ns.bytes_in),
              "bytes");
    add_exact(report, "e2e/bytes_out", static_cast<double>(ns.bytes_out),
              "bytes");
    add_exact(report, "e2e/completed", static_cast<double>(sv.completed),
              "requests");
  }

  // --- deterministic admission shedding over the wire -------------------
  // Every request carries an already-expired budget: all points come back
  // kTimeout, the service sheds each at admission, nothing is evaluated.
  {
    serve::GridRegistry registry;
    registry.add("g0", make_grid(d, n));
    serve::ServiceOptions sopts;
    sopts.workers = workers;
    serve::EvalService service(registry, sopts);
    net::LoopbackListener listener;
    net::NetServer server(listener, registry, service, {});
    server.start();
    const std::size_t expired = requests / 4;
    {
      net::NetClient client(listener.connect());
      const auto pts = workloads::uniform_points(d, points, 29);
      for (std::size_t r = 0; r < expired; ++r)
        (void)client.evaluate_batch("g0", pts, /*deadline_us=*/-1);
    }
    server.stop();
    service.stop();
    const serve::ServiceStats sv = service.stats();
    std::printf("shedding    %llu shed at admission of %zu offered, "
                "%llu evaluated\n",
                static_cast<unsigned long long>(sv.shed_at_admission),
                expired * points,
                static_cast<unsigned long long>(sv.batched_points));
    add_exact(report, "shedding/shed_at_admission",
              static_cast<double>(sv.shed_at_admission), "requests");
    add_exact(report, "shedding/timed_out",
              static_cast<double>(sv.timed_out), "requests");
    add_exact(report, "shedding/evaluated_points",
              static_cast<double>(sv.batched_points), "points");
  }

  // --- deterministic pipelining accounting ------------------------------
  // One connection submits --in-flight eval requests back-to-back against
  // a *paused* service: no response can be written until start(), so every
  // frame after the first is provably admitted while earlier responses are
  // still in flight. pipelined_frames and frames_in_flight_peak are then
  // pure functions of --in-flight, and collect() (which checks ids) proves
  // the responses still come back in request order.
  {
    serve::GridRegistry registry;
    registry.add("g0", make_grid(d, n));
    serve::ServiceOptions sopts;
    sopts.workers = workers;
    sopts.start_paused = true;
    serve::EvalService service(registry, sopts);
    net::LoopbackListener listener;
    net::NetServerOptions nopts;
    nopts.max_in_flight = in_flight;
    net::NetServer server(listener, registry, service, nopts);
    server.start();
    std::size_t collected = 0;
    {
      net::NetClient client(listener.connect());
      const auto pts = workloads::uniform_points(d, points, 41);
      for (std::size_t r = 0; r < in_flight; ++r)
        (void)client.submit_eval("g0", pts);
      // All frames must be admitted (and counted) before the service runs.
      settle([&] {
        return server.stats().pipelined_frames >= in_flight - 1;
      });
      service.start();
      while (client.outstanding() > 0) {
        (void)client.collect();  // throws on out-of-order or mismatched ids
        ++collected;
      }
    }
    server.stop();
    service.stop();
    const net::NetServerStats ns = server.stats();
    std::printf("pipelining  %llu frame(s) overlapped, peak %llu in flight, "
                "%zu collected in order\n",
                static_cast<unsigned long long>(ns.pipelined_frames),
                static_cast<unsigned long long>(ns.frames_in_flight_peak),
                collected);
    add_exact(report, "pipeline/pipelined_frames",
              static_cast<double>(ns.pipelined_frames), "frames");
    add_exact(report, "pipeline/frames_in_flight_peak",
              static_cast<double>(ns.frames_in_flight_peak), "frames");
    add_exact(report, "pipeline/eval_requests",
              static_cast<double>(ns.eval_requests), "requests");
    add_exact(report, "pipeline/collected", static_cast<double>(collected),
              "responses");
  }

  // --- deterministic corrupt-frame rejection ----------------------------
  // A fixed battery of malformed frames, ten per kind: bad magic, bad
  // length, unknown type, garbage payload, truncated header. Every frame
  // is rejected; all but the truncated ones draw an error frame.
  {
    serve::GridRegistry registry;
    registry.add("g0", make_grid(d, n));
    serve::EvalService service(registry, {});
    net::LoopbackListener listener;
    net::NetServer server(listener, registry, service, {});
    server.start();
    constexpr std::size_t kPerKind = 10;
    for (std::size_t k = 0; k < kPerKind; ++k) {
      {  // bad magic: header error, connection closes
        auto s = listener.connect();
        const auto f = raw_frame_header(1, 0, /*corrupt_magic=*/true);
        (void)s->write_all(f.data(), f.size());
        (void)read_back_frame(*s);
      }
      {  // oversized payload length
        auto s = listener.connect();
        const auto f = raw_frame_header(
            1, net::NetServerOptions{}.limits.max_frame_bytes + 1, false);
        (void)s->write_all(f.data(), f.size());
        (void)read_back_frame(*s);
      }
      {  // unknown type byte (honest zero-length payload)
        auto s = listener.connect();
        const auto f = raw_frame_header(99, 0, false);
        (void)s->write_all(f.data(), f.size());
        (void)read_back_frame(*s);
      }
      {  // garbage eval payload: name length 0xFFFFFFFF is structural junk
        auto s = listener.connect();
        const auto head = raw_frame_header(1, 32, false);
        const std::vector<std::uint8_t> junk(32, 0xFF);
        (void)s->write_all(head.data(), head.size());
        (void)s->write_all(junk.data(), junk.size());
        (void)read_back_frame(*s);
      }
      {  // truncated header: half a header, then end-of-stream
        auto s = listener.connect();
        const auto f = raw_frame_header(1, 0, false);
        (void)s->write_all(f.data(), net::kFrameHeaderBytes / 2);
        s->shutdown();
      }
    }
    settle([&] { return server.stats().frames_rejected >= 5 * kPerKind; });
    server.stop();
    service.stop();
    const net::NetServerStats ns = server.stats();
    std::printf("rejection   %llu corrupt frames rejected, %llu error "
                "frames sent, %llu eval requests admitted\n",
                static_cast<unsigned long long>(ns.frames_rejected),
                static_cast<unsigned long long>(ns.error_frames_sent),
                static_cast<unsigned long long>(ns.eval_requests));
    add_exact(report, "rejection/frames_rejected",
              static_cast<double>(ns.frames_rejected), "frames");
    add_exact(report, "rejection/error_frames_sent",
              static_cast<double>(ns.error_frames_sent), "frames");
    add_exact(report, "rejection/eval_requests",
              static_cast<double>(ns.eval_requests), "requests");
  }

  // --- live throughput (informational) ----------------------------------
  // Closed loop over loopback: each client waits for its response before
  // the next request.
  double secs = 0;
  {
    serve::GridRegistry registry;
    registry.add("g0", make_grid(d, n));
    serve::ServiceOptions sopts;
    sopts.workers = workers;
    sopts.queue_capacity = 4096;
    serve::EvalService service(registry, sopts);
    net::LoopbackListener listener;
    net::NetServer server(listener, registry, service, {});
    server.start();
    std::atomic<std::uint64_t> completed{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        net::NetClient client(listener.connect());
        const auto pts = workloads::uniform_points(
            d, points, 31 + static_cast<std::uint32_t>(c));
        const std::size_t share =
            requests / static_cast<std::size_t>(clients);
        for (std::size_t r = 0; r < share; ++r) {
          (void)client.evaluate_batch("g0", pts);
          completed.fetch_add(1);
        }
      });
    for (std::thread& t : threads) t.join();
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    server.stop();
    service.stop();
    std::printf("throughput  %.0f req/s closed-loop over loopback "
                "(%llu requests)\n",
                static_cast<double>(completed.load()) / secs,
                static_cast<unsigned long long>(completed.load()));
    report.add_time("net/closed_loop", csg::bench::summarize({secs}), "s", 1,
                    Better::kNeutral);
    report.add_counter("net/req_per_s",
                       static_cast<double>(completed.load()) / secs, "req/s",
                       Better::kNeutral);
  }

  csg::bench::finish_report(report, args);
  return 0;
}
