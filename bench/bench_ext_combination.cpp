// Extension experiment — the combination technique (paper Sec. 7, [16]):
// the classical parallelization of sparse grid methods the paper contrasts
// its direct implementation against.
//
// Three quantities frame the trade-off:
//  * exactness: the combination reproduces the direct sparse grid
//    interpolant (checked numerically here, to machine precision);
//  * memory: "grid points ... have to be replicated across multiple full
//    grids" — the replication factor vs the compact structure;
//  * throughput: component grids evaluate independently (embarrassingly
//    parallel) but the combination must evaluate EVERY component per
//    query, so single-query latency is higher than Alg. 7 on the compact
//    structure.
#include <cmath>

#include "bench_common.hpp"
#include "csg/combination/combination_grid.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 7));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 500));

  csg::bench::print_header(
      "bench_ext_combination: combination technique vs direct compact "
      "sparse grid",
      "Sec. 7 related work ([16] Griebel's combination technique; "
      "replication cost called out in the paper)");

  Report report("bench_ext_combination",
                "combination technique vs direct compact sparse grid",
                "Sec. 7");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("points", static_cast<std::int64_t>(points));

  std::printf("%-4s %10s %12s %12s %10s %14s %14s %12s\n", "d", "N sparse",
              "N combi", "replication", "# grids", "eval us (csg)",
              "eval us (cmb)", "max |diff|");
  for (dim_t d = 2; d <= 6; ++d) {
    const auto f = workloads::simulation_field(d);
    combination::CombinationGrid combi(d, level);
    combi.sample(f.f);
    CompactStorage direct(d, level);
    direct.sample(f.f);
    hierarchize(direct);

    const auto pts = workloads::uniform_points(d, points, 11);
    const double t_direct = csg::bench::time_per_call_s([&] {
      for (const CoordVector& x : pts) (void)evaluate(direct, x);
    });
    std::vector<real_t> combi_vals;
    const double t_combi = csg::bench::time_per_call_s(
        [&] { combi_vals = combi.evaluate_many(pts, 1); });

    real_t max_diff = 0;
    for (std::size_t p = 0; p < pts.size(); ++p)
      max_diff = std::max(
          max_diff, std::abs(combi_vals[p] - evaluate(direct, pts[p])));

    std::printf("%-4u %10llu %12zu %11.2fx %10zu %14.2f %14.2f %12.2e\n", d,
                static_cast<unsigned long long>(direct.size()),
                combi.total_points(),
                static_cast<double>(combi.total_points()) /
                    static_cast<double>(direct.size()),
                combi.components().size(),
                t_direct / static_cast<double>(points) * 1e6,
                t_combi / static_cast<double>(points) * 1e6, max_diff);
    const std::string dk = "/d" + std::to_string(d);
    report.add_counter("replication_factor" + dk,
                       static_cast<double>(combi.total_points()) /
                           static_cast<double>(direct.size()),
                       "x", Better::kLess);
    report.add_counter("component_grids" + dk,
                       static_cast<double>(combi.components().size()), "grids",
                       Better::kNeutral);
    const double per_pt = 1e6 / static_cast<double>(points);
    report
        .add_time("eval_us/direct" + dk, csg::bench::summarize({t_direct}),
                  "us", per_pt)
        .tolerance = 1.0;
    report
        .add_time("eval_us/combination" + dk, csg::bench::summarize({t_combi}),
                  "us", per_pt)
        .tolerance = 1.0;
    // Round-off-level agreement; the magnitude wobbles across platforms,
    // so give the tight identity a wide relative band.
    report.add_counter("max_abs_diff" + dk, static_cast<double>(max_diff),
                       "abs", Better::kLess)
        .tolerance = 1.0;
  }
  std::printf(
      "\nreading: identical interpolants (the combination identity holds to "
      "round-off — a cross-validation of gp2idx, hierarchization and "
      "Alg. 7), at the price of replicated storage growing with d. The "
      "compact direct representation stores each coefficient exactly "
      "once.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
