// Experiment E12+ — the paper's largest configuration, for real: the
// d = 10, level 11 regular sparse grid with 127,574,017 points (Sec. 6).
//
// Default runs level 9 (8.1M points) so the harness stays fast; pass
// --paper-scale for the full level-11 grid (1.02 GB of coefficients,
// ~35 s end to end on a laptop-class core). Verifies at scale:
//  * the exact point count range of Sec. 6,
//  * gp2idx bijectivity under random fuzz,
//  * hierarchization (pole transform) + evaluation wall-clock,
//  * interpolation error on a smooth field.
#include <cmath>
#include <random>

#include "bench_common.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/testing/generators.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const dim_t d = 10;
  const level_t level = args.has("--paper-scale")
                            ? 11
                            : static_cast<level_t>(args.get_int("--level", 9));

  csg::bench::print_header(
      "bench_paper_scale: the d=10 grid of Sec. 6 at (or near) level 11",
      "Sec. 6 grid sizes ([2047, 127574017] points) + end-to-end timings "
      "on the compact structure");

  std::printf("N(1,11) = %llu (paper: 2047), N(10,11) = %llu "
              "(paper: 127574017)\n",
              static_cast<unsigned long long>(regular_grid_num_points(1, 11)),
              static_cast<unsigned long long>(
                  regular_grid_num_points(10, 11)));

  Report report("bench_paper_scale",
                "the d=10 grid of Sec. 6 at (or near) level 11", "Sec. 6");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("paper_scale", args.has("--paper-scale"));

  CompactStorage s(d, level);
  std::printf("\ngrid under test: d=%u level=%u, %llu points, %.3f GB\n", d,
              level, static_cast<unsigned long long>(s.size()),
              static_cast<double>(s.memory_bytes()) / 1e9);
  report.add_counter("grid/points", static_cast<double>(s.size()), "points",
                     Better::kNeutral);
  report.add_counter("grid/gb", static_cast<double>(s.memory_bytes()) / 1e9,
                     "GB", Better::kLess);

  std::mt19937_64 rng(csg::testing::mix_seed(7));
  const double fuzz_s = csg::bench::time_per_call_s([&] {
    for (int k = 0; k < 100000; ++k) {
      const flat_index_t j = csg::testing::random_flat_index(rng, s.grid());
      if (s.grid().gp2idx(s.grid().idx2gp(j)) != j) {
        std::printf("BIJECTION FAILURE at %llu\n",
                    static_cast<unsigned long long>(j));
        std::exit(1);
      }
    }
  });
  std::printf("bijection fuzz: 100000 random round trips OK (%.2f us each)\n",
              fuzz_s * 10);
  report
      .add_time("bijection_fuzz/us_per_round_trip",
                csg::bench::summarize({fuzz_s}), "us", 10.0)
      .tolerance = 1.0;

  const auto f = workloads::parabola_product(d);
  const double sample_s = csg::bench::time_s([&] { s.sample(f.f); });
  const double hier_s = csg::bench::time_s([&] { hierarchize_poles(s); });
  std::printf("sample            %8.2f s  (%5.1f Mpts/s)\n", sample_s,
              static_cast<double>(s.size()) / sample_s / 1e6);
  std::printf("hierarchize_poles %8.2f s  (%5.1f Mpts/s over %u dims)\n",
              hier_s, static_cast<double>(s.size()) / hier_s / 1e6, d);
  report.add_time("sample_s", csg::bench::summarize({sample_s})).tolerance =
      1.0;
  report.add_time("hierarchize_poles_s", csg::bench::summarize({hier_s}))
      .tolerance = 1.0;

  const auto pts = workloads::uniform_points(d, 50, 3);
  real_t max_err = 0;
  const double eval_s = csg::bench::time_s([&] {
    for (const CoordVector& x : pts)
      max_err = std::max(max_err, std::abs(evaluate(s, x) - f(x)));
  });
  std::printf("evaluate          %8.2f ms/point, max |fs - f| = %.2e\n",
              eval_s / static_cast<double>(pts.size()) * 1e3, max_err);
  report
      .add_time("evaluate_ms_per_point", csg::bench::summarize({eval_s}), "ms",
                1e3 / static_cast<double>(pts.size()))
      .tolerance = 1.0;
  report.add_counter("interpolation/max_error", static_cast<double>(max_err),
                     "abs", Better::kLess);
  std::printf("\n(pass --paper-scale for the full 127.6M-point level-11 "
              "run: ~1 GB, ~35 s)\n");
  csg::bench::finish_report(report, args);
  return 0;
}
