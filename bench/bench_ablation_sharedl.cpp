// Experiment E10 — Sec. 5.3 ablation: block-shared level vector l vs
// per-thread private arrays in shared memory.
//
// The paper: "we set l as an array shared between all threads inside the
// same thread block ... this results in 1.62 times faster hierarchization
// and 1.59 times faster evaluation." The effect is occupancy: private
// arrays consume block_size * d words of shared memory, shrinking the
// number of resident warps available for latency hiding.
#include "bench_common.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/gpusim/kernels.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::gpusim;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 6));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 512));

  csg::bench::print_header(
      "bench_ablation_sharedl: block-shared vs per-thread level vector",
      "Sec. 5.3 (1.62x faster hierarchization, 1.59x faster evaluation "
      "from sharing l)");

  Report report("bench_ablation_sharedl",
                "block-shared vs per-thread level vector on the simulated "
                "GPU",
                "Sec. 5.3");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("points", static_cast<std::int64_t>(points));

  Launcher launcher(tesla_c1060());
  std::printf("%-6s %12s %12s %10s | %12s %12s %10s\n", "d", "hier shr(ms)",
              "hier prv(ms)", "gain", "eval shr(ms)", "eval prv(ms)", "gain");
  for (dim_t d = 4; d <= 10; d += 2) {
    const auto f = workloads::parabola_product(d);
    double h[2], e[2], occ_h[2];
    int k = 0;
    for (LevelVectorMode lm :
         {LevelVectorMode::kBlockShared, LevelVectorMode::kPerThread}) {
      GpuConfig cfg;
      cfg.level_vector = lm;
      CompactStorage storage(d, level);
      storage.sample(f.f);
      const GpuRunReport hr = gpu_hierarchize(launcher, storage, cfg);
      h[k] = hr.modeled_ms;
      occ_h[k] = hr.mean_occupancy;
      const auto pts = workloads::uniform_points(d, points, 3);
      GpuRunReport er;
      (void)gpu_evaluate(launcher, storage, pts, &er, cfg);
      e[k] = er.modeled_ms;
      ++k;
    }
    std::printf("%-6u %12.3f %12.3f %9.2fx | %12.3f %12.3f %9.2fx"
                "   (occ %.2f -> %.2f)\n",
                d, h[0], h[1], h[1] / h[0], e[0], e[1], e[1] / e[0], occ_h[1],
                occ_h[0]);
    // Modeled kernel times and occupancies: deterministic, gate tightly.
    const std::string dk = "/d" + std::to_string(d);
    report.add_counter("gpu_hierarchize_ms/block_shared" + dk, h[0], "ms",
                       Better::kLess);
    report.add_counter("gpu_hierarchize_ms/per_thread" + dk, h[1], "ms",
                       Better::kLess);
    report.add_counter("gpu_evaluate_ms/block_shared" + dk, e[0], "ms",
                       Better::kLess);
    report.add_counter("gpu_evaluate_ms/per_thread" + dk, e[1], "ms",
                       Better::kLess);
    report.add_counter("gain/hierarchize" + dk, h[1] / h[0], "x",
                       Better::kMore);
    report.add_counter("gain/evaluate" + dk, e[1] / e[0], "x", Better::kMore);
  }
  std::printf("\nreading: sharing l raises occupancy and shortens both "
              "kernels; the paper's 1.62x/1.59x lies in this range at "
              "large d.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
