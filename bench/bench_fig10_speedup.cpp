// Experiments E5/E6 — Fig. 10a/10b: speedup of the parallel sparse grid
// operations over one sequential CPU core, as a function of dimensionality.
//
// The paper's series are a Tesla C1060 GPU and three multicore machines.
// This environment has one CPU core and no GPU (DESIGN.md §5), so:
//  * "sequential" is measured on this host (the speedup denominator);
//  * the GPU series comes from the simulator: kernels execute functionally
//    and the calibrated Tesla timing model supplies the kernel time;
//  * the multicore series come from the bandwidth-saturation model driven
//    by measured per-structure locality (same machine specs as the paper).
// OpenMP wall-clock speedups are also printed for whatever cores this host
// actually has, so on a real multicore machine the measured curve appears
// alongside the modeled one.
#include <array>
#include <thread>

#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/gpusim/kernels.hpp"
#include "csg/memsim/scaling.hpp"
#include "csg/memsim/traced_storages.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

struct SpeedupRow {
  double gpu;
  double opteron32;
  double nehalem8;
  double nehalem4;
  double omp_here;
  double omp_blocked_here = 0;  // eval only: plan-based omp blocked path
};

/// Locality-driven modeled speedup at the machine's full core count for a
/// workload with measured (seq seconds/op, dram lines/op).
double modeled_speedup(const memsim::MachineSpec& machine, double seq_ns_per_op,
                       double dram_lines_per_op, double serial_fraction) {
  const double mem_ns = dram_lines_per_op * machine.memory_latency_ns;
  const double compute_ns = std::max(1.0, seq_ns_per_op - mem_ns);
  return memsim::speedup_curve(machine, compute_ns, dram_lines_per_op,
                               serial_fraction)
      .back();
}

// Amdahl serial shares: hierarchization pays per-level-group barriers,
// evaluation is embarrassingly parallel (Sec. 4.3 / 5.3).
constexpr double kHierSerial = 0.01;
constexpr double kEvalSerial = 0.002;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 7));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 512));
  const auto d_hi = static_cast<dim_t>(args.get_int("--dmax", 10));
  const int host_threads = static_cast<int>(
      args.get_int("--threads",
                   static_cast<long>(std::thread::hardware_concurrency())));

  csg::bench::print_header(
      "bench_fig10_speedup: hierarchization & evaluation speedup vs one "
      "sequential core",
      "Fig. 10a / 10b (Tesla C1060 + multicore vs one Nehalem core)");
  std::printf("level %u grids, %zu evaluation points, host threads %d\n\n",
              level, points, host_threads);

  Report report("bench_fig10_speedup",
                "hierarchization and evaluation speedup vs one sequential "
                "core",
                "Fig. 10a/10b");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("points", static_cast<std::int64_t>(points));
  report.set_param("dims_max", static_cast<std::int64_t>(d_hi));
  report.set_param("threads", static_cast<std::int64_t>(host_threads));

  std::vector<SpeedupRow> hier_rows, eval_rows;

  for (dim_t d = 1; d <= d_hi; ++d) {
    const auto f = workloads::parabola_product(d);
    // --- sequential reference (measured) ---
    CompactStorage seq(d, level);
    seq.sample(f.f);
    CompactStorage work = seq;
    const double hier_seq_s = csg::bench::time_s([&] { hierarchize(work); });
    const auto pts = workloads::uniform_points(d, points, 7);
    const double eval_seq_s =
        csg::bench::time_s([&] { (void)evaluate_many(work, pts); });

    // --- GPU (simulated Tesla C1060) ---
    gpusim::Launcher launcher(gpusim::tesla_c1060());
    CompactStorage gpu_storage = seq;
    const gpusim::GpuRunReport gh =
        gpusim::gpu_hierarchize(launcher, gpu_storage);
    gpusim::GpuRunReport ge;
    (void)gpusim::gpu_evaluate(launcher, gpu_storage, pts, &ge);

    // --- multicore models from measured locality ---
    memsim::CacheHierarchy caches = memsim::CacheHierarchy::barcelona_core();
    memsim::TracedCompactStorage traced(RegularSparseGrid(d, level), &caches);
    baselines::sample(traced, f.f);
    caches.flush();
    const std::uint64_t hier_ops =
        traced.grid().num_points() * static_cast<std::uint64_t>(d);
    const memsim::LocalityProfile hier_prof =
        memsim::replay(traced, caches, hier_ops, [](auto& s) {
          baselines::hierarchize_iterative(s);
        });
    caches.flush();
    const memsim::LocalityProfile eval_prof =
        memsim::replay(traced, caches, points, [&](auto& s) {
          for (const CoordVector& x : pts) (void)baselines::evaluate_iterative(s, x);
        });

    const double hier_ns_per_op = hier_seq_s / static_cast<double>(hier_ops) * 1e9;
    const double eval_ns_per_op = eval_seq_s / static_cast<double>(points) * 1e9;

    // --- OpenMP on this host (measured) ---
    CompactStorage par = seq;
    const double hier_omp_s = csg::bench::time_s(
        [&] { parallel::omp_hierarchize(par, host_threads); });
    const double eval_omp_s = csg::bench::time_s(
        [&] { (void)parallel::omp_evaluate_many(par, pts, host_threads); });
    // Plan-based blocked path: threads over point blocks, shared plan.
    const double eval_ompblk_s = csg::bench::time_s([&] {
      (void)parallel::omp_evaluate_many_blocked(par, pts, 64, host_threads);
    });

    hier_rows.push_back(
        {hier_seq_s / (gh.modeled_ms / 1e3),
         modeled_speedup(memsim::opteron_8356(), hier_ns_per_op,
                         hier_prof.dram_lines_per_op(), kHierSerial),
         modeled_speedup(memsim::nehalem_e5540(), hier_ns_per_op,
                         hier_prof.dram_lines_per_op(), kHierSerial),
         modeled_speedup(memsim::nehalem_i7_920(), hier_ns_per_op,
                         hier_prof.dram_lines_per_op(), kHierSerial),
         hier_seq_s / hier_omp_s});
    eval_rows.push_back(
        {eval_seq_s / (ge.modeled_ms / 1e3),
         modeled_speedup(memsim::opteron_8356(), eval_ns_per_op,
                         eval_prof.dram_lines_per_op(), kEvalSerial),
         modeled_speedup(memsim::nehalem_e5540(), eval_ns_per_op,
                         eval_prof.dram_lines_per_op(), kEvalSerial),
         modeled_speedup(memsim::nehalem_i7_920(), eval_ns_per_op,
                         eval_prof.dram_lines_per_op(), kEvalSerial),
         eval_seq_s / eval_omp_s, eval_seq_s / eval_ompblk_s});
  }

  auto print_table = [&](const char* title,
                         const std::vector<SpeedupRow>& rows,
                         bool with_blocked) {
    std::printf("%s\n", title);
    std::printf("%-6s %14s %18s %18s %18s %14s%s\n", "d", "Tesla (model)",
                "32c Opteron (mdl)", "8c Nehalem (mdl)", "4c Nehalem (mdl)",
                "OMP here (ms.)", with_blocked ? "   OMP blk here" : "");
    for (dim_t d = 1; d <= d_hi; ++d) {
      const SpeedupRow& r = rows[static_cast<std::size_t>(d - 1)];
      std::printf("%-6u %14.1f %18.1f %18.1f %18.1f %14.2f", d, r.gpu,
                  r.opteron32, r.nehalem8, r.nehalem4, r.omp_here);
      if (with_blocked) std::printf(" %14.2f", r.omp_blocked_here);
      std::printf("\n");
    }
    std::printf("\n");
  };

  print_table("Fig. 10a analogue: hierarchization speedup vs 1 core",
              hier_rows, false);
  print_table("Fig. 10b analogue: evaluation speedup vs 1 core (OMP blk = "
              "plan-based omp_evaluate_many_blocked)",
              eval_rows, true);

  // Every speedup here divides a measured sequential time by a modeled (or
  // measured-parallel) time, so the wall-clock noise of the numerator
  // passes straight through — at reduced smoke sizes that noise spans
  // multiples. All recorded as informational; the deterministic half of
  // this figure (locality-driven curves) gates in bench_fig11_scalability.
  auto record_rows = [&](const char* stage, const std::vector<SpeedupRow>& rows,
                         bool with_blocked) {
    for (dim_t d = 1; d <= d_hi; ++d) {
      const SpeedupRow& r = rows[static_cast<std::size_t>(d - 1)];
      const std::string base = std::string(stage) + "/speedup_";
      const std::string dk = "/d" + std::to_string(d);
      report.add_counter(base + "tesla_model" + dk, r.gpu, "x",
                         Better::kNeutral);
      report.add_counter(base + "opteron32_model" + dk, r.opteron32, "x",
                         Better::kNeutral);
      report.add_counter(base + "nehalem8_model" + dk, r.nehalem8, "x",
                         Better::kNeutral);
      report.add_counter(base + "nehalem4_model" + dk, r.nehalem4, "x",
                         Better::kNeutral);
      report.add_counter(base + "omp_host" + dk, r.omp_here, "x",
                         Better::kNeutral);
      if (with_blocked)
        report.add_counter(base + "omp_host_blocked" + dk, r.omp_blocked_here,
                           "x", Better::kNeutral);
    }
  };
  record_rows("hierarchize", hier_rows, false);
  record_rows("evaluate", eval_rows, true);

  std::printf("shape checks vs the paper:\n");
  const SpeedupRow& h10 = hier_rows.back();
  const SpeedupRow& e10 = eval_rows.back();
  const bool gpu_eval_ahead = e10.gpu > h10.gpu;
  const bool gpu_beats_cpus = e10.gpu > e10.opteron32 && e10.gpu > e10.nehalem8;
  std::printf("  evaluation speedup exceeds hierarchization on the GPU "
              "(paper: 70x vs 17x): %s (%.1f vs %.1f at d=%u)\n",
              gpu_eval_ahead ? "yes" : "NO", e10.gpu, h10.gpu, d_hi);
  std::printf("  GPU beats every modeled multicore machine for evaluation "
              "(paper: ~3x fastest CPU): %s\n",
              gpu_beats_cpus ? "yes" : "NO");
  report.add_counter("shape/gpu_eval_exceeds_hierarchization",
                     gpu_eval_ahead ? 1 : 0, "bool", Better::kNeutral);
  report.add_counter("shape/gpu_beats_modeled_multicore_eval",
                     gpu_beats_cpus ? 1 : 0, "bool", Better::kNeutral);
  csg::bench::finish_report(report, args);
  return 0;
}
