// Experiment E9 — Sec. 5.3 ablation: where should binmat live on the GPU?
//
// The paper compares computing binomial coefficients on the fly, reading
// them from shared memory, and reading them from constant cache, and
// reports on-the-fly being ~4x slower for hierarchization with constant
// cache slightly ahead of shared memory. The same three kernels run on the
// simulated Tesla; a measured CPU comparison (lookup table vs on-the-fly
// in gp2idx) is appended since the trade-off exists on the host too.
#include "bench_common.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/gpusim/kernels.hpp"
#include "csg/workloads/functions.hpp"

namespace {

using namespace csg;
using namespace csg::gpusim;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

double run_mode(Launcher& launcher, dim_t d, level_t n, BinmatMode mode) {
  CompactStorage storage(d, n);
  storage.sample(workloads::parabola_product(d).f);
  GpuConfig cfg;
  cfg.binmat = mode;
  return gpu_hierarchize(launcher, storage, cfg).modeled_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 6));
  const auto d_hi = static_cast<dim_t>(args.get_int("--dmax", 10));

  csg::bench::print_header(
      "bench_ablation_binmat: binomial coefficients on the fly vs shared "
      "memory vs constant cache (GPU hierarchization)",
      "Sec. 5.3 (on-the-fly ~4x slower; constant cache slightly beats "
      "shared memory)");

  Report report("bench_ablation_binmat",
                "binomial coefficient placement ablation on the simulated "
                "GPU",
                "Sec. 5.3");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("dims_max", static_cast<std::int64_t>(d_hi));

  Launcher launcher(tesla_c1060());
  std::printf("%-6s %16s %16s %16s %12s\n", "d", "constant (ms)",
              "shared (ms)", "on-the-fly (ms)", "fly/const");
  double worst_ratio = 0;
  for (dim_t d = 4; d <= d_hi; d += 2) {
    const double c = run_mode(launcher, d, level, BinmatMode::kConstantCache);
    const double s = run_mode(launcher, d, level, BinmatMode::kSharedMemory);
    const double f = run_mode(launcher, d, level, BinmatMode::kOnTheFly);
    worst_ratio = std::max(worst_ratio, f / c);
    std::printf("%-6u %16.3f %16.3f %16.3f %12.2f\n", d, c, s, f, f / c);
    // Simulator timings are modeled, not measured — deterministic counters.
    const std::string dk = "/d" + std::to_string(d);
    report.add_counter("gpu_hierarchize_ms/constant" + dk, c, "ms",
                       Better::kLess);
    report.add_counter("gpu_hierarchize_ms/shared" + dk, s, "ms",
                       Better::kLess);
    report.add_counter("gpu_hierarchize_ms/on_the_fly" + dk, f, "ms",
                       Better::kLess);
  }
  std::printf("\nmax on-the-fly slowdown observed: %.2fx (paper: ~4x at its "
              "scale)\n", worst_ratio);
  report.add_counter("gpu_hierarchize/max_on_the_fly_slowdown", worst_ratio,
                     "x", Better::kNeutral);

  // Host-side analogue: gp2idx throughput with table vs multiplicative
  // binomial (the structural reason behind the GPU numbers).
  const dim_t d = 8;
  RegularSparseGrid grid(d, level);
  std::vector<GridPoint> pts;
  for (flat_index_t j = 0; j < grid.num_points(); j += 7)
    pts.push_back(grid.idx2gp(j));
  volatile flat_index_t sink = 0;
  const double table_s = csg::bench::time_per_call_s(
      [&] {
        flat_index_t acc = 0;
        for (const GridPoint& gp : pts) acc += grid.gp2idx(gp);
        sink = acc;
      },
      0.2);
  const double fly_s = csg::bench::time_per_call_s([&] {
    flat_index_t acc = 0;
    for (const GridPoint& gp : pts) {
      // gp2idx with on-the-fly binomials (index2/index3 recomputed).
      flat_index_t index1 = 0;
      std::uint64_t sum = gp.level[0];
      std::uint64_t index2 = 0;
      for (dim_t t = 0; t < d; ++t)
        index1 = (index1 << gp.level[t]) + ((gp.index[t] - 1) >> 1);
      for (dim_t t = 1; t < d; ++t) {
        index2 -= binomial_on_the_fly(static_cast<std::uint32_t>(t + sum), t);
        sum += gp.level[t];
        index2 += binomial_on_the_fly(static_cast<std::uint32_t>(t + sum), t);
      }
      index2 <<= sum;
      flat_index_t index3 = 0;
      for (std::uint64_t j2 = 0; j2 < sum; ++j2)
        index3 += binomial_on_the_fly(
                      static_cast<std::uint32_t>(d - 1 + j2), d - 1)
                  << j2;
      acc += index1 + index2 + index3;
    }
    sink = acc;
  }, 0.2);
  (void)sink;
  std::printf("\nhost gp2idx (d=%u): table %.1f ns/call, on-the-fly %.1f "
              "ns/call (%.1fx slower)\n",
              d, table_s / static_cast<double>(pts.size()) * 1e9,
              fly_s / static_cast<double>(pts.size()) * 1e9,
              fly_s / table_s);
  const double per_gp = 1e9 / static_cast<double>(pts.size());
  report
      .add_time("host_gp2idx/ns_per_call/table", csg::bench::summarize({table_s}),
                "ns", per_gp)
      .tolerance = 1.0;
  report
      .add_time("host_gp2idx/ns_per_call/on_the_fly",
                csg::bench::summarize({fly_s}), "ns", per_gp)
      .tolerance = 1.0;
  report
      .add_counter("host_gp2idx/on_the_fly_slowdown", fly_s / table_s, "x",
                   Better::kNeutral);
  csg::bench::finish_report(report, args);
  return 0;
}
