// Experiment E13 — microbenchmarks of the bijection itself (google-
// benchmark): gp2idx, idx2gp, the next iterator and subspace ranking.
// Supports the paper's O(d) claim for gp2idx (Sec. 4.2) with measured
// per-call times across dimensionality. A reporter adapter mirrors every
// per-iteration run into the shared BENCH_*.json record alongside the
// console output.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "csg/core/level_enumeration.hpp"
#include "csg/core/regular_grid.hpp"
#include "csg/testing/generators.hpp"

namespace {

using namespace csg;

constexpr level_t kLevel = 6;

const RegularSparseGrid& grid_for(dim_t d) {
  static std::vector<RegularSparseGrid> grids = [] {
    std::vector<RegularSparseGrid> g;
    for (dim_t dd = 1; dd <= 12; ++dd) g.emplace_back(dd, kLevel);
    return g;
  }();
  return grids[d - 1];
}

// An unbiased random point mix from the shared test-input generator (a
// strided tour over-represents the early level groups, which are the
// cheapest to encode).
std::vector<GridPoint> sample_points(const RegularSparseGrid& g) {
  std::mt19937_64 rng(csg::testing::mix_seed(0xbe'9c'00'01));
  std::vector<GridPoint> pts;
  pts.reserve(512);
  for (int k = 0; k < 512; ++k)
    pts.push_back(csg::testing::random_grid_point(rng, g));
  return pts;
}

void BM_gp2idx(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  const auto pts = sample_points(g);
  std::size_t k = 0;
  for (auto _ : state) {
    const GridPoint& gp = pts[k++ % pts.size()];
    benchmark::DoNotOptimize(g.gp2idx(gp.level, gp.index));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_gp2idx)->DenseRange(2, 10, 2);

void BM_idx2gp(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  flat_index_t j = 0;
  const flat_index_t stride = g.num_points() / 509 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.idx2gp(j));
    j = (j + stride) % g.num_points();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_idx2gp)->DenseRange(2, 10, 2);

void BM_next_level(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  LevelVector l = first_level(d, kLevel - 1);
  for (auto _ : state) {
    if (!advance_level(l)) l = first_level(d, kLevel - 1);
    benchmark::DoNotOptimize(l);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_next_level)->DenseRange(2, 10, 2);

void BM_subspace_index(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  std::vector<LevelVector> levels;
  for (const LevelVector& l : LevelRange(d, kLevel - 1)) levels.push_back(l);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subspace_index(levels[k++ % levels.size()],
                                            g.binmat()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_subspace_index)->DenseRange(2, 10, 2);

void BM_unrank_subspace(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  const std::uint64_t count = num_subspaces(d, kLevel - 1, g.binmat());
  std::uint64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unrank_subspace(d, kLevel - 1, r, g.binmat()));
    r = (r + 1) % count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_unrank_subspace)->DenseRange(2, 10, 2);

/// Console reporter that additionally mirrors every per-iteration run into
/// the csg::bench JSON record (adjusted real time, in the run's time unit —
/// nanoseconds by default).
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(csg::bench::Report* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double per_op = run.GetAdjustedRealTime();
      report_
          ->add_time(run.benchmark_name() + "/per_op",
                     csg::bench::summarize({per_op}),
                     benchmark::GetTimeUnitString(run.time_unit))
          .tolerance = 1.0;
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  csg::bench::Report* report_;
};

}  // namespace

int main(int argc, char** argv) {
  const csg::bench::Args args(argc, argv);
  csg::bench::Report report("bench_gp2idx_micro",
                            "microbenchmarks of the gp2idx bijection and "
                            "subspace enumeration",
                            "Sec. 4.2");
  report.set_param("level", static_cast<std::int64_t>(kLevel));

  // Strip the harness's own flags so google-benchmark does not see them.
  std::vector<char*> bm_argv;
  for (int k = 0; k < argc; ++k) {
    if (std::string(argv[k]) == "--json-out" && k + 1 < argc) {
      ++k;
      continue;
    }
    bm_argv.push_back(argv[k]);
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());

  JsonMirrorReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  csg::bench::finish_report(report, args);
  return 0;
}
