// Experiment E13 — microbenchmarks of the bijection itself (google-
// benchmark): gp2idx, idx2gp, the next iterator and subspace ranking.
// Supports the paper's O(d) claim for gp2idx (Sec. 4.2) with measured
// per-call times across dimensionality.
#include <benchmark/benchmark.h>

#include <random>

#include "csg/core/level_enumeration.hpp"
#include "csg/core/regular_grid.hpp"
#include "csg/testing/generators.hpp"

namespace {

using namespace csg;

constexpr level_t kLevel = 6;

const RegularSparseGrid& grid_for(dim_t d) {
  static std::vector<RegularSparseGrid> grids = [] {
    std::vector<RegularSparseGrid> g;
    for (dim_t dd = 1; dd <= 12; ++dd) g.emplace_back(dd, kLevel);
    return g;
  }();
  return grids[d - 1];
}

// An unbiased random point mix from the shared test-input generator (a
// strided tour over-represents the early level groups, which are the
// cheapest to encode).
std::vector<GridPoint> sample_points(const RegularSparseGrid& g) {
  std::mt19937_64 rng(0xbe'9c'00'01);
  std::vector<GridPoint> pts;
  pts.reserve(512);
  for (int k = 0; k < 512; ++k)
    pts.push_back(csg::testing::random_grid_point(rng, g));
  return pts;
}

void BM_gp2idx(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  const auto pts = sample_points(g);
  std::size_t k = 0;
  for (auto _ : state) {
    const GridPoint& gp = pts[k++ % pts.size()];
    benchmark::DoNotOptimize(g.gp2idx(gp.level, gp.index));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_gp2idx)->DenseRange(2, 10, 2);

void BM_idx2gp(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  flat_index_t j = 0;
  const flat_index_t stride = g.num_points() / 509 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.idx2gp(j));
    j = (j + stride) % g.num_points();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_idx2gp)->DenseRange(2, 10, 2);

void BM_next_level(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  LevelVector l = first_level(d, kLevel - 1);
  for (auto _ : state) {
    if (!advance_level(l)) l = first_level(d, kLevel - 1);
    benchmark::DoNotOptimize(l);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_next_level)->DenseRange(2, 10, 2);

void BM_subspace_index(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  std::vector<LevelVector> levels;
  for (const LevelVector& l : LevelRange(d, kLevel - 1)) levels.push_back(l);
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subspace_index(levels[k++ % levels.size()],
                                            g.binmat()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_subspace_index)->DenseRange(2, 10, 2);

void BM_unrank_subspace(benchmark::State& state) {
  const auto d = static_cast<dim_t>(state.range(0));
  const RegularSparseGrid& g = grid_for(d);
  const std::uint64_t count = num_subspaces(d, kLevel - 1, g.binmat());
  std::uint64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(unrank_subspace(d, kLevel - 1, r, g.binmat()));
    r = (r + 1) % count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_unrank_subspace)->DenseRange(2, 10, 2);

}  // namespace

BENCHMARK_MAIN();
