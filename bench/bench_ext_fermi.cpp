// Extension experiment — the paper's Sec. 8 future work, quantified:
// "we plan to tune our application for Nvidia GPUs based on the Fermi
// architecture. We expect that the two-level cache, 64 KB level-1 per SM
// and 768 KB shared level-2, could be beneficial for both sparse grid
// operations."
//
// The same kernels run on the simulated Tesla C1060 (no caches) and Fermi
// C2050 (16 KB L1 per SM + 768 KB device L2 in the simulator); the cache
// absorbs part of the coalesced transactions — most effectively the
// hierarchization's scattered parent reads, whose coarse-group targets are
// reused by every child subspace.
#include "bench_common.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/gpusim/kernels.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using namespace csg::gpusim;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 6));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 512));

  csg::bench::print_header(
      "bench_ext_fermi: Tesla C1060 vs Fermi C2050 (two-level cache) on "
      "both sparse grid operations",
      "Sec. 8 / conclusion (stated future work, here quantified on the "
      "simulator)");

  Report report("bench_ext_fermi",
                "simulated Tesla C1060 vs Fermi C2050 on both sparse grid "
                "operations",
                "Sec. 8");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("points", static_cast<std::int64_t>(points));

  std::printf("%-4s %-8s %12s %12s %10s %12s %12s\n", "d", "op",
              "tesla (ms)", "fermi (ms)", "speedup", "dram txn T",
              "cache hits F");
  for (dim_t d = 4; d <= 10; d += 2) {
    const auto f = workloads::simulation_field(d);
    for (const bool eval_op : {false, true}) {
      double ms[2];
      PerfCounters counters[2];
      int k = 0;
      for (const DeviceSpec& spec : {tesla_c1060(), fermi_c2050()}) {
        Launcher ln(spec);
        CompactStorage s(d, level);
        s.sample(f.f);
        if (eval_op) {
          gpu_hierarchize(ln, s);
          const auto pts = workloads::uniform_points(d, points, 5);
          GpuRunReport rep;
          (void)gpu_evaluate(ln, s, pts, &rep);
          ms[k] = rep.modeled_ms;
          counters[k] = rep.counters;
        } else {
          const GpuRunReport rep = gpu_hierarchize(ln, s);
          ms[k] = rep.modeled_ms;
          counters[k] = rep.counters;
        }
        ++k;
      }
      std::printf("%-4u %-8s %12.3f %12.3f %9.2fx %12llu %11.0f%%\n", d,
                  eval_op ? "eval" : "hier", ms[0], ms[1], ms[0] / ms[1],
                  static_cast<unsigned long long>(
                      counters[0].global_transactions),
                  counters[1].cache_hit_rate() * 100);
      // Simulator output: deterministic, gates tightly.
      const std::string base =
          std::string(eval_op ? "evaluate" : "hierarchize") + "/d" +
          std::to_string(d);
      report.add_counter(base + "/tesla_ms", ms[0], "ms", Better::kLess);
      report.add_counter(base + "/fermi_ms", ms[1], "ms", Better::kLess);
      report.add_counter(base + "/fermi_speedup", ms[0] / ms[1], "x",
                         Better::kMore);
      report.add_counter(base + "/fermi_cache_hit_rate",
                         counters[1].cache_hit_rate(), "frac", Better::kMore);
    }
  }
  std::printf("\nbinmat placement revisited on Fermi (the 'tune for Fermi' "
              "question, hierarchization at d=8):\n");
  std::printf("  %-14s %14s %14s\n", "binmat", "tesla (ms)", "fermi (ms)");
  for (const auto& [mode, name] :
       {std::pair{BinmatMode::kConstantCache, "constant"},
        std::pair{BinmatMode::kSharedMemory, "shared"},
        std::pair{BinmatMode::kGlobalCached, "global"},
        std::pair{BinmatMode::kOnTheFly, "on-the-fly"}}) {
    double ms[2];
    int k = 0;
    for (const DeviceSpec& spec : {tesla_c1060(), fermi_c2050()}) {
      Launcher ln(spec);
      CompactStorage s(8, level);
      s.sample(workloads::parabola_product(8).f);
      GpuConfig cfg;
      cfg.binmat = mode;
      ms[k++] = gpu_hierarchize(ln, s, cfg).modeled_ms;
    }
    std::printf("  %-14s %14.3f %14.3f\n", name, ms[0], ms[1]);
    report.add_counter(std::string("binmat_d8/") + name + "/tesla_ms", ms[0],
                       "ms", Better::kLess);
    report.add_counter(std::string("binmat_d8/") + name + "/fermi_ms", ms[1],
                       "ms", Better::kLess);
  }
  std::printf("  (global-memory binmat is ruinous on cache-less Tesla but "
              "competitive behind Fermi's L1 — one less hand-managed "
              "memory space.)\n");

  std::printf(
      "\nreading: Fermi's caches absorb a large share of the transactions "
      "for hierarchization (parent reads reuse coarse groups) and a smaller "
      "share for evaluation; both operations benefit, as the paper "
      "anticipated. Fermi also has more SPs and bandwidth, so part of the "
      "speedup is raw hardware.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
