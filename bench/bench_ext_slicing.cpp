// Extension experiment — slice decompression strategies for the Fig. 1
// visualization pipeline: per-pixel evaluation of the d-dimensional
// interpolant (optionally blocked, Sec. 4.3) vs restricting the compressed
// field to the slice plane once (restriction.hpp) and evaluating the
// resulting 2d sparse grid per pixel.
//
// The restriction costs one O(N d) pass per frame ANCHOR (not per pixel),
// after which each pixel costs a 2d evaluation — orders of magnitude
// cheaper at d >= 4. This is the library-level answer to the paper's
// "high resolution demands of a smoothly-running visual data exploration
// application".
#include "bench_common.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/core/restriction.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 7));
  const auto width = static_cast<std::size_t>(args.get_int("--width", 128));
  const auto height = static_cast<std::size_t>(args.get_int("--height", 128));

  csg::bench::print_header(
      "bench_ext_slicing: per-frame slice decompression — direct vs "
      "blocked vs restriction",
      "Fig. 1 pipeline, Sec. 4.3 blocking, plus the restriction operator "
      "(library extension)");
  std::printf("%zux%zu pixels per frame, level %u grids\n\n", width, height,
              level);

  Report report("bench_ext_slicing",
                "per-frame slice decompression: direct vs blocked vs "
                "restriction",
                "Fig. 1");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("width", static_cast<std::int64_t>(width));
  report.set_param("height", static_cast<std::int64_t>(height));

  std::printf("%-4s %12s %14s %14s %14s %12s %12s\n", "d", "N points",
              "direct (ms)", "blocked (ms)", "restrict (ms)", "speedup",
              "max |diff|");
  for (dim_t d = 3; d <= 8; ++d) {
    const auto f = workloads::simulation_field(d);
    CompactStorage s(d, level);
    s.sample(f.f);
    hierarchize(s);

    const CoordVector anchor(d - 2, real_t{0.45});
    const DimVector<dim_t> kept{0, 1};
    std::vector<CoordVector> pixels;
    pixels.reserve(width * height);
    for (std::size_t r = 0; r < height; ++r)
      for (std::size_t c = 0; c < width; ++c) {
        CoordVector x(2);
        x[0] = static_cast<real_t>(c) / static_cast<real_t>(width - 1);
        x[1] = static_cast<real_t>(r) / static_cast<real_t>(height - 1);
        pixels.push_back(x);
      }
    std::vector<CoordVector> embedded;
    embedded.reserve(pixels.size());
    for (const CoordVector& x : pixels)
      embedded.push_back(embed_in_plane(d, kept, anchor, x));

    std::vector<real_t> direct_vals, blocked_vals, restricted_vals;
    const double t_direct = csg::bench::time_per_call_s(
        [&] { direct_vals = evaluate_many(s, embedded); });
    const double t_blocked = csg::bench::time_per_call_s(
        [&] { blocked_vals = evaluate_many_blocked(s, embedded, 64); });
    const double t_restrict = csg::bench::time_per_call_s([&] {
      const CompactStorage slice = restrict_to_plane(s, kept, anchor);
      restricted_vals = evaluate_many_blocked(slice, pixels, 64);
    });

    real_t max_diff = 0;
    for (std::size_t p = 0; p < pixels.size(); ++p)
      max_diff = std::max(max_diff,
                          std::abs(restricted_vals[p] - direct_vals[p]));

    std::printf("%-4u %12llu %14.2f %14.2f %14.2f %11.1fx %12.2e\n", d,
                static_cast<unsigned long long>(s.size()), t_direct * 1e3,
                t_blocked * 1e3, t_restrict * 1e3, t_direct / t_restrict,
                max_diff);
    const std::string dk = "/d" + std::to_string(d);
    report
        .add_time("frame_ms/direct" + dk, csg::bench::summarize({t_direct}),
                  "ms", 1e3)
        .tolerance = 1.0;
    report
        .add_time("frame_ms/blocked" + dk, csg::bench::summarize({t_blocked}),
                  "ms", 1e3)
        .tolerance = 1.0;
    report
        .add_time("frame_ms/restriction" + dk,
                  csg::bench::summarize({t_restrict}), "ms", 1e3)
        .tolerance = 1.0;
    report.add_counter("restriction_speedup" + dk, t_direct / t_restrict, "x",
                       Better::kNeutral);
    report.add_counter("max_abs_diff" + dk, static_cast<double>(max_diff),
                       "abs", Better::kLess)
        .tolerance = 1.0;
  }
  std::printf(
      "\nreading: restriction amortizes the d-dimensional work once per "
      "frame anchor; per-pixel cost drops to the 2d interpolant. Identical "
      "pixels (max |diff| at round-off) — the operator is exact.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
