// Extension experiment — lossy surplus truncation as a second compression
// stage for the Fig. 1 storage box: the sparse grid already compresses
// O(N^d) full grids to O(N log^{d-1} N) points; truncating sub-threshold
// surpluses compresses further with a guaranteed pointwise error bound.
//
// For every threshold the harness reports kept coefficients, bytes
// (16 B/pair vs the dense 8 B/point), the GUARANTEED bound, and the
// MEASURED max error over probe points — the bound must dominate.
#include <cmath>

#include "bench_common.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/core/truncated.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 4));
  const auto level = static_cast<level_t>(args.get_int("--level", 8));

  csg::bench::print_header(
      "bench_ext_truncation: lossy surplus truncation on top of the "
      "compact structure",
      "Fig. 1 storage stage (library extension; error-bounded lossy "
      "compression)");

  const auto probes = workloads::halton_points(d, 2000);
  for (const char* which : {"smooth", "rough"}) {
    CompactStorage s(d, level);
    if (std::string(which) == "smooth") {
      s.sample(workloads::parabola_product(d).f);
    } else {
      s.sample(workloads::simulation_field(d).f);
    }
    hierarchize(s);
    const CompactStorage& full = s;
    std::printf("\nfield: %s (d=%u level=%u, %llu dense coefficients, "
                "%.2f MB)\n",
                which, d, level, static_cast<unsigned long long>(s.size()),
                static_cast<double>(s.size()) * 8 / 1e6);
    std::printf("  %-10s %10s %12s %14s %14s %12s\n", "epsilon", "kept",
                "bytes ratio", "bound", "measured err", "eval (us)");
    for (const real_t eps : {0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
      const TruncatedStorage t(s, eps);
      real_t max_err = 0;
      const double eval_s = csg::bench::time_s([&] {
        for (const CoordVector& x : probes)
          max_err = std::max(max_err,
                             std::abs(t.evaluate(x) - evaluate(full, x)));
      });
      std::printf("  %-10.0e %10zu %11.1f%% %14.3e %14.3e %12.2f\n", eps,
                  t.kept_count(), t.payload_ratio() * 100, t.error_bound(),
                  max_err,
                  eval_s / static_cast<double>(probes.size()) * 1e6 / 2);
    }
  }
  std::printf(
      "\nreading: measured error always within the guaranteed bound; smooth "
      "fields drop almost everything below modest thresholds (surpluses "
      "decay 4x per level, Sec. 2), rough fields resist — the surplus "
      "spectrum is a smoothness fingerprint.\n");
  return 0;
}
