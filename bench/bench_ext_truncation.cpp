// Extension experiment — lossy surplus truncation as a second compression
// stage for the Fig. 1 storage box: the sparse grid already compresses
// O(N^d) full grids to O(N log^{d-1} N) points; truncating sub-threshold
// surpluses compresses further with a guaranteed pointwise error bound.
//
// For every threshold the harness reports kept coefficients, bytes
// (16 B/pair vs the dense 8 B/point), the GUARANTEED bound, and the
// MEASURED max error over probe points — the bound must dominate.
#include <cmath>
#include <iomanip>
#include <sstream>

#include "bench_common.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/core/truncated.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 4));
  const auto level = static_cast<level_t>(args.get_int("--level", 8));

  csg::bench::print_header(
      "bench_ext_truncation: lossy surplus truncation on top of the "
      "compact structure",
      "Fig. 1 storage stage (library extension; error-bounded lossy "
      "compression)");

  Report report("bench_ext_truncation",
                "lossy surplus truncation on top of the compact structure",
                "Fig. 1");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level", static_cast<std::int64_t>(level));

  const auto probes = workloads::halton_points(d, 2000);
  for (const char* which : {"smooth", "rough"}) {
    CompactStorage s(d, level);
    if (std::string(which) == "smooth") {
      s.sample(workloads::parabola_product(d).f);
    } else {
      s.sample(workloads::simulation_field(d).f);
    }
    hierarchize(s);
    const CompactStorage& full = s;
    std::printf("\nfield: %s (d=%u level=%u, %llu dense coefficients, "
                "%.2f MB)\n",
                which, d, level, static_cast<unsigned long long>(s.size()),
                static_cast<double>(s.size()) * 8 / 1e6);
    std::printf("  %-10s %10s %12s %14s %14s %12s\n", "epsilon", "kept",
                "bytes ratio", "bound", "measured err", "eval (us)");
    for (const real_t eps : {0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
      const TruncatedStorage t(s, eps);
      real_t max_err = 0;
      const double eval_s = csg::bench::time_s([&] {
        for (const CoordVector& x : probes)
          max_err = std::max(max_err,
                             std::abs(t.evaluate(x) - evaluate(full, x)));
      });
      std::printf("  %-10.0e %10zu %11.1f%% %14.3e %14.3e %12.2f\n", eps,
                  t.kept_count(), t.payload_ratio() * 100, t.error_bound(),
                  max_err,
                  eval_s / static_cast<double>(probes.size()) * 1e6 / 2);
      std::ostringstream eps_tag;
      eps_tag << std::scientific << std::setprecision(0) << eps;
      const std::string base =
          std::string(which) + "/eps" + eps_tag.str();
      report.add_counter(base + "/kept", static_cast<double>(t.kept_count()),
                         "coeffs", Better::kLess);
      report.add_counter(base + "/payload_ratio", t.payload_ratio(), "frac",
                         Better::kLess);
      report.add_counter(base + "/error_bound",
                         static_cast<double>(t.error_bound()), "abs",
                         Better::kLess);
      report.add_counter(base + "/measured_error",
                         static_cast<double>(max_err), "abs", Better::kLess);
      // The invariant the experiment exists to check.
      report.add_counter(base + "/bound_dominates",
                         max_err <= t.error_bound() ? 1 : 0, "bool",
                         Better::kMore);
    }
  }
  std::printf(
      "\nreading: measured error always within the guaranteed bound; smooth "
      "fields drop almost everything below modest thresholds (surpluses "
      "decay 4x per level, Sec. 2), rough fields resist — the surplus "
      "spectrum is a smoothness fingerprint.\n");
  csg::bench::finish_report(report, args);
  return 0;
}
