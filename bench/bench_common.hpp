// Shared plumbing for the experiment harness: flag parsing, wall-clock
// timing, and aligned table printing. Every bench binary regenerates one
// table or figure of the paper (see DESIGN.md §4), prints the same
// rows/series the paper reports, and writes a machine-readable
// BENCH_<name>.json record through csg::bench::Report (docs/BENCHMARKS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "csg/bench/harness.hpp"

namespace csg::bench {

/// Minimal --flag value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) : args_(argv + 1, argv + argc) {}

  bool has(const std::string& flag) const {
    for (const std::string& a : args_)
      if (a == flag) return true;
    return false;
  }

  long get_int(const std::string& flag, long fallback) const {
    for (std::size_t k = 0; k + 1 < args_.size(); ++k)
      if (args_[k] == flag) return std::strtol(args_[k + 1].c_str(), nullptr, 10);
    return fallback;
  }

  std::string get_str(const std::string& flag,
                      const std::string& fallback) const {
    for (std::size_t k = 0; k + 1 < args_.size(); ++k)
      if (args_[k] == flag) return args_[k + 1];
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

/// Write the JSON record (to --json-out, $CSG_BENCH_JSON_DIR, or the
/// working directory) and print where it went. The last line every bench
/// main() runs.
inline void finish_report(const Report& report, const Args& args) {
  const std::string path = report.write_file(args.get_str("--json-out", ""));
  if (!path.empty()) std::printf("\n[csg::bench] wrote %s\n", path.c_str());
}

/// Wall-clock seconds of body(), best effort single run (experiments here
/// run long enough that one observation is stable).
inline double time_s(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Repeat until >= min_seconds total, return seconds per call.
inline double time_per_call_s(const std::function<void()>& body,
                              double min_seconds = 0.05) {
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    body();
    ++calls;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_seconds);
  return elapsed / calls;
}

inline void print_rule(int width = 100) {
  for (int k = 0; k < width; ++k) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* title, const char* paper_ref) {
  print_rule();
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  print_rule();
}

}  // namespace csg::bench
