// Experiment E2 — Fig. 8: memory consumption of a sparse grid per data
// structure, as a function of the number of dimensions.
//
// The paper plots bytes for level-11 grids with d = 5..10 (up to 13 GB for
// the standard STL map at d = 10). Building the map baselines at that size
// needs the paper's 24-256 GB machines, so the harness measures every
// structure exactly at a configurable level (default 7) and, from the
// measured bytes-per-point (which is size-independent for every structure),
// projects the paper-scale level-11 figure. The compact structure is also
// measured directly at paper scale when --paper-scale is passed (it is the
// only one that fits comfortably).
#include <algorithm>
#include <cinttypes>

#include "bench_common.hpp"
#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/compact_storage.hpp"

namespace {

using namespace csg;
using namespace csg::baselines;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

struct Row {
  const char* name;
  double bytes_per_point[11];  // indexed by d
};

template <GridStorage S>
double measure_bytes_per_point(dim_t d, level_t n) {
  S storage(d, n);
  sample(storage, [](const CoordVector&) { return 1.0; });
  return static_cast<double>(storage.memory_bytes()) /
         static_cast<double>(storage.grid().num_points());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto level = static_cast<level_t>(args.get_int("--level", 7));
  const auto d_lo = static_cast<dim_t>(args.get_int("--dmin", 5));
  const auto d_hi = static_cast<dim_t>(
      std::min<long>(args.get_int("--dmax", 10), 10));

  csg::bench::print_header(
      "bench_fig8_memory: sparse grid memory consumption per data structure",
      "Fig. 8 (memory usage vs number of dimensions, level-11 grids)");

  std::printf("measured at level %u; paper scale projected from measured "
              "bytes/point * N(d, 11)\n\n",
              level);

  Report report("bench_fig8_memory",
                "sparse grid memory consumption per data structure", "Fig. 8");
  report.set_param("level", static_cast<std::int64_t>(level));
  report.set_param("dims_min", static_cast<std::int64_t>(d_lo));
  report.set_param("dims_max", static_cast<std::int64_t>(d_hi));
  report.set_param("paper_scale", args.has("--paper-scale"));

  Row rows[5] = {{"compact", {}},
                 {"prefix_tree", {}},
                 {"enhanced_hash", {}},
                 {"enhanced_map", {}},
                 {"std_map", {}}};

  for (dim_t d = d_lo; d <= d_hi; ++d) {
    rows[0].bytes_per_point[d] = measure_bytes_per_point<CompactStorage>(d, level);
    rows[1].bytes_per_point[d] =
        measure_bytes_per_point<PrefixTreeStorage>(d, level);
    rows[2].bytes_per_point[d] =
        measure_bytes_per_point<EnhancedHashStorage>(d, level);
    rows[3].bytes_per_point[d] =
        measure_bytes_per_point<EnhancedMapStorage>(d, level);
    rows[4].bytes_per_point[d] = measure_bytes_per_point<StdMapStorage>(d, level);
  }

  // Bytes/point comes from the metered allocators — fully deterministic, so
  // these counters gate tightly in bench_compare.
  for (const Row& r : rows)
    for (dim_t d = d_lo; d <= d_hi; ++d)
      report.add_counter(std::string(r.name) + "/bytes_per_point/d" +
                             std::to_string(d),
                         r.bytes_per_point[d], "bytes", Better::kLess);
  for (const Row& r : rows)
    report.add_counter(std::string(r.name) + "/ratio_vs_compact/d" +
                           std::to_string(d_hi),
                       r.bytes_per_point[d_hi] / rows[0].bytes_per_point[d_hi],
                       "x", Better::kLess);

  std::printf("measured bytes per grid point (level %u):\n", level);
  std::printf("%-15s", "structure");
  for (dim_t d = d_lo; d <= d_hi; ++d) std::printf("      d=%-3u", d);
  std::printf("\n");
  for (const Row& r : rows) {
    std::printf("%-15s", r.name);
    for (dim_t d = d_lo; d <= d_hi; ++d)
      std::printf("  %9.1f", r.bytes_per_point[d]);
    std::printf("\n");
  }

  std::printf("\nprojected memory at paper scale (level 11), GB:\n");
  std::printf("%-15s", "structure");
  for (dim_t d = d_lo; d <= d_hi; ++d) std::printf("      d=%-3u", d);
  std::printf("\n");
  for (const Row& r : rows) {
    std::printf("%-15s", r.name);
    for (dim_t d = d_lo; d <= d_hi; ++d) {
      const double gb = r.bytes_per_point[d] *
                        static_cast<double>(regular_grid_num_points(d, 11)) /
                        1e9;
      std::printf("  %9.3f", gb);
    }
    std::printf("\n");
  }

  std::printf("\nmemory ratio vs compact at d=%u (paper reports up to ~30x):\n",
              d_hi);
  for (const Row& r : rows)
    std::printf("  %-15s %6.1fx\n", r.name,
                r.bytes_per_point[d_hi] / rows[0].bytes_per_point[d_hi]);

  if (args.has("--paper-scale")) {
    std::printf("\ndirect measurement of the compact structure at paper "
                "scale (d=10, level 11, %" PRIu64 " points):\n",
                regular_grid_num_points(10, 11));
    CompactStorage big(10, 11);
    const double gb = static_cast<double>(big.memory_bytes()) / 1e9;
    std::printf("  compact: %.3f GB (vs ~13 GB for the std::map of Fig. 8)\n",
                gb);
    report.add_counter("compact/paper_scale_gb/d10_l11", gb, "GB",
                       Better::kLess);
  }
  csg::bench::finish_report(report, args);
  return 0;
}
