// Experiment E14 — EvaluationPlan micro-benchmark: what the one-time
// flattening of the subspace enumeration buys on the batched query path.
//
// Stages, all producing bit-identical results (verified here):
//   walk       per-point Alg. 7 with first_level/advance_level in the inner
//              loop (the pre-plan scalar path, kept as evaluate_span_walk)
//   plan       per-point linear scan over the flattened plan arrays
//   blocked    Sec. 4.3 point blocking on top of the plan
//   omp        omp_evaluate_many_blocked: threads over point blocks,
//              plan shared read-only, disjoint out ranges (barrier-free)
// The default shape (d=5, n=9, 10k points) matches the acceptance target:
// omp blocked must beat sequential evaluate_many.
#include <thread>

#include "bench_common.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace {

using namespace csg;
using csg::bench::Args;
using csg::bench::Better;
using csg::bench::Report;

bool bit_identical(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t p = 0; p < a.size(); ++p)
    if (a[p] != b[p]) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto d = static_cast<dim_t>(args.get_int("--dims", 5));
  const auto n = static_cast<level_t>(args.get_int("--level", 9));
  const auto points = static_cast<std::size_t>(args.get_int("--points", 10000));
  const auto block = static_cast<std::size_t>(args.get_int("--block", 64));
  const int threads = static_cast<int>(args.get_int(
      "--threads", static_cast<long>(std::thread::hardware_concurrency())));

  csg::bench::print_header(
      "bench_eval_plan: subspace evaluation plan vs the iterator walk",
      "plan flattening + Sec. 4.3 blocking + OpenMP over point blocks");

  CompactStorage storage(d, n);
  storage.sample(workloads::parabola_product(d).f);
  hierarchize(storage);
  const std::span<const real_t> coeffs(storage.data(),
                                       storage.values().size());
  const auto pts = workloads::uniform_points(d, points, 19);

  const double plan_build_s = csg::bench::time_per_call_s(
      [&] { EvaluationPlan throwaway(storage.grid()); });
  const EvaluationPlan plan(storage.grid());
  std::printf("grid d=%u n=%u: %llu coefficients (%.2f MB), %zu subspaces "
              "(plan %.1f KB, built in %.3f ms)\n"
              "%zu query points, block size %zu, %d thread(s)\n\n",
              d, n, static_cast<unsigned long long>(storage.size()),
              static_cast<double>(storage.size()) * sizeof(real_t) / 1e6,
              plan.subspace_count(),
              static_cast<double>(plan.memory_bytes()) / 1e3,
              plan_build_s * 1e3, pts.size(), block, threads);

  // Pre-plan scalar reference: the walk that re-derives every level vector.
  std::vector<real_t> reference(pts.size());
  const double walk_s = csg::bench::time_per_call_s([&] {
    for (std::size_t p = 0; p < pts.size(); ++p)
      reference[p] = evaluate_span_walk(storage.grid(), coeffs, pts[p]);
  });

  std::vector<real_t> seq_many;
  const double seq_many_s = csg::bench::time_per_call_s(
      [&] { seq_many = evaluate_many(storage, pts); });

  std::vector<real_t> blocked;
  const double blocked_s = csg::bench::time_per_call_s(
      [&] { blocked = evaluate_many_blocked(storage, pts, block); });

  std::vector<real_t> omp_blocked;
  const double omp_s = csg::bench::time_per_call_s([&] {
    omp_blocked =
        parallel::omp_evaluate_many_blocked(storage, pts, block, threads);
  });

  Report report("bench_eval_plan",
                "subspace evaluation plan vs the iterator walk", "Sec. 4.3");
  report.set_param("dims", static_cast<std::int64_t>(d));
  report.set_param("level", static_cast<std::int64_t>(n));
  report.set_param("points", static_cast<std::int64_t>(points));
  report.set_param("block", static_cast<std::int64_t>(block));
  report.set_param("threads", static_cast<std::int64_t>(threads));
  report
      .add_time("plan/build_ms", csg::bench::summarize({plan_build_s}), "ms",
                1e3)
      .tolerance = 1.0;
  report.add_counter("plan/memory_kb",
                     static_cast<double>(plan.memory_bytes()) / 1e3, "KB",
                     Better::kLess);

  const bool exact_many = bit_identical(seq_many, reference);
  const bool exact_blocked = bit_identical(blocked, reference);
  const bool exact_omp = bit_identical(omp_blocked, reference);
  auto row = [&](const char* name, double s, bool exact) {
    std::printf("%-26s %10.4f s  %8.2fx vs walk  %8.2fx vs seq many   "
                "exact: %s\n",
                name, s, walk_s / s, seq_many_s / s, exact ? "yes" : "NO");
  };
  row("walk (pre-plan scalar)", walk_s, true);
  row("plan evaluate_many", seq_many_s, exact_many);
  row("plan blocked", blocked_s, exact_blocked);
  row("omp plan blocked", omp_s, exact_omp);
  report.add_time("eval_s/walk", csg::bench::summarize({walk_s})).tolerance =
      1.0;
  report.add_time("eval_s/plan_many", csg::bench::summarize({seq_many_s}))
      .tolerance = 1.0;
  report.add_time("eval_s/plan_blocked", csg::bench::summarize({blocked_s}))
      .tolerance = 1.0;
  report.add_time("eval_s/omp_plan_blocked", csg::bench::summarize({omp_s}),
                  "s", 1, Better::kNeutral);
  // Bit-identical results are a hard invariant, not a performance number.
  report.add_counter("exact/plan_many", exact_many ? 1 : 0, "bool",
                     Better::kMore);
  report.add_counter("exact/plan_blocked", exact_blocked ? 1 : 0, "bool",
                     Better::kMore);
  report.add_counter("exact/omp_plan_blocked", exact_omp ? 1 : 0, "bool",
                     Better::kMore);

  const bool faster = omp_s < seq_many_s;
  std::printf("\nacceptance: omp_evaluate_many_blocked faster than "
              "sequential evaluate_many: %s (%.4f s vs %.4f s, %.2fx)\n",
              faster ? "yes" : "NO", omp_s, seq_many_s, seq_many_s / omp_s);
  report.add_counter("shape/omp_blocked_beats_sequential", faster ? 1 : 0,
                     "bool", Better::kNeutral);

  std::printf("\nthread sweep (omp plan blocked):\n");
  for (int t = 1; t <= threads; t *= 2) {
    const double s = csg::bench::time_s([&] {
      (void)parallel::omp_evaluate_many_blocked(storage, pts, block, t);
    });
    std::printf("  %2d thread(s)  %10.4f s  (%.2fx vs 1-thread seq many)\n",
                t, s, seq_many_s / s);
  }

  // --- soa_vs_scalar: the SoA batch kernel against the forced scalar
  // fallback (DESIGN.md §14), same plan, same blocking. The speedup is
  // recorded neutral (it is host-vector-width-dependent); the work counters
  // are deterministic functions of (points, block, plan) and gate exactly.
  {
    const EvalKernel saved = eval_kernel();
    set_eval_kernel(EvalKernel::kScalar);
    std::vector<real_t> scalar_out;
    const double scalar_s = csg::bench::time_per_call_s(
        [&] { scalar_out = evaluate_many_blocked(storage, pts, block); });
    set_eval_kernel(EvalKernel::kSoa);
    // Warm the thread-local arena, then pin zero steady-state allocation
    // and take one deterministic counter snapshot.
    std::vector<real_t> soa_out = evaluate_many_blocked(storage, pts, block);
    const std::uint64_t arena0 = PointBlock::allocation_count();
    reset_soa_kernel_stats();
    soa_out = evaluate_many_blocked(storage, pts, block);
    const SoaKernelStats stats = soa_kernel_stats();
    const std::uint64_t steady_allocs =
        PointBlock::allocation_count() - arena0;
    const double soa_s = csg::bench::time_per_call_s(
        [&] { soa_out = evaluate_many_blocked(storage, pts, block); });
    set_eval_kernel(saved);

    const bool exact_soa = bit_identical(soa_out, reference) &&
                           bit_identical(scalar_out, reference);
    std::printf("\nsoa_vs_scalar (block %zu, lane width %zu):\n", block,
                kPointBlockLane);
    std::printf("  scalar fallback   %10.4f s\n", scalar_s);
    std::printf("  soa kernel        %10.4f s  %8.2fx vs scalar   exact: %s\n",
                soa_s, scalar_s / soa_s, exact_soa ? "yes" : "NO");
    std::printf("  one pass: %llu blocks, %llu lanes, %llu subspace visits, "
                "%llu steady-state arena allocations\n",
                static_cast<unsigned long long>(stats.blocks),
                static_cast<unsigned long long>(stats.lanes),
                static_cast<unsigned long long>(stats.subspaces_visited),
                static_cast<unsigned long long>(steady_allocs));
    report.add_time("eval_s/soa_blocked", csg::bench::summarize({soa_s}))
        .tolerance = 1.0;
    report.add_time("eval_s/scalar_blocked",
                    csg::bench::summarize({scalar_s}))
        .tolerance = 1.0;
    report.add_counter("soa/speedup_vs_scalar", scalar_s / soa_s, "x",
                       Better::kNeutral);
    report.add_counter("soa/points", static_cast<double>(pts.size()), "count",
                       Better::kNeutral);
    report.add_counter("soa/lane_width",
                       static_cast<double>(kPointBlockLane), "points",
                       Better::kNeutral);
    report.add_counter("soa/blocks", static_cast<double>(stats.blocks),
                       "count", Better::kNeutral);
    report.add_counter("soa/lanes", static_cast<double>(stats.lanes), "count",
                       Better::kNeutral);
    report.add_counter("soa/subspaces_visited",
                       static_cast<double>(stats.subspaces_visited), "count",
                       Better::kNeutral);
    // Hard invariants: exact parity, and no arena growth once warm.
    report.add_counter("exact/soa_blocked", exact_soa ? 1 : 0, "bool",
                       Better::kMore);
    report.add_counter("soa/steady_state_allocs",
                       static_cast<double>(steady_allocs), "count",
                       Better::kLess);
  }
  csg::bench::finish_report(report, args);
  // The speedup acceptance gate depends on the host having idle cores;
  // CI runners share theirs, so the nonzero exit is opt-in.
  if (args.has("--strict") && !faster) return 1;
  return 0;
}
