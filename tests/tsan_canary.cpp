// Canary for the two race detectors, built only in the TSan lane
// (CSG_SANITIZE=thread) and registered with ctest as WILL_FAIL.
//
// The Ledger below has one guarded counter. Compiled normally it locks
// correctly and is boringly race-free. Compiled with
// -DCSG_TESTING_INJECT_RACE the deposit path skips the lock — the same
// single-line mutation both detectors exist to catch:
//
//  * compile-time: under CSG_THREAD_SAFETY the unlocked `balance_ += 1`
//    writes a CSG_GUARDED_BY member without its mutex and the build fails
//    (the injected block is *not* wrapped in CSG_NO_THREAD_SAFETY_ANALYSIS
//    precisely so the annotation lane sees it);
//  * runtime: under TSan two threads hammering deposit() produce a data
//    race report, the process exits nonzero, and WILL_FAIL turns that into
//    a ctest pass.
//
// A lane under which this canary stops failing has silently stopped
// detecting races; that is the regression this test exists to surface.
#include <cstdint>
#include <iostream>
#include <thread>

#include "csg/core/thread_annotations.hpp"

namespace {

class Ledger {
 public:
  void deposit() {
#if defined(CSG_TESTING_INJECT_RACE)
    balance_ += 1;  // unguarded write: both detectors must fire
#else
    csg::MutexLock lock(mutex_);
    balance_ += 1;
#endif
  }

  std::uint64_t balance() const {
    csg::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  mutable csg::Mutex mutex_;
  std::uint64_t balance_ CSG_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  constexpr std::uint64_t kDeposits = 100000;
  Ledger ledger;
  auto worker = [&ledger] {
    for (std::uint64_t k = 0; k < kDeposits; ++k) ledger.deposit();
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  std::cout << "balance=" << ledger.balance() << " expected="
            << 2 * kDeposits << "\n";
  // The exit code does not depend on the (racy) sum: TSan's own nonzero
  // exit on a detected race is the failure signal WILL_FAIL inverts.
  return 0;
}
