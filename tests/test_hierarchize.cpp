#include "csg/core/hierarchize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/evaluate.hpp"
#include "csg/core/grid_point.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/testing/param_names.hpp"

namespace csg {
namespace {

using workloads::TestFunction;

TEST(Hierarchize, OneDimensionalKnownCoefficients) {
  // 1d, level 3 grid on f(x) = x for x < 1 (zero-boundary mismatch at the
  // right edge is irrelevant: we only sample interior points).
  // Nodal values: f(x) = x at x = k/8. Hierarchical surpluses of the linear
  // function: the root keeps f(0.5) = 0.5 minus mean of boundaries (0) =
  // 0.5; every deeper point's surplus is f(x) - (f(left)+f(right))/2 = 0
  // except where a neighbor is the boundary with value 0.
  CompactStorage s(1, 3);
  s.sample([](const CoordVector& x) { return x[0]; });
  hierarchize(s);
  const RegularSparseGrid& g = s.grid();
  EXPECT_DOUBLE_EQ(s.at(LevelVector{0}, IndexVector{1}), 0.5);
  EXPECT_DOUBLE_EQ(s.at(LevelVector{1}, IndexVector{1}), 0.0);
  // (1,3) at 0.75: parents 0.5 (value 0.5) and boundary 1.0 (value 0):
  // surplus = 0.75 - 0.25 = 0.5.
  EXPECT_DOUBLE_EQ(s.at(LevelVector{1}, IndexVector{3}), 0.5);
  EXPECT_DOUBLE_EQ(s.at(LevelVector{2}, IndexVector{1}), 0.0);
  // (2,7) at 0.875: parents 0.75 (value 0.75) and boundary 1.0 (value 0):
  // surplus = 0.875 - 0.375 = 0.5.
  EXPECT_DOUBLE_EQ(s.at(LevelVector{2}, IndexVector{7}), 0.5);
  (void)g;
}

TEST(Hierarchize, ParabolaSurplusesFollowClosedForm) {
  // For f(x) = 4x(1-x) the 1d surplus at level l (0-based) is h^2 * 4 with
  // h = 2^{-(l+1)} ... specifically surplus = f(x) - (f(x-h)+f(x+h))/2 =
  // 4h^2 for every interior point (second difference of the parabola).
  CompactStorage s(1, 5);
  s.sample([](const CoordVector& x) { return 4 * x[0] * (1 - x[0]); });
  hierarchize(s);
  for (level_t l = 1; l < 5; ++l) {
    const real_t h = coordinate_1d(l, 1);
    for (index1d_t i = 1; i < (index1d_t{1} << (l + 1)); i += 2)
      EXPECT_NEAR(s.at(LevelVector{l}, IndexVector{i}), 4 * h * h, 1e-14);
  }
}

struct Case {
  dim_t d;
  level_t n;
};

class HierarchizeSweep : public ::testing::TestWithParam<Case> {};

TEST_P(HierarchizeSweep, LiteralAlgorithm6MatchesOptimizedTraversal) {
  const auto [d, n] = GetParam();
  const TestFunction f = workloads::simulation_field(d);
  CompactStorage a(d, n);
  a.sample(f.f);
  CompactStorage b = a;
  hierarchize(a);
  hierarchize_literal(b);
  for (flat_index_t j = 0; j < a.size(); ++j)
    ASSERT_EQ(a[j], b[j]) << "flat index " << j;  // bit-identical
}

TEST_P(HierarchizeSweep, PoleTraversalIsBitIdenticalToAlg6) {
  const auto [d, n] = GetParam();
  const TestFunction f = workloads::simulation_field(d);
  CompactStorage a(d, n);
  a.sample(f.f);
  CompactStorage b = a;
  hierarchize(a);
  hierarchize_poles(b);
  for (flat_index_t j = 0; j < a.size(); ++j)
    ASSERT_EQ(a[j], b[j]) << "flat index " << j;
}

TEST_P(HierarchizeSweep, PoleRoundTripRestoresNodalValues) {
  const auto [d, n] = GetParam();
  const TestFunction f = workloads::oscillatory(d);
  CompactStorage s(d, n);
  s.sample(f.f);
  const std::vector<real_t> nodal = s.values();
  hierarchize_poles(s);
  dehierarchize_poles(s);
  for (flat_index_t j = 0; j < s.size(); ++j)
    EXPECT_NEAR(s[j], nodal[static_cast<std::size_t>(j)], 1e-12);
}

TEST_P(HierarchizeSweep, DehierarchizeInvertsHierarchize) {
  const auto [d, n] = GetParam();
  const TestFunction f = workloads::gaussian_bump(d);
  CompactStorage s(d, n);
  s.sample(f.f);
  const std::vector<real_t> nodal = s.values();
  hierarchize(s);
  dehierarchize(s);
  for (flat_index_t j = 0; j < s.size(); ++j)
    EXPECT_NEAR(s[j], nodal[static_cast<std::size_t>(j)], 1e-12);
}

TEST_P(HierarchizeSweep, EvaluationAtGridPointsReproducesNodalValues) {
  // The defining property of the hierarchical coefficients: fs interpolates
  // f at every grid point.
  const auto [d, n] = GetParam();
  const TestFunction f = workloads::oscillatory(d);
  CompactStorage s(d, n);
  s.sample(f.f);
  const std::vector<real_t> nodal = s.values();
  hierarchize(s);
  for (flat_index_t j = 0; j < s.size(); ++j) {
    const CoordVector x = coordinates(s.grid().idx2gp(j));
    EXPECT_NEAR(evaluate(s, x), nodal[static_cast<std::size_t>(j)], 1e-12)
        << "grid point " << j;
  }
}

TEST_P(HierarchizeSweep, HierarchizationIsLinear) {
  const auto [d, n] = GetParam();
  const TestFunction f = workloads::gaussian_bump(d);
  const TestFunction g = workloads::oscillatory(d);
  CompactStorage sf(d, n), sg(d, n), sfg(d, n);
  sf.sample(f.f);
  sg.sample(g.f);
  sfg.sample([&](const CoordVector& x) { return 2 * f.f(x) - 3 * g.f(x); });
  hierarchize(sf);
  hierarchize(sg);
  hierarchize(sfg);
  for (flat_index_t j = 0; j < sf.size(); ++j)
    EXPECT_NEAR(sfg[j], 2 * sf[j] - 3 * sg[j], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierarchizeSweep,
    ::testing::Values(Case{1, 6}, Case{2, 5}, Case{3, 4}, Case{4, 4},
                      Case{5, 3}, Case{6, 3}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(Hierarchize, ParentFlatIndexMatchesManualLookup) {
  RegularSparseGrid g(3, 5);
  for (flat_index_t j = 0; j < g.num_points(); ++j) {
    const GridPoint gp = g.idx2gp(j);
    for (dim_t t = 0; t < 3; ++t) {
      for (bool right : {false, true}) {
        const flat_index_t p =
            parent_flat_index(g, gp.level, gp.index, t, right);
        const Parent1d ref = right ? right_parent_1d(gp.level[t], gp.index[t])
                                   : left_parent_1d(gp.level[t], gp.index[t]);
        if (ref.is_boundary) {
          EXPECT_EQ(p, kBoundaryParent);
        } else {
          LevelVector l = gp.level;
          IndexVector i = gp.index;
          l[t] = ref.level;
          i[t] = ref.index;
          EXPECT_EQ(p, g.gp2idx(l, i));
        }
      }
    }
  }
}

TEST(Hierarchize, LevelOneGridIsIdentity) {
  // A grid with a single point (the root of every dimension) has no
  // parents: hierarchization must be a no-op.
  CompactStorage s(4, 1);
  ASSERT_EQ(s.size(), 1u);
  s[0] = 3.75;
  hierarchize(s);
  EXPECT_EQ(s[0], 3.75);
  dehierarchize(s);
  EXPECT_EQ(s[0], 3.75);
}

TEST(Hierarchize, CoarseDLinearFunctionYieldsSparseCoefficients) {
  // coarse_dlinear is a combination of two tensor hats; after
  // hierarchization only those basis functions (and no deeper ones) may
  // carry non-zero surpluses.
  const dim_t d = 3;
  const TestFunction f = workloads::coarse_dlinear(d);
  CompactStorage s(d, 5);
  s.sample(f.f);
  hierarchize(s);
  for (flat_index_t j = 0; j < s.size(); ++j) {
    const GridPoint gp = s.grid().idx2gp(j);
    if (gp.level.linf_norm() >= 2) {
      EXPECT_NEAR(s[j], 0.0, 1e-13) << "unexpected surplus at " << j;
    }
  }
}

}  // namespace
}  // namespace csg
