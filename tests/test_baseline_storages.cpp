#include <gtest/gtest.h>

#include "csg/baselines/generic_algorithms.hpp"
#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/compact_storage.hpp"

namespace csg::baselines {
namespace {

static_assert(GridStorage<CompactStorage>);
static_assert(GridStorage<StdMapStorage>);
static_assert(GridStorage<EnhancedMapStorage>);
static_assert(GridStorage<EnhancedHashStorage>);
static_assert(GridStorage<PrefixTreeStorage>);

template <typename S>
class StorageTyped : public ::testing::Test {
 public:
  static S make(dim_t d, level_t n) { return S(d, n); }
};

using StorageTypes =
    ::testing::Types<CompactStorage, StdMapStorage, EnhancedMapStorage,
                     EnhancedHashStorage, PrefixTreeStorage>;
TYPED_TEST_SUITE(StorageTyped, StorageTypes);

TYPED_TEST(StorageTyped, SetThenGetRoundTripsEveryPoint) {
  auto s = TestFixture::make(3, 4);
  real_t v = 1.0;
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    s.set(l, i, v);
    v += 0.5;
  });
  v = 1.0;
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_EQ(s.get(l, i), v);
    v += 0.5;
  });
}

TYPED_TEST(StorageTyped, OverwriteReplacesValue) {
  auto s = TestFixture::make(2, 3);
  const LevelVector l{1, 1};
  const IndexVector i{3, 1};
  s.set(l, i, 1.0);
  s.set(l, i, -2.0);
  EXPECT_EQ(s.get(l, i), -2.0);
}

TYPED_TEST(StorageTyped, MemoryBytesIsPositiveOncePopulated) {
  auto s = TestFixture::make(2, 4);
  sample(s, [](const CoordVector& x) { return x[0]; });
  EXPECT_GT(s.memory_bytes(), 0u);
}

TEST(BaselineStorages, NamesAreDistinct) {
  const std::set<std::string> names = {
      CompactStorage::name(), StdMapStorage::name(), EnhancedMapStorage::name(),
      EnhancedHashStorage::name(), PrefixTreeStorage::name()};
  EXPECT_EQ(names.size(), 5u);
}

TEST(BaselineStorages, CompactIsSmallestAtScale) {
  // Fig. 8's ordering at a size where asymptotics dominate: the compact
  // structure must undercut every baseline by a wide margin.
  const dim_t d = 5;
  const level_t n = 7;
  CompactStorage compact(d, n);
  StdMapStorage std_map(d, n);
  EnhancedMapStorage enh_map(d, n);
  EnhancedHashStorage enh_hash(d, n);
  PrefixTreeStorage tree(d, n);
  auto f = [](const CoordVector& x) { return x[0] + x[1]; };
  sample(compact, f);
  sample(std_map, f);
  sample(enh_map, f);
  sample(enh_hash, f);
  sample(tree, f);
  // All baselines pay at least 4x the compact footprint here.
  EXPECT_GT(std_map.memory_bytes(), 4 * compact.memory_bytes());
  EXPECT_GT(enh_map.memory_bytes(), 4 * compact.memory_bytes());
  EXPECT_GT(enh_hash.memory_bytes(), 4 * compact.memory_bytes());
  EXPECT_GT(tree.memory_bytes(), 4 * compact.memory_bytes());
  // And the std::map with its O(d) heap keys is the largest map variant.
  EXPECT_GT(std_map.memory_bytes(), enh_map.memory_bytes());
}

TEST(BaselineStorages, StdMapKeyBytesGrowWithDimension) {
  auto bytes_for = [](dim_t d) {
    StdMapStorage s(d, 3);
    sample(s, [](const CoordVector&) { return 1.0; });
    return static_cast<double>(s.memory_bytes()) /
           static_cast<double>(s.size());
  };
  EXPECT_GT(bytes_for(10), bytes_for(2));
}

TEST(BaselineStorages, MissingKeyReadsAsZeroForMapVariants) {
  // Before sampling, map-based storages are empty: get() returns the
  // zero-boundary default instead of inserting.
  StdMapStorage a(2, 3);
  EnhancedMapStorage b(2, 3);
  EnhancedHashStorage c(2, 3);
  const LevelVector l{1, 1};
  const IndexVector i{1, 3};
  EXPECT_EQ(a.get(l, i), 0.0);
  EXPECT_EQ(b.get(l, i), 0.0);
  EXPECT_EQ(c.get(l, i), 0.0);
  EXPECT_EQ(a.size(), 0u);
}

TEST(BaselineStorages, PrefixTreeSlotLayout) {
  // Heap-ordered slots: level l occupies [2^l - 1, 2^{l+1} - 2].
  EXPECT_EQ(PrefixTreeStorage::slot(0, 1), 0u);
  EXPECT_EQ(PrefixTreeStorage::slot(1, 1), 1u);
  EXPECT_EQ(PrefixTreeStorage::slot(1, 3), 2u);
  EXPECT_EQ(PrefixTreeStorage::slot(2, 1), 3u);
  EXPECT_EQ(PrefixTreeStorage::slot(2, 7), 6u);
  EXPECT_EQ(PrefixTreeStorage::slot(3, 1), 7u);
}

TEST(BaselineStorages, PrefixTreeNodeCountMatchesPrefixCount) {
  // One node per distinct (l,i)-prefix over the first d-1 dimensions, plus
  // the root. For d=1 there is exactly the root holding all values.
  PrefixTreeStorage flat(1, 5);
  EXPECT_EQ(flat.node_count(), 1u);

  // d=2, n=2: root + one node per 1d point with remaining budget:
  // level 0: 1 point, level 1: 2 points -> 1 + 3 = 4 nodes.
  PrefixTreeStorage two(2, 2);
  EXPECT_EQ(two.node_count(), 4u);
}

TEST(BaselineStorages, PackedPointKeyOrdersPointsConsistently) {
  const PackedPointKey a = pack_point_key({0, 1}, {1, 1});
  const PackedPointKey b = pack_point_key({0, 1}, {1, 3});
  const PackedPointKey c = pack_point_key({1, 1}, {1, 1});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // level dominates index within a dimension
  EXPECT_EQ(a, pack_point_key({0, 1}, {1, 1}));
}

TEST(BaselineStorages, MeteredAllocatorTracksNodeChurn) {
  MemoryMeter meter;
  {
    std::vector<int, MeteredAllocator<int>> v{MeteredAllocator<int>(&meter)};
    v.reserve(100);
    EXPECT_GE(meter.current_bytes(), 100 * sizeof(int));
    EXPECT_EQ(meter.allocation_count(), 1u);
  }
  EXPECT_EQ(meter.current_bytes(), 0u);      // freed on destruction
  EXPECT_GE(meter.peak_bytes(), 100 * sizeof(int));
}

}  // namespace
}  // namespace csg::baselines
