#include "csg/core/regular_grid.hpp"
#include "csg/testing/param_names.hpp"
#include "csg/testing/property.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace csg {
namespace {

TEST(RegularGrid, PointCountsMatchThePaper) {
  // Sec. 6: level-11 grids for d = 1..10 span [2047, 127574017] points.
  EXPECT_EQ(regular_grid_num_points(1, 11), 2047u);
  EXPECT_EQ(regular_grid_num_points(10, 11), 127574017u);
}

TEST(RegularGrid, PointCountsSmallKnownValues) {
  // d=1: 2^n - 1 points.
  for (level_t n = 1; n <= 10; ++n)
    EXPECT_EQ(regular_grid_num_points(1, n), (flat_index_t{1} << n) - 1);
  // d=2, n=3: groups of 1, 2*2, 3*4 points = 17 (the Fig. 3 sparse grid).
  EXPECT_EQ(regular_grid_num_points(2, 3), 17u);
  // d=3, n=3: 1 + 3*2 + 6*4 = 31.
  EXPECT_EQ(regular_grid_num_points(3, 3), 31u);
}

TEST(RegularGrid, GroupOffsetsPartitionTheArray) {
  RegularSparseGrid g(4, 6);
  EXPECT_EQ(g.group_offset(0), 0u);
  flat_index_t expected = 0;
  for (level_t j = 0; j < 6; ++j) {
    EXPECT_EQ(g.group_offset(j), expected);
    EXPECT_EQ(g.group_size(j), g.subspaces_in_group(j) * g.points_per_subspace(j));
    expected += g.group_size(j);
  }
  EXPECT_EQ(g.num_points(), expected);
}

TEST(RegularGrid, GroupOfInvertsGroupOffsets) {
  RegularSparseGrid g(3, 7);
  for (level_t j = 0; j < 7; ++j) {
    EXPECT_EQ(g.group_of(g.group_offset(j)), j);
    EXPECT_EQ(g.group_of(g.group_offset(j + 1) - 1), j);
  }
}

struct DimLevel {
  dim_t d;
  level_t n;
};

class GridSweep : public ::testing::TestWithParam<DimLevel> {};

TEST_P(GridSweep, Gp2IdxIsABijectionOntoConsecutiveIntegers) {
  const auto [d, n] = GetParam();
  RegularSparseGrid g(d, n);
  std::set<flat_index_t> seen;
  // Exhaustive: every idx decodes to a contained point that encodes back.
  for (flat_index_t idx = 0; idx < g.num_points(); ++idx) {
    const GridPoint gp = g.idx2gp(idx);
    EXPECT_TRUE(g.contains(gp));
    EXPECT_EQ(g.gp2idx(gp), idx);
    EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(seen.size(), g.num_points());
}

TEST_P(GridSweep, SubspaceOffsetsAreContiguousInEnumerationOrder) {
  const auto [d, n] = GetParam();
  RegularSparseGrid g(d, n);
  flat_index_t expected = 0;
  for (level_t j = 0; j < n; ++j) {
    for (const LevelVector& l : LevelRange(d, j)) {
      EXPECT_EQ(g.subspace_offset(l), expected);
      expected += g.points_per_subspace(j);
    }
  }
  EXPECT_EQ(expected, g.num_points());
}

TEST_P(GridSweep, PointIndexRoundTripsWithinSubspace) {
  const auto [d, n] = GetParam();
  RegularSparseGrid g(d, n);
  for (level_t j = 0; j < n; ++j) {
    for (const LevelVector& l : LevelRange(d, j)) {
      for (flat_index_t k = 0; k < g.points_per_subspace(j); ++k) {
        const IndexVector i = g.point_in_subspace(l, k);
        EXPECT_EQ(g.point_index_in_subspace(l, i), k);
        EXPECT_TRUE(valid_point({l, i}));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridSweep,
    ::testing::Values(DimLevel{1, 1}, DimLevel{1, 8}, DimLevel{2, 6},
                      DimLevel{3, 5}, DimLevel{4, 4}, DimLevel{5, 4},
                      DimLevel{6, 3}, DimLevel{10, 2}),
    [](const ::testing::TestParamInfo<DimLevel>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(RegularGrid, RandomizedBijectionAtPaperScale) {
  // d=10, n=11 is too large for exhaustion; sample random flat positions.
  // A property so every iteration draws an independent sample set and a
  // failure prints its CSG_PROPERTY_SEED replay line (docs/TESTING.md).
  RegularSparseGrid g(10, 11);
  ASSERT_EQ(g.num_points(), 127574017u);
  const auto r = testing::run_property(
      {"bijection_at_paper_scale", 8}, [&](std::mt19937_64& rng) {
        std::uniform_int_distribution<flat_index_t> dist(0,
                                                         g.num_points() - 1);
        for (int trial = 0; trial < 4000; ++trial) {
          const flat_index_t idx = dist(rng);
          const GridPoint gp = g.idx2gp(idx);
          if (!g.contains(gp))
            return "idx2gp(" + std::to_string(idx) +
                   ") left the grid (contains() = false)";
          if (const flat_index_t back = g.gp2idx(gp); back != idx)
            return "round trip " + std::to_string(idx) + " -> gp -> " +
                   std::to_string(back);
        }
        return std::string{};
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(RegularGrid, ContainsRejectsOutOfGridPoints) {
  RegularSparseGrid g(2, 3);
  EXPECT_TRUE(g.contains({{0, 0}, {1, 1}}));
  EXPECT_TRUE(g.contains({{2, 0}, {5, 1}}));
  EXPECT_FALSE(g.contains({{2, 1}, {5, 1}}));  // |l| = 3 >= n
  EXPECT_FALSE(g.contains({{0, 0}, {2, 1}}));  // even index
  EXPECT_FALSE(g.contains({{0}, {1}}));        // wrong dimension
}

TEST(RegularGrid, EqualityByShape) {
  EXPECT_EQ(RegularSparseGrid(3, 4), RegularSparseGrid(3, 4));
  EXPECT_FALSE(RegularSparseGrid(3, 4) == RegularSparseGrid(3, 5));
  EXPECT_FALSE(RegularSparseGrid(3, 4) == RegularSparseGrid(4, 4));
}

TEST(RegularGrid, BinmatLargeEnoughForAllSubspaceQueries) {
  RegularSparseGrid g(6, 9);
  EXPECT_GE(g.binmat().max_row(), 6u - 1 + 9);
}

TEST(RegularGridDeath, RejectsZeroDimension) {
  EXPECT_DEATH(RegularSparseGrid(0, 3), "precondition");
}

TEST(RegularGridDeath, RejectsZeroLevel) {
  EXPECT_DEATH(RegularSparseGrid(3, 0), "precondition");
}

TEST(RegularGridDeath, RejectsOversizedGrids) {
  // d = kMaxDim at n = kMaxLevel would overflow 63-bit flat indices.
  EXPECT_DEATH(RegularSparseGrid(kMaxDim, kMaxLevel), "precondition");
}

TEST(RegularGridDeath, Idx2GpOutOfRangeAborts) {
  RegularSparseGrid g(2, 3);
  EXPECT_DEATH(g.idx2gp(g.num_points()), "precondition");
}

}  // namespace
}  // namespace csg
