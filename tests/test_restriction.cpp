#include "csg/core/restriction.hpp"

#include <gtest/gtest.h>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg {
namespace {

CompactStorage compressed(const workloads::TestFunction& f, dim_t d,
                          level_t n) {
  CompactStorage s(d, n);
  s.sample(f.f);
  hierarchize(s);
  return s;
}

TEST(Restriction, EmbedInPlaneInterleavesCoordinates) {
  const CoordVector full = embed_in_plane(
      5, DimVector<dim_t>{1, 3}, CoordVector{0.1, 0.2, 0.3},
      CoordVector{0.8, 0.9});
  ASSERT_EQ(full.size(), 5u);
  EXPECT_EQ(full[0], 0.1);  // dropped
  EXPECT_EQ(full[1], 0.8);  // kept slot 0
  EXPECT_EQ(full[2], 0.2);  // dropped
  EXPECT_EQ(full[3], 0.9);  // kept slot 1
  EXPECT_EQ(full[4], 0.3);  // dropped
}

struct Case {
  dim_t d;
  level_t n;
  DimVector<dim_t> kept;
};

class RestrictionSweep : public ::testing::TestWithParam<Case> {};

TEST_P(RestrictionSweep, RestrictedInterpolantEqualsFullOnThePlane) {
  const auto& [d, n, kept] = GetParam();
  const auto f = workloads::simulation_field(d);
  const CompactStorage full = compressed(f, d, n);
  CoordVector anchor(d - kept.size());
  for (dim_t s = 0; s < anchor.size(); ++s)
    anchor[s] = static_cast<real_t>(0.15 + 0.6 * s / (anchor.size()));
  const CompactStorage restricted = restrict_to_plane(full, kept, anchor);
  ASSERT_EQ(restricted.dim(), kept.size());
  ASSERT_EQ(restricted.grid().level(), n);
  for (const CoordVector& x :
       workloads::uniform_points(kept.size(), 200, 55)) {
    const CoordVector embedded = embed_in_plane(d, kept, anchor, x);
    EXPECT_NEAR(evaluate(restricted, x), evaluate(full, embedded), 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RestrictionSweep,
    ::testing::Values(Case{2, 5, {0}}, Case{3, 5, {1}}, Case{3, 5, {0, 2}},
                      Case{4, 4, {1, 2}}, Case{5, 4, {0, 4}},
                      Case{5, 4, {0, 1, 2, 3}}, Case{6, 3, {2, 3, 5}}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      std::string name = csg::testing::dn_name(tpi.param.d, tpi.param.n);
      name += 'k';
      for (dim_t kd : tpi.param.kept) name += std::to_string(kd);
      return name;
    });

TEST(Restriction, AnchorOnGridLineStillExact) {
  // Anchor exactly on a coarse grid coordinate: many weights vanish; the
  // identity must still hold.
  const CompactStorage full = compressed(workloads::gaussian_bump(3), 3, 5);
  const CompactStorage slice =
      restrict_to_plane(full, DimVector<dim_t>{0, 1}, CoordVector{0.5});
  for (const CoordVector& x : workloads::uniform_points(2, 100, 4)) {
    EXPECT_NEAR(evaluate(slice, x),
                evaluate(full, CoordVector{x[0], x[1], 0.5}), 1e-13);
  }
}

TEST(Restriction, AnchorOnBoundaryGivesZeroFunction) {
  const CompactStorage full = compressed(workloads::parabola_product(3), 3, 4);
  const CompactStorage slice =
      restrict_to_plane(full, DimVector<dim_t>{0, 1}, CoordVector{0.0});
  for (flat_index_t j = 0; j < slice.size(); ++j) EXPECT_EQ(slice[j], 0.0);
}

TEST(Restriction, LineProbeRestriction) {
  // Keep a single dimension: the result is a 1d sparse (= full binary)
  // grid representing the field along the probe line.
  const dim_t d = 4;
  const CompactStorage full = compressed(workloads::oscillatory(d), d, 5);
  const CoordVector anchor{0.3, 0.45, 0.62};
  const CompactStorage line =
      restrict_to_plane(full, DimVector<dim_t>{2}, anchor);
  ASSERT_EQ(line.dim(), 1u);
  for (real_t x0 : {0.05, 0.31, 0.5, 0.77, 0.99}) {
    EXPECT_NEAR(evaluate(line, CoordVector{x0}),
                evaluate(full, CoordVector{0.3, 0.45, x0, 0.62}), 1e-13);
  }
}

TEST(Restriction, RepeatedRestrictionComposes) {
  // Restricting 4d -> 2d directly equals restricting 4d -> 3d -> 2d.
  const CompactStorage full = compressed(workloads::simulation_field(4), 4, 4);
  const CompactStorage direct = restrict_to_plane(
      full, DimVector<dim_t>{0, 2}, CoordVector{0.35, 0.8});
  const CompactStorage step1 = restrict_to_plane(
      full, DimVector<dim_t>{0, 2, 3}, CoordVector{0.35});
  const CompactStorage step2 =
      restrict_to_plane(step1, DimVector<dim_t>{0, 1}, CoordVector{0.8});
  ASSERT_EQ(direct.size(), step2.size());
  for (flat_index_t j = 0; j < direct.size(); ++j)
    EXPECT_NEAR(direct[j], step2[j], 1e-13);
}

TEST(RestrictionDeath, InvalidArgumentsRejected) {
  const CompactStorage full = compressed(workloads::parabola_product(3), 3, 3);
  EXPECT_DEATH(restrict_to_plane(full, DimVector<dim_t>{0, 1, 2},
                                 CoordVector{}),
               "precondition");  // must drop at least one dim
  EXPECT_DEATH(restrict_to_plane(full, DimVector<dim_t>{1, 0},
                                 CoordVector{0.5}),
               "precondition");  // not increasing
  EXPECT_DEATH(restrict_to_plane(full, DimVector<dim_t>{0},
                                 CoordVector{0.5}),
               "precondition");  // anchor size mismatch
}

}  // namespace
}  // namespace csg
