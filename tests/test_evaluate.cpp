#include "csg/core/evaluate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "csg/core/hierarchize.hpp"
#include "csg/core/point_block.hpp"
#include "csg/core/simd.hpp"
#include "csg/testing/generators.hpp"
#include "csg/testing/oracles.hpp"
#include "csg/testing/property.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

using workloads::TestFunction;

/// Restores the process-wide kernel selection on scope exit so a failing
/// assertion cannot leak a forced kernel into later tests.
struct KernelGuard {
  EvalKernel saved = eval_kernel();
  ~KernelGuard() { set_eval_kernel(saved); }
};

CompactStorage compressed(const TestFunction& f, dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(f.f);
  hierarchize(s);
  return s;
}

TEST(Evaluate, SingleBasisFunctionReproducesItsHat) {
  // Put a unit coefficient on one basis function; evaluation must equal the
  // tensor hat everywhere.
  CompactStorage s(2, 4);
  const LevelVector l{1, 2};
  const IndexVector i{3, 5};
  s.at(l, i) = 1.0;
  for (const CoordVector& x : workloads::uniform_points(2, 200, 11)) {
    const real_t expected =
        hat_basis_1d(1, 3, x[0]) * hat_basis_1d(2, 5, x[1]);
    EXPECT_NEAR(evaluate(s, x), expected, 1e-15);
  }
}

TEST(Evaluate, ZeroOnDomainBoundary) {
  const CompactStorage s = compressed(workloads::gaussian_bump(3), 3, 5);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{0.0, 0.3, 0.7}), 0.0);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{0.4, 1.0, 0.7}), 0.0);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{0.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{1.0, 1.0, 1.0}), 0.0);
}

TEST(Evaluate, ExactForRepresentableFunction) {
  // coarse_dlinear lies in the span of every grid of level >= 2, so sparse
  // grid interpolation is exact everywhere, not only at grid points.
  const dim_t d = 3;
  const TestFunction f = workloads::coarse_dlinear(d);
  const CompactStorage s = compressed(f, d, 4);
  for (const CoordVector& x : workloads::halton_points(d, 300)) {
    EXPECT_NEAR(evaluate(s, x), f(x), 1e-13);
  }
}

TEST(Evaluate, ManyMatchesSingle) {
  const CompactStorage s = compressed(workloads::simulation_field(3), 3, 5);
  const auto pts = workloads::uniform_points(3, 64, 5);
  const auto many = evaluate_many(s, pts);
  ASSERT_EQ(many.size(), pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_EQ(many[p], evaluate(s, pts[p]));
}

class BlockSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockSizeSweep, BlockedEvaluationMatchesUnblocked) {
  const CompactStorage s = compressed(workloads::oscillatory(4), 4, 4);
  const auto pts = workloads::uniform_points(4, 133, 17);
  const auto plain = evaluate_many(s, pts);
  const auto blocked = evaluate_many_blocked(s, pts, GetParam());
  ASSERT_EQ(blocked.size(), plain.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_NEAR(blocked[p], plain[p], 1e-15) << "point " << p;
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(1, 2, 7, 64, 133, 500));

TEST(Evaluate, SpanFormMatchesStorageForm) {
  const CompactStorage s = compressed(workloads::gaussian_bump(2), 2, 5);
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  for (const CoordVector& x : workloads::uniform_points(2, 50, 3))
    EXPECT_EQ(evaluate_span(s.grid(), coeffs, x), evaluate(s, x));
}

TEST(Evaluate, InterpolationErrorDecaysWithLevel) {
  // Classic sparse grid convergence: for the smooth parabola product the
  // max interpolation error must shrink monotonically (and substantially)
  // as the level grows.
  const dim_t d = 2;
  const TestFunction f = workloads::parabola_product(d);
  const auto pts = workloads::halton_points(d, 500);
  real_t prev_err = std::numeric_limits<real_t>::infinity();
  for (level_t n : {2, 4, 6, 8}) {
    const CompactStorage s = compressed(f, d, n);
    real_t err = 0;
    for (const CoordVector& x : pts)
      err = std::max(err, std::abs(evaluate(s, x) - f(x)));
    EXPECT_LT(err, prev_err * 0.5) << "no decay at level " << n;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);
}

TEST(Evaluate, HigherDimensionalErrorIsControlled) {
  const dim_t d = 5;
  const TestFunction f = workloads::parabola_product(d);
  const CompactStorage s = compressed(f, d, 7);
  real_t err = 0;
  for (const CoordVector& x : workloads::halton_points(d, 300))
    err = std::max(err, std::abs(evaluate(s, x) - f(x)));
  EXPECT_LT(err, 0.05);
}

TEST(EvaluateSoa, KernelSelectionApi) {
  KernelGuard guard;
  set_eval_kernel(EvalKernel::kScalar);
  EXPECT_EQ(eval_kernel(), EvalKernel::kScalar);
  EXPECT_FALSE(eval_uses_soa());
  set_eval_kernel(EvalKernel::kSoa);
  EXPECT_EQ(eval_kernel(), EvalKernel::kSoa);
  EXPECT_TRUE(eval_uses_soa());
  set_eval_kernel(EvalKernel::kAuto);
  EXPECT_EQ(eval_kernel(), EvalKernel::kAuto);
}

TEST(EvaluateSoa, BitIdenticalToScalarAcrossBlockSizes) {
  const CompactStorage s = compressed(workloads::oscillatory(4), 4, 5);
  const auto pts = workloads::uniform_points(4, 3 * kPointBlockLane + 5, 23);
  KernelGuard guard;
  for (const std::size_t block :
       {std::size_t{1}, kPointBlockLane - 1, kPointBlockLane,
        kPointBlockLane + 1, pts.size() + 40}) {
    set_eval_kernel(EvalKernel::kScalar);
    const auto scalar = evaluate_many_blocked(s, pts, block);
    set_eval_kernel(EvalKernel::kSoa);
    const auto soa = evaluate_many_blocked(s, pts, block);
    ASSERT_EQ(soa.size(), scalar.size());
    for (std::size_t p = 0; p < pts.size(); ++p)
      EXPECT_EQ(soa[p], scalar[p]) << "block=" << block << " point " << p;
  }
}

TEST(EvaluateSoa, BoundaryAndGridLinePoints) {
  // Points exactly on the 0/1 domain boundary and on dyadic grid lines sit
  // on a subspace support edge: the hat product is an exact 0 there, and
  // the branch-free select must reproduce the scalar path bit for bit.
  const CompactStorage s = compressed(workloads::simulation_field(2), 2, 5);
  const std::vector<CoordVector> pts{
      {0.0, 0.0},   {1.0, 1.0},  {0.0, 1.0},    {0.5, 0.5},
      {0.25, 0.75}, {0.5, 0.31}, {0.125, 0.625}, {1.0, 0.41},
      {0.0, 0.99},  {0.875, 0.0}};
  KernelGuard guard;
  set_eval_kernel(EvalKernel::kSoa);
  const auto soa = evaluate_many_blocked(s, pts, 4);
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_EQ(soa[p], evaluate(s, pts[p])) << "point " << p;
  EXPECT_EQ(soa[0], 0.0);
  EXPECT_EQ(soa[1], 0.0);
  EXPECT_EQ(soa[2], 0.0);
}

TEST(EvaluateSoa, DegenerateShapes) {
  KernelGuard guard;
  set_eval_kernel(EvalKernel::kSoa);
  {
    // d = 1, n = 1: a single basis function.
    CompactStorage s(1, 1);
    s[0] = 2.0;
    const std::vector<CoordVector> pts{{0.5}, {0.25}, {0.0}, {1.0}};
    const auto got = evaluate_many_blocked(s, pts, 3);
    EXPECT_EQ(got[0], 2.0);
    EXPECT_EQ(got[1], 1.0);
    EXPECT_EQ(got[2], 0.0);
    EXPECT_EQ(got[3], 0.0);
  }
  {
    // Single point, block far larger than the point count.
    const CompactStorage s = compressed(workloads::gaussian_bump(3), 3, 4);
    const std::vector<CoordVector> one{{0.3, 0.6, 0.9}};
    const auto got = evaluate_many_blocked(s, one, 1024);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], evaluate(s, one[0]));
  }
  {
    // Empty point span: no blocks, no output.
    const CompactStorage s = compressed(workloads::gaussian_bump(2), 2, 3);
    EXPECT_TRUE(evaluate_many_blocked(s, {}, 8).empty());
  }
}

TEST(EvaluateSoa, StatsCountBlocksLanesAndSubspaces) {
  const CompactStorage s = compressed(workloads::oscillatory(3), 3, 5);
  const auto pts = workloads::uniform_points(3, 133, 7);
  const auto plan = EvaluationPlan::shared(s.grid());
  const std::size_t block = 17;
  KernelGuard guard;
  set_eval_kernel(EvalKernel::kSoa);
  reset_soa_kernel_stats();
  (void)evaluate_many_blocked(s, pts, block);
  const SoaKernelStats stats = soa_kernel_stats();
  std::uint64_t blocks = 0, lanes = 0;
  for (std::size_t b0 = 0; b0 < pts.size(); b0 += block) {
    const std::size_t len = std::min(block, pts.size() - b0);
    ++blocks;
    lanes += (len + kPointBlockLane - 1) / kPointBlockLane;
  }
  EXPECT_EQ(stats.blocks, blocks);
  EXPECT_EQ(stats.lanes, lanes);
  EXPECT_EQ(stats.subspaces_visited, blocks * plan->subspace_count());
  // The scalar path must not touch the SoA tallies.
  set_eval_kernel(EvalKernel::kScalar);
  (void)evaluate_many_blocked(s, pts, block);
  EXPECT_EQ(soa_kernel_stats().blocks, blocks);
}

TEST(EvaluateSoa, OracleBatteryOnRandomGrids) {
  // Differential property: SoA vs scalar vs the reference walker over
  // seeded random shapes, coefficients, and point clouds. Replay a failure
  // with CSG_PROPERTY_SEED=<seed> (docs/TESTING.md).
  const auto r = testing::run_property(
      {"eval_soa_parity", 8}, [](std::mt19937_64& rng) {
        const auto shape = testing::random_shape(
            rng, {.max_dim = 6, .max_level = 6, .max_points = 40'000});
        const CompactStorage coeffs =
            testing::random_coefficients(rng, shape);
        auto pts = testing::random_points(rng, shape.d, 45);
        // Salt the cloud with exact boundary/grid-line coordinates so the
        // support-edge selects are exercised every iteration.
        pts.push_back(CoordVector(shape.d, 0.0));
        pts.push_back(CoordVector(shape.d, 1.0));
        pts.push_back(CoordVector(shape.d, 0.5));
        const auto res = testing::check_eval_soa_parity(coeffs, pts);
        return res.ok ? std::string{} : res.detail;
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(EvaluateSoaDeath, BlockDimensionMismatchAborts) {
  const CompactStorage s = compressed(workloads::gaussian_bump(2), 2, 3);
  const auto plan = EvaluationPlan::shared(s.grid());
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  PointBlock block;
  const std::vector<CoordVector> pts{{0.5, 0.5, 0.5}};
  block.assign(3, pts);
  EXPECT_DEATH(evaluate_block_soa(*plan, coeffs, block), "precondition");
}

TEST(EvaluateDeath, DimensionMismatchAborts) {
  const CompactStorage s(2, 3);
  EXPECT_DEATH(evaluate(s, CoordVector{0.5}), "precondition");
}

}  // namespace
}  // namespace csg
