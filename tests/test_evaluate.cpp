#include "csg/core/evaluate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

using workloads::TestFunction;

CompactStorage compressed(const TestFunction& f, dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(f.f);
  hierarchize(s);
  return s;
}

TEST(Evaluate, SingleBasisFunctionReproducesItsHat) {
  // Put a unit coefficient on one basis function; evaluation must equal the
  // tensor hat everywhere.
  CompactStorage s(2, 4);
  const LevelVector l{1, 2};
  const IndexVector i{3, 5};
  s.at(l, i) = 1.0;
  for (const CoordVector& x : workloads::uniform_points(2, 200, 11)) {
    const real_t expected =
        hat_basis_1d(1, 3, x[0]) * hat_basis_1d(2, 5, x[1]);
    EXPECT_NEAR(evaluate(s, x), expected, 1e-15);
  }
}

TEST(Evaluate, ZeroOnDomainBoundary) {
  const CompactStorage s = compressed(workloads::gaussian_bump(3), 3, 5);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{0.0, 0.3, 0.7}), 0.0);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{0.4, 1.0, 0.7}), 0.0);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{0.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(evaluate(s, CoordVector{1.0, 1.0, 1.0}), 0.0);
}

TEST(Evaluate, ExactForRepresentableFunction) {
  // coarse_dlinear lies in the span of every grid of level >= 2, so sparse
  // grid interpolation is exact everywhere, not only at grid points.
  const dim_t d = 3;
  const TestFunction f = workloads::coarse_dlinear(d);
  const CompactStorage s = compressed(f, d, 4);
  for (const CoordVector& x : workloads::halton_points(d, 300)) {
    EXPECT_NEAR(evaluate(s, x), f(x), 1e-13);
  }
}

TEST(Evaluate, ManyMatchesSingle) {
  const CompactStorage s = compressed(workloads::simulation_field(3), 3, 5);
  const auto pts = workloads::uniform_points(3, 64, 5);
  const auto many = evaluate_many(s, pts);
  ASSERT_EQ(many.size(), pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_EQ(many[p], evaluate(s, pts[p]));
}

class BlockSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockSizeSweep, BlockedEvaluationMatchesUnblocked) {
  const CompactStorage s = compressed(workloads::oscillatory(4), 4, 4);
  const auto pts = workloads::uniform_points(4, 133, 17);
  const auto plain = evaluate_many(s, pts);
  const auto blocked = evaluate_many_blocked(s, pts, GetParam());
  ASSERT_EQ(blocked.size(), plain.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_NEAR(blocked[p], plain[p], 1e-15) << "point " << p;
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(1, 2, 7, 64, 133, 500));

TEST(Evaluate, SpanFormMatchesStorageForm) {
  const CompactStorage s = compressed(workloads::gaussian_bump(2), 2, 5);
  const std::span<const real_t> coeffs(s.data(), s.values().size());
  for (const CoordVector& x : workloads::uniform_points(2, 50, 3))
    EXPECT_EQ(evaluate_span(s.grid(), coeffs, x), evaluate(s, x));
}

TEST(Evaluate, InterpolationErrorDecaysWithLevel) {
  // Classic sparse grid convergence: for the smooth parabola product the
  // max interpolation error must shrink monotonically (and substantially)
  // as the level grows.
  const dim_t d = 2;
  const TestFunction f = workloads::parabola_product(d);
  const auto pts = workloads::halton_points(d, 500);
  real_t prev_err = std::numeric_limits<real_t>::infinity();
  for (level_t n : {2, 4, 6, 8}) {
    const CompactStorage s = compressed(f, d, n);
    real_t err = 0;
    for (const CoordVector& x : pts)
      err = std::max(err, std::abs(evaluate(s, x) - f(x)));
    EXPECT_LT(err, prev_err * 0.5) << "no decay at level " << n;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);
}

TEST(Evaluate, HigherDimensionalErrorIsControlled) {
  const dim_t d = 5;
  const TestFunction f = workloads::parabola_product(d);
  const CompactStorage s = compressed(f, d, 7);
  real_t err = 0;
  for (const CoordVector& x : workloads::halton_points(d, 300))
    err = std::max(err, std::abs(evaluate(s, x) - f(x)));
  EXPECT_LT(err, 0.05);
}

TEST(EvaluateDeath, DimensionMismatchAborts) {
  const CompactStorage s(2, 3);
  EXPECT_DEATH(evaluate(s, CoordVector{0.5}), "precondition");
}

}  // namespace
}  // namespace csg
