#include "csg/core/level_enumeration.hpp"
#include "csg/testing/param_names.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace csg {
namespace {

TEST(LevelEnumeration, FirstAndLastShape) {
  EXPECT_EQ(first_level(3, 5), (LevelVector{5, 0, 0}));
  EXPECT_EQ(last_level(3, 5), (LevelVector{0, 0, 5}));
  EXPECT_EQ(first_level(1, 4), (LevelVector{4}));
  EXPECT_EQ(last_level(1, 4), (LevelVector{4}));
}

TEST(LevelEnumeration, NextLevelSmallExample) {
  // d=2, n=2: the order of Alg. 3 is (2,0), (1,1), (0,2).
  LevelVector l = first_level(2, 2);
  EXPECT_EQ(l, (LevelVector{2, 0}));
  l = next_level(l);
  EXPECT_EQ(l, (LevelVector{1, 1}));
  l = next_level(l);
  EXPECT_EQ(l, (LevelVector{0, 2}));
}

TEST(LevelEnumeration, AdvanceOnLastReturnsFalse) {
  LevelVector l = last_level(4, 3);
  EXPECT_FALSE(advance_level(l));
  EXPECT_EQ(l, last_level(4, 3));
}

TEST(LevelEnumeration, AdvanceOnAllZeroReturnsFalse) {
  // The n=0 group has the single vector (0,...,0) with no successor.
  LevelVector l(5, 0);
  EXPECT_FALSE(advance_level(l));
  EXPECT_EQ(l, LevelVector(5, 0));
}

TEST(LevelEnumeration, AdvanceOnSingleDimensionReturnsFalse) {
  // d=1: every group has exactly one vector, including n=0.
  LevelVector zero{0};
  EXPECT_FALSE(advance_level(zero));
  LevelVector five{5};
  EXPECT_FALSE(advance_level(five));
  EXPECT_EQ(five, LevelVector{5});
}

TEST(LevelEnumerationDeath, NextLevelOnAllZeroAborts) {
  // The all-zero vector (the single subspace of an n=0 group) has no
  // successor; the precondition must fire before the scan runs off the end
  // of the vector (regression: the scan used to read out of bounds).
  LevelVector l(3, 0);
  EXPECT_DEATH((void)next_level(l), "precondition");
  LevelVector single{0};
  EXPECT_DEATH((void)next_level(single), "precondition");
}

TEST(LevelEnumerationDeath, NextLevelOnLastVectorAborts) {
  EXPECT_DEATH((void)next_level(last_level(4, 3)), "precondition");
  EXPECT_DEATH((void)next_level(LevelVector{7}), "precondition");
}

TEST(LevelEnumeration, NumSubspacesMatchesFormula) {
  BinomialTable binmat(30);
  EXPECT_EQ(num_subspaces(1, 7, binmat), 1u);
  EXPECT_EQ(num_subspaces(2, 3, binmat), 4u);
  EXPECT_EQ(num_subspaces(10, 10, binmat), 92378u);  // C(19,9), paper scale
}

struct DimLevel {
  dim_t d;
  level_t n;
};

class LevelSweep : public ::testing::TestWithParam<DimLevel> {};

TEST_P(LevelSweep, IterativeMatchesRecursiveEnumeration) {
  const auto [d, n] = GetParam();
  BinomialTable binmat(d - 1 + n);
  std::vector<LevelVector> reference;
  enumerate_levels(d, n, [&](const LevelVector& l) { reference.push_back(l); });
  ASSERT_EQ(reference.size(), num_subspaces(d, n, binmat));

  LevelVector l = first_level(d, n);
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_EQ(l, reference[k]) << "position " << k;
    if (k + 1 < reference.size())
      ASSERT_TRUE(advance_level(l));
    else
      EXPECT_FALSE(advance_level(l));
  }
}

TEST_P(LevelSweep, EveryVectorSumsToN) {
  const auto [d, n] = GetParam();
  for (const LevelVector& l : LevelRange(d, n)) {
    EXPECT_EQ(l.l1_norm(), n);
    EXPECT_EQ(l.size(), d);
  }
}

TEST_P(LevelSweep, NoDuplicatesInEnumeration) {
  const auto [d, n] = GetParam();
  BinomialTable binmat(d - 1 + n);
  std::set<LevelVector> seen;
  for (const LevelVector& l : LevelRange(d, n)) EXPECT_TRUE(seen.insert(l).second);
  EXPECT_EQ(seen.size(), num_subspaces(d, n, binmat));
}

TEST_P(LevelSweep, SubspaceIndexIsConsecutiveUnderNext) {
  // The Sec. 4.2 theorem: subspaceidx(next(l)) == subspaceidx(l) + 1.
  const auto [d, n] = GetParam();
  BinomialTable binmat(d - 1 + n);
  std::uint64_t expected = 0;
  for (const LevelVector& l : LevelRange(d, n))
    EXPECT_EQ(subspace_index(l, binmat), expected++);
  EXPECT_EQ(expected, num_subspaces(d, n, binmat));
}

TEST_P(LevelSweep, UnrankInvertsSubspaceIndex) {
  const auto [d, n] = GetParam();
  BinomialTable binmat(d - 1 + n);
  const std::uint64_t count = num_subspaces(d, n, binmat);
  for (std::uint64_t r = 0; r < count; ++r) {
    const LevelVector l = unrank_subspace(d, n, r, binmat);
    EXPECT_EQ(subspace_index(l, binmat), r);
    EXPECT_EQ(l.l1_norm(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevelSweep,
    ::testing::Values(DimLevel{1, 0}, DimLevel{1, 6}, DimLevel{2, 0},
                      DimLevel{2, 5}, DimLevel{3, 4}, DimLevel{4, 6},
                      DimLevel{5, 5}, DimLevel{6, 4}, DimLevel{8, 3},
                      DimLevel{10, 3}, DimLevel{16, 2}),
    [](const ::testing::TestParamInfo<DimLevel>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(LevelEnumeration, SubspaceIndexOfFirstIsZero) {
  BinomialTable binmat(20);
  for (dim_t d = 1; d <= 10; ++d)
    for (level_t n = 0; n <= 8; ++n)
      EXPECT_EQ(subspace_index(first_level(d, n), binmat), 0u);
}

TEST(LevelEnumeration, SubspaceIndexOfLastIsCountMinusOne) {
  BinomialTable binmat(20);
  for (dim_t d = 2; d <= 10; ++d)
    for (level_t n = 0; n <= 8; ++n)
      EXPECT_EQ(subspace_index(last_level(d, n), binmat),
                num_subspaces(d, n, binmat) - 1);
}

TEST(LevelEnumeration, LevelRangeEmptyNeverHappens) {
  // Even n=0 ranges contain exactly one vector.
  int count = 0;
  for ([[maybe_unused]] const LevelVector& l : LevelRange(7, 0)) ++count;
  EXPECT_EQ(count, 1);
}

TEST(LevelEnumerationDeath, UnrankOutOfRangeAborts) {
  BinomialTable binmat(10);
  EXPECT_DEATH(unrank_subspace(3, 4, num_subspaces(3, 4, binmat), binmat),
               "precondition");
}

}  // namespace
}  // namespace csg
