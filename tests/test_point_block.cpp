#include "csg/core/point_block.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "csg/testing/generators.hpp"

namespace csg {
namespace {

std::vector<CoordVector> make_points(dim_t d, std::size_t count) {
  std::mt19937_64 rng(0xb10cull);
  return testing::random_points(rng, d, count);
}

TEST(PointBlock, TransposesEveryCoordinate) {
  const dim_t d = 4;
  const auto pts = make_points(d, 13);
  PointBlock block;
  block.assign(d, pts);
  ASSERT_EQ(block.dim(), d);
  ASSERT_EQ(block.size(), pts.size());
  for (dim_t t = 0; t < d; ++t) {
    const real_t* col = block.coords(t);
    for (std::size_t p = 0; p < pts.size(); ++p)
      EXPECT_EQ(col[p], pts[p][t]) << "t=" << t << " p=" << p;
  }
}

TEST(PointBlock, PadsToLaneMultipleWithZeroCoordinate) {
  // Pad coordinate 0 sits on the domain boundary: every hat product over a
  // padded slot is 0, so pad lanes flow through the kernel harmlessly.
  const dim_t d = 2;
  PointBlock block;
  for (const std::size_t count : {std::size_t{1}, kPointBlockLane - 1,
                                  kPointBlockLane, kPointBlockLane + 1,
                                  3 * kPointBlockLane + 5}) {
    block.assign(d, make_points(d, count));
    const std::size_t padded =
        (count + kPointBlockLane - 1) / kPointBlockLane * kPointBlockLane;
    EXPECT_EQ(block.padded_size(), padded) << "count=" << count;
    EXPECT_EQ(block.lanes(), padded / kPointBlockLane);
    EXPECT_EQ(block.padded_size() % kPointBlockLane, 0u);
    for (dim_t t = 0; t < d; ++t)
      for (std::size_t p = count; p < padded; ++p)
        EXPECT_EQ(block.coords(t)[p], real_t{0}) << "pad slot " << p;
  }
}

TEST(PointBlock, EmptySpanYieldsZeroSizes) {
  PointBlock block;
  block.assign(3, {});
  EXPECT_EQ(block.dim(), 3u);
  EXPECT_EQ(block.size(), 0u);
  EXPECT_EQ(block.padded_size(), 0u);
  EXPECT_EQ(block.lanes(), 0u);
}

TEST(PointBlock, ReassignAtOrBelowCapacityDoesNotAllocate) {
  const dim_t d = 5;
  PointBlock block;
  block.assign(d, make_points(d, 64));
  const std::uint64_t grown = PointBlock::allocation_count();
  // Steady state: same shape, smaller blocks, fewer dimensions — all fit in
  // the existing arena, so the process-wide growth counter must stay flat.
  for (const std::size_t count : {std::size_t{64}, std::size_t{17},
                                  std::size_t{1}, std::size_t{64}}) {
    block.assign(d, make_points(d, count));
    EXPECT_EQ(block.size(), count);
  }
  block.assign(2, make_points(2, 64));
  EXPECT_EQ(PointBlock::allocation_count(), grown);
}

TEST(PointBlock, GrowthBumpsAllocationCounter) {
  PointBlock block;
  block.assign(2, make_points(2, 8));
  const std::uint64_t before = PointBlock::allocation_count();
  block.assign(2, make_points(2, 8 * kPointBlockLane));  // more points
  EXPECT_GT(PointBlock::allocation_count(), before);
  const std::uint64_t after_points = PointBlock::allocation_count();
  block.assign(6, make_points(6, 8));  // more dimensions
  EXPECT_GT(PointBlock::allocation_count(), after_points);
}

TEST(PointBlock, ScratchArraysAreDisjointFromCoordinates) {
  const dim_t d = 3;
  const auto pts = make_points(d, 10);
  PointBlock block;
  block.assign(d, pts);
  for (std::size_t p = 0; p < block.padded_size(); ++p) {
    block.accum()[p] = 1.0;
    block.scratch_products()[p] = 2.0;
    block.scratch_indices()[p] = 3.0;
  }
  for (dim_t t = 0; t < d; ++t)
    for (std::size_t p = 0; p < pts.size(); ++p)
      EXPECT_EQ(block.coords(t)[p], pts[p][t]);
  EXPECT_GE(block.memory_bytes(),
            (static_cast<std::size_t>(d) + 3) * block.padded_size() *
                sizeof(real_t));
}

TEST(PointBlockDeath, CoordinateAxisOutOfRangeAborts) {
  PointBlock block;
  block.assign(2, make_points(2, 4));
  EXPECT_DEATH((void)block.coords(2), "precondition");
}

TEST(PointBlockDeath, PointDimensionMismatchAborts) {
  PointBlock block;
  const std::vector<CoordVector> bad{CoordVector{0.5, 0.5, 0.5}};
  EXPECT_DEATH(block.assign(2, bad), "precondition");
}

}  // namespace
}  // namespace csg
