#include "csg/gpusim/executor.hpp"

#include <gtest/gtest.h>

#include "csg/gpusim/device.hpp"

namespace csg::gpusim {
namespace {

DeviceSpec test_device() { return tesla_c1060(); }

TEST(DeviceSpec, OccupancyFullWhenUnconstrained) {
  const DeviceSpec dev = test_device();
  EXPECT_DOUBLE_EQ(dev.occupancy(256, 0), 1.0);
  EXPECT_DOUBLE_EQ(dev.occupancy(128, 16), 1.0);
}

TEST(DeviceSpec, OccupancyLimitedBySharedMemory) {
  const DeviceSpec dev = test_device();  // 16 KB shared, 1024 contexts
  // 8 KB per block of 128 threads: 2 resident blocks = 256 threads = 25%.
  EXPECT_DOUBLE_EQ(dev.occupancy(128, 8 * 1024), 0.25);
  // A block demanding more than the whole SM cannot run at all.
  EXPECT_DOUBLE_EQ(dev.occupancy(128, 17 * 1024), 0.0);
}

TEST(DeviceSpec, OccupancyLimitedByThreadContexts) {
  const DeviceSpec dev = test_device();
  // 512-thread blocks: 2 fit into 1024 contexts regardless of shared mem.
  EXPECT_DOUBLE_EQ(dev.occupancy(512, 64), 1.0);
  EXPECT_DOUBLE_EQ(dev.occupancy(384, 0), 2.0 * 384 / 1024);  // granularity
}

TEST(Launcher, PerfectlyCoalescedWarpLoadsOneSegmentPerSixteenLanes) {
  // 32 lanes reading consecutive doubles touch 256 bytes = 2 segments.
  Launcher ln(test_device());
  GlobalBuffer<double> buf(ln, 64);
  ln.launch(1, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { th.ld(buf, th.tid()); });
  });
  EXPECT_EQ(ln.total_counters().global_accesses, 32u);
  EXPECT_EQ(ln.total_counters().global_transactions, 2u);
  EXPECT_EQ(ln.total_counters().warp_instructions, 1u);
}

TEST(Launcher, ScatteredWarpLoadsOneSegmentPerLane) {
  Launcher ln(test_device());
  GlobalBuffer<double> buf(ln, 32 * 64);
  ln.launch(1, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { th.ld(buf, th.tid() * 64); });  // 512B apart
  });
  EXPECT_EQ(ln.total_counters().global_transactions, 32u);
}

TEST(Launcher, BroadcastLoadCoalescesToOneTransaction) {
  Launcher ln(test_device());
  GlobalBuffer<double> buf(ln, 8);
  ln.launch(1, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { th.ld(buf, 3); });
  });
  EXPECT_EQ(ln.total_counters().global_transactions, 1u);
}

TEST(Launcher, SeparateBuffersNeverShareATransaction) {
  Launcher ln(test_device());
  GlobalBuffer<double> a(ln, 1);
  GlobalBuffer<double> b(ln, 1);
  ln.launch(1, 2, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) {
      if (th.tid() == 0)
        th.ld(a, 0);
      else
        th.ld(b, 0);
    });
  });
  EXPECT_EQ(ln.total_counters().global_transactions, 2u);
}

TEST(Launcher, DivergenceShowsAsLowSimdEfficiency) {
  Launcher ln(test_device());
  GlobalBuffer<double> buf(ln, 64);
  ln.launch(1, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) {
      if (th.tid() % 2 == 0) th.flop(4);  // half the lanes idle
    });
  });
  // warp executes max-lane 4 instruction slots; lanes contribute 16*4.
  EXPECT_DOUBLE_EQ(ln.total_counters().simd_efficiency(32), 16.0 * 4 / (4 * 32));
}

TEST(Launcher, UniformComputeHasFullSimdEfficiency) {
  Launcher ln(test_device());
  ln.launch(2, 64, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { th.flop(7); });
  });
  EXPECT_DOUBLE_EQ(ln.total_counters().simd_efficiency(32), 1.0);
}

TEST(Launcher, MasterPhaseRunsOnlyThreadZero) {
  Launcher ln(test_device());
  GlobalBuffer<int> buf(ln, 4);
  int executed = 0;
  ln.launch(1, 64, 0, [&](Block& blk) {
    blk.master([&](ThreadCtx& th) {
      EXPECT_EQ(th.tid(), 0u);
      ++executed;
      th.st(buf, 0, 42);
    });
  });
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(buf.host()[0], 42);
  EXPECT_EQ(ln.total_counters().global_transactions, 1u);
}

TEST(Launcher, PhasesActAsBarriers) {
  // Writes from phase 1 must be visible to every thread of phase 2 —
  // the __syncthreads semantics the phase model guarantees by construction.
  Launcher ln(test_device());
  GlobalBuffer<int> buf(ln, 64);
  GlobalBuffer<int> out(ln, 64);
  ln.launch(1, 64, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) {
      th.st(buf, th.tid(), static_cast<int>(th.tid()) + 1);
    });
    blk.all([&](ThreadCtx& th) {
      // read a value written by a *different* thread
      th.st(out, th.tid(), th.ld(buf, (th.tid() + 1) % 64));
    });
  });
  for (int tid = 0; tid < 64; ++tid)
    EXPECT_EQ(out.host()[static_cast<std::size_t>(tid)], (tid + 1) % 64 + 1);
}

TEST(Launcher, SharedArrayCommunicatesWithinBlock) {
  Launcher ln(test_device());
  GlobalBuffer<int> out(ln, 32);
  ln.launch(1, 32, 1024, [&](Block& blk) {
    SharedArray<int> sh = blk.alloc_shared<int>(1);
    blk.master([&](ThreadCtx& th) { sh.write(th, 0, 99); });
    blk.all([&](ThreadCtx& th) { th.st(out, th.tid(), sh.read(th, 0)); });
  });
  for (int v : out.host()) EXPECT_EQ(v, 99);
  EXPECT_EQ(ln.total_counters().shared_accesses, 33u);
}

TEST(Launcher, ConstantReadsDoNotGenerateTransactions) {
  Launcher ln(test_device());
  ConstantBuffer<std::uint64_t> cb(std::vector<std::uint64_t>{5, 6, 7});
  ln.launch(1, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { EXPECT_EQ(th.ld_const(cb, 1), 6u); });
  });
  EXPECT_EQ(ln.total_counters().global_transactions, 0u);
  EXPECT_EQ(ln.total_counters().constant_accesses, 32u);
}

TEST(Launcher, TimingMemoryBoundKernel) {
  const DeviceSpec dev = test_device();
  PerfCounters c;
  c.global_transactions = 1000000;
  c.warp_instructions = 10;
  const KernelTiming t = model_kernel_time(dev, c, 1.0);
  EXPECT_GT(t.memory_ms, t.compute_ms);
  EXPECT_DOUBLE_EQ(t.total_ms, t.memory_ms);  // fully hidden latency
  // 1e6 transactions * 128 B / 102 GB/s ~ 1.25 ms.
  EXPECT_NEAR(t.memory_ms, 1.2549, 1e-3);
}

TEST(Launcher, LowOccupancyExposesLatency) {
  const DeviceSpec dev = test_device();
  PerfCounters c;
  c.global_transactions = 1000;
  c.warp_instructions = 10;
  const KernelTiming full = model_kernel_time(dev, c, 1.0);
  const KernelTiming starved = model_kernel_time(dev, c, 0.1);
  EXPECT_GT(starved.total_ms, full.total_ms);
}

TEST(Launcher, TotalsAccumulateAcrossLaunchesAndReset) {
  Launcher ln(test_device());
  GlobalBuffer<double> buf(ln, 32);
  for (int r = 0; r < 3; ++r)
    ln.launch(1, 32, 0, [&](Block& blk) {
      blk.all([&](ThreadCtx& th) { th.ld(buf, th.tid()); });
    });
  EXPECT_EQ(ln.launch_count(), 3u);
  EXPECT_EQ(ln.total_counters().global_accesses, 96u);
  EXPECT_GT(ln.total_modeled_ms(), 0.0);
  ln.reset();
  EXPECT_EQ(ln.launch_count(), 0u);
  EXPECT_EQ(ln.total_counters().global_accesses, 0u);
}

TEST(Launcher, TailBlockDivergenceCounted) {
  // 40 threads in a 64-thread block: warp 2 has only 8 active lanes.
  Launcher ln(test_device());
  GlobalBuffer<double> buf(ln, 64);
  ln.launch(1, 64, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) {
      if (th.tid() < 40) th.ld(buf, th.tid());
    });
  });
  EXPECT_EQ(ln.total_counters().global_accesses, 40u);
  // warp 0: 32 consecutive doubles = 2 segments; warp 1: 8 doubles = 1.
  EXPECT_EQ(ln.total_counters().global_transactions, 3u);
}

TEST(Launcher, FermiCachesAbsorbRepeatedTransactions) {
  Launcher ln(fermi_c2050());
  GlobalBuffer<double> buf(ln, 16);
  // Two phases touching the same line: the second hits in the per-SM L1.
  ln.launch(1, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { th.ld(buf, 0); });
    blk.all([&](ThreadCtx& th) { th.ld(buf, 0); });
  });
  EXPECT_EQ(ln.total_counters().global_transactions, 1u);
  EXPECT_EQ(ln.total_counters().l1_hit_transactions, 1u);
}

TEST(Launcher, CachesPersistAcrossLaunchesUntilReset) {
  Launcher ln(fermi_c2050());
  GlobalBuffer<double> buf(ln, 16);
  auto once = [&] {
    ln.launch(1, 32, 0, [&](Block& blk) {
      blk.all([&](ThreadCtx& th) { th.ld(buf, 0); });
    });
  };
  once();  // cold: DRAM
  once();  // warm: same SM's L1 still holds the line
  EXPECT_EQ(ln.total_counters().global_transactions, 1u);
  EXPECT_EQ(ln.total_counters().l1_hit_transactions, 1u);
  ln.reset();
  once();  // flushed: DRAM again
  EXPECT_EQ(ln.total_counters().global_transactions, 1u);
}

TEST(Launcher, BlocksOnDifferentSmsHavePrivateL1s) {
  Launcher ln(fermi_c2050());
  GlobalBuffer<double> buf(ln, 16);
  // Two blocks -> SMs 0 and 1. Both read the same line: the second block's
  // L1 is cold, but the device-wide L2 already holds it.
  ln.launch(2, 32, 0, [&](Block& blk) {
    blk.all([&](ThreadCtx& th) { th.ld(buf, 0); });
  });
  EXPECT_EQ(ln.total_counters().global_transactions, 1u);
  EXPECT_EQ(ln.total_counters().l2_hit_transactions, 1u);
  EXPECT_EQ(ln.total_counters().l1_hit_transactions, 0u);
}

TEST(Launcher, TeslaHasNoCaches) {
  Launcher ln(tesla_c1060());
  GlobalBuffer<double> buf(ln, 16);
  for (int r = 0; r < 3; ++r)
    ln.launch(1, 32, 0, [&](Block& blk) {
      blk.all([&](ThreadCtx& th) { th.ld(buf, 0); });
    });
  EXPECT_EQ(ln.total_counters().global_transactions, 3u);
  EXPECT_EQ(ln.total_counters().l1_hit_transactions +
                ln.total_counters().l2_hit_transactions,
            0u);
}

TEST(LauncherDeath, OverAllocatedSharedMemoryAborts) {
  Launcher ln(test_device());
  EXPECT_DEATH(ln.launch(1, 32, 16,
                         [&](Block& blk) {
                           blk.alloc_shared<double>(100);  // 800 B > 16 B
                         }),
               "precondition");
}

TEST(LauncherDeath, BlockSizeBeyondDeviceLimitAborts) {
  Launcher ln(test_device());
  EXPECT_DEATH(ln.launch(1, 4096, 0, [](Block&) {}), "precondition");
}

}  // namespace
}  // namespace csg::gpusim
