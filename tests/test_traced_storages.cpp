#include "csg/memsim/traced_storages.hpp"

#include <gtest/gtest.h>

#include "csg/baselines/generic_algorithms.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/memsim/scaling.hpp"
#include "csg/workloads/functions.hpp"

namespace csg::memsim {
namespace {

using baselines::for_each_point;
using baselines::GridStorage;
using baselines::hierarchize_iterative;
using baselines::sample;

static_assert(GridStorage<TracedCompactStorage>);
static_assert(GridStorage<TracedPrefixTreeStorage>);
static_assert(GridStorage<TracedStdMapStorage>);
static_assert(GridStorage<TracedEnhancedMapStorage>);
static_assert(GridStorage<TracedEnhancedHashStorage>);

constexpr dim_t kDim = 3;
constexpr level_t kLevel = 5;

template <typename TS>
class TracedStorageTyped : public ::testing::Test {
 public:
  TracedStorageTyped()
      : caches(CacheHierarchy::nehalem_core()),
        storage(RegularSparseGrid(kDim, kLevel), &caches) {}

  CacheHierarchy caches;
  TS storage;
};

using TracedTypes =
    ::testing::Types<TracedCompactStorage, TracedPrefixTreeStorage,
                     TracedStdMapStorage, TracedEnhancedMapStorage,
                     TracedEnhancedHashStorage>;
TYPED_TEST_SUITE(TracedStorageTyped, TracedTypes);

TYPED_TEST(TracedStorageTyped, FunctionallyIdenticalToReference) {
  const auto f = workloads::simulation_field(kDim);
  CompactStorage ref(kDim, kLevel);
  ref.sample(f.f);
  hierarchize(ref);

  sample(this->storage, f.f);
  hierarchize_iterative(this->storage);
  for_each_point(ref.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_NEAR(this->storage.get(l, i), ref.get(l, i), 1e-13);
  });
}

TYPED_TEST(TracedStorageTyped, EveryAccessReachesTheCacheSimulator) {
  sample(this->storage, [](const CoordVector&) { return 1.0; });
  EXPECT_GT(this->caches.l1().accesses(), 0u);
}

TEST(TracedStorages, MultiWordKeyOrdering) {
  const MultiWordKey a = make_multi_word_key({0, 1}, {1, 1});
  const MultiWordKey b = make_multi_word_key({0, 1}, {1, 3});
  const MultiWordKey c = make_multi_word_key({1, 0}, {1, 1});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

/// The Table 1 claim, measured. Per get():
///  * compact references O(1) payload words (plus L1-resident binmat),
///  * the trie references O(d) nodes, INDEPENDENT of the grid size,
///  * the hash probes O(1) expected nodes,
///  * both maps walk O(log N) nodes, GROWING with the grid size.
TEST(TracedStorages, AccessCountsFollowTable1) {
  const dim_t d = 5;
  auto accesses_per_get = [&](level_t n, auto make) {
    CacheHierarchy caches = CacheHierarchy::nehalem_core();
    const RegularSparseGrid grid(d, n);
    auto s = make(grid, &caches);
    sample(s, [](const CoordVector&) { return 1.0; });
    caches.reset_counters();
    std::uint64_t gets = 0;
    for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
      (void)s.get(l, i);
      ++gets;
    });
    return static_cast<double>(caches.l1().accesses()) /
           static_cast<double>(gets);
  };
  auto compact = [](const RegularSparseGrid& g, CacheHierarchy* c) {
    return TracedCompactStorage(g, c);
  };
  auto tree = [](const RegularSparseGrid& g, CacheHierarchy* c) {
    return TracedPrefixTreeStorage(g, c);
  };
  auto hash = [](const RegularSparseGrid& g, CacheHierarchy* c) {
    return TracedEnhancedHashStorage(g, c);
  };
  auto map = [](const RegularSparseGrid& g, CacheHierarchy* c) {
    return TracedEnhancedMapStorage(g, c);
  };
  // Reference counts at a fixed size: the trie pays O(d), maps O(log N);
  // the compact structure issues ~2(d-1) binmat lookups plus one payload
  // word, but the binmat ones are L1-resident — misses_per_get below is
  // what Table 1's "non-sequential references" column is about.
  EXPECT_LT(accesses_per_get(6, hash), accesses_per_get(6, tree));
  EXPECT_LT(accesses_per_get(6, tree), 3.0 * d);
  // Scaling in N: tree and hash costs are flat, map cost grows ~log N.
  EXPECT_NEAR(accesses_per_get(7, tree), accesses_per_get(5, tree), 1.0);
  EXPECT_NEAR(accesses_per_get(7, hash), accesses_per_get(5, hash), 1.0);
  EXPECT_GT(accesses_per_get(7, map), accesses_per_get(5, map) + 1.0);
  // And the maps pay O(log N) >> O(1).
  EXPECT_GT(accesses_per_get(6, map), 8.0);

  // Miss-causing references per get on a cold cache over a structure
  // larger than L1: compact stays lowest (its only DRAM-touching access is
  // the payload word; binmat always hits).
  auto misses_per_get = [&](level_t n, auto make) {
    CacheHierarchy caches = CacheHierarchy::nehalem_core();
    const RegularSparseGrid grid2(d, n);
    auto s = make(grid2, &caches);
    sample(s, [](const CoordVector&) { return 1.0; });
    caches.flush();
    caches.reset_counters();
    std::uint64_t gets = 0;
    for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
      (void)s.get(l, i);
      ++gets;
    });
    return static_cast<double>(caches.l1().misses()) /
           static_cast<double>(gets);
  };
  EXPECT_LT(misses_per_get(7, compact), misses_per_get(7, hash));
  EXPECT_LT(misses_per_get(7, compact), misses_per_get(7, tree));
  EXPECT_LT(misses_per_get(7, compact), misses_per_get(7, map));
  EXPECT_LT(misses_per_get(7, compact), 0.5);
}

/// The Fig. 11 driver, measured: DRAM lines per hierarchization update are
/// far lower for the compact structure than for the rb-tree-shaped maps.
TEST(TracedStorages, CompactHierarchizationHasBestDramLocality) {
  const dim_t d = 4;
  const level_t n = 6;
  const auto f = workloads::parabola_product(d);
  auto dram_per_op = [&](auto make) {
    CacheHierarchy caches = CacheHierarchy::nehalem_core();
    auto s = make(&caches);
    sample(s, f.f);
    caches.flush();
    const LocalityProfile p =
        replay(s, caches, s.grid().num_points() * d,
               [](auto& storage) { hierarchize_iterative(storage); });
    return p.dram_lines_per_op();
  };
  const RegularSparseGrid grid(d, n);
  const double compact = dram_per_op(
      [&](CacheHierarchy* c) { return TracedCompactStorage(grid, c); });
  const double map = dram_per_op(
      [&](CacheHierarchy* c) { return TracedEnhancedMapStorage(grid, c); });
  const double stdmap = dram_per_op(
      [&](CacheHierarchy* c) { return TracedStdMapStorage(grid, c); });
  EXPECT_LT(compact, map);
  EXPECT_LT(compact, stdmap);
}

}  // namespace
}  // namespace csg::memsim
