// The test infrastructure itself is load-bearing: every future perf PR
// leans on csg::testing to prove it changed nothing. These tests pin the
// generators' determinism, the ULP comparator's algebra, the property
// harness's seed protocol (including the CSG_PROPERTY_SEED replay), the
// bijection verifier in both modes, and that the differential oracles pass
// on known-good data with nonzero coverage.
#include "csg/testing/bijection.hpp"
#include "csg/testing/compare.hpp"
#include "csg/testing/generators.hpp"
#include "csg/testing/oracles.hpp"
#include "csg/testing/property.hpp"

#include <gtest/gtest.h>

#include "csg/core/hierarchize.hpp"

#include <cmath>
#include <cstdlib>

namespace csg::testing {
namespace {

TEST(Generators, SameSeedSameOutputs) {
  std::mt19937_64 a(42), b(42);
  const GridShape sa = random_shape(a), sb = random_shape(b);
  EXPECT_EQ(sa.d, sb.d);
  EXPECT_EQ(sa.n, sb.n);
  const CompactStorage ca = random_coefficients(a, sa);
  const CompactStorage cb = random_coefficients(b, sb);
  EXPECT_EQ(ca.values(), cb.values());
  EXPECT_EQ(random_points(a, sa.d, 17), random_points(b, sb.d, 17));
}

TEST(Generators, ShapesRespectConstraints) {
  ShapeConstraints c;
  c.min_dim = 2;
  c.max_dim = 5;
  c.min_level = 2;
  c.max_level = 9;
  c.max_points = 5000;
  std::mt19937_64 rng(7);
  for (int k = 0; k < 200; ++k) {
    const GridShape s = random_shape(rng, c);
    EXPECT_GE(s.d, c.min_dim);
    EXPECT_LE(s.d, c.max_dim);
    EXPECT_GE(s.n, c.min_level);
    EXPECT_LE(s.n, c.max_level);
    // The budget can only be exceeded when even min_level doesn't fit.
    if (s.n > c.min_level) {
      EXPECT_LE(regular_grid_num_points(s.d, s.n), c.max_points);
    }
  }
}

TEST(Generators, RandomGridPointsAreContained) {
  std::mt19937_64 rng(3);
  const RegularSparseGrid grid(4, 5);
  for (int k = 0; k < 100; ++k)
    EXPECT_TRUE(grid.contains(random_grid_point(rng, grid)));
}

TEST(Generators, KeptDimsSortedDistinctInRange) {
  std::mt19937_64 rng(11);
  for (int k = 0; k < 50; ++k) {
    const auto kept = random_kept_dims(rng, 6, 3);
    ASSERT_EQ(kept.size(), 3u);
    for (dim_t t = 0; t < kept.size(); ++t) {
      EXPECT_LT(kept[t], 6u);
      if (t > 0) {
        EXPECT_LT(kept[t - 1], kept[t]);
      }
    }
  }
}

TEST(UlpCompare, BasicAlgebra) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  // Symmetric, and crossing zero counts every representable value between.
  EXPECT_EQ(ulp_distance(1.0, 1.5), ulp_distance(1.5, 1.0));
  EXPECT_EQ(ulp_distance(-0.0, std::numeric_limits<real_t>::denorm_min()),
            1u);
  EXPECT_EQ(ulp_distance(-std::numeric_limits<real_t>::denorm_min(),
                         std::numeric_limits<real_t>::denorm_min()),
            2u);
  EXPECT_EQ(ulp_distance(std::nan(""), 1.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(almost_equal_ulps(1.0, 1.0 + 1e-15, 8));
  EXPECT_FALSE(almost_equal_ulps(1.0, 1.1, 1024));
}

TEST(Property, PassingPropertyRunsAllIterations) {
  PropertyConfig cfg{"always_passes", 9};
  const PropertyResult r =
      run_property(cfg, [](std::mt19937_64&) { return std::string{}; });
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.iterations_run, 9);
}

TEST(Property, FailureReportsReplayableSeed) {
  // Fails whenever the first draw is even — i.e. on some but not all seeds.
  const auto body = [](std::mt19937_64& rng) {
    return rng() % 2 == 0 ? "even first draw" : "";
  };
  PropertyConfig cfg{"fails_sometimes", 64};
  const PropertyResult r = run_property(cfg, body);
  ASSERT_FALSE(r.passed);
  EXPECT_NE(r.detail.find("replay"), std::string::npos);
  EXPECT_NE(r.detail.find("fails_sometimes"), std::string::npos);

  // The reported seed deterministically reproduces the failure.
  std::mt19937_64 replay(r.failing_seed);
  EXPECT_EQ(replay() % 2, 0u);

  // And an earlier iteration count stops at the same seed: the sequence of
  // derived seeds is a pure function of the base seed.
  const PropertyResult again = run_property(cfg, body);
  EXPECT_EQ(again.failing_seed, r.failing_seed);
  EXPECT_EQ(again.iterations_run, r.iterations_run);
}

TEST(Property, EnvSeedOverrideRunsExactlyThatSeed) {
  // Find a failing seed first, then replay it through the env override.
  const auto body = [](std::mt19937_64& rng) {
    return rng() % 4 == 1 ? "hit" : "";
  };
  const PropertyResult found = run_property({"env_replay", 128}, body);
  ASSERT_FALSE(found.passed);

  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(found.failing_seed));
  ASSERT_EQ(setenv("CSG_PROPERTY_SEED", buf, 1), 0);
  const PropertyResult replayed = run_property({"env_replay", 128}, body);
  unsetenv("CSG_PROPERTY_SEED");

  EXPECT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.iterations_run, 1);  // exactly the replayed seed
  EXPECT_EQ(replayed.failing_seed, found.failing_seed);

  // A passing seed through the override runs once and passes.
  ASSERT_EQ(setenv("CSG_PROPERTY_SEED", "12345", 1), 0);
  const PropertyResult pass = run_property(
      {"env_replay_pass", 128},
      [](std::mt19937_64&) { return std::string{}; });
  unsetenv("CSG_PROPERTY_SEED");
  EXPECT_TRUE(pass.passed);
  EXPECT_EQ(pass.iterations_run, 1);
}

TEST(Property, UnparsableEnvSeedFallsBackToSweep) {
  ASSERT_EQ(setenv("CSG_PROPERTY_SEED", "not-a-seed", 1), 0);
  EXPECT_EQ(seed_from_env(), std::nullopt);
  const PropertyResult r = run_property(
      {"bad_env", 5}, [](std::mt19937_64&) { return std::string{}; });
  unsetenv("CSG_PROPERTY_SEED");
  EXPECT_EQ(r.iterations_run, 5);
}

TEST(Bijection, ExhaustiveAcceptsRepresentativeShapes) {
  for (const auto& [d, n] : {std::pair<dim_t, level_t>{1, 8},
                             {2, 6},
                             {4, 5},
                             {6, 3},
                             {10, 2}}) {
    const RegularSparseGrid grid(d, n);
    const BijectionReport report = verify_bijection_exhaustive(grid);
    EXPECT_TRUE(report.ok) << "d=" << d << " n=" << n << ": "
                           << report.detail;
    EXPECT_EQ(report.points_checked, grid.num_points());
  }
}

TEST(Bijection, SampledAcceptsLargeShape) {
  std::mt19937_64 rng(99);
  const RegularSparseGrid grid(12, 6);
  const BijectionReport report = verify_bijection_sampled(grid, rng, 5000);
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_EQ(report.points_checked, 5000u);
}

TEST(Oracles, FullBatteryPassesOnRandomData) {
  const PropertyResult r = run_property(
      {"oracle_battery", 4}, [](std::mt19937_64& rng) -> std::string {
        ShapeConstraints c;
        c.max_dim = 4;
        c.max_points = 3000;
        const GridShape shape = random_shape(rng, c);
        const CompactStorage nodal = random_coefficients(rng, shape);
        const OracleResult o = check_all(nodal, rng);
        if (!o.ok) return o.detail;
        if (o.comparisons == 0) return "oracle made no comparisons";
        return {};
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(Oracles, SerializeRoundTripIsBitExact) {
  std::mt19937_64 rng(5);
  const CompactStorage s = random_coefficients(rng, 3, 5);
  const OracleResult o = check_serialize_round_trip(s);
  EXPECT_TRUE(o.ok) << o.detail;
  EXPECT_EQ(o.comparisons, static_cast<std::uint64_t>(s.size()));
}

TEST(Oracles, MergeKeepsFirstFailure) {
  OracleResult a;
  a.comparisons = 3;
  OracleResult bad;
  bad.ok = false;
  bad.detail = "first";
  bad.comparisons = 2;
  OracleResult worse;
  worse.ok = false;
  worse.detail = "second";
  a.merge(bad);
  a.merge(worse);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.detail, "first");
  EXPECT_EQ(a.comparisons, 5u);
}

TEST(Oracles, CorruptionSurvivesNoOracle) {
  // Mutation check on the harness itself: a single corrupted hierarchical
  // coefficient must be visible through the round trip the oracles rely on,
  // otherwise the "transform parity" battery could pass vacuously.
  std::mt19937_64 rng(21);
  const CompactStorage nodal = random_coefficients(rng, 3, 4);
  CompactStorage broken = nodal;
  hierarchize(broken);
  broken[broken.size() / 2] += real_t{0.5};
  dehierarchize(broken);
  bool differs = false;
  for (flat_index_t j = 0; j < broken.size() && !differs; ++j)
    differs = ulp_distance(broken[j], nodal[j]) > (1u << 20);
  EXPECT_TRUE(differs) << "corruption did not surface in the round trip";
}

}  // namespace
}  // namespace csg::testing
