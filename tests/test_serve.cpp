// csg::serve — multi-grid registry + asynchronous batched evaluation
// service: correctness (results bit-identical to evaluate()), batching
// accounting, backpressure (reject and block), deadlines, graceful
// shutdown, and the bounded plan cache under a many-shape serving load.
//
// Registered under the `parallel` ctest label: the service is the
// project's most concurrent component (producers, worker pool, OpenMP
// inside batches), so the TSan lane must see it.
#include "csg/serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/serve/grid_registry.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::serve {
namespace {

CompactStorage make_grid(dim_t d, level_t n) {
  CompactStorage s(d, n);
  s.sample(workloads::parabola_product(d).f);
  hierarchize(s);
  return s;
}

/// Restore the process-global plan cache to its default shape when a test
/// that resizes or clears it exits (tests share one process).
struct PlanCacheGuard {
  ~PlanCacheGuard() {
    EvaluationPlan::shared_cache_clear();
    EvaluationPlan::shared_cache_set_capacity(
        EvaluationPlan::kDefaultSharedCacheCap);
  }
};

TEST(GridRegistry, AddFindRemove) {
  GridRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.find("temperature"), nullptr);

  reg.add("temperature", make_grid(3, 4));
  reg.add("pressure", make_grid(2, 5));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"pressure", "temperature"}));

  const auto entry = reg.find("temperature");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "temperature");
  EXPECT_EQ(entry->storage.dim(), 3u);
  ASSERT_NE(entry->plan, nullptr);
  EXPECT_EQ(entry->plan->dim(), 3u);

  EXPECT_TRUE(reg.remove("temperature"));
  EXPECT_FALSE(reg.remove("temperature"));
  EXPECT_EQ(reg.find("temperature"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(GridRegistry, ReplaceKeepsOldEntryAliveForHolders) {
  GridRegistry reg;
  const auto old_entry = reg.add("field", make_grid(2, 3));
  reg.add("field", make_grid(2, 5));
  const auto new_entry = reg.find("field");
  ASSERT_NE(new_entry, nullptr);
  EXPECT_NE(old_entry.get(), new_entry.get());
  // The replaced entry still evaluates — in-flight batches are safe.
  EXPECT_EQ(old_entry->storage.grid().level(), 3u);
  EXPECT_EQ(evaluate(old_entry->storage, CoordVector{0.5, 0.5}),
            evaluate(old_entry->storage, CoordVector{0.5, 0.5}));
}

TEST(GridRegistry, MemoryBytesTracksLiveEntriesOnly) {
  GridRegistry reg;
  EXPECT_EQ(reg.memory_bytes(), 0u);
  const auto a = reg.add("a", make_grid(2, 4));
  const auto a_bytes = a->memory_bytes();
  EXPECT_EQ(a_bytes, a->storage.memory_bytes() + a->plan->memory_bytes());
  EXPECT_EQ(reg.memory_bytes(), a_bytes);

  const auto b = reg.add("b", make_grid(3, 3));
  EXPECT_EQ(reg.memory_bytes(), a_bytes + b->memory_bytes());

  // Removal drops the registry's figure immediately even though this test
  // still holds the entry: reported bytes reflect live (registered) state.
  reg.remove("b");
  EXPECT_EQ(reg.memory_bytes(), a_bytes);
  reg.remove("a");
  EXPECT_EQ(reg.memory_bytes(), 0u);
}

TEST(EvalService, ResultsBitIdenticalToSequentialEvaluate) {
  GridRegistry reg;
  reg.add("f", make_grid(3, 5));
  const auto entry = reg.find("f");

  ServiceOptions opts;
  opts.workers = 2;
  opts.max_batch_points = 16;
  opts.batch_window = std::chrono::microseconds(100);
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(3, 200, 11);
  std::vector<std::future<EvalResult>> futures;
  futures.reserve(pts.size());
  for (const CoordVector& x : pts) futures.push_back(service.submit("f", x));
  for (std::size_t p = 0; p < pts.size(); ++p) {
    const EvalResult r = futures[p].get();
    ASSERT_EQ(r.status, Status::kOk) << p;
    EXPECT_EQ(r.value, evaluate(entry->storage, pts[p])) << p;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, pts.size());
  EXPECT_EQ(stats.batched_points, pts.size());
  EXPECT_GE(stats.batches_formed, 1u);
  EXPECT_LE(stats.max_batch, 16u);
}

TEST(EvalService, MultiGridBatchesStayPerGrid) {
  GridRegistry reg;
  reg.add("a", make_grid(2, 4));
  reg.add("b", make_grid(3, 3));
  const auto ea = reg.find("a");
  const auto eb = reg.find("b");

  ServiceOptions opts;
  opts.workers = 2;
  opts.max_batch_points = 8;
  EvalService service(reg, opts);

  const auto pa = workloads::uniform_points(2, 60, 3);
  const auto pb = workloads::uniform_points(3, 60, 4);
  std::vector<std::future<EvalResult>> fa, fb;
  for (std::size_t k = 0; k < 60; ++k) {
    fa.push_back(service.submit("a", pa[k]));
    fb.push_back(service.submit("b", pb[k]));
  }
  for (std::size_t k = 0; k < 60; ++k) {
    const EvalResult ra = fa[k].get(), rb = fb[k].get();
    ASSERT_EQ(ra.status, Status::kOk);
    ASSERT_EQ(rb.status, Status::kOk);
    EXPECT_EQ(ra.value, evaluate(ea->storage, pa[k])) << k;
    EXPECT_EQ(rb.value, evaluate(eb->storage, pb[k])) << k;
  }
}

TEST(EvalService, UnknownGridAndMalformedPointsFailFast) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));
  EvalService service(reg, {});

  EXPECT_EQ(service.submit("nope", CoordVector{0.5, 0.5}).get().status,
            Status::kNotFound);
  // Wrong dimension.
  EXPECT_EQ(service.submit("f", CoordVector{0.5}).get().status,
            Status::kInvalid);
  // Out of the unit cube.
  EXPECT_EQ(service.submit("f", CoordVector{0.5, 1.5}).get().status,
            Status::kInvalid);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.not_found, 1u);
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(EvalService, PausedStartGivesDeterministicBatchAccounting) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 4));

  ServiceOptions opts;
  opts.start_paused = true;
  opts.workers = 2;
  opts.queue_capacity = 1024;
  opts.max_batch_points = 32;
  opts.batch_window = std::chrono::microseconds(0);
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(2, 100, 7);
  std::vector<std::future<EvalResult>> futures;
  for (const CoordVector& x : pts) futures.push_back(service.submit("f", x));
  EXPECT_EQ(service.pending(), 100u);

  service.start();
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);

  const ServiceStats stats = service.stats();
  // ceil(100 / 32) = 4 batches: every batch takes min(32, queued) points
  // under one lock hold, and nothing was submitted concurrently.
  EXPECT_EQ(stats.batches_formed, 4u);
  EXPECT_EQ(stats.batched_points, 100u);
  EXPECT_EQ(stats.max_batch, 32u);
  EXPECT_DOUBLE_EQ(stats.mean_batch(), 25.0);
}

TEST(EvalService, RejectPolicyShedsLoadBeyondQueueCapacity) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 16;
  opts.overflow = OverflowPolicy::kReject;
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(2, 20, 9);
  std::vector<std::future<EvalResult>> futures;
  for (const CoordVector& x : pts) futures.push_back(service.submit("f", x));

  // Exactly the queue capacity was admitted; the rest were shed.
  std::size_t rejected = 0;
  service.start();
  for (auto& f : futures) {
    const EvalResult r = f.get();
    if (r.status == Status::kRejected) ++rejected;
    else EXPECT_EQ(r.status, Status::kOk);
  }
  EXPECT_EQ(rejected, 4u);
  EXPECT_EQ(service.stats().rejected, 4u);
  EXPECT_EQ(service.stats().completed, 16u);
}

TEST(EvalService, FullShardRejectsWhileOtherShardsKeepServing) {
  // Per-grid sharding: a hot grid that overruns its shard's queue sheds
  // load without touching a cold grid whose name hashes to a different
  // shard. The FNV-1a grid-to-shard map is fixed, so the hot/cold pick is
  // stable across runs.
  GridRegistry reg;
  std::vector<std::string> names;
  for (int g = 0; g < 8; ++g) {
    std::string name = "g";  // append-style: GCC 12 -Wrestrict FP on
    name += std::to_string(g);  // literal + rvalue operator+ under HARDEN
    names.push_back(std::move(name));
    reg.add(names.back(), make_grid(2, 3));
  }

  ServiceOptions opts;
  opts.start_paused = true;
  opts.shard_count = 4;
  opts.queue_capacity = 8;  // per shard
  opts.overflow = OverflowPolicy::kReject;
  opts.batch_window = std::chrono::microseconds(0);
  EvalService service(reg, opts);
  ASSERT_EQ(service.shard_count(), 4u);

  const std::string hot = names.front();
  std::string cold;
  for (const std::string& name : names)
    if (service.shard_of(name) != service.shard_of(hot)) {
      cold = name;
      break;
    }
  ASSERT_FALSE(cold.empty());

  const auto pts = workloads::uniform_points(2, 24, 11);
  std::vector<std::future<EvalResult>> hot_futs, cold_futs;
  for (const CoordVector& x : pts) hot_futs.push_back(service.submit(hot, x));
  for (std::size_t k = 0; k < opts.queue_capacity; ++k)
    cold_futs.push_back(service.submit(cold, pts[k]));

  service.start();
  std::size_t hot_ok = 0, hot_rejected = 0;
  for (auto& f : hot_futs) {
    const EvalResult r = f.get();
    if (r.status == Status::kRejected) ++hot_rejected;
    else if (r.status == Status::kOk) ++hot_ok;
  }
  // The hot shard admitted exactly its own capacity and shed the rest...
  EXPECT_EQ(hot_ok, 8u);
  EXPECT_EQ(hot_rejected, 16u);
  // ...while the cold shard, at exactly its capacity, rejected nothing.
  for (auto& f : cold_futs) EXPECT_EQ(f.get().status, Status::kOk);

  const ServiceStats st = service.stats();
  ASSERT_EQ(st.shards.size(), 4u);
  const ServiceStats::ShardStats& hs = st.shards[service.shard_of(hot)];
  const ServiceStats::ShardStats& cs = st.shards[service.shard_of(cold)];
  EXPECT_EQ(hs.submits, 24u);
  EXPECT_EQ(hs.rejections, 16u);
  EXPECT_EQ(hs.max_queue_depth, 8u);
  EXPECT_EQ(cs.submits, 8u);
  EXPECT_EQ(cs.rejections, 0u);
  EXPECT_EQ(cs.max_queue_depth, 8u);
  EXPECT_EQ(st.rejected, 16u);
  EXPECT_EQ(st.completed, 16u);
}

TEST(EvalService, ShardHashIsStable64BitFnv1a) {
  // Grid-to-shard placement is part of observable behavior (stats index,
  // bench baselines): pin the hash function to the FNV-1a test vectors so
  // a change cannot slip in silently, and check the full 64-bit width.
  EXPECT_EQ(shard_hash(""), 14695981039346656037ull);
  EXPECT_EQ(shard_hash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(shard_hash("foobar"), 0x85944171f73967e8ull);
  EXPECT_NE(shard_hash("g0"), shard_hash("g1"));
}

TEST(EvalService, BlockPolicyAppliesBackpressureInsteadOfRejecting) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 4;
  opts.overflow = OverflowPolicy::kBlock;
  opts.max_batch_points = 4;
  opts.batch_window = std::chrono::microseconds(0);
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(2, 12, 5);
  std::vector<std::future<EvalResult>> futures(pts.size());
  std::atomic<std::size_t> submitted{0};
  std::thread producer([&] {
    for (std::size_t k = 0; k < pts.size(); ++k) {
      futures[k] = service.submit("f", pts[k]);
      submitted.fetch_add(1);
    }
  });
  // The producer must stall at the bounded queue until workers start.
  while (submitted.load() < opts.queue_capacity) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(submitted.load(), opts.queue_capacity);

  service.start();
  producer.join();
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);
  EXPECT_EQ(service.stats().completed, pts.size());
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(EvalService, ExpiredDeadlinesTimeOutWithoutEvaluation) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(2, 10, 13);
  const auto past = EvalService::Clock::now() - std::chrono::milliseconds(1);
  std::vector<std::future<EvalResult>> futures;
  for (const CoordVector& x : pts)
    futures.push_back(service.submit("f", x, past));

  service.start();
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kTimeout);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.timed_out, 10u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.batches_formed, 0u);  // nothing was worth evaluating
}

TEST(EvalService, AdmissionSheddingRejectsExpiredDeadlinesBeforeQueueing) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;  // queue depth is observable: nothing consumes
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(2, 12, 17);
  const auto past = EvalService::Clock::now() - std::chrono::milliseconds(1);
  const auto future_ok =
      EvalService::Clock::now() + std::chrono::minutes(10);
  std::vector<std::future<EvalResult>> shed, queued;
  for (std::size_t k = 0; k < 7; ++k)
    shed.push_back(service.submit("f", pts[k], past));
  for (std::size_t k = 7; k < 12; ++k)
    queued.push_back(service.submit("f", pts[k], future_ok));

  // Shed requests resolved immediately (service still paused) and never
  // occupied queue capacity; live-deadline ones are waiting for workers.
  for (auto& f : shed) EXPECT_EQ(f.get().status, Status::kTimeout);
  EXPECT_EQ(service.pending(), 5u);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_at_admission, 7u);
  EXPECT_EQ(stats.timed_out, 7u);  // shedding counts in the deadline total

  service.start();
  for (auto& f : queued) EXPECT_EQ(f.get().status, Status::kOk);
  stats = service.stats();
  EXPECT_EQ(stats.shed_at_admission, 7u);  // unchanged by live requests
  EXPECT_EQ(stats.timed_out, 7u);
  EXPECT_EQ(stats.completed, 5u);
}

TEST(EvalService, DefaultDeadlineAppliesToPlainSubmits) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;
  opts.default_deadline = std::chrono::milliseconds(1);
  EvalService service(reg, opts);

  auto f = service.submit("f", CoordVector{0.5, 0.5});
  // Let the default deadline lapse while the service is paused.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service.start();
  EXPECT_EQ(f.get().status, Status::kTimeout);
}

TEST(EvalService, BlockedProducerHonorsItsDeadline) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;
  opts.queue_capacity = 1;
  opts.overflow = OverflowPolicy::kBlock;
  EvalService service(reg, opts);

  auto first = service.submit("f", CoordVector{0.25, 0.25});
  std::future<EvalResult> second;
  std::thread producer([&] {
    second = service.submit(
        "f", CoordVector{0.75, 0.75},
        EvalService::Clock::now() + std::chrono::milliseconds(30));
  });
  producer.join();  // returns once the wait-for-space deadline expires
  EXPECT_EQ(second.get().status, Status::kTimeout);

  // Never-started service: stop() fails the queued request explicitly
  // rather than leaking a broken promise.
  service.stop(true);
  EXPECT_EQ(first.get().status, Status::kCancelled);
}

TEST(EvalService, GracefulStopDrainsQueuedRequests) {
  GridRegistry reg;
  reg.add("f", make_grid(3, 4));
  const auto entry = reg.find("f");

  ServiceOptions opts;
  opts.workers = 2;
  opts.max_batch_points = 8;
  EvalService service(reg, opts);

  const auto pts = workloads::uniform_points(3, 120, 23);
  std::vector<std::future<EvalResult>> futures;
  for (const CoordVector& x : pts) futures.push_back(service.submit("f", x));
  service.stop(true);

  for (std::size_t p = 0; p < pts.size(); ++p) {
    const EvalResult r = futures[p].get();
    ASSERT_EQ(r.status, Status::kOk) << p;
    EXPECT_EQ(r.value, evaluate(entry->storage, pts[p])) << p;
  }
  EXPECT_FALSE(service.running());
  // Terminal: post-stop submissions reject.
  EXPECT_EQ(service.submit("f", pts[0]).get().status, Status::kRejected);
}

TEST(EvalService, HardStopCancelsQueuedRequests) {
  GridRegistry reg;
  reg.add("f", make_grid(2, 3));

  ServiceOptions opts;
  opts.start_paused = true;  // nothing consumes: all requests stay queued
  EvalService service(reg, opts);

  std::vector<std::future<EvalResult>> futures;
  for (const CoordVector& x : workloads::uniform_points(2, 25, 29))
    futures.push_back(service.submit("f", x));
  service.stop(/*drain=*/false);

  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 25u);
}

// The acceptance stress: many (d, n) shapes served concurrently while the
// process-global plan cache is capped far below the number of shapes. The
// registry pins every served plan, so evaluation never rebuilds plans per
// batch, and the cache must hold <= its cap throughout.
TEST(ServeStress, ManyShapesUnderLoadKeepPlanCacheBounded) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();
  EvaluationPlan::shared_cache_set_capacity(4);

  GridRegistry reg;
  struct Shape {
    std::string name;
    dim_t d;
    level_t n;
  };
  std::vector<Shape> shapes;
  for (dim_t d = 1; d <= 4; ++d)
    for (level_t n = 3; n <= 5; ++n) {
      // Built with += rather than operator+ chains: GCC 12's -Wrestrict
      // false-fires on the inlined literal+rvalue-string concatenation
      // (libstdc++ char_traits), which breaks the CSG_HARDEN -Werror build.
      std::string name = "g";
      name += std::to_string(d);
      name += '_';
      name += std::to_string(n);
      shapes.push_back({name, d, n});
    }
  for (const Shape& s : shapes) reg.add(s.name, make_grid(s.d, s.n));
  ASSERT_EQ(reg.size(), shapes.size());
  ASSERT_GT(shapes.size(), EvaluationPlan::shared_cache_stats().capacity);

  ServiceOptions opts;
  opts.workers = 3;
  opts.eval_threads = 2;
  opts.queue_capacity = 4096;
  opts.max_batch_points = 24;
  opts.batch_window = std::chrono::microseconds(50);
  EvalService service(reg, opts);

  constexpr std::size_t kPerProducer = 120;
  std::vector<std::thread> producers;
  std::atomic<std::size_t> mismatches{0};
  for (unsigned p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = 0; k < kPerProducer; ++k) {
        const Shape& s = shapes[(p * 31 + k) % shapes.size()];
        const auto pts =
            workloads::uniform_points(s.d, 1, 1000 * p + k);
        auto future = service.submit(s.name, pts[0]);
        const EvalResult r = future.get();
        const auto entry = reg.find(s.name);
        // Verify against the pinned plan directly — going through
        // evaluate() would touch the shared cache and perturb the stats
        // this test pins below.
        const std::span<const real_t> coeffs(entry->storage.data(),
                                             entry->storage.values().size());
        if (r.status != Status::kOk ||
            r.value != evaluate_span(*entry->plan, coeffs, pts[0]))
          mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.stop(true);

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(service.stats().completed, 4 * kPerProducer);

  const auto cache = EvaluationPlan::shared_cache_stats();
  EXPECT_LE(cache.size, cache.capacity);
  EXPECT_EQ(cache.capacity, 4u);
  // Every registered shape built its plan once; the overflow was evicted.
  EXPECT_GE(cache.evictions, shapes.size() - cache.capacity);
  // Pinned plans stayed alive regardless of eviction: no rebuild happened
  // during serving, so misses stay at the registration count.
  EXPECT_EQ(cache.misses, shapes.size());
}

// Concurrent first-touch of one fresh shape: all callers get the same
// plan instance and the cache holds a single entry for the key (the
// build-outside-lock race resolves to the first insert).
TEST(ServeStress, ConcurrentSharedPlanFetchYieldsOneInstance) {
  PlanCacheGuard guard;
  EvaluationPlan::shared_cache_clear();

  const RegularSparseGrid grid(6, 6);
  constexpr unsigned kThreads = 8;
  std::vector<std::shared_ptr<const EvaluationPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { plans[t] = EvaluationPlan::shared(grid); });
  for (std::thread& t : threads) t.join();

  for (unsigned t = 1; t < kThreads; ++t)
    EXPECT_EQ(plans[t].get(), plans[0].get());
  const auto stats = EvaluationPlan::shared_cache_stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.misses + stats.hits, kThreads);
}

}  // namespace
}  // namespace csg::serve
