#include "csg/core/compact_storage.hpp"

#include <gtest/gtest.h>

#include "csg/core/grid_point.hpp"

namespace csg {
namespace {

TEST(CompactStorage, ZeroInitialized) {
  CompactStorage s(3, 4);
  for (flat_index_t j = 0; j < s.size(); ++j) EXPECT_EQ(s[j], 0.0);
}

TEST(CompactStorage, FlatAndKeyedAccessAgree) {
  CompactStorage s(2, 4);
  const RegularSparseGrid& g = s.grid();
  for (flat_index_t j = 0; j < s.size(); ++j) {
    const GridPoint gp = g.idx2gp(j);
    s[j] = static_cast<real_t>(j) + 0.5;
    EXPECT_EQ(s.at(gp.level, gp.index), s[j]);
    EXPECT_EQ(s.get(gp.level, gp.index), s[j]);
  }
}

TEST(CompactStorage, SetThroughKeyVisibleThroughFlat) {
  CompactStorage s(3, 3);
  const GridPoint gp = s.grid().idx2gp(7);
  s.set(gp.level, gp.index, 2.25);
  EXPECT_EQ(s[7], 2.25);
}

TEST(CompactStorage, SampleEvaluatesFunctionAtEveryPoint) {
  CompactStorage s(2, 4);
  s.sample([](const CoordVector& x) { return x[0] + 10 * x[1]; });
  for (flat_index_t j = 0; j < s.size(); ++j) {
    const CoordVector x = coordinates(s.grid().idx2gp(j));
    EXPECT_DOUBLE_EQ(s[j], x[0] + 10 * x[1]);
  }
}

TEST(CompactStorage, MemoryIsCoefficientArrayPlusSmallMetadata) {
  CompactStorage s(5, 8);
  const std::size_t payload = s.values().size() * sizeof(real_t);
  EXPECT_GE(s.memory_bytes(), payload);
  // Metadata (binmat + offsets) must be tiny relative to the payload:
  // this is the whole point of the compact structure.
  EXPECT_LT(s.memory_bytes() - payload, 8u * 1024u);
}

TEST(CompactStorage, MemoryBytesCountsPayloadNotCapacity) {
  // The Fig. 8 metric is live payload: growing the vector's capacity
  // beyond size() must not inflate the reported footprint.
  CompactStorage s(3, 4);
  const std::size_t before = s.memory_bytes();
  s.values().reserve(s.values().size() * 4);
  EXPECT_EQ(s.memory_bytes(), before);
}

TEST(CompactStorage, ConstructFromExistingGrid) {
  RegularSparseGrid g(4, 5);
  CompactStorage s(g);
  EXPECT_EQ(s.size(), g.num_points());
  EXPECT_EQ(s.dim(), 4u);
}

TEST(CompactStorage, CopyIsDeep) {
  CompactStorage a(2, 3);
  a[0] = 1.0;
  CompactStorage b = a;
  b[0] = 2.0;
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(b[0], 2.0);
}

}  // namespace
}  // namespace csg
