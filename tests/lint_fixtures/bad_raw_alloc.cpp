// csg-lint fixture: raw-alloc must flag every allocation below.
// Outside src/memsim (which owns allocation instrumentation), ownership
// flows through containers; raw new/malloc escapes the traced paths.
#include <cstdlib>

void bad() {
  int* a = new int[4];     // BAD: raw array new
  delete[] a;              // BAD: raw delete
  void* b = std::malloc(16);  // BAD: C allocation
  std::free(b);               // BAD: C deallocation
}

struct NotFlagged {
  NotFlagged(const NotFlagged&) = delete;  // GOOD: deleted function
};
