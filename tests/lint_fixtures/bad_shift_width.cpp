// csg-lint fixture: shift-width must flag every pattern below.
// The int-typed literal promotes the whole expression to 32 bits, so at
// deep levels (l >= 31) the flat index silently truncates.
#include <cstdint>

std::uint64_t points_per_subspace(unsigned level) {
  return 1 << level;  // BAD: 32-bit literal shifted by a runtime count
}

std::uint64_t mask_of(unsigned level) {
  return (1u << level) - 1;  // BAD: unsigned is still 32 bits wide
}

std::uint64_t fine(unsigned level) {
  // GOOD (not flagged): explicit width via brace form and suffix.
  return (std::uint64_t{1} << level) + (1ull << level) + (1 << 4);
}
