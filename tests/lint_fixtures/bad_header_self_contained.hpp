// csg-lint fixture: header-self-contained must flag this header — it uses
// std::vector without including <vector>, so it only compiles when the
// including TU happens to have pulled the dependency in first.
#pragma once

inline std::vector<double> zeros(unsigned n) {  // BAD: missing <vector>
  return std::vector<double>(n, 0.0);
}
