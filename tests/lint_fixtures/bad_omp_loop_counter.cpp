// csg-lint fixture: omp-loop-counter must flag the loop below.
// An int trip count against a 64-bit grid bound narrows (and signed
// overflow in the induction variable is UB the optimiser exploits).
#include <cstdint>

double sum_coefficients(const double* c, std::uint64_t n) {
  double acc = 0;
#pragma omp parallel for reduction(+ : acc)
  for (int k = 0; k < static_cast<int>(n); ++k)  // BAD: int counter
    acc += c[k];
  return acc;
}

double fine(const double* c, std::int64_t n) {
  double acc = 0;
#pragma omp parallel for reduction(+ : acc)
  for (std::int64_t k = 0; k < n; ++k)  // GOOD: 64-bit counter
    acc += c[k];
  return acc;
}
