// csg-lint fixture: implicit-narrowing must flag the declarations below.
// A level_t/dim_t initialised from a 64-bit index expression truncates
// silently; the conversion must be spelled static_cast to survive review.
#include <cstdint>
#include <vector>

using level_t = std::uint32_t;
using dim_t = std::uint32_t;
using flat_index_t = std::uint64_t;

struct Grid {
  flat_index_t num_points() const { return 1; }
  std::uint64_t l1_norm() const { return 1; }
};

void f(const Grid& g) {
  level_t lsum = g.l1_norm();       // BAD: uint64 -> level_t, no cast
  dim_t d = g.num_points();         // BAD: flat_index_t -> dim_t, no cast
  level_t ok = static_cast<level_t>(g.l1_norm());  // GOOD: explicit
  (void)lsum;
  (void)d;
  (void)ok;
}
