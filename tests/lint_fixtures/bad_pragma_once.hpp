// csg-lint fixture: pragma-once must flag this header — double inclusion
// of the definition below is an ODR violation the linker may not report.

inline int answer() { return 42; }
