// Known-bad fixture for the bench-seed rule: RNG engines in bench/ seeded
// with bare integer literals instead of csg::testing::mix_seed. Raw seeds
// repeated across binaries correlate the sampled workloads and cannot be
// replayed through the CSG_PROPERTY_SEED machinery.
#include <random>

void bad_bench_seeds() {
  std::mt19937 gen(42);              // flagged: bare literal seed
  std::mt19937_64 rng(2024);         // flagged: bare literal seed
  std::default_random_engine e{7};   // flagged: brace form, still a literal
  std::mt19937_64 hex(0xbeef);       // flagged: hex literal seed
  (void)gen();
  (void)rng();
  (void)e();
  (void)hex();
}
