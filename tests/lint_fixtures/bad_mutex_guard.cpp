// csg-lint fixture: known-bad input for the mutex-guard-annotations rule.
// Never compiled — the rule is textual. Four violations:
//   1. raw std::mutex member (invisible to the thread-safety analysis)
//   2. raw std::lock_guard acquisition
//   3. a "must hold the mutex" comment standing in for CSG_REQUIRES
//   4. a csg::Mutex member never referenced by any CSG_* annotation
#include <cstddef>
#include <mutex>

namespace fixture {

class Counter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
  }

  // Must hold mutex_. Drops the count back to zero.
  void reset_locked() { value_ = 0; }

 private:
  std::mutex mutex_;
  std::size_t value_ = 0;
};

class Registry {
 public:
  void set(std::size_t v) {
    entries_ = v;  // nothing ties entries_ (or anything) to mutex_
  }

 private:
  csg::Mutex mutex_;
  std::size_t entries_ = 0;
};

}  // namespace fixture
