// csg-lint fixture: simd-scalar-parity must flag both loops below.
// A vectorized kernel in src/core without a named scalar reference in the
// same TU has no differential-testing partner: nothing pins its results
// bit for bit, so a miscompiled or edited lane silently changes answers.
#include <cstddef>

void kernel_untagged(double* a, std::size_t n) {
#pragma omp simd
  for (std::size_t p = 0; p < n; ++p)  // BAD: no scalar-fallback tag
    a[p] += 1.0;
}

void kernel_bogus_tag(double* a, std::size_t n) {
  // scalar fallback: reference_that_does_not_exist
#pragma omp simd
  for (std::size_t p = 0; p < n; ++p)  // BAD: named reference absent
    a[p] *= 2.0;
}

double scalar_add_one(double x) { return x + 1.0; }

void kernel_fine(double* a, std::size_t n) {
  // scalar fallback: scalar_add_one
#pragma omp simd
  for (std::size_t p = 0; p < n; ++p)  // GOOD: partner lives in this TU
    a[p] = scalar_add_one(a[p]);
}
