// csg-lint fixture: implicit-narrowing must flag shard_hash() truncation.
// shard_hash() is the 64-bit FNV-1a over the grid name that picks the
// EvalService shard; stuffing it into a 32-bit level_t/dim_t silently
// drops the high bits and skews the grid -> shard distribution. The only
// sound narrowings are `% shard_count` (already in range) or an explicit
// static_cast that survives review.
#include <cstdint>
#include <string_view>

using level_t = std::uint32_t;
using dim_t = std::uint32_t;

std::uint64_t shard_hash(std::string_view name);

void f(std::string_view name) {
  level_t h = shard_hash(name);  // BAD: high 32 bits of the hash vanish
  dim_t shard = shard_hash(name);  // BAD: same truncation, different alias
  level_t ok =
      static_cast<level_t>(shard_hash(name) % 8);  // GOOD: explicit + ranged
  (void)h;
  (void)shard;
  (void)ok;
}
