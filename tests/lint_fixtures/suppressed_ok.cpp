// csg-lint fixture: the inline suppression syntax must actually silence a
// finding — otherwise every allow() in the tree is dead weight and the
// clean scan lies. Both spellings are exercised.

void intentional() {
  int* a = new int[2];  // csg-lint: allow(raw-alloc) -- fixture exercising suppression
  // csg-lint: allow-next(raw-alloc) -- fixture exercising suppression
  delete[] a;
}
