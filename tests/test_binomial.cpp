#include "csg/core/binomial_table.hpp"

#include <gtest/gtest.h>

namespace csg {
namespace {

TEST(BinomialTable, SmallValues) {
  BinomialTable b(10);
  EXPECT_EQ(b(0, 0), 1u);
  EXPECT_EQ(b(5, 0), 1u);
  EXPECT_EQ(b(5, 5), 1u);
  EXPECT_EQ(b(5, 2), 10u);
  EXPECT_EQ(b(10, 5), 252u);
}

TEST(BinomialTable, AboveDiagonalIsZero) {
  BinomialTable b(6);
  EXPECT_EQ(b(3, 4), 0u);
  EXPECT_EQ(b(0, 1), 0u);
}

TEST(BinomialTable, PascalIdentityHoldsEverywhere) {
  const std::uint32_t max_row = 40;
  BinomialTable b(max_row);
  for (std::uint32_t a = 2; a <= max_row; ++a)
    for (std::uint32_t k = 1; k < a; ++k)
      EXPECT_EQ(b(a, k), b(a - 1, k - 1) + b(a - 1, k))
          << "a=" << a << " k=" << k;
}

TEST(BinomialTable, SymmetryHoldsEverywhere) {
  BinomialTable b(30);
  for (std::uint32_t a = 0; a <= 30; ++a)
    for (std::uint32_t k = 0; k <= a; ++k) EXPECT_EQ(b(a, k), b(a, a - k));
}

TEST(BinomialTable, MatchesOnTheFlyComputation) {
  BinomialTable b(50);
  for (std::uint32_t a = 0; a <= 50; ++a)
    for (std::uint32_t k = 0; k <= a; ++k)
      EXPECT_EQ(b(a, k), binomial_on_the_fly(a, k))
          << "a=" << a << " k=" << k;
}

TEST(BinomialTable, PaperSubspaceCount) {
  // S_n^d = C(d-1+n, d-1), Eq. 2: at d=10, n=10 the largest group of the
  // paper's level-11 grid has C(19,9) = 92378 subspaces.
  BinomialTable b(19);
  EXPECT_EQ(b(19, 9), 92378u);
}

TEST(BinomialTable, DefaultConstructedHandlesRowZero) {
  BinomialTable b;
  EXPECT_EQ(b(0, 0), 1u);
  EXPECT_EQ(b.max_row(), 0u);
}

TEST(BinomialTable, PayloadBytesMatchesTriangleSize) {
  BinomialTable b(9);
  // 10 rows -> 55 entries of 8 bytes.
  EXPECT_EQ(b.payload_bytes(), 55u * 8u);
}

TEST(BinomialTable, FlatIndexAddressesTriangle) {
  BinomialTable b(12);
  const auto& flat = b.flat();
  for (std::uint32_t a = 0; a <= 12; ++a)
    for (std::uint32_t k = 0; k <= a; ++k)
      EXPECT_EQ(flat[BinomialTable::flat_index(a, k)], b(a, k));
}

TEST(BinomialTable, LargeValuesStayExact) {
  // C(56, 28) = 7648690600760440 fits in 53 bits; verify exactness near the
  // upper end of what grids may request (d-1+n <= kMaxDim-1+kMaxLevel).
  BinomialTable b(56);
  EXPECT_EQ(b(56, 28), 7648690600760440ull);
}

TEST(BinomialOnTheFly, DegenerateCases) {
  EXPECT_EQ(binomial_on_the_fly(0, 0), 1u);
  EXPECT_EQ(binomial_on_the_fly(7, 0), 1u);
  EXPECT_EQ(binomial_on_the_fly(7, 7), 1u);
  EXPECT_EQ(binomial_on_the_fly(3, 9), 0u);
}

TEST(BinomialTableDeath, RowBeyondTableAborts) {
  BinomialTable b(5);
  EXPECT_DEATH(b(6, 2), "precondition");
}

}  // namespace
}  // namespace csg
