#include "csg/core/calculus.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

CompactStorage compressed(const workloads::TestFunction& f, dim_t d,
                          level_t n) {
  CompactStorage s(d, n);
  s.sample(f.f);
  hierarchize(s);
  return s;
}

TEST(Gradient, ValueMatchesEvaluate) {
  const CompactStorage s = compressed(workloads::simulation_field(3), 3, 5);
  for (const CoordVector& x : workloads::uniform_points(3, 200, 17)) {
    const ValueAndGradient vg = evaluate_with_gradient(s, x);
    EXPECT_NEAR(vg.value, evaluate(s, x), 1e-13);
  }
}

TEST(Gradient, ExactForSingleHat) {
  // One basis function: gradient = coefficient * tensor-hat gradient.
  CompactStorage s(2, 4);
  s.at(LevelVector{1, 0}, IndexVector{1, 1}) = 2.0;
  // Inside the support, away from kinks: phi(x) = (1 - |4x0 - 1|)(1 - |2x1 - 1|).
  const CoordVector x{0.2, 0.4};
  const ValueAndGradient vg = evaluate_with_gradient(s, x);
  // value factors: 1 - |0.8-1| = 0.8 ; 1 - |0.8-1| = 0.8
  EXPECT_NEAR(vg.value, 2.0 * 0.8 * 0.8, 1e-14);
  // d/dx0: left of center (u<0): +4 -> 2 * 4 * 0.8 = 6.4
  EXPECT_NEAR(vg.gradient[0], 2.0 * 4.0 * 0.8, 1e-14);
  EXPECT_NEAR(vg.gradient[1], 2.0 * 2.0 * 0.8, 1e-14);
}

TEST(Gradient, MatchesFiniteDifferencesAtGenericPoints) {
  const dim_t d = 3;
  const CompactStorage s = compressed(workloads::gaussian_bump(d), d, 5);
  const real_t h = 1e-7;
  // Irrational-ish coordinates: never on a grid line or kink, so fs is
  // smooth in an h-neighbourhood and central differences converge.
  for (const CoordVector& x : workloads::halton_points(d, 100, 1000)) {
    bool skip = false;
    for (dim_t t = 0; t < d; ++t)
      if (x[t] < 2 * h || x[t] > 1 - 2 * h) skip = true;
    if (skip) continue;
    const ValueAndGradient vg = evaluate_with_gradient(s, x);
    for (dim_t t = 0; t < d; ++t) {
      CoordVector lo = x, hi = x;
      lo[t] -= h;
      hi[t] += h;
      const real_t fd = (evaluate(s, hi) - evaluate(s, lo)) / (2 * h);
      EXPECT_NEAR(vg.gradient[t], fd, 1e-5)
          << "dim " << t << " at " << x;
    }
  }
}

TEST(Gradient, PartialDerivativeConstantAlongItsOwnAxisWithinACell) {
  // fs is d-linear per cell: d/dx0 is constant in x0 (but linear in x1
  // through the bilinear cross term), so moving only x0 inside one cell
  // must not change gradient[0].
  const CompactStorage s = compressed(workloads::parabola_product(2), 2, 4);
  const ValueAndGradient a =
      evaluate_with_gradient(s, CoordVector{0.501, 0.501});
  const ValueAndGradient b =
      evaluate_with_gradient(s, CoordVector{0.52, 0.501});
  EXPECT_NEAR(a.gradient[0], b.gradient[0], 1e-12);
  const ValueAndGradient c =
      evaluate_with_gradient(s, CoordVector{0.501, 0.53});
  EXPECT_NEAR(a.gradient[1], c.gradient[1], 1e-12);
}

TEST(Gradient, ZeroAtThePeakOfSymmetricData) {
  // parabola_product is symmetric about 0.5 per dimension and 0.5 is a
  // grid point; the interpolant's left-derivative at the peak is the
  // slope of the cell left of 0.5, positive, and the gradient just right
  // of it is negative — sanity of the kink convention.
  const CompactStorage s = compressed(workloads::parabola_product(1), 1, 6);
  const ValueAndGradient left =
      evaluate_with_gradient(s, CoordVector{0.5});
  const ValueAndGradient right =
      evaluate_with_gradient(s, CoordVector{0.5 + 1e-9});
  EXPECT_GT(left.gradient[0], 0.0);
  EXPECT_LT(right.gradient[0], 0.0);
}

TEST(Integrate, SingleBasisIntegralIsMeshWidthProduct) {
  CompactStorage s(3, 4);
  const LevelVector l{0, 1, 2};
  const IndexVector i{1, 3, 5};
  s.at(l, i) = 1.0;
  // integral = 2^-(0+1) * 2^-(1+1) * 2^-(2+1) = 2^-6.
  EXPECT_NEAR(integrate(s), std::ldexp(1.0, -6), 1e-15);
}

TEST(Integrate, LinearInCoefficients) {
  CompactStorage a = compressed(workloads::gaussian_bump(2), 2, 5);
  CompactStorage b = compressed(workloads::oscillatory(2), 2, 5);
  CompactStorage combo = a;
  for (flat_index_t j = 0; j < combo.size(); ++j)
    combo[j] = 2 * a[j] - 5 * b[j];
  EXPECT_NEAR(integrate(combo), 2 * integrate(a) - 5 * integrate(b), 1e-12);
}

TEST(Integrate, ConvergesToKnownIntegral) {
  // int of prod 4x(1-x) over [0,1]^d = (2/3)^d.
  const dim_t d = 3;
  const real_t exact = std::pow(2.0 / 3.0, d);
  real_t prev = 1;
  for (level_t n : {3, 5, 7}) {
    const CompactStorage s = compressed(workloads::parabola_product(d), d, n);
    const real_t err = std::abs(integrate(s) - exact);
    EXPECT_LT(err, prev);
    prev = err;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(Integrate, MatchesMonteCarloOnRoughField) {
  const dim_t d = 4;
  const CompactStorage s = compressed(workloads::simulation_field(d), d, 6);
  real_t mc = 0;
  const auto pts = workloads::halton_points(d, 20000);
  for (const CoordVector& x : pts) mc += evaluate(s, x);
  mc /= static_cast<real_t>(pts.size());
  EXPECT_NEAR(integrate(s), mc, 5e-3);
}

TEST(MaxSurplus, DecaysForSmoothFunctions) {
  const CompactStorage s = compressed(workloads::parabola_product(2), 2, 7);
  const auto per_group = max_surplus_per_group(s);
  ASSERT_EQ(per_group.size(), 7u);
  // Surpluses of a C^2 function decay ~4x per level.
  for (std::size_t j = 2; j < per_group.size(); ++j)
    EXPECT_LT(per_group[j], per_group[j - 1]);
  EXPECT_LT(per_group.back(), per_group.front() / 100);
}

TEST(MaxSurplus, FlatForKinkedFunctionsAlongTheKink) {
  // A function with a kink not aligned to any grid line keeps large
  // surpluses at every level (no decay) — the smoothness fingerprint that
  // motivates adaptivity.
  CompactStorage s(2, 7);
  s.sample([](const CoordVector& x) {
    return std::abs(x[0] + x[1] - 0.93) * 4 * x[0] * (1 - x[0]) * 4 * x[1] *
           (1 - x[1]);
  });
  hierarchize(s);
  const auto per_group = max_surplus_per_group(s);
  EXPECT_GT(per_group.back(), per_group.front() / 100);
}

}  // namespace
}  // namespace csg
