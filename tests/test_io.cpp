#include "csg/io/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::io {
namespace {

CompactStorage make_storage() {
  CompactStorage s(3, 5);
  s.sample(workloads::simulation_field(3).f);
  hierarchize(s);
  return s;
}

TEST(Serialize, StreamRoundTripIsExact) {
  const CompactStorage original = make_storage();
  std::stringstream buffer;
  save(original, buffer);
  const CompactStorage restored = load(buffer);
  EXPECT_EQ(restored.grid().dim(), original.grid().dim());
  EXPECT_EQ(restored.grid().level(), original.grid().level());
  EXPECT_EQ(restored.values(), original.values());
}

TEST(Serialize, SerializedBytesMatchesActualSize) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  EXPECT_EQ(buffer.str().size(), serialized_bytes(s));
}

TEST(Serialize, FormatIsHeaderPlusRawCoefficients) {
  const CompactStorage s = make_storage();
  // 4 magic + 4 endian tag + 4 real width + 4 + 4 + 8 header bytes +
  // N doubles: the on-disk footprint stays as compact as the in-memory one
  // (no keys).
  EXPECT_EQ(serialized_bytes(s),
            28u + s.values().size() * sizeof(real_t));
}

TEST(Serialize, FileRoundTrip) {
  const CompactStorage original = make_storage();
  const std::string path = "/tmp/csg_test_roundtrip.csg";
  save_file(original, path);
  const CompactStorage restored = load_file(path);
  EXPECT_EQ(restored.values(), original.values());
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOPE garbage follows";
  EXPECT_THROW(load(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadRejected) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load(cut), std::runtime_error);
}

TEST(Serialize, CorruptedHeaderRejected) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  std::string bytes = buffer.str();
  bytes[12] = char(0xFF);  // absurd dimension
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load(corrupted), std::runtime_error);
}

TEST(Serialize, InconsistentPointCountRejected) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  std::string bytes = buffer.str();
  bytes[20] = char(bytes[20] + 1);  // tamper with the stored N
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load(corrupted), std::runtime_error);
}

TEST(Serialize, WrongEndiannessRejected) {
  // Byte-swap the endianness tag, as a big-endian writer would produce:
  // the loader must refuse instead of silently loading scrambled reals.
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  std::string bytes = buffer.str();
  std::swap(bytes[4], bytes[7]);
  std::swap(bytes[5], bytes[6]);
  std::stringstream foreign(bytes);
  try {
    load(foreign);
    FAIL() << "wrong-endianness header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("endianness"), std::string::npos);
  }
}

TEST(Serialize, WrongRealWidthRejected) {
  // Pretend the file stores 4-byte reals (a float-retyped build): reject
  // with a descriptive error rather than misreading the payload.
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  std::string bytes = buffer.str();
  bytes[8] = 4;
  std::stringstream narrow(bytes);
  try {
    load(narrow);
    FAIL() << "wrong-width header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("width"), std::string::npos);
  }
}

TEST(Serialize, LegacyPreludeFreeHeaderFailsLoudly) {
  // A file in the old layout (magic, d, n, N, payload — no endian tag, no
  // real width) must be rejected at the header, never half-loaded.
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  buffer.write("CSG1", 4);
  const std::uint32_t d = 3, n = 5;
  const std::uint64_t count = s.grid().num_points();
  buffer.write(reinterpret_cast<const char*>(&d), 4);
  buffer.write(reinterpret_cast<const char*>(&n), 4);
  buffer.write(reinterpret_cast<const char*>(&count), 8);
  buffer.write(reinterpret_cast<const char*>(s.data()),
               static_cast<std::streamsize>(count * sizeof(real_t)));
  EXPECT_THROW(load(buffer), std::runtime_error);
}

TEST(Serialize, AllFormatsRejectForeignEndianness) {
  // The prelude is shared: flip the tag in each format's header.
  auto swapped_tag = [](std::string bytes) {
    std::swap(bytes[4], bytes[7]);
    std::swap(bytes[5], bytes[6]);
    return bytes;
  };
  std::stringstream csgt_buf;
  save(TruncatedStorage(make_storage(), 1e-4), csgt_buf);
  std::stringstream csgt(swapped_tag(csgt_buf.str()));
  EXPECT_THROW(load_truncated(csgt), std::runtime_error);

  BoundaryStorage b(2, 3);
  std::stringstream csb_buf;
  save(b, csb_buf);
  std::stringstream csb(swapped_tag(csb_buf.str()));
  EXPECT_THROW(load_boundary(csb), std::runtime_error);

  adaptive::AdaptiveSparseGrid a(2, 2);
  std::stringstream csa_buf;
  save(a, csa_buf);
  std::stringstream csa(swapped_tag(csa_buf.str()));
  EXPECT_THROW(load_adaptive(csa), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_file("/tmp/does_not_exist_csg_42.csg"),
               std::runtime_error);
}

TEST(SerializeTruncated, RoundTripPreservesEverything) {
  const CompactStorage dense = make_storage();
  const TruncatedStorage original(dense, 1e-4);
  std::stringstream buffer;
  save(original, buffer);
  const TruncatedStorage restored = load_truncated(buffer);
  EXPECT_EQ(restored.kept_count(), original.kept_count());
  EXPECT_EQ(restored.error_bound(), original.error_bound());
  EXPECT_EQ(restored.indices(), original.indices());
  EXPECT_EQ(restored.values(), original.values());
  for (const CoordVector& x : workloads::uniform_points(3, 50, 6))
    EXPECT_EQ(restored.evaluate(x), original.evaluate(x));
}

TEST(SerializeTruncated, CorruptIndexStreamRejected) {
  const TruncatedStorage original(make_storage(), 1e-4);
  std::stringstream buffer;
  save(original, buffer);
  std::string bytes = buffer.str();
  // Break monotonicity of the first two stored indices (header: magic 4,
  // endian 4, width 4, u32 d 4, u32 n 4, u64 kept 8, real bound 8 = 36
  // bytes).
  bytes[36] = char(0xFF);
  bytes[37] = char(0xFF);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_truncated(corrupted), std::runtime_error);
}

TEST(SerializeTruncated, WrongMagicRejected) {
  const CompactStorage dense = make_storage();
  std::stringstream buffer;
  save(dense, buffer);
  EXPECT_THROW(load_truncated(buffer), std::runtime_error);
}

TEST(SerializeBoundary, StreamRoundTripIsExact) {
  BoundaryStorage original(3, 4);
  original.sample(workloads::boundary_polynomial(3).f);
  hierarchize(original);
  std::stringstream buffer;
  save(original, buffer);
  const BoundaryStorage restored = load_boundary(buffer);
  EXPECT_EQ(restored.grid().dim(), 3u);
  EXPECT_EQ(restored.values(), original.values());
}

TEST(SerializeBoundary, FileRoundTripEvaluates) {
  BoundaryStorage original(2, 4);
  original.sample(workloads::boundary_polynomial(2).f);
  hierarchize(original);
  const std::string path = "/tmp/csg_test_boundary.csb";
  save_file(original, path);
  const BoundaryStorage restored = load_boundary_file(path);
  for (const CoordVector& x : workloads::uniform_points(2, 50, 3))
    EXPECT_EQ(evaluate(restored, x), evaluate(original, x));
  std::filesystem::remove(path);
}

TEST(SerializeBoundary, WrongMagicRejected) {
  // A compact-format blob must not load as a boundary grid and vice versa.
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  EXPECT_THROW(load_boundary(buffer), std::runtime_error);

  BoundaryStorage b(2, 3);
  std::stringstream buffer2;
  save(b, buffer2);
  EXPECT_THROW(load(buffer2), std::runtime_error);
}

TEST(SerializeAdaptive, RoundTripPreservesPointSetAndValues) {
  adaptive::AdaptiveSparseGrid original(3, 3);
  original.insert({{3, 1, 0}, {9, 3, 1}});  // make it non-regular
  original.sample(workloads::gaussian_bump(3).f);
  original.hierarchize();

  std::stringstream buffer;
  save(original, buffer);
  adaptive::AdaptiveSparseGrid restored = load_adaptive(buffer);
  EXPECT_EQ(restored.num_points(), original.num_points());
  original.for_each_node([&](const adaptive::AdaptiveSparseGrid::Node& node) {
    ASSERT_TRUE(restored.contains(node.point.level, node.point.index));
  });
  for (const CoordVector& x : workloads::uniform_points(3, 60, 9))
    EXPECT_EQ(restored.evaluate(x), original.evaluate(x));
}

TEST(SerializeAdaptive, FileRoundTrip) {
  adaptive::AdaptiveSparseGrid original(2, 4);
  original.sample(workloads::parabola_product(2).f);
  original.hierarchize();
  const std::string path = "/tmp/csg_test_adaptive.csa";
  save_file(original, path);
  adaptive::AdaptiveSparseGrid restored = load_adaptive_file(path);
  EXPECT_EQ(restored.num_points(), original.num_points());
  std::filesystem::remove(path);
}

TEST(SerializeAdaptive, TruncationRejected) {
  adaptive::AdaptiveSparseGrid g(2, 3);
  std::stringstream buffer;
  save(g, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 7));
  EXPECT_THROW(load_adaptive(cut), std::runtime_error);
}

TEST(SerializeAdaptive, CorruptPointRejected) {
  adaptive::AdaptiveSparseGrid g(2, 2);
  std::stringstream buffer;
  save(g, buffer);
  std::string bytes = buffer.str();
  // First record starts after the 28-byte header; make its index even.
  bytes[28 + 4] = 2;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_adaptive(corrupted), std::runtime_error);
}

TEST(Serialize, EmptyGridSerializes) {
  CompactStorage tiny(2, 1);  // one point
  tiny[0] = 7.5;
  std::stringstream buffer;
  save(tiny, buffer);
  const CompactStorage restored = load(buffer);
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0], 7.5);
}

}  // namespace
}  // namespace csg::io
