#include "csg/io/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "csg/adaptive/adaptive_grid.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::io {
namespace {

CompactStorage make_storage() {
  CompactStorage s(3, 5);
  s.sample(workloads::simulation_field(3).f);
  hierarchize(s);
  return s;
}

TEST(Serialize, StreamRoundTripIsExact) {
  const CompactStorage original = make_storage();
  std::stringstream buffer;
  save(original, buffer);
  const CompactStorage restored = load(buffer);
  EXPECT_EQ(restored.grid().dim(), original.grid().dim());
  EXPECT_EQ(restored.grid().level(), original.grid().level());
  EXPECT_EQ(restored.values(), original.values());
}

TEST(Serialize, SerializedBytesMatchesActualSize) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  EXPECT_EQ(buffer.str().size(), serialized_bytes(s));
}

TEST(Serialize, FormatIsHeaderPlusRawCoefficients) {
  const CompactStorage s = make_storage();
  // 4 magic + 4 + 4 + 8 header bytes + N doubles: the on-disk footprint is
  // as compact as the in-memory one (no keys).
  EXPECT_EQ(serialized_bytes(s),
            20u + s.values().size() * sizeof(real_t));
}

TEST(Serialize, FileRoundTrip) {
  const CompactStorage original = make_storage();
  const std::string path = "/tmp/csg_test_roundtrip.csg";
  save_file(original, path);
  const CompactStorage restored = load_file(path);
  EXPECT_EQ(restored.values(), original.values());
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOPE garbage follows";
  EXPECT_THROW(load(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedPayloadRejected) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load(cut), std::runtime_error);
}

TEST(Serialize, CorruptedHeaderRejected) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  std::string bytes = buffer.str();
  bytes[4] = char(0xFF);  // absurd dimension
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load(corrupted), std::runtime_error);
}

TEST(Serialize, InconsistentPointCountRejected) {
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  std::string bytes = buffer.str();
  bytes[12] = char(bytes[12] + 1);  // tamper with the stored N
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load(corrupted), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_file("/tmp/does_not_exist_csg_42.csg"),
               std::runtime_error);
}

TEST(SerializeTruncated, RoundTripPreservesEverything) {
  const CompactStorage dense = make_storage();
  const TruncatedStorage original(dense, 1e-4);
  std::stringstream buffer;
  save(original, buffer);
  const TruncatedStorage restored = load_truncated(buffer);
  EXPECT_EQ(restored.kept_count(), original.kept_count());
  EXPECT_EQ(restored.error_bound(), original.error_bound());
  EXPECT_EQ(restored.indices(), original.indices());
  EXPECT_EQ(restored.values(), original.values());
  for (const CoordVector& x : workloads::uniform_points(3, 50, 6))
    EXPECT_EQ(restored.evaluate(x), original.evaluate(x));
}

TEST(SerializeTruncated, CorruptIndexStreamRejected) {
  const TruncatedStorage original(make_storage(), 1e-4);
  std::stringstream buffer;
  save(original, buffer);
  std::string bytes = buffer.str();
  // Break monotonicity of the first two stored indices (header is 24 B:
  // magic + d + n + count + bound... magic 4, u32 d 4, u32 n 4, u64 kept 8,
  // real bound 8 = 28 bytes).
  bytes[28] = char(0xFF);
  bytes[29] = char(0xFF);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_truncated(corrupted), std::runtime_error);
}

TEST(SerializeTruncated, WrongMagicRejected) {
  const CompactStorage dense = make_storage();
  std::stringstream buffer;
  save(dense, buffer);
  EXPECT_THROW(load_truncated(buffer), std::runtime_error);
}

TEST(SerializeBoundary, StreamRoundTripIsExact) {
  BoundaryStorage original(3, 4);
  original.sample(workloads::boundary_polynomial(3).f);
  hierarchize(original);
  std::stringstream buffer;
  save(original, buffer);
  const BoundaryStorage restored = load_boundary(buffer);
  EXPECT_EQ(restored.grid().dim(), 3u);
  EXPECT_EQ(restored.values(), original.values());
}

TEST(SerializeBoundary, FileRoundTripEvaluates) {
  BoundaryStorage original(2, 4);
  original.sample(workloads::boundary_polynomial(2).f);
  hierarchize(original);
  const std::string path = "/tmp/csg_test_boundary.csb";
  save_file(original, path);
  const BoundaryStorage restored = load_boundary_file(path);
  for (const CoordVector& x : workloads::uniform_points(2, 50, 3))
    EXPECT_EQ(evaluate(restored, x), evaluate(original, x));
  std::filesystem::remove(path);
}

TEST(SerializeBoundary, WrongMagicRejected) {
  // A compact-format blob must not load as a boundary grid and vice versa.
  const CompactStorage s = make_storage();
  std::stringstream buffer;
  save(s, buffer);
  EXPECT_THROW(load_boundary(buffer), std::runtime_error);

  BoundaryStorage b(2, 3);
  std::stringstream buffer2;
  save(b, buffer2);
  EXPECT_THROW(load(buffer2), std::runtime_error);
}

TEST(SerializeAdaptive, RoundTripPreservesPointSetAndValues) {
  adaptive::AdaptiveSparseGrid original(3, 3);
  original.insert({{3, 1, 0}, {9, 3, 1}});  // make it non-regular
  original.sample(workloads::gaussian_bump(3).f);
  original.hierarchize();

  std::stringstream buffer;
  save(original, buffer);
  adaptive::AdaptiveSparseGrid restored = load_adaptive(buffer);
  EXPECT_EQ(restored.num_points(), original.num_points());
  original.for_each_node([&](const adaptive::AdaptiveSparseGrid::Node& node) {
    ASSERT_TRUE(restored.contains(node.point.level, node.point.index));
  });
  for (const CoordVector& x : workloads::uniform_points(3, 60, 9))
    EXPECT_EQ(restored.evaluate(x), original.evaluate(x));
}

TEST(SerializeAdaptive, FileRoundTrip) {
  adaptive::AdaptiveSparseGrid original(2, 4);
  original.sample(workloads::parabola_product(2).f);
  original.hierarchize();
  const std::string path = "/tmp/csg_test_adaptive.csa";
  save_file(original, path);
  adaptive::AdaptiveSparseGrid restored = load_adaptive_file(path);
  EXPECT_EQ(restored.num_points(), original.num_points());
  std::filesystem::remove(path);
}

TEST(SerializeAdaptive, TruncationRejected) {
  adaptive::AdaptiveSparseGrid g(2, 3);
  std::stringstream buffer;
  save(g, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(full.substr(0, full.size() - 7));
  EXPECT_THROW(load_adaptive(cut), std::runtime_error);
}

TEST(SerializeAdaptive, CorruptPointRejected) {
  adaptive::AdaptiveSparseGrid g(2, 2);
  std::stringstream buffer;
  save(g, buffer);
  std::string bytes = buffer.str();
  // First record starts after the 16-byte header; make its index even.
  bytes[16 + 4] = 2;
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_adaptive(corrupted), std::runtime_error);
}

TEST(Serialize, EmptyGridSerializes) {
  CompactStorage tiny(2, 1);  // one point
  tiny[0] = 7.5;
  std::stringstream buffer;
  save(tiny, buffer);
  const CompactStorage restored = load(buffer);
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0], 7.5);
}

}  // namespace
}  // namespace csg::io
