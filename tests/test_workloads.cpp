#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/regular_grid.hpp"
#include "csg/workloads/full_grid.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::workloads {
namespace {

TEST(Functions, ZeroBoundarySuiteVanishesOnBoundary) {
  const dim_t d = 3;
  for (const TestFunction& f : zero_boundary_suite(d)) {
    ASSERT_TRUE(f.zero_boundary) << f.name;
    for (dim_t t = 0; t < d; ++t) {
      for (real_t edge : {0.0, 1.0}) {
        CoordVector x{0.3, 0.6, 0.9};
        x[t] = edge;
        EXPECT_NEAR(f(x), 0.0, 1e-14) << f.name << " dim " << t;
      }
    }
  }
}

TEST(Functions, ParabolaPeaksAtCenter) {
  const auto f = parabola_product(4);
  EXPECT_DOUBLE_EQ(f(CoordVector{0.5, 0.5, 0.5, 0.5}), 1.0);
  EXPECT_LT(f(CoordVector{0.3, 0.5, 0.5, 0.5}), 1.0);
}

TEST(Functions, BoundaryPolynomialIsNonZeroOnBoundary) {
  const auto f = boundary_polynomial(2);
  EXPECT_FALSE(f.zero_boundary);
  EXPECT_DOUBLE_EQ(f(CoordVector{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(f(CoordVector{1.0, 1.0}), 1.0 + 1.0 + 2.0);
}

TEST(Functions, SuiteNamesAreUnique) {
  std::set<std::string> names;
  for (const TestFunction& f : zero_boundary_suite(5))
    EXPECT_TRUE(names.insert(f.name).second) << f.name;
}

TEST(Sampling, UniformPointsDeterministicGivenSeed) {
  const auto a = uniform_points(4, 50, 123);
  const auto b = uniform_points(4, 50, 123);
  const auto c = uniform_points(4, 50, 124);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  EXPECT_FALSE(std::equal(a.begin(), a.end(), c.begin()));
}

TEST(Sampling, UniformPointsInUnitCube) {
  for (const CoordVector& p : uniform_points(6, 200, 7)) {
    ASSERT_EQ(p.size(), 6u);
    for (real_t x : p) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(Sampling, HaltonPointsAreLowDiscrepancy) {
  // Every axis-aligned half must receive roughly half the points.
  const dim_t d = 5;
  const auto pts = halton_points(d, 1000);
  for (dim_t t = 0; t < d; ++t) {
    int low = 0;
    for (const CoordVector& p : pts)
      if (p[t] < 0.5) ++low;
    EXPECT_NEAR(low, 500, 40) << "dim " << t;
  }
}

TEST(Sampling, HaltonPointsDistinct) {
  const auto pts = halton_points(3, 200);
  for (std::size_t a = 0; a < pts.size(); ++a)
    for (std::size_t b = a + 1; b < pts.size(); ++b)
      EXPECT_FALSE(pts[a] == pts[b]) << a << " vs " << b;
}

TEST(Sampling, SlicePointsSpanThePlane) {
  const CoordVector anchor{0.5, 0.5, 0.25, 0.75};
  const auto pts = slice_points(anchor, 1, 3, 8, 5);
  ASSERT_EQ(pts.size(), 40u);
  // Non-slice coordinates pinned to the anchor.
  for (const CoordVector& p : pts) {
    EXPECT_EQ(p[0], 0.5);
    EXPECT_EQ(p[2], 0.25);
  }
  // Corners cover the full [0,1] range of the slice dims.
  EXPECT_EQ(pts.front()[1], 0.0);
  EXPECT_EQ(pts.front()[3], 0.0);
  EXPECT_EQ(pts.back()[1], 1.0);
  EXPECT_EQ(pts.back()[3], 1.0);
}

TEST(FullGrid, SizeAndCoordinates) {
  FullGrid fg(2, 3);
  EXPECT_EQ(fg.points_per_dim(), 7u);
  EXPECT_EQ(fg.num_points(), 49u);
  const CoordVector x = fg.coordinates(DimVector<std::size_t>{1, 4});
  EXPECT_DOUBLE_EQ(x[0], 0.125);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
}

TEST(FullGrid, SampleThenReadBack) {
  FullGrid fg(2, 3);
  fg.sample([](const CoordVector& x) { return x[0] * 100 + x[1]; });
  const DimVector<std::size_t> k{3, 5};
  const CoordVector x = fg.coordinates(k);
  EXPECT_DOUBLE_EQ(fg.at(k), x[0] * 100 + x[1]);
}

TEST(FullGrid, SparsePointLookupAgreesWithDirectEvaluation) {
  // Every sparse grid point of level <= n lies on the full grid; the value
  // fetched by value_at_sparse_point must be the sampled one.
  const dim_t d = 3;
  const level_t n = 4;
  FullGrid fg(d, n);
  auto f = [](const CoordVector& x) { return x[0] + 3 * x[1] - x[2]; };
  fg.sample(f);
  RegularSparseGrid g(d, n);
  for (flat_index_t j = 0; j < g.num_points(); ++j) {
    const GridPoint gp = g.idx2gp(j);
    EXPECT_DOUBLE_EQ(fg.value_at_sparse_point(gp), f(coordinates(gp)));
  }
}

TEST(FullGrid, CompressionRatioMatchesCurseOfDimensionality) {
  // The motivating numbers: full grid N^d vs sparse O(N log^{d-1} N).
  const level_t n = 5;
  const FullGrid fg(3, n);
  const RegularSparseGrid sg(3, n);
  EXPECT_GT(fg.num_points(), 10 * sg.num_points());
}

TEST(FullGridDeath, RejectsGridsThatCannotFit) {
  EXPECT_DEATH(FullGrid(10, 10), "precondition");
}

}  // namespace
}  // namespace csg::workloads
