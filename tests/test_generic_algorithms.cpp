// The central integration test: both algorithm families (the original
// recursive Alg. 1/2 and the iterative Alg. 6/7) over all five storages
// must produce the same hierarchical coefficients and the same interpolant
// as the compact flat-array reference.
#include "csg/baselines/generic_algorithms.hpp"

#include <gtest/gtest.h>

#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::baselines {
namespace {

constexpr dim_t kDim = 4;
constexpr level_t kLevel = 4;

const workloads::TestFunction& test_function() {
  static const workloads::TestFunction f = workloads::simulation_field(kDim);
  return f;
}

/// Reference coefficients from the core (flat) implementation.
const CompactStorage& reference() {
  static const CompactStorage ref = [] {
    CompactStorage s(kDim, kLevel);
    s.sample(test_function().f);
    hierarchize(s);
    return s;
  }();
  return ref;
}

template <typename S>
class GenericAlgorithms : public ::testing::Test {};

using StorageTypes =
    ::testing::Types<CompactStorage, StdMapStorage, EnhancedMapStorage,
                     EnhancedHashStorage, PrefixTreeStorage>;
TYPED_TEST_SUITE(GenericAlgorithms, StorageTypes);

TYPED_TEST(GenericAlgorithms, IterativeHierarchizationMatchesReference) {
  TypeParam s(kDim, kLevel);
  sample(s, test_function().f);
  hierarchize_iterative(s);
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_NEAR(s.get(l, i), reference().get(l, i), 1e-13);
  });
}

TYPED_TEST(GenericAlgorithms, RecursiveHierarchizationMatchesReference) {
  TypeParam s(kDim, kLevel);
  sample(s, test_function().f);
  hierarchize_recursive(s);
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_NEAR(s.get(l, i), reference().get(l, i), 1e-13);
  });
}

TYPED_TEST(GenericAlgorithms, RecursiveRoundTripRestoresNodalValues) {
  TypeParam s(kDim, kLevel);
  sample(s, test_function().f);
  hierarchize_recursive(s);
  dehierarchize_recursive(s);
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_NEAR(s.get(l, i), test_function()(coordinates({l, i})), 1e-12);
  });
}

TYPED_TEST(GenericAlgorithms, IterativeRoundTripRestoresNodalValues) {
  TypeParam s(kDim, kLevel);
  sample(s, test_function().f);
  hierarchize_iterative(s);
  dehierarchize_iterative(s);
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_NEAR(s.get(l, i), test_function()(coordinates({l, i})), 1e-12);
  });
}

TYPED_TEST(GenericAlgorithms, BothEvaluationsMatchCoreEvaluate) {
  TypeParam s(kDim, kLevel);
  sample(s, test_function().f);
  hierarchize_iterative(s);
  for (const CoordVector& x : workloads::uniform_points(kDim, 100, 99)) {
    const real_t expected = evaluate(reference(), x);
    EXPECT_NEAR(evaluate_iterative(s, x), expected, 1e-13);
    EXPECT_NEAR(evaluate_recursive(s, x), expected, 1e-13);
  }
}

TYPED_TEST(GenericAlgorithms, BlockedEvaluationMatchesCoreEvaluate) {
  TypeParam s(kDim, kLevel);
  sample(s, test_function().f);
  hierarchize_iterative(s);
  const auto pts = workloads::uniform_points(kDim, 75, 5);
  for (std::size_t block : {std::size_t{1}, std::size_t{16}, std::size_t{75},
                            std::size_t{500}}) {
    const auto got = evaluate_many_blocked_iterative(s, pts, block);
    ASSERT_EQ(got.size(), pts.size());
    for (std::size_t p = 0; p < pts.size(); ++p)
      EXPECT_NEAR(got[p], evaluate(reference(), pts[p]), 1e-13)
          << "block=" << block << " point=" << p;
  }
}

TEST(GenericAlgorithms, ForEachPointVisitsEveryPointOnce) {
  RegularSparseGrid g(3, 5);
  std::set<flat_index_t> seen;
  for_each_point(g, [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_TRUE(seen.insert(g.gp2idx(l, i)).second);
  });
  EXPECT_EQ(seen.size(), g.num_points());
}

TEST(GenericAlgorithms, ForEachPointVisitsInFlatOrder) {
  RegularSparseGrid g(2, 5);
  flat_index_t expected = 0;
  for_each_point(g, [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_EQ(g.gp2idx(l, i), expected++);
  });
}

TEST(GenericAlgorithms, PolesPartitionTheGrid) {
  // Every grid point lies on exactly one pole of each dimension, and the
  // pole roots have l[t] = 0, i[t] = 1.
  RegularSparseGrid g(3, 4);
  for (dim_t t = 0; t < 3; ++t) {
    std::uint64_t covered = 0;
    detail::for_each_pole(
        g, t, [&](LevelVector& l, IndexVector& i, level_t budget) {
          EXPECT_EQ(l[t], 0u);
          EXPECT_EQ(i[t], 1u);
          EXPECT_EQ(budget, g.level() - 1 - l.l1_norm());
          // Pole length: points at levels 0..budget in dimension t on this
          // pole = 2^{budget+1} - 1.
          covered += (std::uint64_t{1} << (budget + 1)) - 1;
        });
    EXPECT_EQ(covered, g.num_points()) << "dimension " << t;
  }
}

TEST(GenericAlgorithms, RecursiveEvaluationPrunesOutsideSupport) {
  // x on a coarse grid line: all finer contributions vanish; recursive and
  // iterative evaluation agree including at such degenerate locations.
  CompactStorage s(2, 5);
  sample(s, workloads::parabola_product(2).f);
  hierarchize_iterative(s);
  for (const real_t x0 : {0.5, 0.25, 0.125, 0.0625}) {
    const CoordVector x{x0, 0.3};
    EXPECT_NEAR(evaluate_recursive(s, x), evaluate_iterative(s, x), 1e-14);
  }
}

TEST(GenericAlgorithms, OneDimensionalGridWorksThroughEveryPath) {
  StdMapStorage s(1, 6);
  sample(s, [](const CoordVector& x) { return x[0] * (1 - x[0]); });
  hierarchize_recursive(s);
  StdMapStorage s2(1, 6);
  sample(s2, [](const CoordVector& x) { return x[0] * (1 - x[0]); });
  hierarchize_iterative(s2);
  for_each_point(s.grid(), [&](const LevelVector& l, const IndexVector& i) {
    EXPECT_NEAR(s.get(l, i), s2.get(l, i), 1e-14);
  });
}

}  // namespace
}  // namespace csg::baselines
