#include "csg/memsim/scaling.hpp"

#include <gtest/gtest.h>

namespace csg::memsim {
namespace {

TEST(Scaling, PureComputeScalesLinearly) {
  const MachineSpec m = opteron_8356();
  const auto curve = speedup_curve(m, 100.0, 0.0);
  ASSERT_EQ(curve.size(), 32u);
  for (int t = 1; t <= 32; ++t)
    EXPECT_DOUBLE_EQ(curve[static_cast<std::size_t>(t - 1)], t);
}

TEST(Scaling, BandwidthBoundWorkloadSaturates) {
  const MachineSpec m = opteron_8356();
  // 10 DRAM lines per op, negligible compute: the ceiling is
  // B / (m*line) vs single-thread rate 1/(m*L).
  const auto curve = speedup_curve(m, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(curve[0], 1.0);
  // ceiling = (B/(m*line)) / (1/(m*L)) = B*L/line ~ 7e9 B/s * 110e-9 s / 64.
  const double ceiling = 7.0 * 110.0 / 64.0;  // GB/s * ns / B = ratio
  EXPECT_NEAR(curve.back(), ceiling, 1e-9);
  EXPECT_LT(curve.back(), 32.0);
  // And the curve is flat once saturated.
  EXPECT_DOUBLE_EQ(curve[31], curve[30]);
}

TEST(Scaling, CurveIsMonotoneNonDecreasing) {
  for (double misses : {0.0, 0.5, 2.0, 20.0}) {
    const auto curve = speedup_curve(nehalem_e5540(), 50.0, misses);
    for (std::size_t k = 1; k < curve.size(); ++k)
      EXPECT_GE(curve[k], curve[k - 1]) << "misses=" << misses;
  }
}

TEST(Scaling, FirstEntryIsAlwaysOne) {
  for (double c : {0.0, 10.0, 1000.0})
    for (double misses : {0.01, 1.0, 50.0})
      EXPECT_DOUBLE_EQ(speedup_curve(opteron_8356(), c, misses)[0], 1.0);
}

TEST(Scaling, LowerMissRateScalesFurther) {
  // The Fig. 11a effect: the compact structure (few misses/op) outgrows the
  // map (many misses/op) on the same machine.
  const MachineSpec m = opteron_8356();
  const auto compact = speedup_curve(m, 200.0, 0.2);
  const auto map = speedup_curve(m, 200.0, 8.0);
  EXPECT_GT(compact.back(), 30.0);
  EXPECT_LT(map.back(), 16.0);
  EXPECT_GT(compact.back(), map.back());
}

TEST(Scaling, ComputeHeavyWorkloadsDelaySaturation) {
  const MachineSpec m = opteron_8356();
  const auto lean = speedup_curve(m, 10.0, 4.0);
  const auto heavy = speedup_curve(m, 4000.0, 4.0);
  EXPECT_GE(heavy.back(), lean.back());
}

TEST(Scaling, SerialFractionCapsViaAmdahl) {
  const MachineSpec m = opteron_8356();
  // No memory traffic, 1% serial work: the classic Amdahl ceiling.
  const auto curve = speedup_curve(m, 100.0, 0.0, 0.01);
  EXPECT_NEAR(curve.back(), 1.0 / (0.01 + 0.99 / 32.0), 1e-12);
  EXPECT_LT(curve.back(), 32.0);
  // Zero serial fraction reproduces the linear curve.
  EXPECT_DOUBLE_EQ(speedup_curve(m, 100.0, 0.0, 0.0).back(), 32.0);
}

TEST(Scaling, SerialFractionComposesWithBandwidthCeiling) {
  const MachineSpec m = opteron_8356();
  const auto bw_only = speedup_curve(m, 0.0, 10.0, 0.0);
  const auto both = speedup_curve(m, 0.0, 10.0, 0.05);
  for (std::size_t k = 0; k < both.size(); ++k)
    EXPECT_LE(both[k], bw_only[k] + 1e-12);
}

TEST(ScalingDeath, InvalidSerialFractionRejected) {
  EXPECT_DEATH(speedup_curve(opteron_8356(), 1.0, 1.0, 1.0), "precondition");
}

TEST(Scaling, MachinePresetsAreSane) {
  EXPECT_EQ(opteron_8356().cores, 32);
  EXPECT_EQ(nehalem_e5540().cores, 8);
  EXPECT_EQ(nehalem_i7_920().cores, 4);
  EXPECT_GT(nehalem_e5540().bandwidth_gbs, opteron_8356().bandwidth_gbs / 2);
}

TEST(Scaling, LocalityProfileDerivedRates) {
  LocalityProfile p;
  p.operations = 100;
  p.accesses = 1000;
  p.l1_misses = 100;
  p.dram_lines = 50;
  EXPECT_DOUBLE_EQ(p.accesses_per_op(), 10.0);
  EXPECT_DOUBLE_EQ(p.dram_lines_per_op(), 0.5);
  EXPECT_DOUBLE_EQ(p.l1_miss_rate(), 0.1);
  const LocalityProfile empty;
  EXPECT_DOUBLE_EQ(empty.accesses_per_op(), 0.0);
  EXPECT_DOUBLE_EQ(empty.l1_miss_rate(), 0.0);
}

}  // namespace
}  // namespace csg::memsim
