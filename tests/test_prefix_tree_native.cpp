// The native trie algorithms (Alg. 1/2 with child-pointer descent) must
// agree with every other implementation in the library.
#include "csg/baselines/prefix_tree_native.hpp"

#include <gtest/gtest.h>

#include "csg/baselines/generic_algorithms.hpp"
#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg::baselines {
namespace {

struct Case {
  dim_t d;
  level_t n;
};

class NativeTrieSweep : public ::testing::TestWithParam<Case> {};

TEST_P(NativeTrieSweep, NativeHierarchizationMatchesCompactReference) {
  const auto [d, n] = GetParam();
  const auto f = workloads::simulation_field(d);
  CompactStorage ref(d, n);
  ref.sample(f.f);
  hierarchize(ref);

  PrefixTreeStorage tree(d, n);
  sample(tree, f.f);
  hierarchize_native(tree);
  for_each_point(ref.grid(), [&](const LevelVector& l, const IndexVector& i) {
    ASSERT_NEAR(tree.get(l, i), ref.get(l, i), 1e-13);
  });
}

TEST_P(NativeTrieSweep, NativeEvaluationMatchesCoreEvaluate) {
  const auto [d, n] = GetParam();
  const auto f = workloads::gaussian_bump(d);
  CompactStorage ref(d, n);
  ref.sample(f.f);
  hierarchize(ref);
  PrefixTreeStorage tree(d, n);
  sample(tree, f.f);
  hierarchize_native(tree);
  for (const CoordVector& x : workloads::uniform_points(d, 120, 9))
    ASSERT_NEAR(evaluate_native(tree, x), evaluate(ref, x), 1e-13);
}

TEST_P(NativeTrieSweep, NativeRoundTripRestoresNodalValues) {
  const auto [d, n] = GetParam();
  const auto f = workloads::oscillatory(d);
  PrefixTreeStorage tree(d, n);
  sample(tree, f.f);
  hierarchize_native(tree);
  dehierarchize_native(tree);
  for_each_point(tree.grid(), [&](const LevelVector& l, const IndexVector& i) {
    ASSERT_NEAR(tree.get(l, i), f(coordinates({l, i})), 1e-12);
  });
}

TEST_P(NativeTrieSweep, NativeAndGenericRecursiveAgreeExactly) {
  const auto [d, n] = GetParam();
  const auto f = workloads::parabola_product(d);
  PrefixTreeStorage native(d, n);
  sample(native, f.f);
  hierarchize_native(native);
  PrefixTreeStorage generic(d, n);
  sample(generic, f.f);
  hierarchize_recursive(generic);
  for_each_point(native.grid(),
                 [&](const LevelVector& l, const IndexVector& i) {
                   ASSERT_NEAR(native.get(l, i), generic.get(l, i), 1e-13);
                 });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NativeTrieSweep,
    ::testing::Values(Case{1, 6}, Case{2, 5}, Case{3, 4}, Case{4, 4},
                      Case{5, 3}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(NativeTrie, LevelOfSlotDecodesHeapOrder) {
  EXPECT_EQ(detail_trie::level_of_slot(0), 0u);
  EXPECT_EQ(detail_trie::level_of_slot(1), 1u);
  EXPECT_EQ(detail_trie::level_of_slot(2), 1u);
  EXPECT_EQ(detail_trie::level_of_slot(3), 2u);
  EXPECT_EQ(detail_trie::level_of_slot(6), 2u);
  EXPECT_EQ(detail_trie::level_of_slot(7), 3u);
}

TEST(NativeTrie, EvaluationPrunesOnGridLines) {
  PrefixTreeStorage tree(2, 5);
  sample(tree, workloads::parabola_product(2).f);
  hierarchize_native(tree);
  CompactStorage ref(2, 5);
  ref.sample(workloads::parabola_product(2).f);
  hierarchize(ref);
  for (const real_t x0 : {0.5, 0.25, 0.0, 1.0}) {
    const CoordVector x{x0, 0.37};
    EXPECT_NEAR(evaluate_native(tree, x), evaluate(ref, x), 1e-14);
  }
}

}  // namespace
}  // namespace csg::baselines
