// End-to-end reproduction of the paper's Fig. 1 pipeline:
//   Simulation -> Compress (hierarchize) -> Storage -> Decompress
//   (evaluate) -> Visualization.
// A synthetic "simulation" produces a full grid; the sparse grid compresses
// it; the compressed form round-trips through serialization; visualization
// slices and point queries decompress it and must approximate the original
// field.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/io/serialize.hpp"
#include "csg/parallel/omp_algorithms.hpp"
#include "csg/workloads/full_grid.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg {
namespace {

TEST(Pipeline, FullGridToSparseToVisualizationSlice) {
  const dim_t d = 3;
  const level_t n = 6;
  const auto field = workloads::simulation_field(d);

  // 1. "Simulation": a dense full grid of the field.
  workloads::FullGrid full(d, n);
  full.sample(field.f);

  // 2. Compression: restrict to sparse grid points, then hierarchize.
  CompactStorage sparse(d, n);
  const RegularSparseGrid& grid = sparse.grid();
  for (flat_index_t j = 0; j < sparse.size(); ++j)
    sparse[j] = full.value_at_sparse_point(grid.idx2gp(j));
  hierarchize(sparse);

  // The compression ratio the technique promises.
  EXPECT_GT(full.num_points(), 50 * sparse.size());

  // 3. Storage: serialize + reload.
  std::stringstream blob;
  io::save(sparse, blob);
  const CompactStorage restored = io::load(blob);

  // 4. Decompression for visualization: a 2d slice through the volume.
  const auto slice =
      workloads::slice_points(CoordVector{0.5, 0.5, 0.5}, 0, 1, 32, 32);
  const auto values = evaluate_many_blocked(restored, slice);

  // 5. The reconstructed slice approximates the original field.
  real_t max_err = 0;
  for (std::size_t p = 0; p < slice.size(); ++p)
    max_err = std::max(max_err, std::abs(values[p] - field(slice[p])));
  EXPECT_LT(max_err, 0.02);
}

TEST(Pipeline, CompressedFileIsSmallerThanFullGridDump) {
  const dim_t d = 3;
  const level_t n = 6;
  workloads::FullGrid full(d, n);
  CompactStorage sparse(d, n);
  sparse.sample(workloads::gaussian_bump(d).f);
  hierarchize(sparse);
  EXPECT_LT(io::serialized_bytes(sparse), full.memory_bytes() / 50);
}

TEST(Pipeline, ParallelAndSequentialPipelinesAgreeEndToEnd) {
  const dim_t d = 4;
  const level_t n = 5;
  const auto field = workloads::oscillatory(d);

  CompactStorage seq(d, n), par(d, n);
  seq.sample(field.f);
  par.sample(field.f);
  hierarchize(seq);
  parallel::omp_hierarchize(par, 4);

  const auto pts = workloads::halton_points(d, 500);
  const auto a = evaluate_many(seq, pts);
  const auto b = parallel::omp_evaluate_many(par, pts, 4);
  for (std::size_t p = 0; p < pts.size(); ++p) EXPECT_EQ(a[p], b[p]);
}

TEST(Pipeline, InteractiveExplorationScenario) {
  // A user browses: repeated slice extractions at different anchors, as the
  // visualization front-end would issue them. All reconstructions must stay
  // within the interpolation error bound of the grid.
  const dim_t d = 4;
  const level_t n = 7;
  const auto field = workloads::parabola_product(d);
  CompactStorage sparse(d, n);
  sparse.sample(field.f);
  hierarchize(sparse);

  for (const real_t anchor : {0.25, 0.5, 0.75}) {
    const auto slice = workloads::slice_points(
        CoordVector(d, anchor), 0, d - 1, 16, 16);
    const auto values = evaluate_many_blocked(sparse, slice, 64);
    for (std::size_t p = 0; p < slice.size(); ++p)
      EXPECT_NEAR(values[p], field(slice[p]), 0.05);
  }
}

TEST(Pipeline, CompressionPreservesGridPointValuesExactly) {
  // Lossless at the grid points (interpolation, not approximation, there).
  const dim_t d = 2;
  const level_t n = 7;
  const auto field = workloads::simulation_field(d);
  CompactStorage sparse(d, n);
  sparse.sample(field.f);
  const std::vector<real_t> nodal = sparse.values();
  hierarchize(sparse);
  std::stringstream blob;
  io::save(sparse, blob);
  const CompactStorage restored = io::load(blob);
  for (flat_index_t j = 0; j < restored.size(); ++j) {
    const CoordVector x = coordinates(restored.grid().idx2gp(j));
    EXPECT_NEAR(evaluate(restored, x), nodal[static_cast<std::size_t>(j)],
                1e-12);
  }
}

}  // namespace
}  // namespace csg
