#include "csg/parallel/omp_algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg::parallel {
namespace {

using baselines::sample;

/// 1, 2, a couple of odd counts, and hardware_concurrency() + 3 so the
/// sweep always includes an oversubscribed configuration (more threads than
/// cores forces preemption mid-region, which is what shakes out missing
/// barriers under the TSan lane). Deduplicated: on small machines hw + 3
/// can collide with the fixed counts, and gtest requires unique suffixes.
std::vector<int> thread_counts() {
  std::vector<int> counts{1, 2, 3, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  counts.push_back(static_cast<int>(hw == 0 ? 4 : hw) + 3);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, OmpHierarchizeMatchesSequential) {
  const int threads = GetParam();
  const dim_t d = 4;
  const level_t n = 5;
  const auto f = workloads::simulation_field(d);
  CompactStorage seq(d, n), par(d, n);
  seq.sample(f.f);
  par.sample(f.f);
  hierarchize(seq);
  omp_hierarchize(par, threads);
  for (flat_index_t j = 0; j < seq.size(); ++j)
    ASSERT_EQ(seq[j], par[j]) << "threads=" << threads << " idx=" << j;
}

TEST_P(ThreadSweep, OmpPoleHierarchizeIsBitIdenticalToSequential) {
  const int threads = GetParam();
  const dim_t d = 4;
  const level_t n = 5;
  CompactStorage seq(d, n), par(d, n);
  seq.sample(workloads::simulation_field(d).f);
  par.sample(workloads::simulation_field(d).f);
  hierarchize_poles(seq);
  omp_hierarchize_poles(par, threads);
  for (flat_index_t j = 0; j < seq.size(); ++j)
    ASSERT_EQ(seq[j], par[j]) << "threads=" << threads << " idx=" << j;
}

TEST_P(ThreadSweep, OmpDehierarchizeInvertsOmpHierarchize) {
  const int threads = GetParam();
  const dim_t d = 3;
  const level_t n = 6;
  CompactStorage s(d, n);
  s.sample(workloads::gaussian_bump(d).f);
  const std::vector<real_t> nodal = s.values();
  omp_hierarchize(s, threads);
  omp_dehierarchize(s, threads);
  for (flat_index_t j = 0; j < s.size(); ++j)
    EXPECT_NEAR(s[j], nodal[static_cast<std::size_t>(j)], 1e-12);
}

TEST_P(ThreadSweep, OmpEvaluateMatchesSequential) {
  const int threads = GetParam();
  const dim_t d = 3;
  CompactStorage s(d, 5);
  s.sample(workloads::oscillatory(d).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(d, 257, 31);
  const auto seq = evaluate_many(s, pts);
  const auto par = omp_evaluate_many(s, pts, threads);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t p = 0; p < pts.size(); ++p) EXPECT_EQ(par[p], seq[p]);
}

TEST_P(ThreadSweep, OmpRecursiveHierarchizationOverBaselines) {
  const int threads = GetParam();
  const dim_t d = 3;
  const level_t n = 4;
  const auto f = workloads::gaussian_bump(d);
  CompactStorage ref(d, n);
  ref.sample(f.f);
  hierarchize(ref);

  baselines::PrefixTreeStorage tree(d, n);
  sample(tree, f.f);
  omp_hierarchize_recursive(tree, threads);
  baselines::EnhancedHashStorage hash(d, n);
  sample(hash, f.f);
  omp_hierarchize_recursive(hash, threads);

  baselines::for_each_point(
      ref.grid(), [&](const LevelVector& l, const IndexVector& i) {
        EXPECT_NEAR(tree.get(l, i), ref.get(l, i), 1e-13);
        EXPECT_NEAR(hash.get(l, i), ref.get(l, i), 1e-13);
      });
}

TEST_P(ThreadSweep, OmpRecursiveEvaluationOverBaselines) {
  const int threads = GetParam();
  const dim_t d = 3;
  CompactStorage s(d, 4);
  s.sample(workloads::parabola_product(d).f);
  hierarchize(s);
  baselines::PrefixTreeStorage tree(d, 4);
  sample(tree, workloads::parabola_product(d).f);
  baselines::hierarchize_recursive(tree);
  const auto pts = workloads::uniform_points(d, 100, 77);
  const auto expected = evaluate_many(s, pts);
  const auto got = omp_evaluate_many_recursive(tree, pts, threads);
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_NEAR(got[p], expected[p], 1e-13);
}

TEST_P(ThreadSweep, OmpPoleAndGroupSchemesAgree) {
  // The two parallel decompositions (per-level-group barriers vs.
  // independent poles) must land on identical bits for any thread count —
  // they are the same arithmetic, only scheduled differently.
  const int threads = GetParam();
  const dim_t d = 4;
  const level_t n = 5;
  CompactStorage groups(d, n), poles(d, n);
  groups.sample(workloads::oscillatory(d).f);
  poles.sample(workloads::oscillatory(d).f);
  omp_hierarchize(groups, threads);
  omp_hierarchize_poles(poles, threads);
  for (flat_index_t j = 0; j < groups.size(); ++j)
    ASSERT_EQ(groups[j], poles[j]) << "threads=" << threads << " idx=" << j;
}

TEST_P(ThreadSweep, OmpBlockedEvaluateEdgeBlockSizes) {
  // Degenerate blockings must not change results or crash: one point per
  // block (maximal scheduling overhead), a block larger than the whole
  // point set (single block), and a size that does not divide the count
  // (ragged final block).
  const int threads = GetParam();
  const dim_t d = 3;
  CompactStorage s(d, 5);
  s.sample(workloads::oscillatory(d).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(d, 103, 19);  // prime count
  const auto expected = evaluate_many(s, pts);
  for (const std::size_t block :
       {std::size_t{1}, pts.size() + 17, std::size_t{16}, std::size_t{64}}) {
    const auto got = omp_evaluate_many_blocked(s, pts, block, threads);
    ASSERT_EQ(got.size(), expected.size()) << "block=" << block;
    for (std::size_t p = 0; p < pts.size(); ++p)
      ASSERT_EQ(got[p], expected[p])
          << "threads=" << threads << " block=" << block << " point=" << p;
  }
}

TEST_P(ThreadSweep, OmpBlockedEvaluateEmptyPointSet) {
  const int threads = GetParam();
  CompactStorage s(2, 4);
  s.sample(workloads::gaussian_bump(2).f);
  hierarchize(s);
  const std::vector<CoordVector> none;
  EXPECT_TRUE(omp_evaluate_many_blocked(s, none, 8, threads).empty());
  EXPECT_TRUE(omp_evaluate_many(s, none, threads).empty());
}

TEST_P(ThreadSweep, OmpBlockedEvaluateBitIdenticalToSpanWalk) {
  // evaluate_span_walk is the no-plan reference for Alg. 7; the entire
  // evaluation family — plan-based, blocked, threaded — is defined to be
  // bit-identical to it, so EXPECT_EQ, not EXPECT_NEAR.
  const int threads = GetParam();
  const dim_t d = 4;
  CompactStorage s(d, 4);
  s.sample(workloads::parabola_product(d).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(d, 61, 5);
  const auto got = omp_evaluate_many_blocked(s, pts, 7, threads);
  ASSERT_EQ(got.size(), pts.size());
  for (std::size_t p = 0; p < pts.size(); ++p)
    ASSERT_EQ(got[p], evaluate_span_walk(s.grid(), s.values(), pts[p]))
        << "threads=" << threads << " point=" << p;
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::ValuesIn(thread_counts()),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return csg::testing::prefixed_name("t", tpi.param);
                         });

TEST(Parallel, RepeatedRunsAreDeterministic) {
  // Static decomposition writes each coefficient exactly once per pass, so
  // results do not depend on scheduling.
  const dim_t d = 4;
  CompactStorage a(d, 4), b(d, 4);
  a.sample(workloads::simulation_field(d).f);
  b.sample(workloads::simulation_field(d).f);
  omp_hierarchize(a, 4);
  omp_hierarchize(b, 4);
  EXPECT_EQ(a.values(), b.values());
}

TEST(ParallelDeath, ZeroThreadsRejected) {
  CompactStorage s(2, 3);
  EXPECT_DEATH(omp_hierarchize(s, 0), "precondition");
}

}  // namespace
}  // namespace csg::parallel
