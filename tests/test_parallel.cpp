#include "csg/parallel/omp_algorithms.hpp"

#include <gtest/gtest.h>

#include "csg/baselines/map_storages.hpp"
#include "csg/baselines/prefix_tree_storage.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"

namespace csg::parallel {
namespace {

using baselines::sample;

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, OmpHierarchizeMatchesSequential) {
  const int threads = GetParam();
  const dim_t d = 4;
  const level_t n = 5;
  const auto f = workloads::simulation_field(d);
  CompactStorage seq(d, n), par(d, n);
  seq.sample(f.f);
  par.sample(f.f);
  hierarchize(seq);
  omp_hierarchize(par, threads);
  for (flat_index_t j = 0; j < seq.size(); ++j)
    ASSERT_EQ(seq[j], par[j]) << "threads=" << threads << " idx=" << j;
}

TEST_P(ThreadSweep, OmpPoleHierarchizeIsBitIdenticalToSequential) {
  const int threads = GetParam();
  const dim_t d = 4;
  const level_t n = 5;
  CompactStorage seq(d, n), par(d, n);
  seq.sample(workloads::simulation_field(d).f);
  par.sample(workloads::simulation_field(d).f);
  hierarchize_poles(seq);
  omp_hierarchize_poles(par, threads);
  for (flat_index_t j = 0; j < seq.size(); ++j)
    ASSERT_EQ(seq[j], par[j]) << "threads=" << threads << " idx=" << j;
}

TEST_P(ThreadSweep, OmpDehierarchizeInvertsOmpHierarchize) {
  const int threads = GetParam();
  const dim_t d = 3;
  const level_t n = 6;
  CompactStorage s(d, n);
  s.sample(workloads::gaussian_bump(d).f);
  const std::vector<real_t> nodal = s.values();
  omp_hierarchize(s, threads);
  omp_dehierarchize(s, threads);
  for (flat_index_t j = 0; j < s.size(); ++j)
    EXPECT_NEAR(s[j], nodal[static_cast<std::size_t>(j)], 1e-12);
}

TEST_P(ThreadSweep, OmpEvaluateMatchesSequential) {
  const int threads = GetParam();
  const dim_t d = 3;
  CompactStorage s(d, 5);
  s.sample(workloads::oscillatory(d).f);
  hierarchize(s);
  const auto pts = workloads::uniform_points(d, 257, 31);
  const auto seq = evaluate_many(s, pts);
  const auto par = omp_evaluate_many(s, pts, threads);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t p = 0; p < pts.size(); ++p) EXPECT_EQ(par[p], seq[p]);
}

TEST_P(ThreadSweep, OmpRecursiveHierarchizationOverBaselines) {
  const int threads = GetParam();
  const dim_t d = 3;
  const level_t n = 4;
  const auto f = workloads::gaussian_bump(d);
  CompactStorage ref(d, n);
  ref.sample(f.f);
  hierarchize(ref);

  baselines::PrefixTreeStorage tree(d, n);
  sample(tree, f.f);
  omp_hierarchize_recursive(tree, threads);
  baselines::EnhancedHashStorage hash(d, n);
  sample(hash, f.f);
  omp_hierarchize_recursive(hash, threads);

  baselines::for_each_point(
      ref.grid(), [&](const LevelVector& l, const IndexVector& i) {
        EXPECT_NEAR(tree.get(l, i), ref.get(l, i), 1e-13);
        EXPECT_NEAR(hash.get(l, i), ref.get(l, i), 1e-13);
      });
}

TEST_P(ThreadSweep, OmpRecursiveEvaluationOverBaselines) {
  const int threads = GetParam();
  const dim_t d = 3;
  CompactStorage s(d, 4);
  s.sample(workloads::parabola_product(d).f);
  hierarchize(s);
  baselines::PrefixTreeStorage tree(d, 4);
  sample(tree, workloads::parabola_product(d).f);
  baselines::hierarchize_recursive(tree);
  const auto pts = workloads::uniform_points(d, 100, 77);
  const auto expected = evaluate_many(s, pts);
  const auto got = omp_evaluate_many_recursive(tree, pts, threads);
  for (std::size_t p = 0; p < pts.size(); ++p)
    EXPECT_NEAR(got[p], expected[p], 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 3, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Parallel, RepeatedRunsAreDeterministic) {
  // Static decomposition writes each coefficient exactly once per pass, so
  // results do not depend on scheduling.
  const dim_t d = 4;
  CompactStorage a(d, 4), b(d, 4);
  a.sample(workloads::simulation_field(d).f);
  b.sample(workloads::simulation_field(d).f);
  omp_hierarchize(a, 4);
  omp_hierarchize(b, 4);
  EXPECT_EQ(a.values(), b.values());
}

TEST(ParallelDeath, ZeroThreadsRejected) {
  CompactStorage s(2, 3);
  EXPECT_DEATH(omp_hierarchize(s, 0), "precondition");
}

}  // namespace
}  // namespace csg::parallel
