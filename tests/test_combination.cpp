#include "csg/combination/combination_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "csg/core/evaluate.hpp"
#include "csg/core/hierarchize.hpp"
#include "csg/workloads/functions.hpp"
#include "csg/workloads/sampling.hpp"
#include "csg/testing/param_names.hpp"

namespace csg::combination {
namespace {

TEST(ComponentGrid, SizeAndCoordinates) {
  ComponentGrid g(LevelVector{1, 2});
  EXPECT_EQ(g.points_in_dim(0), 3u);
  EXPECT_EQ(g.points_in_dim(1), 7u);
  EXPECT_EQ(g.num_points(), 21u);
  const CoordVector x = g.coordinates(DimVector<std::size_t>{1, 4});
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
}

TEST(ComponentGrid, InterpolationIsExactAtGridPoints) {
  ComponentGrid g(LevelVector{2, 1});
  auto f = [](const CoordVector& x) { return x[0] * (1 - x[0]) + x[1]; };
  g.sample(f);
  DimVector<std::size_t> k(2, 1);
  for (k[0] = 1; k[0] <= g.points_in_dim(0); ++k[0])
    for (k[1] = 1; k[1] <= g.points_in_dim(1); ++k[1])
      EXPECT_NEAR(g.interpolate(g.coordinates(k)), f(g.coordinates(k)),
                  1e-14);
}

TEST(ComponentGrid, InterpolationExactForMultilinearFunctions) {
  // A function linear per dimension that vanishes on the boundary is
  // reproduced exactly (within the span of the multilinear basis).
  ComponentGrid g(LevelVector{3, 2, 1});
  auto f = [](const CoordVector& x) {
    real_t p = 1;
    for (dim_t t = 0; t < 3; ++t) p *= std::min(x[t], 1 - x[t]);
    return p;
  };
  // min(x, 1-x) is piecewise linear with its kink at 0.5 — a grid point of
  // every component level >= 0, so interpolation must be exact.
  g.sample(f);
  for (const CoordVector& x : workloads::halton_points(3, 200))
    EXPECT_NEAR(g.interpolate(x), f(x), 1e-14);
}

TEST(ComponentGrid, ZeroOnBoundary) {
  ComponentGrid g(LevelVector{2, 2});
  g.sample([](const CoordVector&) { return 1.0; });
  EXPECT_DOUBLE_EQ(g.interpolate(CoordVector{0.0, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(g.interpolate(CoordVector{0.5, 1.0}), 0.0);
}

TEST(CombinationGrid, ComponentCountsAndCoefficients) {
  // d=2, n=3: diagonals |l|=2 (coeff +1) and |l|=1 (coeff -1):
  // 3 + 2 = 5 component grids.
  CombinationGrid combi(2, 3);
  ASSERT_EQ(combi.components().size(), 5u);
  int plus = 0, minus = 0;
  for (const WeightedComponent& c : combi.components()) {
    if (c.coefficient > 0) {
      EXPECT_DOUBLE_EQ(c.coefficient, 1.0);
      EXPECT_EQ(c.grid.level().l1_norm(), 2u);
      ++plus;
    } else {
      EXPECT_DOUBLE_EQ(c.coefficient, -1.0);
      EXPECT_EQ(c.grid.level().l1_norm(), 1u);
      ++minus;
    }
  }
  EXPECT_EQ(plus, 3);
  EXPECT_EQ(minus, 2);
}

TEST(CombinationGrid, CoefficientsFollowInclusionExclusion) {
  // d=4: coefficients (-1)^q C(3, q) = 1, -3, 3, -1 on the four diagonals.
  CombinationGrid combi(4, 6);
  for (const WeightedComponent& c : combi.components()) {
    const auto q = static_cast<level_t>(5 - c.grid.level().l1_norm());
    const double expected[] = {1, -3, 3, -1};
    EXPECT_DOUBLE_EQ(c.coefficient, expected[q]);
  }
}

struct Case {
  dim_t d;
  level_t n;
};

class CombinationSweep : public ::testing::TestWithParam<Case> {};

TEST_P(CombinationSweep, CombinationEqualsDirectSparseGridInterpolant) {
  // The classical identity: for interpolation the combination technique is
  // exact — it reproduces the direct sparse grid interpolant everywhere.
  // This cross-validates the combination, the compact structure, the
  // hierarchization and the evaluation in one stroke.
  const auto [d, n] = GetParam();
  const auto f = workloads::simulation_field(d);
  CombinationGrid combi(d, n);
  combi.sample(f.f);
  CompactStorage direct(d, n);
  direct.sample(f.f);
  hierarchize(direct);
  for (const CoordVector& x : workloads::uniform_points(d, 200, 8)) {
    EXPECT_NEAR(combi.evaluate(x), evaluate(direct, x), 1e-12);
  }
}

TEST_P(CombinationSweep, ToCompactRoundTrip) {
  const auto [d, n] = GetParam();
  const auto f = workloads::gaussian_bump(d);
  CombinationGrid combi(d, n);
  combi.sample(f.f);
  const CompactStorage compact = to_compact(combi);
  for (const CoordVector& x : workloads::uniform_points(d, 100, 12))
    EXPECT_NEAR(evaluate(compact, x), combi.evaluate(x), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CombinationSweep,
    ::testing::Values(Case{1, 5}, Case{2, 2}, Case{2, 5}, Case{3, 2},
                      Case{3, 4}, Case{4, 4}, Case{5, 5}),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return csg::testing::dn_name(tpi.param.d, tpi.param.n);
    });

TEST(CombinationGrid, ReplicationOverheadVsCompact) {
  // The Sec. 7 trade-off: the combination stores strictly more nodal
  // values than the sparse grid has points.
  const dim_t d = 4;
  const level_t n = 6;
  CombinationGrid combi(d, n);
  EXPECT_GT(combi.total_points(), regular_grid_num_points(d, n));
  EXPECT_GT(combi.memory_bytes(),
            regular_grid_num_points(d, n) * sizeof(real_t));
}

TEST(CombinationGrid, ParallelSamplingAndEvaluationMatchSequential) {
  const dim_t d = 3;
  const auto f = workloads::oscillatory(d);
  CombinationGrid seq(d, 4), par(d, 4);
  seq.sample(f.f, 1);
  par.sample(f.f, 4);
  const auto pts = workloads::uniform_points(d, 100, 4);
  const auto a = seq.evaluate_many(pts, 1);
  const auto b = par.evaluate_many(pts, 4);
  for (std::size_t p = 0; p < pts.size(); ++p) EXPECT_EQ(a[p], b[p]);
}

TEST(CombinationGrid, SingleDimensionDegeneratesToOneFullGrid) {
  CombinationGrid combi(1, 6);
  ASSERT_EQ(combi.components().size(), 1u);
  EXPECT_DOUBLE_EQ(combi.components()[0].coefficient, 1.0);
  EXPECT_EQ(combi.components()[0].grid.num_points(),
            regular_grid_num_points(1, 6));
}

}  // namespace
}  // namespace csg::combination
