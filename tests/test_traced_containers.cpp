#include "csg/memsim/traced_containers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <string>
#include <unordered_map>

#include "csg/testing/property.hpp"

namespace csg::memsim {
namespace {

const auto kNoTouch = [](std::uint64_t, std::size_t) {};

TEST(TracedAvlMap, InsertFindUpdate) {
  TracedAvlMap<int, double> m;
  m.insert_or_assign(5, 1.5, kNoTouch);
  m.insert_or_assign(3, 2.5, kNoTouch);
  m.insert_or_assign(8, 3.5, kNoTouch);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(*m.find(5, kNoTouch), 1.5);
  EXPECT_DOUBLE_EQ(*m.find(3, kNoTouch), 2.5);
  EXPECT_EQ(m.find(4, kNoTouch), nullptr);
  m.insert_or_assign(5, -1.0, kNoTouch);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(*m.find(5, kNoTouch), -1.0);
}

// Differential workload shared by the AVL and hash map properties: mixed
// insert/overwrite/lookup traffic diffed against a std reference map. A
// property body, so every iteration is a fresh workload and failures carry
// a CSG_PROPERTY_SEED replay line (docs/TESTING.md).
template <typename Mine, typename Ref>
std::string random_workload_diff(std::mt19937_64& rng, std::uint64_t key_range,
                                 int ops) {
  Mine mine(4096);
  Ref ref;
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t key = rng() % key_range;
    if (op % 3 != 2) {
      const double v = static_cast<double>(rng() % 1000);
      mine.insert_or_assign(key, v, kNoTouch);
      ref[key] = v;
    } else {
      const double* mv = mine.find(key, kNoTouch);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        if (mv != nullptr)
          return "find(" + std::to_string(key) +
                 ") returned a value for an absent key";
      } else if (mv == nullptr) {
        return "find(" + std::to_string(key) + ") missed a present key";
      } else if (*mv != it->second) {
        return "find(" + std::to_string(key) + ") = " + std::to_string(*mv) +
               ", reference has " + std::to_string(it->second);
      }
    }
  }
  if (mine.size() != ref.size())
    return "size " + std::to_string(mine.size()) + " vs reference " +
           std::to_string(ref.size());
  return {};
}

TEST(TracedAvlMap, AgreesWithStdMapUnderRandomWorkload) {
  const auto r = csg::testing::run_property(
      {"traced_avl_vs_std_map", 8}, [](std::mt19937_64& rng) {
        return random_workload_diff<TracedAvlMap<std::uint64_t, double>,
                                    std::map<std::uint64_t, double>>(
            rng, 3000, 20000);
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(TracedAvlMap, HeightStaysLogarithmic) {
  TracedAvlMap<int, int> m(1 << 14);
  for (int k = 0; k < (1 << 14); ++k) m.insert_or_assign(k, k, kNoTouch);
  // AVL bound: height <= 1.44 log2(n+2).
  EXPECT_LE(m.height(), static_cast<int>(1.45 * std::log2((1 << 14) + 2)) + 1);
}

TEST(TracedAvlMap, SortedInsertionStillBalanced) {
  // The degenerate case an unbalanced BST would fail.
  TracedAvlMap<int, int> m(1024);
  for (int k = 0; k < 1024; ++k) m.insert_or_assign(k, k, kNoTouch);
  std::size_t touches = 0;
  auto counter = [&](std::uint64_t, std::size_t) { ++touches; };
  m.find(1023, counter);
  EXPECT_LE(touches, 15u);  // ~log2(1024) + slack, not 1024
}

TEST(TracedAvlMap, FindTouchesEveryVisitedNode) {
  TracedAvlMap<int, int> m;
  for (int k = 0; k < 100; ++k) m.insert_or_assign(k, k, kNoTouch);
  std::size_t touches = 0;
  m.find(37, [&](std::uint64_t addr, std::size_t bytes) {
    EXPECT_NE(addr, 0u);
    EXPECT_GT(bytes, 0u);
    ++touches;
  });
  EXPECT_GE(touches, 1u);
  EXPECT_LE(touches, 8u);  // height of a 100-node AVL tree
}

TEST(TracedAvlMap, MemoryBytesGrowWithContent) {
  TracedAvlMap<int, double> m(128);
  const std::size_t before = m.memory_bytes();
  for (int k = 0; k < 128; ++k) m.insert_or_assign(k, 0.0, kNoTouch);
  EXPECT_GE(m.memory_bytes(), before);
  EXPECT_GE(m.memory_bytes(), 128 * (sizeof(int) + sizeof(double)));
}

TEST(TracedHashMap, InsertFindUpdate) {
  TracedHashMap<std::uint64_t, double> m(64);
  m.insert_or_assign(10, 1.0, kNoTouch);
  m.insert_or_assign(74, 2.0, kNoTouch);  // same bucket mod 64
  EXPECT_DOUBLE_EQ(*m.find(10, kNoTouch), 1.0);
  EXPECT_DOUBLE_EQ(*m.find(74, kNoTouch), 2.0);
  EXPECT_EQ(m.find(11, kNoTouch), nullptr);
  m.insert_or_assign(10, 9.0, kNoTouch);
  EXPECT_DOUBLE_EQ(*m.find(10, kNoTouch), 9.0);
  EXPECT_EQ(m.size(), 2u);
}

TEST(TracedHashMap, AgreesWithUnorderedMapUnderRandomWorkload) {
  const auto r = csg::testing::run_property(
      {"traced_hash_vs_unordered_map", 8}, [](std::mt19937_64& rng) {
        return random_workload_diff<TracedHashMap<std::uint64_t, double>,
                                    std::unordered_map<std::uint64_t, double>>(
            rng, 2500, 20000);
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(TracedHashMap, ChainsStayShortAtDesignLoadFactor) {
  const auto r = csg::testing::run_property(
      {"traced_hash_chain_length", 8}, [](std::mt19937_64& rng) -> std::string {
        TracedHashMap<std::uint64_t, int> m(10000);
        for (int k = 0; k < 10000; ++k) m.insert_or_assign(rng(), k, kNoTouch);
        if (m.max_chain() > 10u)
          return "max chain " + std::to_string(m.max_chain()) +
                 " exceeds 10 at load factor 1";
        return "";
      });
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(TracedHashMap, FindTouchesBucketThenChain) {
  TracedHashMap<std::uint64_t, int> m(16);
  m.insert_or_assign(1, 1, kNoTouch);
  std::size_t touches = 0;
  m.find(1, [&](std::uint64_t, std::size_t) { ++touches; });
  EXPECT_EQ(touches, 2u);  // bucket head + one node
}

TEST(TracedHashMap, MemoryIncludesBucketArray) {
  TracedHashMap<std::uint64_t, double> m(1000);
  EXPECT_GE(m.memory_bytes(), 1024 * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace csg::memsim
