#include "csg/core/dim_vector.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace csg {
namespace {

TEST(DimVector, DefaultConstructedIsEmpty) {
  DimVector<int> v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(DimVector, SizedConstructorFills) {
  DimVector<int> v(4, 7);
  ASSERT_EQ(v.size(), 4u);
  for (dim_t t = 0; t < 4; ++t) EXPECT_EQ(v[t], 7);
}

TEST(DimVector, SizedConstructorDefaultsToZero) {
  DimVector<int> v(3);
  for (dim_t t = 0; t < 3; ++t) EXPECT_EQ(v[t], 0);
}

TEST(DimVector, InitializerList) {
  DimVector<int> v{1, 2, 3};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
}

TEST(DimVector, IteratorRangeConstructor) {
  const int raw[] = {4, 5, 6, 7};
  DimVector<int> v(std::begin(raw), std::end(raw));
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front(), 4);
  EXPECT_EQ(v.back(), 7);
}

TEST(DimVector, PushAndPop) {
  DimVector<int> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
}

TEST(DimVector, ResizeGrowsWithFill) {
  DimVector<int> v{1};
  v.resize(3, 9);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[2], 9);
}

TEST(DimVector, ResizeShrinksKeepingPrefix) {
  DimVector<int> v{1, 2, 3};
  v.resize(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(DimVector, ClearEmpties) {
  DimVector<int> v{1, 2};
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(DimVector, RangeForIteratesInOrder) {
  DimVector<int> v{10, 20, 30};
  int expected = 10;
  for (int x : v) {
    EXPECT_EQ(x, expected);
    expected += 10;
  }
}

TEST(DimVector, L1NormSumsComponents) {
  LevelVector l{3, 0, 4};
  EXPECT_EQ(l.l1_norm(), 7u);
  EXPECT_EQ(LevelVector{}.l1_norm(), 0u);
}

TEST(DimVector, L1NormDoesNotOverflowNarrowTypes) {
  DimVector<std::uint8_t> v(8, 255);
  EXPECT_EQ(v.l1_norm(), 8u * 255u);
}

TEST(DimVector, LinfNormIsMaxComponent) {
  LevelVector l{3, 0, 4};
  EXPECT_EQ(l.linf_norm(), 4u);
  EXPECT_EQ(LevelVector{}.linf_norm(), 0u);
}

TEST(DimVector, EqualityComparesContentAndSize) {
  DimVector<int> a{1, 2};
  DimVector<int> b{1, 2};
  DimVector<int> c{1, 2, 3};
  DimVector<int> d{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(DimVector, LexicographicOrdering) {
  DimVector<int> a{1, 2};
  DimVector<int> b{1, 3};
  DimVector<int> prefix{1};
  EXPECT_LT(a, b);
  EXPECT_LT(prefix, a);  // shorter orders first on ties
  EXPECT_GT(b, a);
}

TEST(DimVector, StreamOutput) {
  DimVector<int> v{1, 2, 3};
  std::ostringstream os;
  os << v;
  EXPECT_EQ(os.str(), "(1,2,3)");
}

TEST(DimVector, StreamOutputPrintsNarrowTypesNumerically) {
  DimVector<std::uint8_t> v{65, 66};
  std::ostringstream os;
  os << v;
  EXPECT_EQ(os.str(), "(65,66)");
}

TEST(DimVector, CopyIsIndependent) {
  DimVector<int> a{1, 2, 3};
  DimVector<int> b = a;
  b[0] = 99;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 99);
}

TEST(DimVectorDeath, PushBeyondCapacityAborts) {
  DimVector<int> v(kMaxDim, 0);
  EXPECT_DEATH(v.push_back(1), "precondition");
}

TEST(DimVectorDeath, OversizedConstructionAborts) {
  EXPECT_DEATH(DimVector<int>(kMaxDim + 1, 0), "precondition");
}

TEST(DimVectorDeath, PopFromEmptyAborts) {
  DimVector<int> v;
  EXPECT_DEATH(v.pop_back(), "precondition");
}

}  // namespace
}  // namespace csg
